"""Shared helpers for the benchmark harness.

Every bench regenerates the evidence of one paper figure (see DESIGN.md,
section 4) and prints the corresponding rows/series with ``-s``.  The
pytest-benchmark fixture times a representative kernel of each
experiment; the scientific output (the paper-shape table) is produced
once and printed regardless of timing rounds.
"""

from __future__ import annotations

import pytest

from repro.device.devices import device
from repro.device.fabric import Fabric


@pytest.fixture
def xcv200():
    """The paper's device."""
    return device("XCV200")


@pytest.fixture
def fabric(xcv200):
    """A fresh XCV200 fabric."""
    return Fabric(xcv200)


def once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
