"""FIG7 — the FPGA rearrangement and programming tool.

Paper (section 4): the tool generates the partial configuration files
automatically from either a complete configuration (new placement) or
source/destination CLB coordinates, plays them through Boundary Scan,
and keeps a recovery copy of the current configuration.

The bench measures generation throughput, file sizes, staged long moves
and the recovery path.
"""

import random

import pytest

from repro.analysis import Table, mean
from repro.core.tool import RearrangementTool
from repro.device.clb import CellMode
from repro.device.devices import device
from repro.device.geometry import ClbCoord


def test_fig7_generation_from_coordinates(benchmark):
    tool = RearrangementTool(device("XCV200"))

    def generate_one():
        jobs = tool.jobs_from_coordinates(ClbCoord(3, 3), ClbCoord(5, 6))
        return tool.generate_all(jobs)

    generated = benchmark(generate_one)
    gen = generated[0]
    table = Table(
        "FIG7: partial configuration files for one CLB relocation",
        ["metric", "value"],
    )
    table.add("files", len(gen.files))
    table.add("total words", gen.total_words)
    table.add("total bits", gen.total_words * 32)
    table.add(
        "load time @20MHz TCK (ms)", gen.total_words * 32 / 20e6 * 1e3
    )
    table.show()
    assert len(gen.files) == 11  # gated flow: 13 steps minus 2 waits


def test_fig7_placement_diff_input(benchmark):
    """Input form 1: a new placement for the running functions."""
    tool = RearrangementTool(device("XCV200"))
    rng = random.Random(3)
    current = {
        i: ClbCoord(rng.randrange(28), rng.randrange(42)) for i in range(12)
    }
    target = {
        i: (
            coord
            if i % 3
            else ClbCoord(
                min(27, coord.row + 2), min(41, coord.col + 3)
            )
        )
        for i, coord in current.items()
    }

    jobs = benchmark(tool.jobs_from_placements, current, target)
    moves = [i for i in current if current[i] != target[i]]
    table = Table(
        "FIG7: jobs from a full-configuration placement diff",
        ["metric", "value"],
    )
    table.add("CLBs in design", len(current))
    table.add("CLBs that move", len(moves))
    table.add("jobs emitted (with staging)", len(jobs))
    table.show()
    assert len(jobs) >= len(moves)


def test_fig7_execution_and_recovery(benchmark):
    def run():
        tool = RearrangementTool(device("XCV200"))
        jobs = tool.jobs_from_coordinates(ClbCoord(2, 2), ClbCoord(2, 3))
        generated = tool.generate_all(jobs)
        ok = tool.execute(generated)
        snapshot = tool.memory.snapshot()
        failed = tool.execute(generated, inject_failure_at=4)
        recovered_clean = tool.memory.snapshot() == snapshot
        return ok, failed, recovered_clean

    ok, failed, recovered_clean = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = Table(
        "FIG7: execution through Boundary Scan, with failure injection",
        ["run", "loads", "time ms", "recovered"],
    )
    table.add("clean", ok.loads, ok.seconds * 1e3, "no")
    table.add("failure injected", failed.loads, failed.seconds * 1e3, "yes")
    table.show()
    assert not ok.recovered
    assert failed.recovered
    assert recovered_clean


def test_fig7_staged_long_move(benchmark):
    """Long moves split into nearby hops (section 3's staging advice)."""
    tool = RearrangementTool(device("XCV200"), max_hop_columns=8)

    jobs = benchmark(
        tool.jobs_from_coordinates, ClbCoord(0, 0), ClbCoord(20, 40)
    )
    table = Table(
        "FIG7: staging of a corner-to-corner move (hop limit 8 columns)",
        ["stage", "from", "to"],
    )
    for i, job in enumerate(jobs):
        table.add(i, str(job.src), str(job.dst))
    table.show()
    assert len(jobs) >= 3
    assert jobs[-1].dst == ClbCoord(20, 40)


def test_fig7_generation_throughput(benchmark):
    """Files/second the tool can produce (pure generation kernel)."""
    tool = RearrangementTool(device("XCV200"))
    jobs = tool.jobs_from_coordinates(
        ClbCoord(1, 1), ClbCoord(1, 2), CellMode.FF_FREE_CLOCK
    )

    result = benchmark(tool.generate, jobs[0])
    assert result.files
