"""FIG2 — two-phase CLB relocation is transparent.

Paper (section 2, Fig. 2): phase 1 copies the internal configuration and
parallels the inputs; phase 2 parallels the outputs once the replica is
stable; both CLBs stay paralleled >= 1 clock cycle; the original detaches
outputs-first.  "No loss of state information or the presence of output
glitches was observed."

The bench relocates every sequential cell of ITC'99-class circuits, one
at a time, while the circuit runs in lockstep with a golden copy; the
reported row is (mismatches, conflicts) — both must be zero — plus the
per-cell relocation cost.
"""

import random

import pytest

from repro.analysis import Table, mean
from repro.core.relocation import make_lockstep_engine
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.netlist.itc99 import generate
from repro.netlist.synth import place


def campaign(name, seed=11, max_cells=6):
    circuit = generate(name, seed=seed)
    rng = random.Random(seed)
    stim = lambda cyc: {pi: rng.randint(0, 1) for pi in circuit.inputs}
    fabric = Fabric(device("XCV200"))
    design = place(circuit, fabric, owner=1)
    engine, checker = make_lockstep_engine(design, stimulus=stim)
    for _ in range(5):
        checker.step(stim(0))
    times, moved = [], 0
    for cell_name, cell in list(circuit.cells.items()):
        if not cell.sequential or moved >= max_cells:
            continue
        report = engine.relocate(cell_name)
        times.append(report.total_seconds)
        moved += 1
    for _ in range(20):
        checker.step(stim(0))
    return {
        "circuit": name,
        "cells": len(circuit.cells),
        "relocated": moved,
        "mismatches": len(checker.mismatches),
        "conflicts": len(checker.dut.conflicts),
        "avg_ms": mean(times) * 1e3,
    }


def test_fig2_transparent_relocation_campaign(benchmark):
    names = ["b01", "b02", "b06", "b09"]
    results = benchmark.pedantic(
        lambda: [campaign(n) for n in names], rounds=1, iterations=1
    )
    table = Table(
        "FIG2: two-phase relocation transparency (free-running clock)",
        ["circuit", "cells", "relocated", "mismatches", "conflicts",
         "avg ms/cell"],
    )
    for r in results:
        table.add(
            r["circuit"], r["cells"], r["relocated"], r["mismatches"],
            r["conflicts"], r["avg_ms"],
        )
    table.add("paper", "-", "all", 0, 0, "-")
    table.show()
    for r in results:
        assert r["mismatches"] == 0, r
        assert r["conflicts"] == 0, r


def test_fig2_combinational_cells_also_transparent(benchmark):
    """The first phase alone suffices for combinational cells."""
    def run():
        circuit = generate("b06", seed=3)
        rng = random.Random(3)
        stim = lambda cyc: {pi: rng.randint(0, 1) for pi in circuit.inputs}
        fabric = Fabric(device("XCV200"))
        design = place(circuit, fabric, owner=1)
        engine, checker = make_lockstep_engine(design, stimulus=stim)
        moved = 0
        for cell_name, cell in list(circuit.cells.items()):
            if cell.sequential or moved >= 6:
                continue
            report = engine.relocate(cell_name)
            assert report.transparent
            moved += 1
        for _ in range(15):
            checker.step(stim(0))
        return checker.clean, moved

    clean, moved = benchmark.pedantic(run, rounds=1, iterations=1)
    assert clean and moved == 6


def test_fig2_phase_order_enforced(benchmark):
    """The ordering constraints of the two-phase procedure are enforced
    by plan validation (signals never break before re-establishment)."""
    from repro.core.procedure import StepKind, build_plan
    from repro.device.clb import CellMode

    def build():
        return build_plan(
            "u", CellMode.FF_FREE_CLOCK, {3}, src_col=3, dst_col=4
        )

    plan = benchmark(build)
    kinds = [s.kind for s in plan.steps]
    assert kinds.index(StepKind.COPY_CONFIG) < kinds.index(
        StepKind.PARALLEL_OUTPUTS
    )
    assert kinds.index(StepKind.PARALLEL_OUTPUTS) < kinds.index(
        StepKind.DISCONNECT_ORIG_OUTPUTS
    )
    assert kinds.index(StepKind.DISCONNECT_ORIG_OUTPUTS) < kinds.index(
        StepKind.DISCONNECT_ORIG_INPUTS
    )
