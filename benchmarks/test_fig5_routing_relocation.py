"""FIG5 — relocation of routing resources (duplicate-then-disconnect).

Paper (section 3, Fig. 5): "The interconnections involved are first
duplicated in order to establish an alternative path, and then
disconnected, becoming available to be reused."

The bench routes the nets of a placed circuit, relocates every inter-CLB
path, and verifies: connectivity is never broken, wire usage peaks during
the parallel interval and returns to (near) baseline, and the delay
change distribution matches the paper's observation that rerouted paths
may be longer.
"""

import pytest

from repro.analysis import Table, mean
from repro.core.routing_relocation import RoutingRelocator
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.netlist.itc99 import generate
from repro.netlist.synth import place


def routing_campaign(name="b03", seed=4):
    circuit = generate(name, seed=seed)
    fabric = Fabric(device("XCV200"))
    design = place(circuit, fabric, owner=1, route=True)
    relocator = RoutingRelocator(fabric.routing)
    reports = []
    for key in list(design.routes):
        path = design.routes[key]
        report = relocator.relocate_path(path, disjoint=True)
        design.routes[key] = report.replica
        reports.append(report)
    return design, reports


def test_fig5_connectivity_invariant(benchmark):
    design, reports = benchmark.pedantic(
        routing_campaign, rounds=1, iterations=1
    )
    table = Table(
        "FIG5: routing relocation on a routed ITC'99-class design",
        ["metric", "value"],
    )
    table.add("paths relocated", len(reports))
    table.add(
        "connectivity preserved",
        sum(1 for r in reports if r.connectivity_preserved),
    )
    table.add(
        "mean delay change (ns)",
        mean([r.delay_change_ns for r in reports]),
    )
    table.add(
        "paths longer after move",
        sum(1 for r in reports if r.delay_change_ns > 0),
    )
    table.show()
    assert all(r.connectivity_preserved for r in reports)


def test_fig5_wire_usage_peaks_during_parallel(benchmark):
    def run():
        fabric = Fabric(device("XCV200"))
        from repro.device.geometry import ClbCoord

        path = fabric.routing.route_and_allocate(
            ClbCoord(2, 2), ClbCoord(12, 20)
        )
        return RoutingRelocator(fabric.routing).relocate_path(path)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "FIG5: wire usage through the relocation phases",
        ["phase", "wires in use"],
    )
    table.add("original only", report.wires_before)
    table.add("parallel (both paths)", report.wires_during)
    table.add("replica only", report.wires_after)
    table.show()
    assert report.wires_during > report.wires_before
    assert report.wires_during > report.wires_after


def test_fig5_optimization_recovers_wires(benchmark):
    """Section 3's motivation: rearranging interconnections 'to optimise
    the occupancy of such resources'."""
    def run():
        from repro.device.geometry import ClbCoord

        fabric = Fabric(device("XCV200"))
        graph = fabric.routing
        a, b = ClbCoord(5, 5), ClbCoord(5, 6)
        blockers = [graph.route_and_allocate(a, b) for _ in range(24)]
        detour = graph.route_and_allocate(a, b)
        for blocker in blockers:
            graph.release(blocker)
        report = RoutingRelocator(graph).optimize_path(detour)
        return detour, report

    detour, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report is not None
    table = Table(
        "FIG5: path optimisation after congestion clears",
        ["path", "segments", "delay ns"],
    )
    table.add("congested detour", detour.length, detour.delay_ns)
    table.add("optimised", report.replica.length, report.replica.delay_ns)
    table.show()
    assert report.replica.delay_ns < detour.delay_ns
