"""DEFRAG — the motivation experiment: on-line rearrangement pays off.

Paper (section 1): without management, free areas "become so small that
they fail to satisfy any request"; reference [5] proposed partial
rearrangements but executed them by "halting those functions, stopping
the normal system operation"; the paper's dynamic relocation performs
the same rearrangements "concurrently with all applications currently
running, without any time overheads".

The bench runs an identical on-line task stream under three policies —
no rearrangement, halting rearrangement, concurrent rearrangement — and
two configuration ports, reporting waiting time, turnaround and the
halted time inflicted on running tasks.  Expected shape:

* HALT and CONCURRENT place more tasks sooner than NONE when moves are
  cheap relative to waits (SelectMAP port);
* CONCURRENT always beats HALT, with zero halted seconds — the paper's
  contribution;
* over slow Boundary Scan, rearrangement costs real port time, which the
  table makes visible (the trade-off the 22.6 ms per CLB implies).
"""

import pytest

from repro.analysis import Table, mean
from repro.core.cost import CostModel
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.sched.scheduler import OnlineTaskScheduler
from repro.sched.workload import random_tasks

SEEDS = (0, 1, 2)
WORKLOAD = dict(
    n=50, mean_interarrival=3.5, size_range=(3, 12), exec_range=(30, 90)
)


def run_policy(policy, port_kind):
    dev = device("XCV200")
    waits, turns, halted, rearr = [], [], 0.0, 0
    for seed in SEEDS:
        manager = LogicSpaceManager(
            Fabric(dev),
            cost_model=CostModel(dev, port_kind=port_kind),
            policy=policy,
        )
        metrics = OnlineTaskScheduler(manager).run(
            random_tasks(seed=seed, **WORKLOAD)
        )
        waits.append(metrics.mean_waiting)
        turns.append(mean(metrics.turnaround_seconds))
        halted += metrics.halted_seconds
        rearr += metrics.rearrangements
    return {
        "wait": mean(waits),
        "turnaround": mean(turns),
        "halted": halted / len(SEEDS),
        "rearrangements": rearr / len(SEEDS),
    }


def test_defrag_policy_comparison(benchmark):
    def run_all():
        results = {}
        for port in ("selectmap", "boundary-scan"):
            for policy in (
                RearrangePolicy.NONE,
                RearrangePolicy.HALT,
                RearrangePolicy.CONCURRENT,
            ):
                results[(port, policy)] = run_policy(policy, port)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "DEFRAG: on-line rearrangement policies (3-seed means)",
        ["port", "policy", "mean wait s", "mean turnaround s",
         "halted s", "rearrangements"],
    )
    for (port, policy), r in results.items():
        table.add(
            port, policy.value, r["wait"], r["turnaround"], r["halted"],
            r["rearrangements"],
        )
    table.show()

    sm = {p: results[("selectmap", p)] for p in RearrangePolicy}
    bs = {p: results[("boundary-scan", p)] for p in RearrangePolicy}
    # Concurrent relocation never halts anything (the contribution).
    assert sm[RearrangePolicy.CONCURRENT]["halted"] == 0.0
    assert bs[RearrangePolicy.CONCURRENT]["halted"] == 0.0
    # Halting rearrangement inflicts real stopped time.
    assert sm[RearrangePolicy.HALT]["halted"] > 0.0
    # With a fast port, rearrangement beats no-rearrangement on waiting.
    assert (
        sm[RearrangePolicy.CONCURRENT]["wait"]
        < sm[RearrangePolicy.NONE]["wait"]
    )
    # Concurrent is at least as good as halting on turnaround.
    assert (
        sm[RearrangePolicy.CONCURRENT]["turnaround"]
        <= sm[RearrangePolicy.HALT]["turnaround"] * 1.05
    )


def test_defrag_rearrangement_rescues_allocations(benchmark):
    """Deterministic micro-scenario: two half-device pillars, the middle
    released; a 20-column function fits only after rearrangement."""
    from repro.device.geometry import Rect

    def run(policy):
        dev = device("XCV200")
        manager = LogicSpaceManager(
            Fabric(dev),
            cost_model=CostModel(dev, port_kind="selectmap"),
            policy=policy,
        )
        manager.request(28, 14, owner=1)
        manager.request(28, 14, owner=2)
        manager.release(1)  # free columns 0-13; 2 occupies 14-27
        outcome = manager.request(28, 20, owner=3)
        return outcome

    blocked = run(RearrangePolicy.NONE)
    rescued = benchmark.pedantic(
        run, args=(RearrangePolicy.CONCURRENT,), rounds=1, iterations=1
    )
    table = Table(
        "DEFRAG: 28x20 request against fragmented halves",
        ["policy", "allocated", "moves", "halted s"],
    )
    table.add("none", "no" if not blocked.success else "yes", 0, 0.0)
    table.add(
        "concurrent",
        "yes" if rescued.success else "no",
        len(rescued.moves),
        rescued.halted_seconds,
    )
    table.show()
    assert not blocked.success
    assert rescued.success
    assert rescued.halted_seconds == 0.0
