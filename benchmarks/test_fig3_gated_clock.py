"""FIG3 — the auxiliary relocation circuit for gated-clock circuits.

Paper (section 2, Fig. 3): with a gated clock the naive copy "does not
ensure that the CLB replica captures the correct state information,
because CE may not be active during the relocation procedure"; the
auxiliary circuit (one OR gate + one 2:1 mux in a nearby free CLB)
transfers the state while "enabling their update by the circuit at any
instant".

The bench compares naive vs auxiliary relocation across CE scenarios
(inactive, active, toggling) on live gated-clock circuits, and verifies
the exhaustive coherency proof of the Fig. 3 transition system.
"""

import random

import pytest

from repro.analysis import Table
from repro.core.gated_clock import exhaustive_coherency_check
from repro.core.relocation import make_lockstep_engine
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.netlist import library as lib
from repro.netlist.synth import place


def run_case(ce_mode, use_aux, seed=5):
    """Relocate one gated FF under a CE scenario; report transparency."""
    rng = random.Random(seed)
    patterns = {
        "inactive": lambda cyc: {"en": 0},
        "active": lambda cyc: {"en": 1},
        "toggling": lambda cyc: {"en": rng.randint(0, 1)},
    }
    stim = patterns[ce_mode]
    fabric = Fabric(device("XCV200"))
    design = place(lib.gated_counter(4), fabric, owner=1)
    engine, checker = make_lockstep_engine(design, stimulus=stim)
    # Build genuine state first, then enter the scenario.
    for _ in range(6):
        checker.step({"en": 1})
    for _ in range(2):
        checker.step(stim(0))
    report = engine.relocate("b1", use_aux=use_aux)
    for _ in range(8):
        checker.step(stim(0))
    for _ in range(12):
        checker.step({"en": 1})  # resume counting: state errors surface
    return {
        "ce": ce_mode,
        "method": "aux circuit" if use_aux else "naive copy",
        "mismatches": len(checker.mismatches),
        "conflicts": len(checker.dut.conflicts),
        "transparent": checker.clean,
    }


def test_fig3_aux_vs_naive_matrix(benchmark):
    def run_matrix():
        results = []
        for ce_mode in ("inactive", "active", "toggling"):
            for use_aux in (True, False):
                results.append(run_case(ce_mode, use_aux))
        return results

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    table = Table(
        "FIG3: gated-clock relocation, auxiliary circuit vs naive copy",
        ["CE scenario", "method", "mismatches", "conflicts", "transparent"],
    )
    for r in results:
        table.add(r["ce"], r["method"], r["mismatches"], r["conflicts"],
                  "yes" if r["transparent"] else "NO")
    table.show()
    by_key = {(r["ce"], r["method"]): r for r in results}
    # The paper's method is transparent in every scenario.
    for ce_mode in ("inactive", "active", "toggling"):
        assert by_key[(ce_mode, "aux circuit")]["transparent"], ce_mode
    # The naive copy fails exactly when CE inactivity hides state.
    assert not by_key[("inactive", "naive copy")]["transparent"]
    # With CE always active the naive copy happens to work (that is why
    # free-running-clock circuits need no auxiliary circuit).
    assert by_key[("active", "naive copy")]["transparent"]


def test_fig3_exhaustive_coherency_proof(benchmark):
    """Machine-check the Fig. 3 transition system over all stimuli."""
    ok = benchmark(exhaustive_coherency_check, 4)
    assert ok


def test_fig3_latch_relocation_transparent(benchmark):
    """The asynchronous case: same circuit, latch gate instead of CE."""
    def run():
        rng = random.Random(2)
        stim = lambda cyc: {
            "din": rng.randint(0, 1), "g": rng.randint(0, 1)
        }
        fabric = Fabric(device("XCV200"))
        design = place(lib.latch_pipeline(4), fabric, owner=1)
        engine, checker = make_lockstep_engine(design, stimulus=stim)
        for _ in range(6):
            checker.step(stim(0))
        for stage in ("l0", "l2"):
            report = engine.relocate(stage)
            assert report.transparent
        for _ in range(20):
            checker.step(stim(0))
        return checker.clean

    assert benchmark.pedantic(run, rounds=1, iterations=1)
