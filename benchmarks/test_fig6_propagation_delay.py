"""FIG6 — propagation delay during the relocation of routing resources.

Paper (section 3, Fig. 6): while the original and replica paths are
paralleled, a source transition reaches the destination through both,
and "the signal at the input of the CLB destination will show an
interval of fuzziness"; for transient analysis "the propagation delay
... shall be the longer of the two paths".

The bench sweeps the delay mismatch between the two paths and reports
the fuzziness interval per edge and the maximum safe clock frequency —
reproducing the figure's waveform analysis numerically.
"""

import pytest

from repro.analysis import Table
from repro.core.routing_relocation import RoutingRelocator
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.device.geometry import ClbCoord
from repro.netlist.timing import merge_parallel_paths, square_wave


def test_fig6_fuzziness_vs_delay_mismatch(benchmark):
    d_original = 4.0  # ns

    def sweep():
        rows = []
        for d_replica in (4.0, 5.0, 6.0, 8.0, 12.0, 20.0):
            source = square_wave(period=200.0, edges=8)
            report = merge_parallel_paths(source, d_original, d_replica)
            rows.append(
                (
                    d_replica,
                    report.fuzz_per_edge,
                    report.total_fuzz,
                    report.effective_delay,
                    # Delays are in ns, so 1/period comes out in GHz;
                    # scale to MHz for the table.
                    report.max_safe_clock_hz(setup=1.0) * 1e3,
                )
            )
        return rows

    rows = benchmark(sweep)
    table = Table(
        "FIG6: fuzziness at the destination input (original delay 4 ns)",
        ["replica delay ns", "fuzz/edge ns", "total fuzz ns",
         "effective delay ns", "max clock MHz"],
    )
    for row in rows:
        table.add(*row)
    table.show()
    # Shape: fuzz per edge == |d_replica - d_original|; effective delay is
    # the longer path; max clock falls as mismatch grows.
    fuzz = [r[1] for r in rows]
    assert fuzz == sorted(fuzz)
    assert all(r[3] == max(4.0, r[0]) for r in rows)


def test_fig6_real_paths_on_fabric(benchmark):
    """Measure fuzziness on actual routed paths rather than synthetic
    delays: relocate a path and read the timing report."""
    def run():
        fabric = Fabric(device("XCV200"))
        path = fabric.routing.route_and_allocate(
            ClbCoord(3, 3), ClbCoord(10, 30)
        )
        relocator = RoutingRelocator(fabric.routing)
        return relocator.relocate_path(path, disjoint=True)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    timing = report.timing
    table = Table(
        "FIG6: parallel interval of a real path relocation",
        ["metric", "value"],
    )
    table.add("original delay ns", report.original.delay_ns)
    table.add("replica delay ns", report.replica.delay_ns)
    table.add("effective delay ns", timing.effective_delay)
    table.add("fuzz per edge ns", timing.fuzz_per_edge)
    table.add("fuzz intervals", len(timing.fuzz_intervals))
    table.show()
    assert timing.effective_delay == pytest.approx(
        max(report.original.delay_ns, report.replica.delay_ns)
    )
    if report.replica.delay_ns != report.original.delay_ns:
        assert timing.total_fuzz > 0


def test_fig6_sampling_after_effective_delay_is_stable(benchmark):
    """Sampling later than the longer delay always reads settled data —
    the operational content of 'use the longer of the two paths'."""
    def check():
        source = square_wave(period=100.0, edges=10)
        report = merge_parallel_paths(source, 3.0, 9.0)
        sink = report.sink_waveform
        for t in source.edge_times():
            settle = t + report.effective_delay
            assert sink.value_at(settle) == source.value_at(t)
        return True

    assert benchmark(check)
