#!/usr/bin/env python3
"""Scheduling-kernel performance harness — ``BENCH_sched.json``.

The kernel refactor put every scheduler event (arrival, admission pass,
finish, timeout, defrag trigger) through one shared code path, so its
event throughput bounds how large a simulated workload a campaign can
afford.  Three layers of evidence:

* **events** — the raw discrete-event core: schedule/cancel/run cycles
  through :class:`~repro.sched.events.EventQueue`, reported as events
  per second;
* **queues** — discipline mechanics in isolation: push + tombstone
  discard + scan over large queues for every discipline, showing the
  lazy-tombstone scheme holds its O(1) discard as queues grow (the
  historical ``deque.remove`` path was O(n) per timeout);
* **kernel** — whole-scheduler runs: one heavy-tail stream per
  (queue discipline x port model) cell, wall clock plus the kernel's
  processed-event counter, i.e. end-to-end events per second.  Each
  cell also samples the :data:`repro.perf.PERF` hot-path counters
  (probes issued, memo skips, screen cache hits/misses, first-fit path
  split), so the committed JSON shows *why* a cell is fast, not just
  how fast — the next optimisation round starts from committed hit
  rates instead of ad-hoc profiling.

Run from the repo root:

    PYTHONPATH=src python benchmarks/perf/bench_sched.py
    PYTHONPATH=src python benchmarks/perf/bench_sched.py --smoke

``--smoke`` shrinks stream sizes for CI; ``--profile PATH`` wraps the
kernel grid in cProfile and writes the stats file to PATH (CI attaches
it to every run as an artifact, so a regression always ships with the
profile that explains it).
"""

from __future__ import annotations

import argparse
import cProfile
import json
import platform
import sys
import time
import zlib
from pathlib import Path

from repro.core.manager import LogicSpaceManager
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.perf import PERF
from repro.sched.events import EventQueue
from repro.sched.ports import PORT_MODEL_NAMES
from repro.sched.queues import QUEUE_NAMES, make_queue
from repro.sched.scheduler import OnlineTaskScheduler
from repro.sched.workload import heavy_tail_tasks


def bench_events(n_events: int) -> dict:
    """Raw event-core throughput: schedule, cancel 25 %, run to empty."""
    queue = EventQueue()
    sink = []
    started = time.perf_counter()
    handles = [
        queue.at(float(i % 977), lambda i=i: sink.append(i))
        for i in range(n_events)
    ]
    for handle in handles[::4]:
        handle.cancel()
    queue.run()
    elapsed = time.perf_counter() - started
    fired = len(sink)
    return {
        "scheduled": n_events,
        "fired": fired,
        "wall_seconds": elapsed,
        "events_per_second": fired / elapsed if elapsed > 0 else 0.0,
    }


class _Stub:
    """Queueable stand-in with the area the disciplines order by."""

    __slots__ = ("area",)

    def __init__(self, area: int) -> None:
        self.area = area


def bench_queues(n_items: int) -> list[dict]:
    """Discipline mechanics: push all, tombstone half, scan+take rest."""
    out = []
    for name in QUEUE_NAMES:
        discipline = make_queue(name)
        items = [_Stub(area=(i * 37) % 100 + 1) for i in range(n_items)]
        started = time.perf_counter()
        for i, item in enumerate(items):
            discipline.push(item, priority=i % 4, area=item.area,
                            now=float(i))
        for item in items[::2]:
            discipline.discard(item)  # O(1) tombstone, half the queue
        drained = 0
        now = float(n_items)
        while len(discipline):
            for item in discipline.scan(now):
                discipline.take(item)
                drained += 1
                break
        elapsed = time.perf_counter() - started
        ops = n_items * 2 + drained  # pushes + discards + scans
        out.append({
            "queue": name,
            "items": n_items,
            "drained": drained,
            "wall_seconds": elapsed,
            "ops_per_second": ops / elapsed if elapsed > 0 else 0.0,
        })
        print(
            f"queue {name:>9}: {elapsed:6.3f} s for {n_items} push + "
            f"{n_items // 2} discard + {drained} scans "
            f"({out[-1]['ops_per_second']:10.0f} ops/s)"
        )
    return out


def cell_seed(queue: str, ports: str) -> int:
    """Deterministic workload seed for one (queue, ports) cell.

    Every cell replays its *own* fixed stream: a CRC of the cell name,
    stable across runs, machines and Python versions (unlike ``hash``).
    Re-running the harness therefore reproduces every cell bit-for-bit
    (``tests/test_bench_sched.py`` pins this), while distinct cells no
    longer share one stream — a single pathological seed cannot skew
    the whole grid.
    """
    return zlib.crc32(f"{queue}/{ports}".encode()) % 100_000


def bench_kernel(n_tasks: int) -> list[dict]:
    """End-to-end scheduler event throughput per (queue, ports) cell.

    The first cell's run is preceded by one small *untimed* warmup run
    so allocator pools and numpy kernels are paged in before anything
    is measured — historically the first cell paid the process cold
    start and read ~20 % slow.
    """
    out = []
    dev = device("XCV200")
    warm = OnlineTaskScheduler(
        LogicSpaceManager(Fabric(dev)),
        queue=QUEUE_NAMES[0], ports=PORT_MODEL_NAMES[0],
    )
    warm.run(heavy_tail_tasks(
        min(n_tasks, 60), seed=cell_seed(QUEUE_NAMES[0], PORT_MODEL_NAMES[0]),
        mean_interarrival=0.05, size_range=(3, 10), max_wait=8.0,
        priority_levels=3,
    ))
    for queue in QUEUE_NAMES:
        for ports in PORT_MODEL_NAMES:
            manager = LogicSpaceManager(Fabric(dev))
            seed = cell_seed(queue, ports)
            tasks = heavy_tail_tasks(
                n_tasks, seed=seed, mean_interarrival=0.05,
                size_range=(3, 10), max_wait=8.0, priority_levels=3,
            )
            scheduler = OnlineTaskScheduler(manager, queue=queue,
                                            ports=ports)
            PERF.reset()
            started = time.perf_counter()
            metrics = scheduler.run(tasks)
            elapsed = time.perf_counter() - started
            processed = scheduler.events.processed
            out.append({
                "queue": queue,
                "ports": ports,
                "tasks": n_tasks,
                "seed": seed,
                "events_processed": processed,
                "wall_seconds": elapsed,
                "events_per_second": (
                    processed / elapsed if elapsed > 0 else 0.0
                ),
                "finished": metrics.finished,
                "rejected": metrics.rejected,
                "perf": PERF.collect(),
            })
            print(
                f"kernel {queue:>9} x {ports:<8}: {elapsed:6.3f} s, "
                f"{processed:6d} events "
                f"({out[-1]['events_per_second']:9.0f} ev/s), "
                f"{metrics.finished} finished / {metrics.rejected} rejected"
            )
    return out


def main(argv: list[str] | None = None) -> int:
    """Run the harness and write the JSON evidence."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: smaller streams")
    parser.add_argument("--out", default="BENCH_sched.json",
                        metavar="PATH", help="output JSON path")
    parser.add_argument("--profile", metavar="PATH",
                        help="cProfile the kernel grid and write the "
                             "pstats dump here (read it with "
                             "'python -m pstats PATH')")
    args = parser.parse_args(argv)
    n_events = 20_000 if args.smoke else 200_000
    n_items = 5_000 if args.smoke else 50_000
    n_tasks = 60 if args.smoke else 300
    if args.profile:
        profiler = cProfile.Profile()
        profiler.enable()
        kernel_rows = bench_kernel(n_tasks)
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(f"wrote kernel-grid profile to {args.profile}")
    else:
        kernel_rows = bench_kernel(n_tasks)
    payload = {
        "machine": platform.platform(),
        "python": platform.python_version(),
        "smoke": args.smoke,
        "events": bench_events(n_events),
        "queues": bench_queues(n_items),
        "kernel": kernel_rows,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
