#!/usr/bin/env python3
"""Fleet-scheduling performance harness — ``BENCH_fleet.json``.

The fleet layer must add devices without adding per-event cost beyond
the selection policy itself: admission is O(policy) — a policy ordering
plus MER-index probes — never O(devices x residents).  Three layers of
evidence:

* **scaling** — one surge stream per fleet size (1/2/4/8 members,
  ``least-loaded``): wall clock, processed events, end-to-end events
  per second, and the per-event cost ratio against the 1-member fleet.
  Admission throughput must degrade *sub-linearly* in fleet size (a
  size-8 fleet costs far less than 8x a size-1 event) while rejections
  collapse — that is the whole point of the fleet;
* **policies** — the four selection policies at a fixed fleet size on
  identical streams, separating policy-order overhead from fleet
  plumbing;
* **selection** — the raw decision microbenchmark: ``policy.order``
  calls per second against a loaded fleet, the O(policy) claim in
  isolation.

Run from the repo root:

    PYTHONPATH=src python benchmarks/perf/bench_fleet.py
    PYTHONPATH=src python benchmarks/perf/bench_fleet.py --smoke

``--smoke`` shrinks stream sizes for CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.manager import LogicSpaceManager
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.fleet import DEVICE_POLICY_NAMES, FleetManager
from repro.sched.scheduler import OnlineTaskScheduler
from repro.sched.workload import fleet_surge_tasks

#: Device every member fabric models (small enough that the surge
#: saturates one member, the regime fleets exist for).
MEMBER_DEVICE = "XC2S30"


def build_fleet(size: int, policy: str) -> FleetManager:
    """A fleet of ``size`` identical member managers."""
    dev = device(MEMBER_DEVICE)
    return FleetManager(
        [LogicSpaceManager(Fabric(dev)) for _ in range(size)],
        policy=policy,
    )


def surge(n_tasks: int, seed: int = 7) -> list:
    """The benchmark stream (sized to the member device)."""
    dev = device(MEMBER_DEVICE)
    cap = max(1, min(dev.clb_rows, dev.clb_cols) - 1)
    return fleet_surge_tasks(
        n_tasks, seed=seed, size_range=(3, min(10, cap))
    )


def bench_scaling(n_tasks: int, policy: str = "least-loaded") -> list[dict]:
    """End-to-end throughput per fleet size on one surge stream."""
    out: list[dict] = []
    base_cost = None
    for size in (1, 2, 4, 8):
        scheduler = OnlineTaskScheduler(build_fleet(size, policy))
        tasks = surge(n_tasks)
        started = time.perf_counter()
        metrics = scheduler.run(tasks)
        elapsed = time.perf_counter() - started
        processed = scheduler.events.processed
        per_event = elapsed / processed if processed else 0.0
        if base_cost is None:
            base_cost = per_event
        out.append({
            "fleet_size": size,
            "policy": policy,
            "tasks": n_tasks,
            "events_processed": processed,
            "wall_seconds": elapsed,
            "events_per_second": processed / elapsed if elapsed else 0.0,
            #: per-event cost relative to the 1-member fleet; the
            #: sub-linearity claim is ratio << fleet_size.
            "cost_ratio_vs_single": (
                per_event / base_cost if base_cost else 0.0
            ),
            "finished": metrics.finished,
            "rejected": metrics.rejected,
        })
        print(
            f"scaling fleet={size}: {elapsed:6.3f} s, {processed:6d} events "
            f"({out[-1]['events_per_second']:9.0f} ev/s, "
            f"{out[-1]['cost_ratio_vs_single']:.2f}x single-fleet cost), "
            f"{metrics.finished} finished / {metrics.rejected} rejected"
        )
    return out


def bench_policies(n_tasks: int, size: int = 4) -> list[dict]:
    """The four selection policies on identical streams and fleets."""
    out: list[dict] = []
    for policy in DEVICE_POLICY_NAMES:
        scheduler = OnlineTaskScheduler(build_fleet(size, policy))
        tasks = surge(n_tasks)
        started = time.perf_counter()
        metrics = scheduler.run(tasks)
        elapsed = time.perf_counter() - started
        processed = scheduler.events.processed
        out.append({
            "policy": policy,
            "fleet_size": size,
            "tasks": n_tasks,
            "events_processed": processed,
            "wall_seconds": elapsed,
            "events_per_second": processed / elapsed if elapsed else 0.0,
            "finished": metrics.finished,
            "rejected": metrics.rejected,
        })
        print(
            f"policy {policy:>12} x fleet={size}: {elapsed:6.3f} s "
            f"({out[-1]['events_per_second']:9.0f} ev/s), "
            f"{metrics.finished} finished / {metrics.rejected} rejected"
        )
    return out


def bench_selection(n_decisions: int) -> list[dict]:
    """Raw ``policy.order`` decisions per second on a loaded fleet."""
    out: list[dict] = []
    for policy_name in DEVICE_POLICY_NAMES:
        fleet = build_fleet(8, policy_name)
        # Pre-load through the fleet itself so the probes see realistic
        # MER sets *and* true load counters (a direct member.request
        # would leave least-loaded ordering an apparently empty fleet).
        for owner in range(1, 1 + 6 * len(fleet.members)):
            fleet.request(2, 3, 10_000 + owner)
        policy = fleet.policy
        started = time.perf_counter()
        for i in range(n_decisions):
            policy.order(fleet, 2 + i % 4, 3)
        elapsed = time.perf_counter() - started
        out.append({
            "policy": policy_name,
            "fleet_size": len(fleet.members),
            "decisions": n_decisions,
            "wall_seconds": elapsed,
            "decisions_per_second": (
                n_decisions / elapsed if elapsed else 0.0
            ),
        })
        print(
            f"selection {policy_name:>12}: {elapsed:6.3f} s for "
            f"{n_decisions} decisions "
            f"({out[-1]['decisions_per_second']:10.0f}/s)"
        )
    return out


def main(argv: list[str] | None = None) -> int:
    """Run the harness and write the JSON evidence."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: smaller streams")
    parser.add_argument("--out", default="BENCH_fleet.json",
                        metavar="PATH", help="output JSON path")
    args = parser.parse_args(argv)
    n_tasks = 60 if args.smoke else 400
    n_decisions = 2_000 if args.smoke else 20_000
    payload = {
        "machine": platform.platform(),
        "python": platform.python_version(),
        "smoke": args.smoke,
        "scaling": bench_scaling(n_tasks),
        "policies": bench_policies(n_tasks),
        "selection": bench_selection(n_decisions),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
