#!/usr/bin/env python3
"""Always-on service performance harness — ``BENCH_service.json``.

The admission service promises three things a batch campaign never had
to: the door decides *fast* (a submission's admission decision is the
service's hot path), it sustains a flash crowd without falling over,
and a checkpoint round-trip is both cheap and **lossless**.  Three
layers of evidence:

* **flash_crowd** — the seeded campaign ``fleet-surge`` workload
  replayed through the door in-process (the replay-to-service driver,
  no HTTP in the loop): sustained submissions per second over the whole
  trace, and the p50/p99/max admission-decision latency in
  microseconds (the wall time of each ``ReproService.submit`` call —
  door decision plus any synchronous admission work it triggers);
* **checkpoint** — snapshot/restore cost at a mid-trace cut: snapshot
  and restore wall milliseconds, the snapshot's JSON size, and the
  ``roundtrip_identical`` flag — the restored service and the
  uninterrupted one are driven to completion and their journal and
  telemetry streams compared **bit for bit** (the proof the README
  cites; a ``false`` here is a correctness bug, not a slow run);
* **http** — the asyncio layer's overhead: requests per second through
  a real socket for the healthz hot path (parse + route + respond).

Run from the repo root:

    PYTHONPATH=src python benchmarks/perf/bench_service.py
    PYTHONPATH=src python benchmarks/perf/bench_service.py --smoke

``--smoke`` shrinks the trace for CI; ``bench_guard.py`` compares the
rates against the committed baseline.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from pathlib import Path

from repro.campaign.replay import service_trace
from repro.service import (
    ReproService,
    ServiceAPI,
    ServiceConfig,
    restore,
    snapshot,
)

#: The benchmark service: a 2-member fleet under the priority
#: discipline — the configuration the docs recommend for QoS traffic.
CONFIG = dict(fleet_size=2, queue="priority", max_queue_depth=64)


def build_service() -> ReproService:
    """A fresh benchmark service."""
    return ReproService(ServiceConfig(**CONFIG))


def percentile(sorted_values: list[float], q: float) -> float:
    """The q-quantile (0..1) of pre-sorted values, nearest-rank."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def bench_flash_crowd(n_tasks: int, seed: int = 7) -> dict:
    """Replay the surge through the door, timing every submission."""
    service = build_service()
    trace = service_trace("fleet-surge", seed=seed, n=n_tasks,
                          tenants=("alice", "bob", "carol"))
    latencies: list[float] = []
    admitted = 0
    started = time.perf_counter()
    for submission in trace:
        t0 = time.perf_counter()
        view = service.submit(**submission)
        latencies.append(time.perf_counter() - t0)
        admitted += 1 if view["admitted"] else 0
    elapsed = time.perf_counter() - started
    service.settle()
    stats = service.stats()
    latencies.sort()
    row = {
        "tasks": n_tasks,
        "wall_seconds": elapsed,
        "submissions_per_second": n_tasks / elapsed if elapsed else 0.0,
        "admission_latency_us": {
            "p50": percentile(latencies, 0.50) * 1e6,
            "p99": percentile(latencies, 0.99) * 1e6,
            "max": latencies[-1] * 1e6,
        },
        "admitted": admitted,
        "throttled": n_tasks - admitted,
        "finished": stats["finished"],
        "rejected": stats["rejected"],
    }
    print(
        f"flash-crowd n={n_tasks}: "
        f"{row['submissions_per_second']:9.0f} subs/s, "
        f"p99 {row['admission_latency_us']['p99']:7.1f} us, "
        f"{admitted} admitted / {row['throttled']} throttled / "
        f"{stats['finished']} finished"
    )
    return row


def bench_checkpoint(n_tasks: int, seed: int = 7) -> dict:
    """Snapshot/restore cost and the round-trip identity proof."""
    trace = service_trace("fleet-surge", seed=seed, n=n_tasks,
                          tenants=("alice", "bob", "carol"))
    cut = max(1, n_tasks // 2)

    whole = build_service()
    for submission in trace:
        whole.submit(**submission)
    whole.settle()

    first = build_service()
    for submission in trace[:cut]:
        first.submit(**submission)
    t0 = time.perf_counter()
    state = snapshot(first)
    snapshot_seconds = time.perf_counter() - t0
    encoded = json.dumps(state)
    t0 = time.perf_counter()
    thawed = restore(json.loads(encoded))
    restore_seconds = time.perf_counter() - t0
    for submission in trace[cut:]:
        thawed.submit(**submission)
    thawed.settle()

    identical = (
        thawed.engine.journal == whole.engine.journal
        and thawed.engine.telemetry == whole.engine.telemetry
    )
    row = {
        "tasks": n_tasks,
        "cut": cut,
        "snapshot_ms": snapshot_seconds * 1e3,
        "restore_ms": restore_seconds * 1e3,
        "snapshot_bytes": len(encoded),
        "journal_events": len(whole.engine.journal),
        "roundtrip_identical": identical,
    }
    print(
        f"checkpoint cut={cut}/{n_tasks}: snapshot "
        f"{row['snapshot_ms']:6.2f} ms, restore "
        f"{row['restore_ms']:6.2f} ms, {row['snapshot_bytes']} bytes, "
        f"identical={identical}"
    )
    return row


def bench_http(n_requests: int) -> dict:
    """Requests per second through a real socket (healthz hot path)."""
    async def run() -> float:
        api = ServiceAPI(build_service())
        host, port = await api.start(port=0)
        request = (b"GET /healthz HTTP/1.1\r\nHost: b\r\n\r\n")
        started = time.perf_counter()
        for _ in range(n_requests):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(request)
            await writer.drain()
            await reader.read()
            writer.close()
        elapsed = time.perf_counter() - started
        await api.stop()
        return elapsed

    elapsed = asyncio.run(run())
    row = {
        "requests": n_requests,
        "wall_seconds": elapsed,
        "requests_per_second": (
            n_requests / elapsed if elapsed else 0.0
        ),
    }
    print(
        f"http n={n_requests}: {row['requests_per_second']:9.0f} req/s"
    )
    return row


def main(argv: list[str] | None = None) -> int:
    """Run the three service benchmarks and write the JSON evidence."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="output JSON path (default: %(default)s)")
    args = parser.parse_args(argv)
    n_tasks = 120 if args.smoke else 600
    n_requests = 60 if args.smoke else 400

    payload = {
        "machine": platform.platform(),
        "python": platform.python_version(),
        "smoke": args.smoke,
        "flash_crowd": bench_flash_crowd(n_tasks),
        "checkpoint": bench_checkpoint(n_tasks),
        "http": bench_http(n_requests),
    }
    if not payload["checkpoint"]["roundtrip_identical"]:
        print("FATAL: checkpoint round-trip diverged", file=sys.stderr)
        Path(args.out).write_text(json.dumps(payload, indent=1))
        return 1
    Path(args.out).write_text(json.dumps(payload, indent=1))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
