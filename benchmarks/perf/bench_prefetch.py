#!/usr/bin/env python3
"""Configuration-prefetch performance harness — ``BENCH_prefetch.json``.

Evidence that the resident-bitstream cache and the prefetch planner
move configuration traffic off the critical path without slowing the
simulator itself.  Two workload shapes, each swept over the three
``--prefetch`` modes on identical streams:

* **codec_swap** — application chains with repeated functions
  (``repeats=3``): ``cache`` mode must cut exposed config-stall
  seconds and mean turnaround versus ``never`` (repeats hit the
  resident set), ``plan`` must cut stall at least as far (successor
  offers preload into idle port windows);
* **bursty** — an on-line independent-task stream: only the planner
  can help here (one-shot bitstreams never repeat), by preloading
  queued tasks while they wait for space — config stall and mean
  waiting must drop versus ``never``.

Each row also reports end-to-end events per second so the guard can
catch the cache bookkeeping ever becoming a simulator slowdown.

Run from the repo root:

    PYTHONPATH=src python benchmarks/perf/bench_prefetch.py
    PYTHONPATH=src python benchmarks/perf/bench_prefetch.py --smoke

``--smoke`` shrinks stream sizes for CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.cost import CostModel
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.sched.prefetch import PREFETCH_MODES
from repro.sched.scheduler import ApplicationFlowScheduler, OnlineTaskScheduler
from repro.sched.workload import bursty_tasks, codec_swap_applications

#: Fabric both sections model (large enough for the default bursty
#: footprints, small enough that chains contend for space).
BENCH_DEVICE = "XC2S30"

SEED = 11


def build_manager() -> LogicSpaceManager:
    """One CONCURRENT-policy manager on the benchmark device."""
    dev = device(BENCH_DEVICE)
    return LogicSpaceManager(
        Fabric(dev), cost_model=CostModel(dev),
        policy=RearrangePolicy.CONCURRENT,
    )


def _row(mode: str, sched, elapsed: float, baseline: dict | None) -> dict:
    """Fold one mode's run into a result row (+ reductions vs never)."""
    metrics = sched.metrics
    processed = sched.events.processed
    row = {
        "prefetch": mode,
        "events_processed": processed,
        "wall_seconds": elapsed,
        "events_per_second": processed / elapsed if elapsed else 0.0,
        "config_stall_seconds": metrics.config_stall_seconds,
        "mean_waiting": metrics.mean_waiting,
        "mean_turnaround": metrics.mean_turnaround,
        "makespan": metrics.makespan,
        "prefetch_hits": metrics.prefetch_hits,
        "prefetch_loads": metrics.prefetch_loads,
        "cache_evictions": metrics.cache_evictions,
    }
    if baseline is not None:
        for name in ("config_stall_seconds", "mean_waiting",
                     "mean_turnaround"):
            base = baseline[name]
            row[f"{name}_reduction_vs_never"] = (
                (base - row[name]) / base if base else 0.0
            )
    return row


def bench_codec_swap(n_apps: int, repeats: int = 3) -> list[dict]:
    """Application chains with function repeats, per prefetch mode."""
    out: list[dict] = []
    baseline = None
    for mode in PREFETCH_MODES:
        sched = ApplicationFlowScheduler(build_manager(),
                                         prefetch_mode=mode)
        apps = codec_swap_applications(device(BENCH_DEVICE),
                                       n_apps=n_apps, seed=SEED,
                                       repeats=repeats)
        started = time.perf_counter()
        sched.run(apps)
        elapsed = time.perf_counter() - started
        row = _row(mode, sched, elapsed, baseline)
        row["apps"] = n_apps
        row["repeats"] = repeats
        if baseline is None:
            baseline = row
        out.append(row)
        print(
            f"codec-swap {mode:>5}: {elapsed:6.3f} s "
            f"({row['events_per_second']:9.0f} ev/s), "
            f"cfg-stall {row['config_stall_seconds']:7.3f} s, "
            f"turnaround {row['mean_turnaround']:7.3f} s, "
            f"{row['prefetch_hits']} hits / {row['prefetch_loads']} loads"
        )
    return out


def bench_bursty(n_tasks: int) -> list[dict]:
    """On-line independent-task bursts, per prefetch mode."""
    out: list[dict] = []
    baseline = None
    for mode in PREFETCH_MODES:
        sched = OnlineTaskScheduler(build_manager(), prefetch_mode=mode)
        tasks = bursty_tasks(n_tasks, seed=SEED)
        started = time.perf_counter()
        sched.run(tasks)
        elapsed = time.perf_counter() - started
        row = _row(mode, sched, elapsed, baseline)
        row["tasks"] = n_tasks
        if baseline is None:
            baseline = row
        out.append(row)
        print(
            f"bursty     {mode:>5}: {elapsed:6.3f} s "
            f"({row['events_per_second']:9.0f} ev/s), "
            f"cfg-stall {row['config_stall_seconds']:7.3f} s, "
            f"waiting {row['mean_waiting']:7.3f} s, "
            f"{row['prefetch_hits']} hits / {row['prefetch_loads']} loads"
        )
    return out


def main(argv: list[str] | None = None) -> int:
    """Run the harness and write the JSON evidence."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: smaller streams")
    parser.add_argument("--out", default="BENCH_prefetch.json",
                        metavar="PATH", help="output JSON path")
    args = parser.parse_args(argv)
    # 8 apps x 3 repeats keeps the in-flight working set near the
    # 8-entry cache: large enough to contend, small enough to reuse
    # (12+ apps thrash the default capacity and the benefit vanishes —
    # itself a finding, but not the regime this baseline pins).
    n_apps = 4 if args.smoke else 8
    n_tasks = 60 if args.smoke else 300
    payload = {
        "machine": platform.platform(),
        "python": platform.python_version(),
        "smoke": args.smoke,
        "codec_swap": bench_codec_swap(n_apps),
        "bursty": bench_bursty(n_tasks),
    }
    failures = []
    for section, helper, delay in (("codec_swap", "cache",
                                    "mean_turnaround"),
                                   ("bursty", "plan", "mean_waiting")):
        rows = {row["prefetch"]: row for row in payload[section]}
        never, best = rows["never"], rows[helper]
        if not best["config_stall_seconds"] < never["config_stall_seconds"]:
            failures.append(f"{section}: {helper} did not cut config stall")
        if not best[delay] < never[delay]:
            failures.append(f"{section}: {helper} did not cut {delay}")
    if failures:
        print("PREFETCH BENEFIT MISSING:\n  " + "\n  ".join(failures))
        return 1
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
