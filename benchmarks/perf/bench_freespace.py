#!/usr/bin/env python3
"""Free-space engine performance harness — the BENCH trajectory data.

Three layers of evidence that the incremental MER engine makes the
run-time manager's hot path faster, emitted as ``BENCH_freespace.json``:

* **micro** — seeded alloc/release churn against each engine at several
  device grids (the XCV200's 28x42 is the paper's device).  Placement
  decisions derive from the engine's own MER set, so every engine
  executes the identical operation history; the final grids are
  asserted equal, making the timing comparison apples to apples.
* **macro** — one full on-line scheduler scenario per engine
  (``run_scenario``), where placement queries, rearrangements and
  fragmentation sampling all hit the engine.
* **campaign** — a small sweep per engine through the campaign runner,
  the workload the ROADMAP's throughput goal cares about.

Run from the repo root:

    PYTHONPATH=src python benchmarks/perf/bench_freespace.py
    PYTHONPATH=src python benchmarks/perf/bench_freespace.py --smoke

``--smoke`` shrinks the op counts for CI; the full run enforces the
acceptance bar (incremental >= 3x on XCV200 churn with >= 500 ops).
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

import numpy as np

from repro.campaign.runner import run_campaign, run_scenario
from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.device.geometry import Rect
from repro.placement.free_space import FREE_SPACE_NAMES, make_free_space

#: (label, rows, cols) — the churn grids; XCV200 is the acceptance grid.
GRIDS = (
    ("XC2S15", 8, 12),
    ("XC2S30", 12, 18),
    ("XCV200", 28, 42),
    ("XCV1000", 64, 96),
)
ACCEPTANCE_GRID = "XCV200"
ACCEPTANCE_SPEEDUP = 3.0


def churn(engine_name: str, rows: int, cols: int, ops: int,
          seed: int = 7) -> tuple[float, np.ndarray]:
    """Run ``ops`` alloc/release mutations; return (seconds, final grid).

    Each mutation is followed by the query mix a manager issues: a
    ``fits`` probe and a ``rectangles_fitting`` scan.  Identical seeds
    walk identical histories on every correct engine.
    """
    rng = random.Random(seed)
    occupancy = np.zeros((rows, cols), dtype=np.int32)
    engine = make_free_space(engine_name, occupancy)
    max_h, max_w = max(2, rows // 4), max(2, cols // 4)
    placed: dict[int, Rect] = {}
    owner = 0
    done = 0
    started = time.perf_counter()
    while done < ops:
        if placed and (rng.random() < 0.45
                       or engine.free_area() < max_h * max_w):
            victim = sorted(placed)[rng.randrange(len(placed))]
            engine.release(placed.pop(victim))
        else:
            h, w = rng.randint(2, max_h), rng.randint(2, max_w)
            fitting = engine.rectangles_fitting(h, w)
            if not fitting:
                continue
            host = min(fitting, key=lambda r: (r.row, r.col))
            owner += 1
            rect = Rect(host.row, host.col, h, w)
            engine.allocate(rect, owner)
            placed[owner] = rect
        engine.fits(4, 4)
        done += 1
    return time.perf_counter() - started, occupancy


def bench_micro(ops: int) -> list[dict]:
    """Churn every grid with every engine; engines must agree on the
    final grid for the numbers to be comparable."""
    out = []
    for label, rows, cols in GRIDS:
        timings: dict[str, float] = {}
        grids: dict[str, np.ndarray] = {}
        for engine_name in FREE_SPACE_NAMES:
            seconds, grid = churn(engine_name, rows, cols, ops)
            timings[engine_name] = seconds
            grids[engine_name] = grid
        first, *rest = FREE_SPACE_NAMES
        for other in rest:
            if not (grids[first] == grids[other]).all():
                raise AssertionError(
                    f"engines diverged on {label}: churn histories differ"
                )
        speedup = timings["recompute"] / timings["incremental"]
        out.append({
            "grid": label,
            "rows": rows,
            "cols": cols,
            "ops": ops,
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "us_per_op": {k: round(v / ops * 1e6, 2)
                          for k, v in timings.items()},
            "speedup_incremental": round(speedup, 2),
        })
        print(f"micro {label:8s} {ops:5d} ops: "
              f"recompute {timings['recompute']*1e3:8.1f} ms, "
              f"incremental {timings['incremental']*1e3:8.1f} ms "
              f"({speedup:.1f}x)")
    return out


def bench_macro(tasks: int) -> list[dict]:
    """One full scheduler scenario per engine; science must match."""
    out = []
    base = dict(device="XCV200", policy="concurrent", workload="random",
                seed=11, workload_params=(("n", tasks),))
    results = {}
    for engine_name in FREE_SPACE_NAMES:
        spec = ScenarioSpec(free_space=engine_name, **base)
        started = time.perf_counter()
        results[engine_name] = run_scenario(spec)
        seconds = time.perf_counter() - started
        out.append({
            "scenario": f"XCV200/concurrent/random n={tasks}",
            "engine": engine_name,
            "seconds": round(seconds, 6),
            "finished": results[engine_name].finished,
            "makespan": results[engine_name].makespan,
        })
        print(f"macro {engine_name:12s}: {seconds*1e3:8.1f} ms "
              f"({results[engine_name].finished} tasks)")
    reference, incremental = (results[n] for n in FREE_SPACE_NAMES)
    if reference.makespan != incremental.makespan:
        raise AssertionError("macro scenarios diverged between engines")
    return out


def bench_campaign(tasks: int, seeds: int) -> list[dict]:
    """A small campaign per engine: sweep throughput end to end."""
    out = []
    for engine_name in FREE_SPACE_NAMES:
        grid = CampaignSpec(
            devices=["XC2S30"],
            policies=["none", "concurrent"],
            workloads=["random"],
            seeds=list(range(seeds)),
            free_spaces=[engine_name],
            workload_params={"random": {"n": tasks}},
        )
        specs = grid.expand()
        started = time.perf_counter()
        run_campaign(specs, jobs=1)
        seconds = time.perf_counter() - started
        out.append({
            "runs": len(specs),
            "tasks_per_run": tasks,
            "engine": engine_name,
            "seconds": round(seconds, 6),
            "runs_per_second": round(len(specs) / seconds, 2),
        })
        print(f"campaign {engine_name:12s}: {len(specs)} runs in "
              f"{seconds:6.2f} s")
    return out


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_freespace.json",
                        metavar="PATH", help="output JSON path")
    parser.add_argument("--ops", type=int, default=600, metavar="N",
                        help="churn mutations per grid (>= 500 for the "
                             "acceptance check)")
    parser.add_argument("--smoke", action="store_true",
                        help="small op counts, no acceptance enforcement")
    args = parser.parse_args(argv)
    ops = 120 if args.smoke else args.ops
    tasks = 20 if args.smoke else 60
    seeds = 2 if args.smoke else 4

    payload = {
        "benchmark": "free-space engines",
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "micro": bench_micro(ops),
        "macro": bench_macro(tasks),
        "campaign": bench_campaign(tasks, seeds),
    }

    acceptance = next(
        row for row in payload["micro"] if row["grid"] == ACCEPTANCE_GRID
    )
    payload["acceptance"] = {
        "grid": ACCEPTANCE_GRID,
        "ops": acceptance["ops"],
        "required_speedup": ACCEPTANCE_SPEEDUP,
        "measured_speedup": acceptance["speedup_incremental"],
        "enforced": not args.smoke and ops >= 500,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if payload["acceptance"]["enforced"] and \
            acceptance["speedup_incremental"] < ACCEPTANCE_SPEEDUP:
        print(f"ACCEPTANCE FAIL: {acceptance['speedup_incremental']}x < "
              f"{ACCEPTANCE_SPEEDUP}x on {ACCEPTANCE_GRID}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
