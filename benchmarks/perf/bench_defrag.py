#!/usr/bin/env python3
"""Defrag-planner performance harness — ``BENCH_defrag.json``.

The proactive policies call :meth:`DefragPlanner.plan_consolidation`
on *every* triggered finish event, so its cost bounds how aggressively
a runtime can afford to defragment.  Two layers of evidence:

* **planner** — seeded fragmented states at several device grids:
  time ``plan_consolidation`` and the reactive ``plan`` side by side,
  and record how many reclaimable sites (free area outside the largest
  free rectangle) one consolidation pass actually recovers;
* **scenario** — one fragmenting-workload scheduler run per defrag
  policy, wall clock plus the proactive counters, showing the
  whole-subsystem overhead of background consolidation.

Run from the repo root:

    PYTHONPATH=src python benchmarks/perf/bench_defrag.py
    PYTHONPATH=src python benchmarks/perf/bench_defrag.py --smoke

``--smoke`` shrinks state counts for CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

import numpy as np

from repro.campaign.runner import run_scenario
from repro.campaign.spec import ScenarioSpec, normalize_params
from repro.core.defrag import DefragPlanner
from repro.core.defrag_policy import DEFRAG_POLICY_NAMES
from repro.placement.compaction import apply_moves
from repro.placement.fit import first_fit
from repro.placement.metrics import reclaimable_sites

#: (label, rows, cols) — planner grids; XCV200 is the paper's device.
GRIDS = (
    ("XC2S15", 8, 12),
    ("XCV200", 28, 42),
    ("XCV1000", 64, 96),
)


def fragmented_state(rows: int, cols: int, seed: int) -> np.ndarray:
    """A seeded hole-punched occupancy grid (pack, then release half)."""
    rng = random.Random(seed)
    occ = np.zeros((rows, cols), dtype=np.int32)
    owner = 0
    for _ in range(rows * cols // 6):
        h = rng.randint(1, max(2, rows // 6))
        w = rng.randint(1, max(2, cols // 6))
        spot = first_fit(occ, h, w)
        if spot is None:
            continue
        owner += 1
        occ[spot.row : spot.row_end, spot.col : spot.col_end] = owner
    for resident in [int(o) for o in np.unique(occ) if o != 0]:
        if rng.random() < 0.5:
            occ[occ == resident] = 0
    return occ


def bench_planner(states: int) -> list[dict]:
    """Time both planner entry points over seeded fragmented states."""
    out = []
    planner = DefragPlanner()
    for label, rows, cols in GRIDS:
        consolidation_s = reactive_s = 0.0
        plans = 0
        reclaimed = 0
        reclaimable = 0
        for seed in range(states):
            occ = fragmented_state(rows, cols, seed)
            before = reclaimable_sites(occ)
            started = time.perf_counter()
            plan = planner.plan_consolidation(occ)
            consolidation_s += time.perf_counter() - started
            if plan is not None:
                plans += 1
                after = reclaimable_sites(apply_moves(occ, plan.moves))
                reclaimed += before - after
            reclaimable += before
            h, w = max(2, rows // 2), max(2, cols // 2)
            started = time.perf_counter()
            planner.plan(occ, h, w)
            reactive_s += time.perf_counter() - started
        out.append({
            "grid": label,
            "rows": rows,
            "cols": cols,
            "states": states,
            "consolidation_ms_per_plan": 1e3 * consolidation_s / states,
            "reactive_ms_per_plan": 1e3 * reactive_s / states,
            "plans_found": plans,
            "reclaimable_sites_total": reclaimable,
            "sites_reclaimed_total": reclaimed,
        })
        print(
            f"planner {label:>8}: consolidation "
            f"{out[-1]['consolidation_ms_per_plan']:8.2f} ms/plan, "
            f"reactive {out[-1]['reactive_ms_per_plan']:8.2f} ms/plan, "
            f"{plans}/{states} plans, "
            f"{reclaimed}/{reclaimable} sites reclaimed"
        )
    return out


def bench_scenario(n_tasks: int) -> list[dict]:
    """One fragmenting-workload run per defrag policy."""
    out = []
    for defrag in DEFRAG_POLICY_NAMES:
        spec = ScenarioSpec(
            device="XC2S15",
            policy="concurrent",
            workload="fragmenting",
            seed=0,
            defrag=defrag,
            workload_params=normalize_params({"n": n_tasks}),
        )
        started = time.perf_counter()
        result = run_scenario(spec)
        wall = time.perf_counter() - started
        out.append({
            "defrag": defrag,
            "tasks": n_tasks,
            "wall_seconds": wall,
            "rejected": result.rejected,
            "mean_waiting": result.mean_waiting,
            "proactive_defrags": result.proactive_defrags,
            "defrag_moves": result.defrag_moves,
        })
        print(
            f"scenario {defrag:>10}: {wall:6.3f} s wall, "
            f"rejected {result.rejected}, "
            f"{result.proactive_defrags} consolidations"
        )
    return out


def main(argv: list[str] | None = None) -> int:
    """Run the harness and write the JSON evidence."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: fewer states/tasks")
    parser.add_argument("--out", default="BENCH_defrag.json",
                        metavar="PATH", help="output JSON path")
    args = parser.parse_args(argv)
    states = 4 if args.smoke else 16
    n_tasks = 20 if args.smoke else 60
    payload = {
        "machine": platform.platform(),
        "python": platform.python_version(),
        "smoke": args.smoke,
        "planner": bench_planner(states),
        "scenario": bench_scenario(n_tasks),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
