#!/usr/bin/env python3
"""Benchmark regression guard — fresh smoke runs vs committed evidence.

The committed ``BENCH_sched.json`` / ``BENCH_freespace.json`` /
``BENCH_fleet.json`` / ``BENCH_service.json`` /
``BENCH_prefetch.json`` files are the performance claims this
repository makes (kernel events per second, queue-discipline ops per
second, free-space microbenchmark latency, fleet scheduling
throughput, service door throughput and latency, prefetch stall
reduction).  A
refactor can silently walk those claims back without ever reddening a
correctness test, so CI re-runs both harnesses in ``--smoke`` mode and
compares every *rate* metric against the committed baseline:

* rates where **higher is better** (``events_per_second``,
  ``ops_per_second``, ``submissions_per_second``, ...) fail when the
  fresh value drops below ``baseline / factor``;
* rates where **lower is better** (``us_per_op``, the door's p99
  admission latency) fail when the fresh value rises above
  ``baseline * factor``.

The default ``factor`` of 3x is deliberately loose: smoke streams are
smaller than the committed full runs and CI machines are slower and
noisier than the machine that produced the baseline, so the guard only
catches *structural* regressions (an accidentally quadratic queue, a
lost cache), never scheduler jitter.  Wall-clock totals are not
compared at all — they scale with stream size, rates largely don't.

Metrics are matched by key (queue name, (queue, ports) cell, (grid,
engine) pair); keys present on only one side are reported and skipped,
so resizing the smoke grid does not break the guard.

Run from the repo root (CI runs exactly this, see
``.github/workflows/ci.yml``):

    PYTHONPATH=src python benchmarks/perf/bench_guard.py

Pass ``--fresh-sched`` / ``--fresh-freespace`` / ``--fresh-fleet`` /
``--fresh-service`` / ``--fresh-prefetch`` to compare existing result
files instead of re-running the harnesses (the test suite uses this to
exercise the comparison logic on canned payloads).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

#: Fresh-vs-baseline tolerance: fail only on a worse-than-3x move.
DEFAULT_FACTOR = 3.0

#: Absolute floors (events/second) on the *committed* kernel cells.
#: The ratio comparison above tolerates a slow CI box, but it would
#: also tolerate quietly committing a slower baseline: nothing stops
#: ``BENCH_sched.json`` itself from walking the performance claims
#: back one re-measurement at a time.  These floors pin the claims to
#: the baseline file: every ``(queue, ports)`` cell must stay at or
#: above the blanket floor, and the named cells at their stricter
#: ones.  Raise a floor when an optimisation makes a cell durably
#: faster; lowering one is an explicit, reviewable act.
KERNEL_CELL_FLOOR = 1000.0
KERNEL_CELL_FLOORS = {
    "fifo/serial": 6000.0,
    "fifo/icap": 2000.0,
    "priority/serial": 10000.0,
    "sjf/serial": 10000.0,
}

_PERF_DIR = Path(__file__).resolve().parent
_REPO_ROOT = _PERF_DIR.parent.parent


def sched_rates(payload: dict) -> dict[str, float]:
    """Flatten a ``bench_sched`` payload to ``{metric key: rate}``.

    All rates are higher-is-better throughputs.
    """
    rates: dict[str, float] = {}
    events = payload.get("events")
    if events:
        rates["events/events_per_second"] = events["events_per_second"]
    for row in payload.get("queues", []):
        rates[f"queues/{row['queue']}/ops_per_second"] = \
            row["ops_per_second"]
    for row in payload.get("kernel", []):
        key = f"kernel/{row['queue']}x{row['ports']}/events_per_second"
        rates[key] = row["events_per_second"]
    return rates


def freespace_rates(payload: dict) -> dict[str, float]:
    """Flatten a ``bench_freespace`` payload to ``{metric key: us/op}``.

    All rates are lower-is-better per-operation latencies.
    """
    rates: dict[str, float] = {}
    for row in payload.get("micro", []):
        for engine, us in row.get("us_per_op", {}).items():
            rates[f"micro/{row['grid']}/{engine}/us_per_op"] = us
    return rates


def fleet_rates(payload: dict) -> dict[str, float]:
    """Flatten a ``bench_fleet`` payload to ``{metric key: rate}``.

    All rates are higher-is-better throughputs: end-to-end events per
    second per fleet size and per selection policy, plus the raw
    selection-decision rate.
    """
    rates: dict[str, float] = {}
    for row in payload.get("scaling", []):
        key = f"scaling/size-{row['fleet_size']}/events_per_second"
        rates[key] = row["events_per_second"]
    for row in payload.get("policies", []):
        rates[f"policies/{row['policy']}/events_per_second"] = \
            row["events_per_second"]
    for row in payload.get("selection", []):
        rates[f"selection/{row['policy']}/decisions_per_second"] = \
            row["decisions_per_second"]
    return rates


def service_throughputs(payload: dict) -> dict[str, float]:
    """Higher-is-better rates of a ``bench_service`` payload."""
    rates: dict[str, float] = {}
    crowd = payload.get("flash_crowd")
    if crowd:
        rates["flash_crowd/submissions_per_second"] = \
            crowd["submissions_per_second"]
    http = payload.get("http")
    if http:
        rates["http/requests_per_second"] = http["requests_per_second"]
    return rates


def service_latencies(payload: dict) -> dict[str, float]:
    """Lower-is-better latencies of a ``bench_service`` payload."""
    rates: dict[str, float] = {}
    crowd = payload.get("flash_crowd")
    if crowd:
        rates["flash_crowd/admission_latency_us/p99"] = \
            crowd["admission_latency_us"]["p99"]
    checkpoint = payload.get("checkpoint")
    if checkpoint:
        rates["checkpoint/restore_ms"] = checkpoint["restore_ms"]
    return rates


def prefetch_rates(payload: dict) -> dict[str, float]:
    """Higher-is-better throughputs of a ``bench_prefetch`` payload:
    end-to-end events per second per workload section and mode — the
    cache bookkeeping must never become a simulator slowdown."""
    rates: dict[str, float] = {}
    for section in ("codec_swap", "bursty"):
        for row in payload.get(section, []):
            key = f"{section}/{row['prefetch']}/events_per_second"
            rates[key] = row["events_per_second"]
    return rates


def prefetch_stalls(payload: dict) -> dict[str, float]:
    """Lower-is-better *relative* config stall of a ``bench_prefetch``
    payload: each mode's exposed config-stall seconds divided by the
    same payload's ``never`` row.  Absolute stall totals scale with
    stream size (smoke streams are smaller than the committed full
    runs), the within-payload ratio does not — a mode whose ratio
    climbs toward 1.0 has stopped prefetching."""
    rates: dict[str, float] = {}
    for section in ("codec_swap", "bursty"):
        rows = {row["prefetch"]: row for row in payload.get(section, [])}
        never = rows.get("never")
        if not never or not never["config_stall_seconds"]:
            continue
        for mode, row in rows.items():
            if mode == "never":
                continue
            rates[f"{section}/{mode}/relative_config_stall"] = (
                row["config_stall_seconds"]
                / never["config_stall_seconds"]
            )
    return rates


def kernel_floor_failures(payload: dict) -> list[str]:
    """Floor violations of a committed ``bench_sched`` baseline.

    Unlike :func:`compare` this never looks at the fresh run: it holds
    the checked-in evidence itself to the absolute per-cell claims in
    :data:`KERNEL_CELL_FLOORS`, so the check is deterministic on every
    machine.
    """
    failures = []
    for row in payload.get("kernel", []):
        cell = f"{row['queue']}/{row['ports']}"
        floor = KERNEL_CELL_FLOORS.get(cell, KERNEL_CELL_FLOOR)
        rate = row["events_per_second"]
        if rate < floor:
            failures.append(
                f"kernel/{cell}: committed baseline {rate:.0f} ev/s is "
                f"below its {floor:.0f} ev/s floor"
            )
    return failures


def compare(baseline: dict[str, float], fresh: dict[str, float],
            factor: float, higher_is_better: bool) -> list[str]:
    """Regression messages for every shared metric outside tolerance."""
    failures = []
    for key in sorted(baseline.keys() & fresh.keys()):
        base, now = baseline[key], fresh[key]
        if base <= 0 or now <= 0:
            continue  # degenerate timing; nothing to compare
        ratio = base / now if higher_is_better else now / base
        if ratio > factor:
            direction = "dropped" if higher_is_better else "rose"
            failures.append(
                f"{key}: {direction} {ratio:.1f}x "
                f"(baseline {base:.1f}, fresh {now:.1f})"
            )
    for key in sorted(baseline.keys() ^ fresh.keys()):
        side = "baseline" if key in baseline else "fresh"
        print(f"note: {key} only in {side}; skipped")
    return failures


def _run_smoke(harness: str, out: Path) -> dict:
    """Run one perf harness in smoke mode and load its JSON."""
    subprocess.run(
        [sys.executable, str(_PERF_DIR / harness), "--smoke",
         "--out", str(out)],
        check=True, cwd=_REPO_ROOT,
    )
    return json.loads(out.read_text())


def main(argv: list[str] | None = None) -> int:
    """Compare fresh smoke runs against the committed baselines."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--factor", type=float, default=DEFAULT_FACTOR,
                        help="per-metric regression tolerance "
                             "(default: %(default)sx)")
    parser.add_argument("--baseline-dir", default=str(_REPO_ROOT),
                        metavar="DIR",
                        help="directory holding the committed BENCH files")
    parser.add_argument("--fresh-sched", metavar="PATH",
                        help="existing bench_sched result to compare "
                             "instead of re-running the harness")
    parser.add_argument("--fresh-freespace", metavar="PATH",
                        help="existing bench_freespace result to compare "
                             "instead of re-running the harness")
    parser.add_argument("--fresh-fleet", metavar="PATH",
                        help="existing bench_fleet result to compare "
                             "instead of re-running the harness")
    parser.add_argument("--fresh-service", metavar="PATH",
                        help="existing bench_service result to compare "
                             "instead of re-running the harness")
    parser.add_argument("--fresh-prefetch", metavar="PATH",
                        help="existing bench_prefetch result to compare "
                             "instead of re-running the harness")
    args = parser.parse_args(argv)
    baseline_dir = Path(args.baseline_dir)

    with tempfile.TemporaryDirectory(prefix="bench_guard_") as tmp:
        if args.fresh_sched:
            fresh_sched = json.loads(Path(args.fresh_sched).read_text())
        else:
            fresh_sched = _run_smoke("bench_sched.py",
                                     Path(tmp) / "sched.json")
        if args.fresh_freespace:
            fresh_free = json.loads(Path(args.fresh_freespace).read_text())
        else:
            fresh_free = _run_smoke("bench_freespace.py",
                                    Path(tmp) / "freespace.json")
        if args.fresh_fleet:
            fresh_fleet = json.loads(Path(args.fresh_fleet).read_text())
        else:
            fresh_fleet = _run_smoke("bench_fleet.py",
                                     Path(tmp) / "fleet.json")
        if args.fresh_service:
            fresh_service = json.loads(
                Path(args.fresh_service).read_text()
            )
        else:
            fresh_service = _run_smoke("bench_service.py",
                                       Path(tmp) / "service.json")
        if args.fresh_prefetch:
            fresh_prefetch = json.loads(
                Path(args.fresh_prefetch).read_text()
            )
        else:
            # The harness itself exits non-zero when a prefetch mode
            # stops beating `never`, so a structural breakage fails
            # here before any ratio is compared.
            fresh_prefetch = _run_smoke("bench_prefetch.py",
                                        Path(tmp) / "prefetch.json")

    failures = []
    baseline_sched = json.loads(
        (baseline_dir / "BENCH_sched.json").read_text()
    )
    failures += kernel_floor_failures(baseline_sched)
    failures += compare(sched_rates(baseline_sched),
                        sched_rates(fresh_sched),
                        args.factor, higher_is_better=True)
    baseline_free = json.loads(
        (baseline_dir / "BENCH_freespace.json").read_text()
    )
    failures += compare(freespace_rates(baseline_free),
                        freespace_rates(fresh_free),
                        args.factor, higher_is_better=False)
    baseline_fleet = json.loads(
        (baseline_dir / "BENCH_fleet.json").read_text()
    )
    failures += compare(fleet_rates(baseline_fleet),
                        fleet_rates(fresh_fleet),
                        args.factor, higher_is_better=True)
    baseline_service = json.loads(
        (baseline_dir / "BENCH_service.json").read_text()
    )
    failures += compare(service_throughputs(baseline_service),
                        service_throughputs(fresh_service),
                        args.factor, higher_is_better=True)
    failures += compare(service_latencies(baseline_service),
                        service_latencies(fresh_service),
                        args.factor, higher_is_better=False)
    baseline_prefetch = json.loads(
        (baseline_dir / "BENCH_prefetch.json").read_text()
    )
    failures += compare(prefetch_rates(baseline_prefetch),
                        prefetch_rates(fresh_prefetch),
                        args.factor, higher_is_better=True)
    failures += compare(prefetch_stalls(baseline_prefetch),
                        prefetch_stalls(fresh_prefetch),
                        args.factor, higher_is_better=False)
    if not fresh_service.get("checkpoint", {}).get(
            "roundtrip_identical", True):
        failures.append(
            "checkpoint/roundtrip_identical: restored service diverged "
            "from the uninterrupted run"
        )

    if failures:
        print(f"bench_guard: {len(failures)} metric(s) regressed "
              f"beyond {args.factor}x:")
        for line in failures:
            print(f"  FAIL {line}")
        return 1
    print(f"bench_guard: all shared metrics within {args.factor}x "
          f"of the committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
