"""FRAG — fragmentation of the logic space over time.

Paper (section 1): "many small pools of resources are created as they
are released.  These unallocated areas tend to become so small that they
fail to satisfy any request and for that reason remain unused, leading
to a fragmentation of the FPGA logic space."

The bench drives a long allocation/release trace and tracks the
fragmentation index, free-region count and the fraction of a request
distribution that remains satisfiable — then shows that one concurrent
defragmentation pass restores satisfiability.
"""

import random

import pytest

from repro.analysis import Table, mean
from repro.core.defrag import DefragPlanner
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.core.cost import CostModel
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.placement.compaction import apply_moves, ordered_compaction
from repro.placement.metrics import (
    fragmentation_index,
    free_region_count,
    satisfiable_fraction,
    utilization,
)
from repro.sched.workload import uniform_requests


def churn_trace(steps=150, seed=5):
    """Random allocate/release churn; returns the fabric + samples."""
    rng = random.Random(seed)
    dev = device("XCV200")
    manager = LogicSpaceManager(
        Fabric(dev),
        cost_model=CostModel(dev, port_kind="selectmap"),
        policy=RearrangePolicy.NONE,
    )
    requests = uniform_requests(100, seed=seed)
    live = []
    next_owner = 1
    samples = []
    for step in range(steps):
        occ = manager.fabric.occupancy
        if live and (rng.random() < 0.45 or utilization(occ) > 0.8):
            owner = live.pop(rng.randrange(len(live)))
            manager.release(owner)
        else:
            h, w = rng.randint(3, 10), rng.randint(3, 10)
            outcome = manager.request(h, w, next_owner)
            if outcome.success:
                live.append(next_owner)
                next_owner += 1
        occ = manager.fabric.occupancy
        samples.append(
            (
                step,
                utilization(occ),
                fragmentation_index(occ),
                free_region_count(occ),
                satisfiable_fraction(occ, requests),
            )
        )
    return manager, samples


def test_frag_accumulates_over_churn(benchmark):
    manager, samples = benchmark.pedantic(
        churn_trace, rounds=1, iterations=1
    )
    early = samples[: len(samples) // 5]
    late = samples[-len(samples) // 5 :]
    table = Table(
        "FRAG: fragmentation over an allocate/release churn (XCV200)",
        ["window", "utilization", "frag index", "free regions",
         "satisfiable"],
    )
    table.add(
        "first 20%",
        mean([s[1] for s in early]),
        mean([s[2] for s in early]),
        mean([float(s[3]) for s in early]),
        mean([s[4] for s in early]),
    )
    table.add(
        "last 20%",
        mean([s[1] for s in late]),
        mean([s[2] for s in late]),
        mean([float(s[3]) for s in late]),
        mean([s[4] for s in late]),
    )
    table.show()
    # Fragmentation (and free-region fragmentation) grows with churn.
    assert mean([s[2] for s in late]) > mean([s[2] for s in early])


def test_frag_defragmentation_restores_satisfiability(benchmark):
    def run():
        manager, samples = churn_trace(steps=120, seed=9)
        occ_before = manager.fabric.occupancy.copy()
        requests = uniform_requests(100, seed=9)
        before = satisfiable_fraction(occ_before, requests)
        frag_before = fragmentation_index(occ_before)
        moves = ordered_compaction(occ_before, toward="left")
        occ_after = apply_moves(occ_before, moves)
        after = satisfiable_fraction(occ_after, requests)
        frag_after = fragmentation_index(occ_after)
        return before, after, frag_before, frag_after, len(moves)

    before, after, frag_before, frag_after, n_moves = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = Table(
        "FRAG: one full compaction pass (concurrent relocation makes it "
        "free of application downtime)",
        ["state", "satisfiable fraction", "frag index"],
    )
    table.add("before defrag", before, frag_before)
    table.add(f"after defrag ({n_moves} moves)", after, frag_after)
    table.show()
    assert after >= before
    assert frag_after <= frag_before


def test_frag_planner_finds_space_when_metrics_predict_it(benchmark):
    """Cross-check: whenever free area >= request and the planner
    succeeds, the target is genuinely free after the moves."""
    def run():
        manager, _ = churn_trace(steps=100, seed=13)
        occ = manager.fabric.occupancy
        planner = DefragPlanner()
        checked = 0
        for h, w in ((8, 8), (10, 12), (14, 6)):
            plan = planner.plan(occ, h, w)
            if plan is None:
                continue
            result = apply_moves(occ, plan.moves)
            view = result[
                plan.target.row : plan.target.row_end,
                plan.target.col : plan.target.col_end,
            ]
            assert (view == 0).all()
            checked += 1
        return checked

    checked = benchmark.pedantic(run, rounds=1, iterations=1)
    assert checked >= 1
