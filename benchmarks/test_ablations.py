"""Ablations of the design choices DESIGN.md calls out.

* **Mandatory waits** (Fig. 4's "> 2 CLK" / "> 1 CLK"): removing them
  breaks state capture for gated-clock cells — the waits are
  load-bearing, not conservative padding.
* **Halting relocation** (the [5]-style baseline): functionally correct
  and cheaper in port time, but the application loses wall-clock time —
  quantified against the concurrent procedure.
* **Staged function moves** (section 3's "several stages" advice):
  staging bounds the per-stage distance at a modest total-time premium.
* **On-line test rotation** (reference [8]): the relocation mechanism
  doubles as the vacating step of concurrent self-test.
"""

import random

import pytest

from repro.analysis import Table
from repro.core.active_replication import ActiveReplicationTester, StuckAtFault
from repro.core.function_move import FunctionRelocator
from repro.core.relocation import RelocationEngine, make_lockstep_engine
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.device.geometry import ClbCoord
from repro.netlist import library as lib
from repro.netlist.simulator import CycleSimulator, LockstepChecker
from repro.netlist.synth import place


def gated_setup(honor_waits=True):
    fabric = Fabric(device("XCV200"))
    design = place(lib.gated_counter(4), fabric, owner=1)
    golden = CycleSimulator(design.circuit.clone("golden"))
    dut = CycleSimulator(design.circuit)
    checker = LockstepChecker(dut, golden)
    engine = RelocationEngine(
        design, dut, checker=checker, honor_min_waits=honor_waits
    )
    return design, engine, checker


def test_ablation_waits_are_load_bearing(benchmark):
    """Skipping the Fig. 4 waits loses gated-clock state."""
    def run(honor):
        design, engine, checker = gated_setup(honor_waits=honor)
        # Count to 6 (0b110): bits b1 and b2 hold 1 — state that a
        # capture-less relocation would lose.
        for _ in range(6):
            checker.step({"en": 1})
        for _ in range(2):
            checker.step({"en": 0})
        engine.relocate("b2")
        for _ in range(4):
            checker.step({"en": 0})
        for _ in range(10):
            checker.step({"en": 1})
        return checker.clean

    with_waits = run(True)
    without_waits = benchmark.pedantic(
        run, args=(False,), rounds=1, iterations=1
    )
    table = Table(
        "ABLATION: the '> 2 CLK' / '> 1 CLK' waits of Fig. 4",
        ["variant", "transparent"],
    )
    table.add("waits honoured (paper)", "yes" if with_waits else "NO")
    table.add("waits skipped", "yes" if without_waits else "NO")
    table.show()
    assert with_waits
    assert not without_waits


def test_ablation_halting_vs_concurrent(benchmark):
    """Halting is cheaper on the port but stops the application."""
    def run():
        rows = []
        for method in ("concurrent", "halting"):
            fabric = Fabric(device("XCV200"))
            design = place(lib.gated_counter(4), fabric, owner=1)
            engine, checker = make_lockstep_engine(
                design, stimulus=lambda c: {"en": 1}
            )
            for _ in range(4):
                checker.step({"en": 1})
            if method == "concurrent":
                report = engine.relocate("b1")
                halted = 0.0
            else:
                report = engine.relocate_halting("b1")
                halted = report.total_seconds
            for _ in range(10):
                checker.step({"en": 1})
            rows.append(
                (method, report.total_seconds * 1e3, halted * 1e3,
                 checker.clean)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "ABLATION: concurrent (paper) vs halting ([5]-style) relocation",
        ["method", "port ms", "application halted ms", "correct"],
    )
    for row in rows:
        table.add(row[0], row[1], row[2], "yes" if row[3] else "NO")
    table.show()
    concurrent, halting = rows
    assert concurrent[3] and halting[3]          # both correct
    assert concurrent[2] == 0.0                  # zero halt (contribution)
    assert halting[2] > 0.0                      # baseline stops the app


def test_ablation_staged_function_move(benchmark):
    """Staging a long move bounds per-stage distance."""
    def run(hops):
        fabric = Fabric(device("XCV200"))
        design = place(lib.counter(4), fabric, owner=1,
                       origin=ClbCoord(0, 0))
        engine, checker = make_lockstep_engine(design)
        for _ in range(3):
            checker.step()
        mover = FunctionRelocator(engine)
        report = mover.relocate_function(
            ClbCoord(0, 36), max_hop_columns=hops
        )
        for _ in range(10):
            checker.step()
        assert checker.clean
        return report

    direct = run(None)
    staged = benchmark.pedantic(run, args=(12,), rounds=1, iterations=1)
    table = Table(
        "ABLATION: direct vs staged whole-function move (36 columns)",
        ["variant", "stages", "cells moved", "total ms"],
    )
    table.add("direct", len(direct.stages), direct.cells_moved,
              direct.total_seconds * 1e3)
    table.add("staged (12-col hops)", len(staged.stages),
              staged.cells_moved, staged.total_seconds * 1e3)
    table.show()
    assert len(staged.stages) == 3
    assert staged.transparent and direct.transparent


def test_ablation_online_test_rotation(benchmark):
    """Reference [8]: relocation enables concurrent self-test."""
    def run():
        fabric = Fabric(device("XCV200"))
        design = place(lib.counter(8), fabric, owner=1,
                       origin=ClbCoord(0, 0))
        engine, checker = make_lockstep_engine(design)
        tester = ActiveReplicationTester(engine)
        victim = design.site_of("b3")
        tester.inject_fault(StuckAtFault(victim, 0))
        for _ in range(4):
            checker.step()
        region = [
            ClbCoord(r, c) for r in range(6) for c in range(6)
        ]
        report = tester.rotate(region)
        for _ in range(12):
            checker.step()
        return report, tester.coverage(), checker.clean

    report, coverage, clean = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = Table(
        "EXTENSION: on-line test rotation via dynamic relocation ([8])",
        ["metric", "value"],
    )
    table.add("CLBs tested", report.clbs_tested)
    table.add("cells tested", report.cells_tested)
    table.add("live cells relocated", len(report.relocations))
    table.add("vacating time ms", report.relocation_seconds * 1e3)
    table.add("injected faults detected", len(report.detected))
    table.add("coverage", f"{coverage:.1%}")
    table.add("application disturbed", "no" if clean else "YES")
    table.show()
    assert clean
    assert report.detected
    assert report.transparent
