"""FIG1 — temporal scheduling of applications in space and time.

Paper (section 1, Fig. 1): applications A, B, C share the FPGA; after a
function executes, its successor "may be set up in its place during the
interval rt, in order to be available when required by the application
flow", making the reconfiguration overhead "virtually zero"; but "an
increase in the degree of parallelism may retard the reconfiguration of
incoming functions, due to lack of space in the FPGA", introducing
delays.

The bench runs the three-application scenario on the XCV200 model and
reports, per application: makespan, reconfiguration stall and prefetch
success — then sweeps the degree of parallelism (1, 2, 3 applications)
to reproduce the figure's qualitative claim.
"""

import pytest

from repro.analysis import Table
from repro.core.cost import CostModel
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.sched.scheduler import ApplicationFlowScheduler
from repro.sched.workload import fig1_applications


def make_scheduler(prefetch=True):
    dev = device("XCV200")
    manager = LogicSpaceManager(
        Fabric(dev),
        cost_model=CostModel(dev),
        policy=RearrangePolicy.CONCURRENT,
    )
    return ApplicationFlowScheduler(manager, prefetch=prefetch)


def test_fig1_three_applications_share_device(benchmark):
    dev = device("XCV200")
    apps = fig1_applications(dev)

    runs = benchmark.pedantic(
        lambda: make_scheduler().run(apps), rounds=1, iterations=1
    )
    total_demand = sum(a.total_area for a in apps)
    table = Table(
        "FIG1: applications sharing the XCV200 in space and time",
        ["app", "functions", "area demand", "makespan s", "stall s",
         "prefetched"],
    )
    for record in runs:
        prefetched = sum(1 for r in record.runs if r.prefetched)
        table.add(
            record.spec.name,
            len(record.spec.functions),
            record.spec.total_area,
            record.makespan,
            record.stall_seconds,
            f"{prefetched}/{len(record.runs)}",
        )
    table.add(
        "TOTAL", "-", f"{total_demand} ({total_demand / dev.clb_count:.0%})",
        "-", "-", "-",
    )
    table.show()
    # The virtual-hardware premise: total demand well above the device.
    assert total_demand > dev.clb_count
    assert all(r.finished_at is not None for r in runs)


def test_fig1_parallelism_sweep(benchmark):
    """More concurrent applications -> more stalls (Fig. 1's caveat)."""
    dev = device("XCV200")

    def sweep():
        rows = []
        for parallelism in (1, 2, 3):
            apps = fig1_applications(dev)[:parallelism]
            runs = make_scheduler().run(apps)
            stall = sum(r.stall_seconds for r in runs)
            prefetched = sum(
                sum(1 for f in r.runs if f.prefetched) for r in runs
            )
            total_fns = sum(len(r.runs) for r in runs)
            rows.append((parallelism, stall, prefetched, total_fns))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "FIG1: degree of parallelism vs reconfiguration stalls",
        ["apps running", "total stall s", "prefetched", "functions"],
    )
    for row in rows:
        table.add(*row)
    table.show()
    stalls = [r[1] for r in rows]
    # Stalls are monotonically non-decreasing with parallelism.
    assert stalls[0] <= stalls[-1] + 1e-9
    assert stalls == sorted(stalls)


def test_fig1_prefetch_vs_no_prefetch(benchmark):
    """Swapping functions in advance hides the reconfiguration interval."""
    dev = device("XCV200")
    apps = fig1_applications(dev)

    def run_both():
        with_prefetch = make_scheduler(prefetch=True).run(apps)
        without = make_scheduler(prefetch=False).run(apps)
        return with_prefetch, without

    with_prefetch, without = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    table = Table(
        "FIG1: reconfiguration overhead with and without prefetch (rt)",
        ["app", "stall s (prefetch)", "stall s (no prefetch)"],
    )
    total_pf, total_np = 0.0, 0.0
    for a, b in zip(with_prefetch, without):
        table.add(a.spec.name, a.stall_seconds, b.stall_seconds)
        total_pf += a.stall_seconds
        total_np += b.stall_seconds
    table.add("TOTAL", total_pf, total_np)
    table.show()
    assert total_pf <= total_np + 1e-9
