"""FIG4 — relocation flow timing: the 22.6 ms headline number.

Paper (section 2): "The average relocation time of each CLB implementing
synchronous gated-clock circuits is about 22,6 ms, when the Boundary
Scan infrastructure is used to perform the reconfiguration, at a test
clock frequency of 20 MHz."

This bench relocates every gated-clock cell of ITC'99-class circuits to
a nearby free cell (as the paper advises) on a live XCV200 model and
reports the average per-cell relocation time over Boundary Scan at
20 MHz with column-granularity writes.  Ablations: write granularity
(column vs frame), configuration port (Boundary Scan vs SelectMAP) and
relocation distance.
"""

import random

import pytest

from repro.analysis import Table, mean
from repro.core.cost import CostModel, CostParameters
from repro.core.procedure import build_plan
from repro.core.relocation import make_lockstep_engine
from repro.device.clb import CellMode
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.netlist.itc99 import generate
from repro.netlist.synth import place

PAPER_MS = 22.6


def relocation_campaign(names, max_cells=4, seed=7):
    """Relocate gated cells of each circuit; return per-cell times (s)."""
    times = []
    rows = []
    for name in names:
        circuit = generate(name, seed=seed, gated_fraction=1.0)
        rng = random.Random(seed)
        stim = lambda cyc: {pi: rng.randint(0, 1) for pi in circuit.inputs}
        fabric = Fabric(device("XCV200"))
        design = place(circuit, fabric, owner=1)
        engine, checker = make_lockstep_engine(design, stimulus=stim)
        for _ in range(4):
            checker.step(stim(0))
        circuit_times = []
        moved = 0
        for cell_name, cell in list(circuit.cells.items()):
            if cell.mode is not CellMode.FF_GATED_CLOCK or moved >= max_cells:
                continue
            report = engine.relocate(cell_name)
            assert report.transparent, f"{name}.{cell_name} not transparent"
            circuit_times.append(report.total_seconds)
            moved += 1
        assert checker.clean, f"{name}: lockstep divergence"
        times.extend(circuit_times)
        rows.append((name, len(circuit.cells), moved,
                     mean(circuit_times) * 1e3))
    return times, rows


def test_fig4_average_relocation_time(benchmark):
    """Average gated-clock CLB-cell relocation time vs the paper."""
    names = ["b01", "b02", "b06"]
    times, rows = benchmark.pedantic(
        relocation_campaign, args=(names,), rounds=1, iterations=1
    )
    avg_ms = mean(times) * 1e3
    table = Table(
        "FIG4: gated-clock relocation time over Boundary Scan @ 20 MHz",
        ["circuit", "cells", "relocated", "avg ms/cell"],
    )
    for row in rows:
        table.add(*row)
    table.add("ALL", "-", len(times), avg_ms)
    table.add("paper", "-", "-", PAPER_MS)
    table.show()
    # Shape check: same order of magnitude, within ~2x of 22.6 ms.
    assert PAPER_MS / 2 <= avg_ms <= PAPER_MS * 2


def test_fig4_write_granularity_ablation(benchmark):
    """Column-granularity (the paper's flow) vs frame-granularity."""
    def plans_cost(granularity):
        model = CostModel(
            device("XCV200"),
            CostParameters(granularity=granularity, tck_hz=20e6),
        )
        times = []
        for dst in (4, 5, 8):
            plan = build_plan(
                "cell",
                CellMode.FF_GATED_CLOCK,
                signal_columns=set(range(3, dst + 1)),
                src_col=3,
                dst_col=dst,
                aux_col=dst + 1,
                ce_col=3,
            )
            times.append(model.plan_cost(plan).total_seconds)
        return mean(times)

    column_ms = plans_cost("column") * 1e3
    frame_ms = benchmark(plans_cost, "frame") * 1e3
    table = Table(
        "FIG4 ablation: write granularity",
        ["granularity", "avg ms/cell"],
    )
    table.add("column (paper flow)", column_ms)
    table.add("frame (ICAP-style)", frame_ms)
    table.show()
    assert frame_ms < column_ms


def test_fig4_port_ablation(benchmark):
    """Boundary Scan @ 20 MHz vs SelectMAP @ 50 MHz."""
    def cost(port):
        model = CostModel(device("XCV200"), port_kind=port)
        plan = build_plan(
            "cell",
            CellMode.FF_GATED_CLOCK,
            signal_columns={3, 4},
            src_col=3,
            dst_col=4,
            aux_col=5,
            ce_col=3,
        )
        return model.plan_cost(plan).total_seconds

    jtag_ms = cost("boundary-scan") * 1e3
    smap_ms = benchmark(cost, "selectmap") * 1e3
    table = Table(
        "FIG4 ablation: configuration port",
        ["port", "ms/cell"],
    )
    table.add("boundary-scan @20MHz (paper)", jtag_ms)
    table.add("selectmap @50MHz", smap_ms)
    table.show()
    assert smap_ms < jtag_ms / 5


def test_fig4_distance_ablation(benchmark):
    """Nearby moves are cheaper — the basis of the paper's advice that
    'the relocation of the CLBs should be performed to nearby CLBs'."""
    model = CostModel(device("XCV200"))

    def cost_at(distance):
        plan = build_plan(
            "cell",
            CellMode.FF_GATED_CLOCK,
            signal_columns=set(range(3, 3 + distance + 1)),
            src_col=3,
            dst_col=3 + distance,
            aux_col=min(4 + distance, 41),
            ce_col=3,
        )
        return model.plan_cost(plan).total_seconds

    distances = [1, 2, 4, 8, 16]
    times = [cost_at(d) * 1e3 for d in distances]
    benchmark(cost_at, 1)
    table = Table(
        "FIG4 ablation: relocation distance (columns)",
        ["distance", "ms/cell"],
    )
    for d, t in zip(distances, times):
        table.add(d, t)
    table.show()
    assert times == sorted(times)


def test_fig4_device_scaling(benchmark):
    """Relocation time across the Virtex family: the frame length grows
    with the row count, so the same nearby move costs more on larger
    parts — the scaling the 22.6 ms figure implies."""
    from repro.device.devices import DEVICE_TABLE

    def sweep():
        rows = []
        for name in ("XCV50", "XCV100", "XCV200", "XCV400", "XCV1000"):
            dev = DEVICE_TABLE[name]
            model = CostModel(
                dev, CostParameters(granularity="column", tck_hz=20e6)
            )
            plan = build_plan(
                "cell",
                CellMode.FF_GATED_CLOCK,
                signal_columns={3, 4},
                src_col=3,
                dst_col=4,
                aux_col=5,
                ce_col=3,
            )
            rows.append(
                (name, dev.frame_bits,
                 model.plan_cost(plan).total_seconds * 1e3)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "FIG4 scaling: nearby gated-clock relocation across the family",
        ["device", "frame bits", "ms/cell"],
    )
    for row in rows:
        table.add(*row)
    table.show()
    times = [r[2] for r in rows]
    assert times == sorted(times)  # monotone in frame length
