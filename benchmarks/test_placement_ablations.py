"""Placement-model ablations: 2-D CLB-level vs 1-D column strips, and
the on-line fit heuristics.

The Virtex configuration architecture is column-oriented (frames span
the device height), so a simpler run-time manager constrains functions
to full-height column strips.  The paper manages the space at CLB
granularity (2-D).  These benches quantify the difference — allocation
success and wasted area — and compare the first/best/bottom-left fit
heuristics feeding the 2-D manager.
"""

import random

import pytest

from repro.analysis import Table, mean
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.placement.one_dim import OneDimAllocator
from repro.sched.workload import random_tasks


#: Both models keep the same *task area* resident (fair churn): the
#: oldest task is released once live area exceeds this share of the
#: device.  The models then differ only in how they pack that area.
LIVE_AREA_SHARE = 0.6


def drive_2d(tasks, fit, share=LIVE_AREA_SHARE,
             policy=RearrangePolicy.NONE):
    """Offered stream against the 2-D manager; returns acceptance."""
    dev = device("XCV200")
    budget = share * dev.clb_count
    manager = LogicSpaceManager(Fabric(dev), policy=policy, fit=fit)
    live = []  # (task_id, area)
    live_area = 0
    accepted = rejected = 0
    for task in tasks:
        while live and live_area + task.area > budget:
            owner, area = live.pop(0)
            manager.release(owner)
            live_area -= area
        outcome = manager.request(task.height, task.width, task.task_id)
        if outcome.success:
            accepted += 1
            live.append((task.task_id, task.area))
            live_area += task.area
        else:
            rejected += 1
    return accepted, rejected


def drive_1d(tasks, share=LIVE_AREA_SHARE):
    """Same stream, same churn policy, against the 1-D allocator."""
    dev = device("XCV200")
    budget = share * dev.clb_count
    alloc = OneDimAllocator(dev.clb_rows, dev.clb_cols)
    live = []
    live_area = 0
    accepted = rejected = 0
    wasted = 0
    for task in tasks:
        while live and live_area + task.area > budget:
            owner, area = live.pop(0)
            alloc.release(owner)
            live_area -= area
        strip = alloc.allocate(task.height, task.width, task.task_id)
        if strip is not None:
            accepted += 1
            live.append((task.task_id, task.area))
            live_area += task.area
            wasted += strip.width * dev.clb_rows - task.area
        else:
            rejected += 1
    return accepted, rejected, wasted


def test_ablation_2d_vs_1d_allocation(benchmark):
    """Load sweep: 1-D column strips inflate every request by the
    internal waste (ceil to full columns, ~20-25 % at these sizes), so
    the model saturates at a lower *useful* load than 2-D packing."""
    tasks = random_tasks(120, seed=5, size_range=(3, 12))

    def run():
        rows = []
        for share in (0.5, 0.65, 0.8, 0.9):
            acc2, __ = drive_2d(tasks, fit="best", share=share)
            accd, __ = drive_2d(
                tasks, fit="best", share=share,
                policy=RearrangePolicy.CONCURRENT,
            )
            acc1, __, wasted = drive_1d(tasks, share=share)
            rows.append((share, acc2, accd, acc1, wasted))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "ABLATION: 1-D column strips vs 2-D CLB-level, accepted of 120",
        ["live-area share", "2-D no-defrag", "2-D + concurrent defrag",
         "1-D strips", "1-D waste (sites)"],
    )
    for row in rows:
        table.add(*row)
    table.show()
    # 1-D always pays internal waste.
    assert all(row[4] > 0 for row in rows)
    for share, plain2d, defrag2d, oned, __ in rows:
        # The paper's thesis in one line: CLB-level management only beats
        # the simple column model *because* it can defragment on-line.
        assert defrag2d >= plain2d
        assert defrag2d >= oned - 1  # at least parity everywhere
    # At the highest load, 2-D + defrag strictly wins over 1-D.
    assert rows[-1][2] > rows[-1][3]


def test_ablation_fit_heuristics(benchmark):
    def run():
        rows = []
        for fit in ("first", "best", "bottom-left"):
            accepted_all, rejected_all = [], []
            for seed in (1, 2, 3):
                tasks = random_tasks(100, seed=seed, size_range=(3, 12))
                accepted, rejected = drive_2d(tasks, fit)
                accepted_all.append(accepted)
                rejected_all.append(rejected)
            rows.append(
                (fit, mean([float(a) for a in accepted_all]),
                 mean([float(r) for r in rejected_all]))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "ABLATION: on-line fit heuristics (3-seed means, no rearrangement)",
        ["heuristic", "accepted", "rejected"],
    )
    for row in rows:
        table.add(*row)
    table.show()
    # All heuristics must place the overwhelming majority of this load.
    for __, accepted, rejected in rows:
        assert accepted > rejected


def test_ablation_1d_compaction_is_cheap_but_coarse(benchmark):
    """1-D compaction is a single sweep, but granularity stays a full
    column — the 2-D model reclaims sub-column fragments too."""
    def run():
        dev = device("XCV200")
        alloc = OneDimAllocator(dev.clb_rows, dev.clb_cols)
        rng = random.Random(3)
        owners = []
        for i in range(1, 13):
            if alloc.allocate(rng.randint(5, 28), rng.randint(2, 5), i):
                owners.append(i)
        for owner in owners[::2]:
            alloc.release(owner)
        frag_before = alloc.fragmentation_index()
        moved = alloc.compact()
        return frag_before, alloc.fragmentation_index(), moved

    frag_before, frag_after, moved = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = Table(
        "ABLATION: 1-D compaction",
        ["metric", "value"],
    )
    table.add("fragmentation before", frag_before)
    table.add("fragmentation after", frag_after)
    table.add("functions moved", moved)
    table.show()
    assert frag_after == 0.0
    assert frag_before > 0.0
