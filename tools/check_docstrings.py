#!/usr/bin/env python3
"""Docstring-coverage and documentation dead-link checks.

**Docstring mode** (the default) walks the given packages (default:
``repro.campaign``, ``repro.sched``, ``repro.fleet`` and
``repro.service``) and reports every public
module, class, function and method that lacks a docstring.  Exits
non-zero when anything is missing, so CI can gate on it::

    python tools/check_docstrings.py                 # default packages
    python tools/check_docstrings.py src/repro       # whole tree
    python tools/check_docstrings.py --min-coverage 100 src/repro/core

"Public" means the name does not start with an underscore (dunders other
than ``__init__`` are ignored; ``__init__`` inherits its class's
docstring requirement and is exempt itself).  Nested definitions inside
functions are skipped — they are implementation detail.

**Doc-link mode** (``--check-doc-links`` / ``--covers-packages``,
which replaces the docstring walk) keeps the narrative docs honest
against the tree::

    python tools/check_docstrings.py \\
        --check-doc-links docs/architecture.md docs/paper_mapping.md \\
        --covers-packages docs/paper_mapping.md

``--check-doc-links`` verifies that every dotted ``repro.*`` name
mentioned in the files resolves to a module/package on disk (trailing
``CamelCase``/attribute parts after a module are allowed), and that
every backticked repo path (a token with a ``/`` and a known extension,
or a root-level ``BENCH_*.json``) exists.  ``--covers-packages`` adds
the coverage direction: every top-level package under ``src/repro``
must be mentioned in the given file.  Run from the repo root.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path

DEFAULT_TARGETS = ("src/repro/campaign", "src/repro/sched",
                   "src/repro/fleet", "src/repro/service",
                   "src/repro/faults")

#: Dotted repro.* names in prose or backticks.
DOTTED_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
#: Backticked tokens that look like repo paths.
BACKTICK_RE = re.compile(r"`([^`\n]+)`")
PATH_RE = re.compile(r"^[A-Za-z0-9_.\-/]+\.(py|json|md|csv|ini|yml)$")


def is_public(name: str) -> bool:
    """True for names that belong to the public API surface."""
    return not name.startswith("_")


def iter_definitions(tree: ast.Module):
    """Yield ``(qualname, node)`` for every public def/class at module
    and class level (function bodies are not descended into)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if is_public(node.name):
                yield node.name, node
        elif isinstance(node, ast.ClassDef):
            if not is_public(node.name):
                continue
            yield node.name, node
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    if is_public(child.name):
                        yield f"{node.name}.{child.name}", child


def check_file(path: Path) -> tuple[list[str], int]:
    """Return (missing entries, total checked) for one source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    missing: list[str] = []
    total = 1  # the module itself
    if ast.get_docstring(tree) is None:
        missing.append(f"{path}:1 module")
    for qualname, node in iter_definitions(tree):
        total += 1
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else "def"
            missing.append(f"{path}:{node.lineno} {kind} {qualname}")
    return missing, total


def collect_files(targets: list[str]) -> list[Path]:
    """Expand target files/directories into a sorted .py file list."""
    files: list[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise SystemExit(f"not a python file or directory: {target}")
    return files


def module_exists(dotted: str, src: Path = Path("src")) -> bool:
    """True when a dotted ``repro.*`` name resolves on disk.

    Walks the parts after ``repro`` through package directories.  When
    a part names a module file, the *next* part (if any) must be one of
    that module's top-level names — a renamed class rots the link even
    though the module survives; deeper parts (methods, attributes of
    attributes) are not checked.  A part that is neither a subpackage
    nor a module must be a top-level name of the package's
    ``__init__.py`` — a re-exported function like
    ``repro.fleet.make_device_policy`` is a live link, a word that
    merely appears in prose is not.
    """
    parts = dotted.split(".")
    base = src / parts[0]
    if not base.is_dir():
        return False
    for index, part in enumerate(parts[1:], start=1):
        if (base / part).is_dir():
            base = base / part
            continue
        module = base / f"{part}.py"
        if module.is_file():
            rest = parts[index + 1:]
            return not rest or rest[0] in _module_names(module)
        return part in _module_names(base / "__init__.py")
    return True


def _module_names(path: Path) -> set[str]:
    """Top-level names a module binds (defs, classes, assignments,
    imports) — the attribute surface a doc may link to.  An AST walk,
    not a text grep: a word appearing only in prose or a docstring
    must not validate a dead reference."""
    if not path.is_file():
        return set()
    names: set[str] = set()
    for node in ast.parse(path.read_text()).body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            names.update(target.id for target in node.targets
                         if isinstance(target, ast.Name))
        elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            names.update(
                (alias.asname or alias.name).split(".")[0]
                for alias in node.names
            )
    return names


def doc_path_tokens(text: str) -> list[str]:
    """Backticked tokens of ``text`` that claim to be repo paths."""
    out = []
    for token in BACKTICK_RE.findall(text):
        if "*" in token or "<" in token or " " in token:
            continue
        if not PATH_RE.match(token):
            continue
        if "/" in token or token.startswith("BENCH_"):
            out.append(token)
    return out


def check_doc_links(paths: list[str]) -> list[str]:
    """Dead dotted names / missing paths in the given markdown files."""
    problems: list[str] = []
    for doc in paths:
        text = Path(doc).read_text()
        for dotted in sorted(set(DOTTED_RE.findall(text))):
            if not module_exists(dotted):
                problems.append(f"{doc}: dead module reference {dotted}")
        for token in sorted(set(doc_path_tokens(text))):
            if not Path(token).exists():
                problems.append(f"{doc}: missing path {token}")
    return problems


def check_package_coverage(doc: str, src: Path = Path("src")) -> list[str]:
    """Top-level ``src/repro`` packages the given file never mentions."""
    text = Path(doc).read_text()
    problems: list[str] = []
    for package in sorted(p.name for p in (src / "repro").iterdir()
                          if p.is_dir() and (p / "__init__.py").exists()):
        if f"repro.{package}" not in text:
            problems.append(
                f"{doc}: top-level package repro.{package} is not covered"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("targets", nargs="*", default=list(DEFAULT_TARGETS),
                        help="files or package directories to check")
    parser.add_argument("--min-coverage", type=float, default=100.0,
                        metavar="PCT",
                        help="fail below this coverage percentage")
    parser.add_argument("--check-doc-links", nargs="+", metavar="DOC",
                        default=None,
                        help="markdown files whose repro.* names and "
                             "backticked paths must exist on disk "
                             "(replaces the docstring walk)")
    parser.add_argument("--covers-packages", metavar="DOC", default=None,
                        help="markdown file that must mention every "
                             "top-level src/repro package")
    args = parser.parse_args(argv)

    if args.check_doc_links or args.covers_packages:
        problems = check_doc_links(args.check_doc_links or [])
        if args.covers_packages:
            problems += check_package_coverage(args.covers_packages)
        for problem in problems:
            print(problem)
        checked = len(args.check_doc_links or [])
        print(f"doc-link gate: {checked} file(s) checked, "
              f"{len(problems)} problem(s)")
        return 1 if problems else 0

    all_missing: list[str] = []
    total = 0
    for path in collect_files(args.targets):
        missing, checked = check_file(path)
        all_missing.extend(missing)
        total += checked

    covered = total - len(all_missing)
    coverage = 100.0 * covered / total if total else 100.0
    for entry in all_missing:
        print(f"missing docstring: {entry}")
    print(f"docstring coverage: {covered}/{total} ({coverage:.1f} %)")
    if coverage < args.min_coverage:
        print(f"FAIL: below required {args.min_coverage:.1f} %")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
