#!/usr/bin/env python3
"""Docstring-coverage check for the public API.

Walks the given packages (default: the ones the campaign PR owns,
``repro.campaign`` and ``repro.sched``) and reports every public module,
class, function and method that lacks a docstring.  Exits non-zero when
anything is missing, so CI can gate on it::

    python tools/check_docstrings.py                 # default packages
    python tools/check_docstrings.py src/repro       # whole tree
    python tools/check_docstrings.py --min-coverage 100 src/repro/core

"Public" means the name does not start with an underscore (dunders other
than ``__init__`` are ignored; ``__init__`` inherits its class's
docstring requirement and is exempt itself).  Nested definitions inside
functions are skipped — they are implementation detail.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

DEFAULT_TARGETS = ("src/repro/campaign", "src/repro/sched")


def is_public(name: str) -> bool:
    """True for names that belong to the public API surface."""
    return not name.startswith("_")


def iter_definitions(tree: ast.Module):
    """Yield ``(qualname, node)`` for every public def/class at module
    and class level (function bodies are not descended into)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if is_public(node.name):
                yield node.name, node
        elif isinstance(node, ast.ClassDef):
            if not is_public(node.name):
                continue
            yield node.name, node
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    if is_public(child.name):
                        yield f"{node.name}.{child.name}", child


def check_file(path: Path) -> tuple[list[str], int]:
    """Return (missing entries, total checked) for one source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    missing: list[str] = []
    total = 1  # the module itself
    if ast.get_docstring(tree) is None:
        missing.append(f"{path}:1 module")
    for qualname, node in iter_definitions(tree):
        total += 1
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else "def"
            missing.append(f"{path}:{node.lineno} {kind} {qualname}")
    return missing, total


def collect_files(targets: list[str]) -> list[Path]:
    """Expand target files/directories into a sorted .py file list."""
    files: list[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise SystemExit(f"not a python file or directory: {target}")
    return files


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("targets", nargs="*", default=list(DEFAULT_TARGETS),
                        help="files or package directories to check")
    parser.add_argument("--min-coverage", type=float, default=100.0,
                        metavar="PCT",
                        help="fail below this coverage percentage")
    args = parser.parse_args(argv)

    all_missing: list[str] = []
    total = 0
    for path in collect_files(args.targets):
        missing, checked = check_file(path)
        all_missing.extend(missing)
        total += checked

    covered = total - len(all_missing)
    coverage = 100.0 * covered / total if total else 100.0
    for entry in all_missing:
        print(f"missing docstring: {entry}")
    print(f"docstring coverage: {covered}/{total} ({coverage:.1f} %)")
    if coverage < args.min_coverage:
        print(f"FAIL: below required {args.min_coverage:.1f} %")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
