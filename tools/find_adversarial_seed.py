#!/usr/bin/env python3
"""Search for the worst-case seed of the adversarial fragmentation stream.

The ``fragmenting-adversarial`` workload family is an attack on the
allocator: small long-lived anchors shatter the free space, and every
third arrival demands an ~85 %-of-device contiguous rectangle with
sub-second patience.  The *mechanism* is fixed; what varies per seed is
how maliciously the anchors happen to scatter.  This tool runs the
hypothesis-driven search that picked the committed
:data:`repro.sched.workload.ADVERSARIAL_SEED`:

* **Hypothesis**: seeds whose early anchor placements spread across
  *distinct* free-space rectangles reject more large arrivals than
  seeds whose anchors cluster — so exhaustively sweeping seeds (cheap:
  each run is a 40-task simulation) and scoring rejections finds a
  reliably adversarial arrival order, not just an unlucky one.
* **Score**: rejections on the fixed reference cell
  (XC2S15 / concurrent rearrangement / first fit / fifo / serial port
  / on-failure defrag — the golden grid's strongest single-device
  configuration), tie-broken by mean waiting time.  Higher = worse for
  the allocator = better for the stress test.

Usage::

    PYTHONPATH=src python tools/find_adversarial_seed.py            # 64 seeds
    PYTHONPATH=src python tools/find_adversarial_seed.py --seeds 256

The committed seed is pinned by ``tests/test_adversarial.py``: if a
generator change blunts the attack (fewer rejections than the floor the
search established), the regression test fails and this search should
be re-run.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.runner import run_scenario
from repro.campaign.spec import ScenarioSpec


def score_seed(seed: int, device: str = "XC2S15",
               n: int = 40) -> tuple[int, float]:
    """(rejections, mean waiting) of the adversarial stream for ``seed``
    on the fixed reference cell."""
    result = run_scenario(ScenarioSpec(
        device=device,
        policy="concurrent",
        workload="fragmenting-adversarial",
        seed=seed,
        workload_params={"n": n},
    ))
    return result.rejected, result.mean_waiting


def search(seeds: int, device: str = "XC2S15",
           n: int = 40) -> list[tuple[int, int, float]]:
    """Score every seed in ``range(seeds)``; returns rows sorted
    worst-first as ``(seed, rejections, mean_waiting)``."""
    rows = []
    for seed in range(seeds):
        rejected, waiting = score_seed(seed, device=device, n=n)
        rows.append((seed, rejected, waiting))
    rows.sort(key=lambda row: (-row[1], -row[2], row[0]))
    return rows


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; prints the ranked seeds, worst first."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=64, metavar="N",
                        help="sweep seeds 0..N-1 (default 64)")
    parser.add_argument("--device", default="XC2S15",
                        help="reference device (default XC2S15)")
    parser.add_argument("--tasks", type=int, default=40, metavar="N",
                        help="stream length per run (default 40)")
    parser.add_argument("--top", type=int, default=10, metavar="K",
                        help="show the K worst seeds (default 10)")
    args = parser.parse_args(argv)
    rows = search(args.seeds, device=args.device, n=args.tasks)
    print(f"{'seed':>6} {'rejected':>9} {'mean_waiting':>13}")
    for seed, rejected, waiting in rows[:args.top]:
        print(f"{seed:>6} {rejected:>9} {waiting:>13.4f}")
    worst = rows[0]
    print(f"\nworst seed: {worst[0]} "
          f"({worst[1]} rejections, mean waiting {worst[2]:.4f} s)")
    print("pin it as repro.sched.workload.ADVERSARIAL_SEED and update "
          "tests/test_adversarial.py if it changed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
