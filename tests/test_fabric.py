"""Unit tests for fabric occupancy and cell placement."""

import pytest

from repro.device.clb import CellMode, LogicCellConfig
from repro.device.fabric import FREE, Fabric, FabricError
from repro.device.geometry import CellCoord, ClbCoord, Rect
from repro.device.devices import device, synthetic_device


@pytest.fixture
def fabric():
    return Fabric(device("XCV200"))


class TestRegions:
    def test_allocate_and_free(self, fabric):
        rect = Rect(0, 0, 4, 4)
        fabric.allocate_region(rect, 7)
        assert fabric.occupant(ClbCoord(3, 3)) == 7
        assert not fabric.region_is_free(rect)
        fabric.free_region(rect, 7)
        assert fabric.region_is_free(rect)

    def test_double_allocation_rejected(self, fabric):
        fabric.allocate_region(Rect(0, 0, 2, 2), 1)
        with pytest.raises(FabricError):
            fabric.allocate_region(Rect(1, 1, 2, 2), 2)

    def test_nonpositive_owner_rejected(self, fabric):
        with pytest.raises(ValueError):
            fabric.allocate_region(Rect(0, 0, 1, 1), FREE)

    def test_free_with_wrong_owner_rejected(self, fabric):
        fabric.allocate_region(Rect(0, 0, 2, 2), 1)
        with pytest.raises(FabricError):
            fabric.free_region(Rect(0, 0, 2, 2), owner=2)

    def test_out_of_bounds_region_not_free(self, fabric):
        assert not fabric.region_is_free(Rect(27, 41, 2, 2))

    def test_utilization(self, fabric):
        assert fabric.utilization() == 0.0
        fabric.allocate_region(Rect(0, 0, 28, 21), 1)
        assert fabric.utilization() == pytest.approx(0.5)

    def test_owners_and_footprint(self, fabric):
        rect = Rect(3, 5, 4, 6)
        fabric.allocate_region(rect, 9)
        assert fabric.owners() == {9}
        assert fabric.footprint(9) == rect
        assert fabric.footprint(1) is None


class TestMoveRegion:
    def test_move_to_free_space(self, fabric):
        src = Rect(0, 0, 3, 3)
        fabric.allocate_region(src, 5)
        fabric.place_cell(CellCoord(0, 0, 0), LogicCellConfig(lut=0x1234))
        dst = Rect(10, 10, 3, 3)
        fabric.move_region(src, dst, 5)
        assert fabric.region_is_free(src)
        assert fabric.occupant(ClbCoord(10, 10)) == 5
        moved = fabric.cell_config(CellCoord(10, 10, 0))
        assert moved.lut == 0x1234 and moved.used

    def test_overlapping_move(self, fabric):
        src = Rect(0, 0, 2, 4)
        fabric.allocate_region(src, 3)
        dst = Rect(0, 2, 2, 4)
        fabric.move_region(src, dst, 3)
        assert fabric.footprint(3) == dst

    def test_move_onto_other_owner_rejected(self, fabric):
        fabric.allocate_region(Rect(0, 0, 2, 2), 1)
        fabric.allocate_region(Rect(0, 4, 2, 2), 2)
        with pytest.raises(FabricError):
            fabric.move_region(Rect(0, 0, 2, 2), Rect(0, 4, 2, 2), 1)

    def test_shape_change_rejected(self, fabric):
        fabric.allocate_region(Rect(0, 0, 2, 2), 1)
        with pytest.raises(FabricError):
            fabric.move_region(Rect(0, 0, 2, 2), Rect(5, 5, 4, 1), 1)


class TestCells:
    def test_place_and_vacate(self, fabric):
        site = CellCoord(2, 3, 1)
        fabric.place_cell(site, LogicCellConfig(mode=CellMode.FF_FREE_CLOCK))
        assert fabric.cell_config(site).used
        fabric.vacate_cell(site)
        assert not fabric.cell_config(site).used

    def test_double_place_rejected(self, fabric):
        site = CellCoord(0, 0, 0)
        fabric.place_cell(site, LogicCellConfig())
        with pytest.raises(ValueError):
            fabric.place_cell(site, LogicCellConfig())

    def test_find_free_cell_near_prefers_close(self, fabric):
        near = ClbCoord(5, 5)
        site = fabric.find_free_cell_near(near)
        assert site is not None
        assert site.clb.manhattan(near) == 0

    def test_find_free_cell_skips_occupied(self, fabric):
        near = ClbCoord(5, 5)
        for k in range(4):
            fabric.place_cell(CellCoord(5, 5, k), LogicCellConfig())
        site = fabric.find_free_cell_near(near)
        assert site is not None
        assert site.clb != near
        assert site.clb.manhattan(near) == 1

    def test_find_free_cell_respects_max_distance(self):
        tiny = Fabric(synthetic_device(1, 3))
        for col in range(3):
            for k in range(4):
                tiny.place_cell(CellCoord(0, col, k), LogicCellConfig())
        assert tiny.find_free_cell_near(ClbCoord(0, 0), max_distance=2) is None

    def test_lut_ram_columns(self, fabric):
        fabric.place_cell(
            CellCoord(4, 17, 0), LogicCellConfig(mode=CellMode.LUT_RAM)
        )
        assert fabric.lut_ram_columns() == {17}
