"""Tests for the on-line concurrent testing extension (reference [8])."""

import pytest

from repro.device.devices import device, synthetic_device
from repro.device.fabric import Fabric
from repro.device.geometry import CellCoord, ClbCoord
from repro.core.active_replication import (
    ActiveReplicationTester,
    StuckAtFault,
    TEST_LUTS,
)
from repro.core.procedure import RelocationVeto
from repro.core.relocation import make_lockstep_engine
from repro.netlist import library as lib
from repro.netlist.synth import place


def build(circuit=None, origin=None):
    fabric = Fabric(device("XCV200"))
    design = place(circuit or lib.counter(4), fabric, owner=1, origin=origin)
    engine, checker = make_lockstep_engine(design)
    return ActiveReplicationTester(engine), design, checker


class TestBist:
    def test_healthy_cell_passes(self):
        tester, design, _ = build()
        free_site = CellCoord(20, 20, 0)
        result = tester.test_cell(free_site)
        assert result.tested and not result.faulty

    def test_stuck_at_zero_detected(self):
        tester, design, _ = build()
        site = CellCoord(20, 20, 1)
        tester.inject_fault(StuckAtFault(site, 0))
        assert tester.test_cell(site).faulty

    def test_stuck_at_one_detected(self):
        tester, design, _ = build()
        site = CellCoord(21, 21, 2)
        tester.inject_fault(StuckAtFault(site, 1))
        assert tester.test_cell(site).faulty

    def test_occupied_cell_rejected(self):
        tester, design, _ = build()
        occupied = design.site_of("b0")
        with pytest.raises(RelocationVeto, match="in use"):
            tester.test_cell(occupied)

    def test_fault_value_validated(self):
        with pytest.raises(ValueError):
            StuckAtFault(CellCoord(0, 0, 0), 2)

    def test_test_luts_cover_both_polarities(self):
        assert 0x0000 in TEST_LUTS and 0xFFFF in TEST_LUTS


class TestRotation:
    def test_free_clbs_tested_without_relocation(self):
        tester, design, _ = build(origin=ClbCoord(0, 0))
        free_clbs = [ClbCoord(10, c) for c in range(5)]
        report = tester.rotate(free_clbs)
        assert report.clbs_tested == 5
        assert report.cells_tested == 20
        assert report.relocations == []

    def test_occupied_clbs_vacated_transparently(self):
        tester, design, checker = build(origin=ClbCoord(0, 0))
        for _ in range(4):
            checker.step()
        occupied = sorted({s.clb for s in design.placement.values()})
        report = tester.rotate(occupied)
        for _ in range(12):
            checker.step()
        assert report.clbs_tested == len(occupied)
        assert report.relocations  # live cells were moved
        assert report.transparent
        assert checker.clean  # the counter never noticed

    def test_faults_found_under_live_circuit(self):
        tester, design, checker = build(origin=ClbCoord(0, 0))
        victim = design.site_of("b1")
        tester.inject_fault(StuckAtFault(victim, 0))
        report = tester.rotate([victim.clb])
        assert any(f.site == victim for f in report.detected)
        assert checker.clean

    def test_coverage_accumulates(self):
        tester, design, _ = build()
        assert tester.coverage() == 0.0
        tester.rotate([ClbCoord(15, c) for c in range(10)])
        assert tester.coverage() == pytest.approx(10 / 1176)

    def test_already_tested_skipped(self):
        tester, design, _ = build()
        clbs = [ClbCoord(15, 0)]
        first = tester.rotate(clbs)
        second = tester.rotate(clbs)
        assert first.clbs_tested == 1
        assert second.clbs_tested == 0

    def test_max_clbs_budget(self):
        tester, design, _ = build()
        report = tester.rotate(max_clbs=7)
        assert report.clbs_tested == 7

    def test_full_column_rotation(self):
        tester, design, _ = build(origin=ClbCoord(0, 0))
        column = [ClbCoord(r, 30) for r in range(28)]
        report = tester.rotate(column)
        assert report.clbs_tested == 28
        assert report.cells_tested == 28 * 4
