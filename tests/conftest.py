"""Shared test configuration: hypothesis profiles.

Two profiles, selected with ``HYPOTHESIS_PROFILE`` (default ``dev``):

* ``dev`` — local development: random examples, no deadline (CI runners
  and laptops differ too much for per-example timing to be a signal);
* ``ci`` — the dedicated slow-marker CI job: derandomized (every run
  checks the same example sequence, so a red job is reproducible) and
  with a fixed example budget.
"""

import os

from hypothesis import settings

settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci", derandomize=True, max_examples=60, deadline=None
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
