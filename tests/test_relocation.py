"""Integration tests for the dynamic relocation engine.

These are the reproduction's equivalent of the paper's XCV200
experiments: live circuits keep running, in lockstep with a golden
reference, while cells are relocated; transparency means zero output
mismatches and zero drive conflicts.
"""

import random

import pytest

from repro.device.clb import CellMode, LogicCellConfig
from repro.device.fabric import Fabric
from repro.device.devices import device
from repro.device.geometry import CellCoord
from repro.core.procedure import RelocationVeto, StepKind
from repro.core.relocation import RelocationEngine, make_lockstep_engine
from repro.netlist import library as lib
from repro.netlist.itc99 import generate
from repro.netlist.simulator import CycleSimulator
from repro.netlist.synth import place


def build(circuit, stimulus=None):
    fabric = Fabric(device("XCV200"))
    design = place(circuit, fabric, owner=1)
    engine, checker = make_lockstep_engine(design, stimulus=stimulus)
    return design, engine, checker


class TestFreeRunningClock:
    def test_transparent_relocation(self):
        design, engine, checker = build(lib.counter(4))
        for _ in range(5):
            checker.step()
        report = engine.relocate("b2")
        for _ in range(20):
            checker.step()
        assert report.transparent
        assert checker.clean

    def test_relocate_every_cell_one_at_a_time(self):
        design, engine, checker = build(lib.counter(4))
        for name in list(design.circuit.cells):
            if design.circuit.cells[name].sequential:
                engine.relocate(name)
        for _ in range(16):
            checker.step()
        assert checker.clean

    def test_cell_lands_at_destination(self):
        design, engine, checker = build(lib.counter(4))
        dst = CellCoord(20, 20, 0)
        report = engine.relocate("b0", dst)
        assert design.site_of("b0") == dst
        assert report.dst == dst

    def test_source_site_freed(self):
        design, engine, checker = build(lib.counter(4))
        src = design.site_of("b0")
        engine.relocate("b0")
        assert not design.fabric.cell_config(src).used

    def test_relocation_takes_milliseconds(self):
        design, engine, checker = build(lib.counter(4))
        report = engine.relocate("b1")
        assert 0.001 < report.total_seconds < 0.1

    def test_repeated_relocation_of_same_cell(self):
        design, engine, checker = build(lib.lfsr4())
        for _ in range(3):
            engine.relocate("r1")
        for _ in range(15):
            checker.step()
        assert checker.clean


class TestCombinational:
    def test_transparent_relocation(self):
        rng = random.Random(5)
        stim = lambda cyc: {
            "a": rng.randint(0, 1), "b": rng.randint(0, 1),
            "c": rng.randint(0, 1),
        }
        design, engine, checker = build(lib.majority_voter(), stim)
        for _ in range(4):
            checker.step(stim(0))
        report = engine.relocate("ab")
        for _ in range(10):
            checker.step(stim(0))
        assert report.transparent and checker.clean


class TestGatedClock:
    def _stim(self, seed=42):
        rng = random.Random(seed)
        return lambda cyc: {"en": rng.randint(0, 1)}

    def test_aux_circuit_keeps_coherency_ce_toggling(self):
        stim = self._stim()
        design, engine, checker = build(lib.gated_counter(4), stim)
        for _ in range(6):
            checker.step(stim(0))
        report = engine.relocate("b1")
        for _ in range(24):
            checker.step(stim(0))
        assert report.transparent and checker.clean

    def test_aux_circuit_with_ce_held_low(self):
        design, engine, checker = build(
            lib.gated_counter(3), lambda c: {"en": 0}
        )
        # Build real state first, then freeze CE.
        for _ in range(5):
            checker.step({"en": 1})
        for _ in range(2):
            checker.step({"en": 0})
        report = engine.relocate("b2")
        for _ in range(5):
            checker.step({"en": 0})
        for _ in range(10):
            checker.step({"en": 1})
        assert report.transparent and checker.clean

    def test_naive_copy_fails_with_ce_low(self):
        design, engine, checker = build(
            lib.gated_counter(3), lambda c: {"en": 0}
        )
        for _ in range(3):
            checker.step({"en": 1})
        report = engine.relocate("b1", use_aux=False)
        for _ in range(5):
            checker.step({"en": 1})
        assert not report.transparent or checker.mismatches

    def test_naive_copy_succeeds_with_ce_high(self):
        design, engine, checker = build(
            lib.gated_counter(3), lambda c: {"en": 1}
        )
        for _ in range(3):
            checker.step({"en": 1})
        report = engine.relocate("b1", use_aux=False)
        for _ in range(10):
            checker.step({"en": 1})
        assert report.transparent and checker.clean

    def test_aux_clb_freed_afterwards(self):
        design, engine, checker = build(lib.gated_counter(3), self._stim())
        report = engine.relocate("b0")
        assert report.aux is not None
        assert design.fabric.clb(report.aux).is_free

    def test_aux_steps_present_in_trace(self):
        design, engine, checker = build(lib.gated_counter(3), self._stim())
        report = engine.relocate("b0")
        kinds = [t.step.kind for t in report.steps]
        assert StepKind.CONNECT_AUX in kinds
        assert StepKind.ACTIVATE_CONTROLS in kinds
        assert kinds.index(StepKind.WAIT_CAPTURE) < kinds.index(
            StepKind.PARALLEL_OUTPUTS
        )


class TestLatch:
    def test_transparent_relocation(self):
        rng = random.Random(9)
        stim = lambda cyc: {"din": rng.randint(0, 1), "g": rng.randint(0, 1)}
        design, engine, checker = build(lib.latch_pipeline(3), stim)
        for _ in range(5):
            checker.step(stim(0))
        report = engine.relocate("l1")
        for _ in range(20):
            checker.step(stim(0))
        assert report.transparent and checker.clean


class TestVetoes:
    def test_unknown_cell(self):
        design, engine, checker = build(lib.counter(2))
        with pytest.raises(RelocationVeto):
            engine.relocate("nonexistent")

    def test_occupied_destination(self):
        design, engine, checker = build(lib.counter(4))
        dst = design.site_of("b1")
        with pytest.raises(RelocationVeto, match="occupied"):
            engine.relocate("b0", dst)

    def test_lut_ram_column_veto(self):
        design, engine, checker = build(lib.counter(4))
        # Park a LUT/RAM in the destination column.
        ram_site = CellCoord(25, design.region.col, 0)
        design.fabric.place_cell(
            ram_site, LogicCellConfig(mode=CellMode.LUT_RAM)
        )
        dst = CellCoord(10, design.region.col, 3)
        with pytest.raises(RelocationVeto, match="LUT/RAM"):
            engine.relocate("b0", dst)

    def test_bad_cycles_per_step(self):
        design, _, __ = build(lib.counter(2))
        sim = CycleSimulator(design.circuit)
        with pytest.raises(ValueError):
            RelocationEngine(design, sim, cycles_per_config_step=0)


class TestItc99Campaign:
    def test_b01_full_campaign_gated(self):
        """Relocate several cells of an ITC'99-class circuit (half its
        flip-flops gated) under random stimulus — the paper's experiment
        in miniature."""
        circuit = generate("b01", seed=3, gated_fraction=0.5)
        rng = random.Random(1)
        stim = lambda cyc: {pi: rng.randint(0, 1) for pi in circuit.inputs}
        fabric = Fabric(device("XCV200"))
        design = place(circuit, fabric, owner=1)
        engine, checker = make_lockstep_engine(design, stimulus=stim)
        for _ in range(10):
            checker.step(stim(0))
        moved = 0
        for name, cell in list(circuit.cells.items()):
            if cell.sequential and moved < 5:
                engine.relocate(name)
                moved += 1
        for _ in range(30):
            checker.step(stim(0))
        assert moved == 5
        assert checker.clean
