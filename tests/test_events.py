"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sched.events import EventQueue, SequentialResource


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        log = []
        q.at(2.0, lambda: log.append("b"))
        q.at(1.0, lambda: log.append("a"))
        q.at(3.0, lambda: log.append("c"))
        q.run()
        assert log == ["a", "b", "c"]
        assert q.now == 3.0

    def test_fifo_for_simultaneous_events(self):
        q = EventQueue()
        log = []
        q.at(1.0, lambda: log.append(1))
        q.at(1.0, lambda: log.append(2))
        q.run()
        assert log == [1, 2]

    def test_after_is_relative(self):
        q = EventQueue()
        times = []
        q.at(5.0, lambda: q.after(2.0, lambda: times.append(q.now)))
        q.run()
        assert times == [7.0]

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.at(5.0, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().after(-1.0, lambda: None)

    def test_cancel(self):
        q = EventQueue()
        log = []
        handle = q.at(1.0, lambda: log.append("x"))
        handle.cancel()
        q.run()
        assert log == []
        assert handle.cancelled

    def test_run_until_stops_early(self):
        q = EventQueue()
        log = []
        q.at(1.0, lambda: log.append("a"))
        q.at(10.0, lambda: log.append("b"))
        q.run(until=5.0)
        assert log == ["a"]
        assert q.now == 5.0
        q.run()
        assert log == ["a", "b"]

    def test_event_budget_guard(self):
        q = EventQueue()

        def loop():
            q.after(0.0, loop)

        q.at(0.0, loop)
        with pytest.raises(RuntimeError, match="budget"):
            q.run(max_events=100)

    def test_pending_counts_live_events(self):
        q = EventQueue()
        h1 = q.at(1.0, lambda: None)
        q.at(2.0, lambda: None)
        h1.cancel()
        assert q.pending == 1

    def test_pending_tracks_cancel_fire_and_double_cancel(self):
        q = EventQueue()
        handles = [q.at(float(i + 1), lambda: None) for i in range(4)]
        handles[0].cancel()
        handles[0].cancel()  # double cancel counts once
        assert q.pending == 3
        q.run(until=2.5)  # fires #2 and drains the cancelled #1
        assert q.pending == 2
        handles[1].cancel()  # already fired: no-op
        assert q.pending == 2
        q.run()
        assert q.pending == 0

    def test_lazy_compaction_evicts_tombstones(self):
        q = EventQueue()
        live = []
        keep = [q.at(100.0 + i, lambda i=i: live.append(i))
                for i in range(4)]
        doomed = [q.at(1.0 + i, lambda: live.append(-1))
                  for i in range(28)]
        for h in doomed:
            h.cancel()
        # Tombstones outnumbered live entries mid-cancel: the heap must
        # have been compacted (it can retain tombstones buried after
        # the last rebuild), with pending unchanged throughout.
        assert len(q._heap) < len(keep) + len(doomed)
        assert len(q._heap) - q._tombstones == 4
        assert q.pending == 4
        q.run()
        assert live == [0, 1, 2, 3]
        assert not any(h.cancelled for h in keep)

    def test_compaction_preserves_order_and_interleaving(self):
        q = EventQueue()
        log = []
        handles = []
        for i in range(40):
            handles.append(q.at(1.0 + i * 0.5, lambda i=i: log.append(i)))
        for i in range(0, 40, 2):
            handles[i].cancel()
        q.run()
        assert log == list(range(1, 40, 2))


class TestSequentialResource:
    def test_serialises_requests(self):
        q = EventQueue()
        port = SequentialResource(q)
        s1, e1 = port.acquire(1.0)
        s2, e2 = port.acquire(2.0)
        assert (s1, e1) == (0.0, 1.0)
        assert (s2, e2) == (1.0, 3.0)
        assert port.busy_seconds == 3.0

    def test_idle_gap_respected(self):
        q = EventQueue()
        port = SequentialResource(q)
        port.acquire(1.0)
        q.at(5.0, lambda: None)
        q.run()
        s, e = port.acquire(1.0)
        assert s == 5.0 and e == 6.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SequentialResource(EventQueue()).acquire(-1.0)
