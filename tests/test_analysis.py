"""Unit tests for analysis helpers (stats + reporting)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.reporting import Table, series
from repro.analysis.stats import (
    confidence_interval_95,
    mean,
    median,
    percentile,
    stddev,
)


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert median([]) == 0.0

    def test_stddev(self):
        assert stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.138, abs=1e-3
        )
        assert stddev([1.0]) == 0.0

    def test_percentile_bounds(self):
        data = [float(i) for i in range(11)]
        assert percentile(data, 0) == 0.0
        assert percentile(data, 100) == 10.0
        assert percentile(data, 50) == 5.0

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_confidence_interval(self):
        lo, hi = confidence_interval_95([5.0] * 10)
        assert lo == hi == 5.0
        lo, hi = confidence_interval_95([1.0, 2.0, 3.0, 4.0, 5.0])
        assert lo < 3.0 < hi

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_mean_between_min_max(self, values):
        assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6

    @given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=30))
    def test_median_is_50th_percentile(self, values):
        assert median(values) == pytest.approx(percentile(values, 50))


class TestTable:
    def test_render_alignment(self):
        t = Table("Demo", ["name", "value"])
        t.add("alpha", 1.23456)
        t.add("b", "x")
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "alpha" in text and "1.235" in text
        # All data rows share the same width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_row_arity_enforced(self):
        t = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_series_builder(self):
        t = series("S", [1, 2], [10, 20], x_label="x", y_label="y")
        assert "10" in t.render()
        with pytest.raises(ValueError):
            series("S", [1], [1, 2])

    def test_show_prints(self, capsys):
        t = Table("T", ["h"])
        t.add("v")
        t.show()
        assert "T" in capsys.readouterr().out
