"""Fine-grained tests of relocation engine internals and reports."""

import random

import pytest

from repro.core.cost import CostModel, CostParameters
from repro.core.procedure import RelocationVeto, StepKind
from repro.core.relocation import (
    RelocationEngine,
    make_lockstep_engine,
)
from repro.device.clb import CellMode
from repro.device.devices import device, synthetic_device
from repro.device.fabric import Fabric
from repro.device.geometry import CellCoord, ClbCoord
from repro.netlist import library as lib
from repro.netlist.simulator import CycleSimulator
from repro.netlist.synth import place


def build(circuit, stimulus=None, **engine_kwargs):
    fabric = Fabric(device("XCV200"))
    design = place(circuit, fabric, owner=1)
    engine, checker = make_lockstep_engine(design, stimulus=stimulus)
    return design, engine, checker


class TestReports:
    def test_step_traces_cover_plan(self):
        design, engine, checker = build(lib.counter(4))
        report = engine.relocate("b0")
        kinds = [t.step.kind for t in report.steps]
        assert kinds[0] is StepKind.COPY_CONFIG
        assert kinds[-1] is StepKind.DISCONNECT_ORIG_INPUTS
        # Cycles advance monotonically through the trace.
        starts = [t.start_cycle for t in report.steps]
        assert starts == sorted(starts)

    def test_wait_steps_cost_no_frames(self):
        design, engine, checker = build(lib.counter(4))
        report = engine.relocate("b0")
        for trace in report.steps:
            if trace.step.is_wait:
                assert trace.frames == 0
                assert trace.seconds == 0.0
            else:
                assert trace.frames > 0

    def test_report_str_mentions_sites(self):
        design, engine, checker = build(lib.counter(4))
        report = engine.relocate("b0", CellCoord(9, 9, 1))
        text = str(report)
        assert "R9C9.1" in text
        assert "transparent" in text

    def test_total_seconds_sums_steps(self):
        design, engine, checker = build(lib.counter(4))
        report = engine.relocate("b1")
        assert report.total_seconds == pytest.approx(
            sum(t.seconds for t in report.steps)
        )

    def test_custom_cost_model_respected(self):
        fabric = Fabric(device("XCV200"))
        design = place(lib.counter(4), fabric, owner=1)
        fast = CostModel(
            device("XCV200"), CostParameters(granularity="frame")
        )
        sim = CycleSimulator(design.circuit)
        engine = RelocationEngine(design, sim, cost_model=fast)
        report = engine.relocate("b0")
        assert report.total_seconds < 0.01  # frame granularity is cheap


class TestDestinationSelection:
    def test_find_destination_prefers_nearby(self):
        design, engine, checker = build(lib.counter(4))
        src = design.site_of("b0")
        dst = engine.find_destination("b0")
        assert dst.clb.manhattan(src.clb) <= 1

    def test_find_destination_respects_max_distance(self):
        # Fill the whole array so nothing is free.
        fabric = Fabric(synthetic_device(2, 2))
        from repro.device.clb import LogicCellConfig

        design = place(lib.toggle(), fabric, owner=1)
        for r in range(2):
            for c in range(2):
                clb = fabric.clb(ClbCoord(r, c))
                for k in clb.free_cell_indices():
                    clb.place_cell(k, LogicCellConfig())
        sim = CycleSimulator(design.circuit)
        engine = RelocationEngine(design, sim)
        with pytest.raises(RelocationVeto, match="no free cell"):
            engine.find_destination("q", max_distance=1)

    def test_explicit_destination_wins(self):
        design, engine, checker = build(lib.counter(4))
        target = CellCoord(20, 30, 2)
        report = engine.relocate("b2", target)
        assert report.dst == target


class TestStimulusPlumbing:
    def test_stimulus_called_with_cycle_number(self):
        seen = []

        def stim(cycle):
            seen.append(cycle)
            return {}

        design, engine, checker = build(lib.counter(4), stimulus=stim)
        report = engine.relocate("b0")
        assert seen == sorted(seen)
        # One stimulus call per advanced cycle of the procedure.
        assert len(seen) == report.total_cycles

    def test_lockstep_feeds_both_simulators(self):
        rng = random.Random(0)
        stim = lambda cyc: {"en": rng.randint(0, 1)}
        design, engine, checker = build(lib.gated_counter(3), stimulus=stim)
        engine.relocate("b0")
        assert checker.dut.cycle == checker.golden.cycle


class TestNetlistCleanliness:
    def test_no_replica_residue_after_relocation(self):
        design, engine, checker = build(lib.gated_counter(3),
                                        stimulus=lambda c: {"en": 1})
        names_before = set(design.circuit.cells)
        engine.relocate("b1")
        names_after = set(design.circuit.cells)
        assert names_before == names_after  # replica fully recomposed
        assert not any("~" in n for n in names_after)

    def test_no_parallel_groups_left(self):
        design, engine, checker = build(lib.counter(4))
        engine.relocate("b2")
        assert design.circuit.parallel_drivers == {}

    def test_circuit_validates_after_each_relocation(self):
        design, engine, checker = build(lib.counter(4))
        for name in ("b0", "b1", "c2"):
            engine.relocate(name)
            design.circuit.validate()

    def test_placement_matches_fabric_occupied_cells(self):
        design, engine, checker = build(lib.counter(8))
        engine.relocate("b3")
        engine.relocate("b5")
        for name, site in design.placement.items():
            assert design.fabric.cell_config(site).used, name

    def test_state_registry_has_no_orphans(self):
        design, engine, checker = build(lib.gated_counter(3),
                                        stimulus=lambda c: {"en": 1})
        engine.relocate("b0")
        sim = checker.dut
        for name in sim.state:
            assert name in design.circuit.cells
