"""Property-based tests (hypothesis) on cross-module invariants.

These encode the paper's guarantees as properties over randomly
generated circuits, placements and relocation sequences — the strongest
form of the "no loss of information or functional disturbance" claim the
reproduction can make.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

pytestmark = pytest.mark.slow

from repro.core.cost import CostModel, CostParameters
from repro.core.procedure import build_plan
from repro.core.relocation import make_lockstep_engine
from repro.device.bitstream import decode_far, encode_far
from repro.device.clb import CellMode
from repro.device.config_memory import ColumnKind, ConfigMemory, FrameAddress
from repro.device.devices import device, synthetic_device
from repro.device.fabric import Fabric
from repro.device.geometry import ClbCoord
from repro.device.routing import RoutingGraph, path_channels
from repro.netlist import library as lib
from repro.netlist.itc99 import generate
from repro.netlist.synth import place
from repro.placement.compaction import apply_moves, footprints, ordered_compaction
from repro.placement.free_space import maximal_empty_rectangles
from repro.placement.metrics import fragmentation_index

RELAXED = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRelocationTransparency:
    """Any sequence of relocations of any cells is transparent."""

    @RELAXED
    @given(
        seed=st.integers(0, 10 ** 6),
        n_moves=st.integers(1, 4),
    )
    def test_random_relocation_sequences_on_counter(self, seed, n_moves):
        rng = random.Random(seed)
        fabric = Fabric(device("XCV200"))
        design = place(lib.counter(4), fabric, owner=1)
        engine, checker = make_lockstep_engine(design)
        for _ in range(3):
            checker.step()
        names = [n for n, c in design.circuit.cells.items()]
        for _ in range(n_moves):
            engine.relocate(rng.choice(list(design.circuit.cells)))
        for _ in range(16 + 3):
            checker.step()
        assert checker.clean

    @RELAXED
    @given(
        seed=st.integers(0, 10 ** 6),
        gated=st.floats(0.0, 1.0),
    )
    def test_random_itc_cells_relocate_transparently(self, seed, gated):
        circuit = generate("b02", seed=seed % 97, gated_fraction=gated)
        rng = random.Random(seed)
        stim = lambda cyc: {pi: rng.randint(0, 1) for pi in circuit.inputs}
        fabric = Fabric(device("XCV200"))
        design = place(circuit, fabric, owner=1)
        engine, checker = make_lockstep_engine(design, stimulus=stim)
        for _ in range(4):
            checker.step(stim(0))
        sequential = [n for n, c in circuit.cells.items() if c.sequential]
        engine.relocate(rng.choice(sequential))
        for _ in range(12):
            checker.step(stim(0))
        assert checker.clean


class TestPlanProperties:
    @RELAXED
    @given(
        src=st.integers(0, 40),
        dst=st.integers(0, 40),
        mode=st.sampled_from(
            [CellMode.COMBINATIONAL, CellMode.FF_FREE_CLOCK,
             CellMode.FF_GATED_CLOCK, CellMode.LATCH]
        ),
    )
    def test_plans_always_validate(self, src, dst, mode):
        aux = min(dst + 1, 41)
        plan = build_plan(
            "c", mode, {src, dst}, src_col=src, dst_col=dst,
            aux_col=aux if mode in (CellMode.FF_GATED_CLOCK,
                                    CellMode.LATCH) else None,
            ce_col=src,
        )
        plan.validate_order()  # must not raise
        assert plan.touched_columns >= {src, dst}

    @RELAXED
    @given(
        src=st.integers(0, 20),
        dist1=st.integers(0, 10),
        dist2=st.integers(11, 21),
    )
    def test_cost_monotonic_in_distance(self, src, dist1, dist2):
        model = CostModel(device("XCV200"))

        def cost(dist):
            dst = src + dist
            plan = build_plan(
                "c", CellMode.FF_FREE_CLOCK,
                set(range(src, dst + 1)), src_col=src, dst_col=dst,
            )
            return model.plan_cost(plan).total_seconds

        assert cost(dist1) <= cost(dist2)


class TestConfigMemoryProperties:
    @RELAXED
    @given(
        major=st.integers(0, 41),
        minor=st.integers(0, 47),
        payload=st.binary(min_size=72, max_size=72),
    )
    def test_write_read_roundtrip(self, major, minor, payload):
        memory = ConfigMemory(device("XCV200"))
        addr = FrameAddress(ColumnKind.CLB, major, minor)
        memory.write_frame(addr, payload)
        assert memory.read_frame(addr) == payload

    @RELAXED
    @given(
        kind=st.sampled_from(list(ColumnKind)),
        major=st.integers(0, 200),
        minor=st.integers(0, 500),
    )
    def test_far_codec_roundtrip(self, kind, major, minor):
        addr = FrameAddress(kind, major % 64, minor % 64)
        assert decode_far(encode_far(addr)) == addr

    @RELAXED
    @given(st.lists(
        st.tuples(st.integers(0, 41), st.integers(0, 47)),
        min_size=1, max_size=20, unique=True,
    ))
    def test_snapshot_restore_inverts_any_writes(self, writes):
        memory = ConfigMemory(device("XCV200"))
        snap = memory.snapshot()
        for major, minor in writes:
            memory.write_frame(
                FrameAddress(ColumnKind.CLB, major, minor),
                b"\xA5" * memory.frame_bytes,
            )
        memory.restore(snap)
        fresh = ConfigMemory(device("XCV200"))
        assert memory == fresh


class TestRoutingProperties:
    @RELAXED
    @given(
        r1=st.integers(0, 27), c1=st.integers(0, 41),
        r2=st.integers(0, 27), c2=st.integers(0, 41),
    )
    def test_routes_are_contiguous_and_terminate(self, r1, c1, r2, c2):
        graph = RoutingGraph(device("XCV200"))
        path = graph.route(ClbCoord(r1, c1), ClbCoord(r2, c2))
        assert path.is_contiguous()
        assert path.sink == ClbCoord(r2, c2)

    @RELAXED
    @given(
        r1=st.integers(0, 27), c1=st.integers(0, 41),
        r2=st.integers(0, 27), c2=st.integers(0, 41),
    )
    def test_allocate_release_is_identity(self, r1, c1, r2, c2):
        graph = RoutingGraph(device("XCV200"))
        path = graph.route_and_allocate(ClbCoord(r1, c1), ClbCoord(r2, c2))
        graph.release(path)
        assert graph.total_wires_used() == 0

    @RELAXED
    @given(
        r1=st.integers(0, 27), c1=st.integers(0, 41),
        r2=st.integers(0, 27), c2=st.integers(0, 41),
    )
    def test_disjoint_replica_shares_no_channel(self, r1, c1, r2, c2):
        graph = RoutingGraph(device("XCV200"))
        a, b = ClbCoord(r1, c1), ClbCoord(r2, c2)
        original = graph.route_and_allocate(a, b)
        replica = graph.route(a, b, avoid=path_channels(original))
        assert not (path_channels(original) & path_channels(replica))


class TestCompactionProperties:
    @RELAXED
    @given(
        seed=st.integers(0, 10 ** 6),
        toward=st.sampled_from(["left", "top"]),
    )
    def test_compaction_preserves_functions(self, seed, toward):
        rng = np.random.RandomState(seed)
        occ = np.zeros((12, 16), dtype=int)
        owner = 1
        for _ in range(6):
            h, w = rng.randint(1, 4), rng.randint(1, 4)
            r = rng.randint(0, 12 - h + 1)
            c = rng.randint(0, 16 - w + 1)
            if (occ[r : r + h, c : c + w] == 0).all():
                occ[r : r + h, c : c + w] = owner
                owner += 1
        moves = ordered_compaction(occ, toward=toward)
        result = apply_moves(occ, moves)
        before, after = footprints(occ), footprints(result)
        assert set(before) == set(after)
        for key in before:
            assert before[key].area == after[key].area
        # Compaction never increases fragmentation... of the whole grid
        # it should not *lose* free area either:
        assert (result == 0).sum() == (occ == 0).sum()

    @RELAXED
    @given(seed=st.integers(0, 10 ** 6))
    def test_mers_are_free_and_maximal(self, seed):
        rng = np.random.RandomState(seed)
        occ = (rng.rand(8, 10) < 0.35).astype(int)
        mers = maximal_empty_rectangles(occ)
        for rect in mers:
            view = occ[rect.row : rect.row_end, rect.col : rect.col_end]
            assert (view == 0).all()
        for i, a in enumerate(mers):
            for j, b in enumerate(mers):
                if i != j:
                    assert not a.contains_rect(b) or a == b

    @RELAXED
    @given(seed=st.integers(0, 10 ** 6))
    def test_fragmentation_index_bounds(self, seed):
        rng = np.random.RandomState(seed)
        occ = (rng.rand(10, 10) < rng.rand()).astype(int)
        assert 0.0 <= fragmentation_index(occ) <= 1.0
