"""Unit tests for fragmentation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.placement.metrics import (
    average_free_rectangle,
    fragmentation_index,
    free_region_count,
    reclaimable_sites,
    satisfiable_fraction,
    utilization,
)


class TestFragmentationIndex:
    def test_empty_grid_zero(self):
        assert fragmentation_index(np.zeros((5, 5), dtype=int)) == 0.0

    def test_full_grid_zero(self):
        assert fragmentation_index(np.ones((5, 5), dtype=int)) == 0.0

    def test_split_space_fragmented(self):
        occ = np.zeros((5, 5), dtype=int)
        occ[:, 2] = 1  # two 5x2 halves: largest rect 10 of 20 free
        assert fragmentation_index(occ) == pytest.approx(0.5)

    def test_checkerboard_highly_fragmented(self):
        occ = np.indices((6, 6)).sum(axis=0) % 2
        assert fragmentation_index(occ) > 0.9

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 8), st.integers(2, 8), st.integers(0, 10 ** 6))
    def test_bounded_zero_one(self, rows, cols, seed):
        rng = np.random.RandomState(seed)
        occ = (rng.rand(rows, cols) < 0.5).astype(int)
        assert 0.0 <= fragmentation_index(occ) <= 1.0


class TestSatisfiableFraction:
    def test_empty_grid_satisfies_fitting_requests(self):
        occ = np.zeros((6, 6), dtype=int)
        assert satisfiable_fraction(occ, [(2, 2), (6, 6)]) == 1.0

    def test_oversized_requests_unsatisfied(self):
        occ = np.zeros((4, 4), dtype=int)
        assert satisfiable_fraction(occ, [(5, 5)]) == 0.0

    def test_mixed(self):
        occ = np.zeros((4, 4), dtype=int)
        occ[:, 2] = 1
        assert satisfiable_fraction(occ, [(4, 2), (4, 3)]) == 0.5

    def test_no_requests(self):
        assert satisfiable_fraction(np.zeros((2, 2), dtype=int), []) == 1.0


class TestFreeRegionCount:
    def test_single_region(self):
        assert free_region_count(np.zeros((3, 3), dtype=int)) == 1

    def test_no_region(self):
        assert free_region_count(np.ones((3, 3), dtype=int)) == 0

    def test_wall_splits_regions(self):
        occ = np.zeros((3, 5), dtype=int)
        occ[:, 2] = 1
        assert free_region_count(occ) == 2

    def test_diagonal_not_connected(self):
        occ = np.ones((2, 2), dtype=int)
        occ[0, 0] = 0
        occ[1, 1] = 0
        assert free_region_count(occ) == 2


class TestOtherMetrics:
    def test_average_free_rectangle(self):
        occ = np.zeros((4, 4), dtype=int)
        assert average_free_rectangle(occ) == 16.0
        assert average_free_rectangle(np.ones((2, 2), dtype=int)) == 0.0

    def test_utilization(self):
        occ = np.zeros((4, 4), dtype=int)
        occ[:2, :] = 3
        assert utilization(occ) == pytest.approx(0.5)

    def test_reclaimable_sites_contiguous_is_zero(self):
        assert reclaimable_sites(np.zeros((4, 4), dtype=int)) == 0
        assert reclaimable_sites(np.ones((4, 4), dtype=int)) == 0

    def test_reclaimable_sites_split_space(self):
        # Free columns 0 and 2-3 of a 4x4: largest free rect is 4x2,
        # the 4-site sliver is what consolidation could reclaim.
        occ = np.zeros((4, 4), dtype=int)
        occ[:, 1] = 7
        assert reclaimable_sites(occ) == 4

    def test_reclaimable_sites_matches_fragmentation_index(self):
        occ = np.zeros((6, 6), dtype=int)
        occ[2:4, 2:4] = 1
        free = int((occ == 0).sum())
        assert reclaimable_sites(occ) == pytest.approx(
            fragmentation_index(occ) * free
        )
