"""Unit tests for the routing graph and router."""

import pytest

from repro.device.devices import device, synthetic_device
from repro.device.geometry import ClbCoord
from repro.device.routing import (
    RoutePath,
    RoutingError,
    RoutingGraph,
    SEGMENT_DELAY_NS,
    Segment,
    WireKind,
    path_channels,
)


@pytest.fixture
def graph():
    return RoutingGraph(device("XCV200"))


class TestTopology:
    def test_bounds(self, graph):
        assert graph.in_bounds(ClbCoord(0, 0))
        assert graph.in_bounds(ClbCoord(27, 41))
        assert not graph.in_bounds(ClbCoord(28, 0))
        assert not graph.in_bounds(ClbCoord(0, -1))

    def test_neighbours_include_hex_jumps(self, graph):
        kinds = {k for _, k in graph.neighbours(ClbCoord(10, 20))}
        assert kinds == {WireKind.SINGLE, WireKind.HEX}

    def test_corner_has_fewer_neighbours(self, graph):
        corner = len(graph.neighbours(ClbCoord(0, 0)))
        middle = len(graph.neighbours(ClbCoord(14, 20)))
        assert corner < middle


class TestRouting:
    def test_route_reaches_sink(self, graph):
        path = graph.route(ClbCoord(0, 0), ClbCoord(5, 5))
        assert path.is_contiguous()
        assert path.source == ClbCoord(0, 0)
        assert path.sink == ClbCoord(5, 5)

    def test_trivial_route(self, graph):
        path = graph.route(ClbCoord(3, 3), ClbCoord(3, 3))
        assert path.segments == []
        assert path.delay_ns == 0.0

    def test_long_route_uses_hex_lines(self, graph):
        path = graph.route(ClbCoord(0, 0), ClbCoord(24, 36))
        kinds = {s.kind for s in path.segments}
        assert WireKind.HEX in kinds

    def test_delay_is_sum_of_segments(self, graph):
        path = graph.route(ClbCoord(0, 0), ClbCoord(0, 7))
        assert path.delay_ns == pytest.approx(
            sum(SEGMENT_DELAY_NS[s.kind] for s in path.segments)
        )

    def test_out_of_bounds_rejected(self, graph):
        with pytest.raises(RoutingError):
            graph.route(ClbCoord(0, 0), ClbCoord(99, 0))

    def test_avoid_set_respected(self, graph):
        first = graph.route(ClbCoord(2, 2), ClbCoord(2, 8))
        avoid = path_channels(first)
        second = graph.route(ClbCoord(2, 2), ClbCoord(2, 8), avoid=avoid)
        assert not (path_channels(second) & avoid)

    def test_columns_cover_span(self, graph):
        path = graph.route(ClbCoord(0, 3), ClbCoord(0, 9))
        assert path.columns() >= {3, 9}


class TestCapacity:
    def test_allocate_then_release_roundtrip(self, graph):
        path = graph.route_and_allocate(ClbCoord(0, 0), ClbCoord(4, 4))
        assert graph.total_wires_used() == len(path.segments)
        graph.release(path)
        assert graph.total_wires_used() == 0

    def test_release_unallocated_rejected(self, graph):
        path = graph.route(ClbCoord(0, 0), ClbCoord(1, 0))
        with pytest.raises(RoutingError):
            graph.release(path)

    def test_channel_exhaustion(self):
        # A 1x2 device has exactly one single channel (each direction).
        tiny = RoutingGraph(
            synthetic_device(1, 2),
            capacity={WireKind.SINGLE: 2, WireKind.HEX: 0},
        )
        a, b = ClbCoord(0, 0), ClbCoord(0, 1)
        tiny.route_and_allocate(a, b)
        tiny.route_and_allocate(a, b)
        with pytest.raises(RoutingError):
            tiny.route_and_allocate(a, b)

    def test_router_avoids_full_channels(self):
        graph = RoutingGraph(
            synthetic_device(3, 3),
            capacity={WireKind.SINGLE: 1, WireKind.HEX: 0},
        )
        a, b = ClbCoord(1, 0), ClbCoord(1, 2)
        first = graph.route_and_allocate(a, b)
        second = graph.route_and_allocate(a, b)
        assert not (path_channels(first) & path_channels(second))

    def test_free_wires_accounting(self, graph):
        a, b = ClbCoord(0, 0), ClbCoord(0, 1)
        before = graph.free_wires(a, b, WireKind.SINGLE)
        graph.allocate(RoutePath(a, b, [Segment(a, b, WireKind.SINGLE)]))
        assert graph.free_wires(a, b, WireKind.SINGLE) == before - 1

    def test_allocate_noncontiguous_rejected(self, graph):
        bogus = RoutePath(
            ClbCoord(0, 0),
            ClbCoord(0, 2),
            [Segment(ClbCoord(0, 1), ClbCoord(0, 2), WireKind.SINGLE)],
        )
        with pytest.raises(RoutingError):
            graph.allocate(bogus)


class TestSegment:
    def test_columns_of_horizontal_hex(self):
        seg = Segment(ClbCoord(0, 2), ClbCoord(0, 8), WireKind.HEX)
        assert list(seg.columns()) == [2, 3, 4, 5, 6, 7, 8]

    def test_columns_of_vertical_single(self):
        seg = Segment(ClbCoord(1, 4), ClbCoord(2, 4), WireKind.SINGLE)
        assert list(seg.columns()) == [4]
