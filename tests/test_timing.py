"""Unit tests for the parallel-path timing analysis (Fig. 6)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.netlist.timing import (
    Transition,
    Waveform,
    merge_parallel_paths,
    square_wave,
)


class TestWaveform:
    def test_value_at(self):
        w = Waveform(0, [Transition(10.0, 1), Transition(20.0, 0)])
        assert w.value_at(5.0) == 0
        assert w.value_at(10.0) == 1
        assert w.value_at(15.0) == 1
        assert w.value_at(25.0) == 0

    def test_redundant_transitions_dropped(self):
        w = Waveform(0, [Transition(1.0, 0), Transition(2.0, 1),
                         Transition(3.0, 1)])
        assert len(w) == 1

    def test_delayed_shifts_edges(self):
        w = Waveform(0, [Transition(10.0, 1)])
        d = w.delayed(5.0)
        assert d.value_at(12.0) == 0
        assert d.value_at(15.0) == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Waveform(0).delayed(-1.0)

    def test_unsorted_transitions_normalised(self):
        w = Waveform(0, [Transition(20.0, 0), Transition(10.0, 1)])
        assert w.value_at(15.0) == 1


class TestSquareWave:
    def test_edges_and_period(self):
        w = square_wave(period=10.0, edges=4)
        assert w.edge_times() == [5.0, 10.0, 15.0, 20.0]

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            square_wave(period=0, edges=2)


class TestMergeParallelPaths:
    def test_equal_delays_no_fuzz(self):
        src = square_wave(period=10.0, edges=6)
        report = merge_parallel_paths(src, 2.0, 2.0)
        assert report.total_fuzz == 0.0
        assert report.fuzz_intervals == []

    def test_fuzz_equals_delay_mismatch_per_edge(self):
        src = square_wave(period=100.0, edges=4)
        report = merge_parallel_paths(src, 2.0, 5.0)
        # Each source edge contributes |5-2| = 3 time units of fuzz.
        assert report.fuzz_per_edge == pytest.approx(3.0)
        assert len(report.fuzz_intervals) == 4
        assert report.total_fuzz == pytest.approx(12.0)

    def test_effective_delay_is_longer_path(self):
        # "The propagation delay associated to the parallel
        # interconnections shall be the longer of the two paths."
        src = square_wave(period=100.0, edges=2)
        report = merge_parallel_paths(src, 7.0, 3.0)
        assert report.effective_delay == 7.0

    def test_sink_settles_to_source_value(self):
        src = Waveform(0, [Transition(10.0, 1)])
        report = merge_parallel_paths(src, 1.0, 4.0)
        sink = report.sink_waveform
        assert sink.value_at(20.0) == 1
        assert sink.value_at(10.5) == 0  # before either arrival

    def test_max_safe_clock(self):
        src = square_wave(period=100.0, edges=2)
        report = merge_parallel_paths(src, 4.0, 6.0)
        assert report.max_safe_clock_hz(setup=4.0) == pytest.approx(0.1)

    def test_no_edges_no_fuzz(self):
        report = merge_parallel_paths(Waveform(1), 1.0, 9.0)
        assert report.total_fuzz == 0.0
        assert report.sink_waveform.value_at(0.0) == 1

    @given(
        st.floats(0.1, 10.0), st.floats(0.1, 10.0),
        st.integers(1, 8),
    )
    def test_fuzz_total_formula(self, d1, d2, edges):
        # With edges spaced far apart, total fuzz = edges * |d1 - d2|.
        src = square_wave(period=1000.0, edges=edges)
        report = merge_parallel_paths(src, d1, d2)
        assert report.total_fuzz == pytest.approx(
            edges * abs(d1 - d2), rel=1e-9, abs=1e-9
        )

    @given(st.floats(0.1, 50.0), st.floats(0.1, 50.0))
    def test_effective_delay_max_property(self, d1, d2):
        src = square_wave(period=1000.0, edges=2)
        report = merge_parallel_paths(src, d1, d2)
        assert report.effective_delay == max(d1, d2)
