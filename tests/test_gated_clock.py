"""Unit tests for the auxiliary relocation circuit model (Fig. 3)."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.core.gated_clock import (
    AuxCircuitState,
    aux_mux,
    coherency_after,
    exhaustive_coherency_check,
    naive_failure_example,
    run_aux_sequence,
    step_aux,
    step_naive,
)


class TestPrimitives:
    @pytest.mark.parametrize(
        "ce,q,comb", itertools.product((0, 1), repeat=3)
    )
    def test_mux_selects_per_paper(self, ce, q, comb):
        # "If this signal is not active, the output of the original CLB FF
        # is applied to the input of the replica CLB FF."
        want = comb if ce else q
        assert aux_mux(ce, q, comb) == want


class TestAuxCoherency:
    def test_exhaustive_proof(self):
        # The central claim, proven over every initial state and every
        # 4-cycle (d, ce) stimulus.
        assert exhaustive_coherency_check(cycles=4)

    def test_ce_inactive_transfers_state(self):
        # CE low: the replica must capture the original's held state.
        state = step_aux(AuxCircuitState(q_orig=1, q_replica=0), d=0, ce=0)
        assert state.coherent
        assert state.q_replica == 1

    def test_ce_active_both_capture_new_data(self):
        state = step_aux(AuxCircuitState(q_orig=0, q_replica=0), d=1, ce=1)
        assert state.coherent
        assert state.q_orig == 1

    def test_ce_toggling_stays_coherent(self):
        stimulus = [(1, 0), (0, 1), (1, 1), (0, 0), (1, 0)]
        state = run_aux_sequence(1, 0, stimulus)
        assert state.coherent

    @given(
        st.integers(0, 1), st.integers(0, 1),
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 1)),
            min_size=1, max_size=12,
        ),
    )
    def test_property_always_coherent_after_first_edge(self, q0, r0, stim):
        verdicts = coherency_after(AuxCircuitState(q0, r0), stim)
        assert all(verdicts)

    def test_controls_inactive_is_plain_clone(self):
        # With relocation control off the replica D falls back to its
        # own combinational output.
        state = step_aux(
            AuxCircuitState(1, 0), d=0, ce=0, ce_control=0, reloc_control=0
        )
        assert state.q_replica == 0  # held: no CE, no forced capture


class TestNaiveFailure:
    def test_documented_example_fails(self):
        initial, stimulus = naive_failure_example()
        verdicts = coherency_after(initial, stimulus, naive=True)
        assert not any(verdicts)

    def test_naive_works_when_ce_always_active(self):
        # The failure needs CE inactivity: with CE high the naive copy is
        # coherent after one edge — which is why free-running-clock
        # circuits do not need the auxiliary circuit.
        verdicts = coherency_after(
            AuxCircuitState(1, 0), [(0, 1), (1, 1)], naive=True
        )
        assert all(verdicts)

    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=8)
    )
    def test_naive_incoherent_while_ce_low(self, ds):
        # Starting incoherent and never enabling CE, the naive copy can
        # never become coherent.
        stim = [(d, 0) for d in ds]
        verdicts = coherency_after(AuxCircuitState(1, 0), stim, naive=True)
        assert not any(verdicts)

    def test_aux_beats_naive_on_same_stimulus(self):
        initial, stimulus = naive_failure_example()
        naive = coherency_after(initial, stimulus, naive=True)
        aux = coherency_after(initial, stimulus, naive=False)
        assert not any(naive)
        assert all(aux)


class TestStepNaive:
    def test_both_capture_when_enabled(self):
        state = step_naive(AuxCircuitState(0, 1), d=1, ce=1)
        assert state.q_orig == state.q_replica == 1

    def test_both_hold_when_disabled(self):
        state = step_naive(AuxCircuitState(0, 1), d=1, ce=0)
        assert (state.q_orig, state.q_replica) == (0, 1)
