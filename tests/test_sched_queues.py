"""Unit tests for the queue disciplines (repro.sched.queues)."""

import pytest

from repro.sched.queues import (
    QUEUE_DISCIPLINES,
    QUEUE_NAMES,
    BackfillDiscipline,
    FifoDiscipline,
    PriorityDiscipline,
    SjfDiscipline,
    make_queue,
)


class Item:
    """Minimal queueable stand-in (identity-keyed like real tasks)."""

    def __init__(self, label):
        self.label = label

    def __repr__(self):
        return f"<{self.label}>"


def labels(items):
    return [i.label for i in items]


class TestRegistry:
    def test_all_names_resolve(self):
        for name in QUEUE_NAMES:
            assert make_queue(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown queue discipline"):
            make_queue("lifo")

    def test_instances_pass_through(self):
        q = BackfillDiscipline(max_age=2.0)
        assert make_queue(q) is q

    def test_registry_covers_the_four_disciplines(self):
        assert set(QUEUE_DISCIPLINES) == {
            "fifo", "priority", "sjf", "backfill"
        }


class TestFifo:
    def test_scan_yields_only_the_head(self):
        q = FifoDiscipline()
        a, b = Item("a"), Item("b")
        q.push(a, now=0.0)
        q.push(b, now=1.0)
        assert labels(q.scan(2.0)) == ["a"]

    def test_ordered_is_arrival_order(self):
        q = FifoDiscipline()
        items = [Item(i) for i in range(5)]
        for i, item in enumerate(items):
            q.push(item, now=float(i))
        assert q.ordered(9.0) == items

    def test_take_removes_the_head(self):
        q = FifoDiscipline()
        a, b = Item("a"), Item("b")
        q.push(a)
        q.push(b)
        q.take(a)
        assert len(q) == 1
        assert labels(q.scan(0.0)) == ["b"]


class TestTombstones:
    """The lazy-removal scheme shared by every discipline."""

    @pytest.mark.parametrize("name", QUEUE_NAMES)
    def test_discard_is_lazy_and_len_tracks_live(self, name):
        q = make_queue(name)
        items = [Item(i) for i in range(10)]
        for item in items:
            q.push(item, area=1, now=0.0)
        for item in items[::2]:
            q.discard(item)
        assert len(q) == 5
        # Dead entries are invisible to both access paths.
        assert set(labels(q.ordered(0.0))) == {1, 3, 5, 7, 9}
        assert all(i.label % 2 == 1 for i in q.scan(0.0))

    @pytest.mark.parametrize("name", QUEUE_NAMES)
    def test_discard_of_unknown_item_is_a_noop(self, name):
        q = make_queue(name)
        q.push(Item("a"))
        q.discard(Item("ghost"))  # never pushed: must not raise
        assert len(q) == 1

    @pytest.mark.parametrize("name", QUEUE_NAMES)
    def test_double_discard_counts_once(self, name):
        q = make_queue(name)
        a = Item("a")
        q.push(a)
        q.discard(a)
        q.discard(a)
        assert len(q) == 0

    def test_dead_head_is_skipped_not_returned(self):
        q = FifoDiscipline()
        a, b = Item("a"), Item("b")
        q.push(a)
        q.push(b)
        q.discard(a)
        assert labels(q.scan(0.0)) == ["b"]

    @pytest.mark.parametrize("name", QUEUE_NAMES)
    def test_compaction_physically_drops_tombstones(self, name):
        """Once tombstones dominate, a walk rebuilds the container —
        dead entries must not accumulate for the rest of the run."""
        q = make_queue(name)
        keep = Item("keep")
        q.push(keep, area=1, now=0.0)
        victims = [Item(i) for i in range(100)]
        for item in victims:
            q.push(item, area=2, now=0.0)
        for item in victims:
            q.discard(item)
        assert labels(q.ordered(0.0)) == ["keep"]
        container = q._queue if hasattr(q, "_queue") else q._heap
        assert len(container) <= 10  # tombstones gone, not just hidden


class TestPriority:
    def test_higher_priority_scans_first(self):
        q = PriorityDiscipline()
        low, high = Item("low"), Item("high")
        q.push(low, priority=0, now=0.0)
        q.push(high, priority=5, now=1.0)
        assert labels(q.scan(1.0)) == ["high"]

    def test_fifo_within_a_class(self):
        q = PriorityDiscipline()
        first, second = Item("first"), Item("second")
        q.push(first, priority=3, now=0.0)
        q.push(second, priority=3, now=1.0)
        assert labels(q.ordered(1.0)) == ["first", "second"]

    def test_ordered_sorts_by_class_then_arrival(self):
        q = PriorityDiscipline()
        a, b, c = Item("a"), Item("b"), Item("c")
        q.push(a, priority=1)
        q.push(b, priority=9)
        q.push(c, priority=1)
        assert labels(q.ordered(0.0)) == ["b", "a", "c"]


class TestSjf:
    def test_smallest_area_scans_first(self):
        q = SjfDiscipline()
        big, small = Item("big"), Item("small")
        q.push(big, area=100, now=0.0)
        q.push(small, area=4, now=1.0)
        assert labels(q.scan(1.0)) == ["small"]
        assert labels(q.ordered(1.0)) == ["small", "big"]

    def test_area_ties_break_fifo(self):
        q = SjfDiscipline()
        first, second = Item("first"), Item("second")
        q.push(first, area=9)
        q.push(second, area=9)
        assert labels(q.scan(0.0)) == ["first"]


class TestBackfill:
    def test_scan_yields_head_then_smaller_followers(self):
        q = BackfillDiscipline(max_age=10.0)
        head = Item("head")
        small, equal, tiny = Item("small"), Item("equal"), Item("tiny")
        q.push(head, area=50, now=0.0)
        q.push(small, area=10, now=1.0)
        q.push(equal, area=50, now=2.0)  # not smaller: never backfills
        q.push(tiny, area=1, now=3.0)
        assert labels(q.scan(4.0)) == ["head", "small", "tiny"]

    def test_overage_head_blocks_backfilling(self):
        q = BackfillDiscipline(max_age=5.0)
        head, small = Item("head"), Item("small")
        q.push(head, area=50, now=0.0)
        q.push(small, area=1, now=1.0)
        assert labels(q.scan(4.0)) == ["head", "small"]  # age 4 <= 5
        assert labels(q.scan(6.0)) == ["head"]  # age 6 > 5: strict FIFO

    def test_negative_max_age_rejected(self):
        with pytest.raises(ValueError):
            BackfillDiscipline(max_age=-1.0)

    def test_ordered_stays_fifo(self):
        q = BackfillDiscipline()
        items = [Item(i) for i in range(3)]
        for item in items:
            q.push(item, area=1)
        assert q.ordered(0.0) == items
