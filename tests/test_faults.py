"""The fault-injection battery: plans, failover mechanics, service chaos.

What is pinned, layer by layer:

* **plans** (:mod:`repro.faults`): the named factories are seeded and
  deterministic, validate their targets, and dispatch onto the
  scheduler's fault machinery;
* **failover** (:class:`repro.sched.scheduler.OnlineTaskScheduler`):
  the relocate -> restart -> drop ladder — relocation keeps progress
  (the paper's own mechanism finds the task a new region), restart
  loses it, drop happens only when no surviving fabric could *ever*
  host the footprint — plus the acceptance scenario: killing 1 of 4
  members mid-surge recovers every displaced task;
* **the epoch-guard regression**: the latent bug the kill sweep
  surfaced — a fault-restarted task being rejected by the *stale*
  patience timeout of its first queueing round — stays fixed;
* **service chaos** (:meth:`repro.service.app.ReproService.inject_fault`
  and ``POST /faults``): faults journal their displacements, and a
  checkpoint cut *mid-outbreak* restores bit-identically (hypothesis
  sweeps the cut instant).
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.manager import LogicSpaceManager
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.faults import (
    FAULT_PLAN_NAMES,
    FAULT_PLANS,
    FaultEvent,
    FaultPlan,
    make_fault_plan,
)
from repro.faults.plan import KILL_AT, apply_event
from repro.fleet.manager import FleetManager
from repro.sched.scheduler import FAULT_OWNER_BASE, OnlineTaskScheduler
from repro.sched.tasks import Task, TaskState
from repro.sched.workload import fleet_surge_tasks
from repro.service import ReproService, ServiceConfig, restore, snapshot

from test_service_api import Client, with_api


def manager_for(name: str) -> LogicSpaceManager:
    return LogicSpaceManager(Fabric(device(name)))


def fleet_of(names: list[str]) -> FleetManager:
    return FleetManager([manager_for(n) for n in names],
                        policy="first-fit")


def single_scheduler(name: str = "XC2S15") -> OnlineTaskScheduler:
    return OnlineTaskScheduler(manager_for(name))


TERMINAL = (TaskState.FINISHED, TaskState.REJECTED, TaskState.DROPPED)


# -- fault plans ------------------------------------------------------------


def test_plan_registry_vocabulary():
    assert FAULT_PLAN_NAMES == ("none", "kill-member", "outbreak",
                                "flaky-port")
    assert set(FAULT_PLANS) == set(FAULT_PLAN_NAMES)
    with pytest.raises(ValueError, match="unknown fault plan"):
        make_fault_plan("gremlins", device("XC2S15"), 1, 0)


def test_none_plan_is_empty():
    plan = make_fault_plan("none", device("XC2S15"), 4, 7)
    assert plan.name == "none"
    assert len(plan) == 0


def test_kill_member_plan_is_seeded_and_spares_member_zero():
    dev = device("XC2S15")
    with pytest.raises(ValueError, match="at least 2"):
        make_fault_plan("kill-member", dev, 1, 0)
    # A 2-member fleet always loses member 1 (the only non-primary).
    plan = make_fault_plan("kill-member", dev, 2, 0)
    assert plan.events == (
        FaultEvent(at=KILL_AT, kind="member-death", member=1),
    )
    # Larger fleets draw the victim per seed, never member 0, and the
    # same seed always draws the same victim.
    victims = set()
    for seed in range(16):
        plan = make_fault_plan("kill-member", dev, 4, seed)
        assert plan == make_fault_plan("kill-member", dev, 4, seed)
        (event,) = plan.events
        assert event.kind == "member-death"
        assert 1 <= event.member <= 3
        victims.add(event.member)
    assert len(victims) > 1  # the seed axis genuinely varies the victim


def test_outbreak_plan_draws_in_bounds_transient_regions():
    dev = device("XC2S15")
    plan = make_fault_plan("outbreak", dev, 1, 5)
    assert plan == make_fault_plan("outbreak", dev, 1, 5)
    assert [e.at for e in plan.events] == [1.0, 2.5]
    for event in plan.events:
        assert event.kind == "region-stuck"
        assert event.member == 0
        assert event.duration == 1.5
        assert 0 <= event.row and event.row + event.height <= dev.clb_rows
        assert 0 <= event.col and event.col + event.width <= dev.clb_cols


def test_flaky_port_plan_shape():
    plan = make_fault_plan("flaky-port", device("XC2S15"), 1, 0)
    assert [e.at for e in plan.events] == [0.5, 1.5, 2.5, 3.5]
    assert all(e.kind == "port-flaky" and e.member == 0
               and e.retries == 3 and e.backoff == 0.2
               for e in plan.events)


@pytest.mark.parametrize("kwargs", [
    {"at": 0.0, "kind": "solar-flare"},
    {"at": -0.1, "kind": "member-death"},
    {"at": 1.0, "kind": "region-stuck", "duration": 0.0},
    {"at": 1.0, "kind": "region-stuck", "duration": -2.0},
])
def test_fault_event_validation(kwargs):
    with pytest.raises(ValueError):
        FaultEvent(**kwargs)


class RecordingScheduler:
    """Duck-typed fault target that records every dispatched call."""

    def __init__(self):
        self.calls = []

    def kill_member(self, member):
        self.calls.append(("kill", member))

    def inject_region_fault(self, member, row, col, height, width,
                            duration=None):
        self.calls.append(("region", member, row, col, height, width,
                           duration))

    def flake_port(self, member, retries, backoff):
        self.calls.append(("flake", member, retries, backoff))


def test_apply_event_dispatches_by_kind():
    target = RecordingScheduler()
    apply_event(target, FaultEvent(at=1.0, kind="member-death", member=2))
    apply_event(target, FaultEvent(at=1.0, kind="region-stuck", member=0,
                                   row=1, col=2, height=3, width=4,
                                   duration=1.5))
    apply_event(target, FaultEvent(at=1.0, kind="port-flaky", member=1,
                                   retries=5, backoff=0.1))
    assert target.calls == [
        ("kill", 2),
        ("region", 0, 1, 2, 3, 4, 1.5),
        ("flake", 1, 5, 0.1),
    ]


def test_installed_plan_fires_on_the_scheduler_timeline():
    scheduler = OnlineTaskScheduler(fleet_of(["XC2S15"] * 2))
    make_fault_plan("kill-member", device("XC2S15"), 2, 0).install(scheduler)
    metrics = scheduler.run([Task(1, 3, 3, 1.0, 0.0)])
    assert metrics.members_lost == 1
    assert 1 in scheduler.kernel.lost_members


# -- failover: relocate / restart / drop ------------------------------------


def kill_at(scheduler, at, member):
    """Schedule a member death; returns the list its summary lands in."""
    out = []
    scheduler.events.at(at, lambda: out.append(scheduler.kill_member(member)))
    return out


def test_relocation_keeps_progress():
    """A victim with room on a survivor moves there and keeps the work
    it already did: only the re-configuration is paid again."""
    scheduler = OnlineTaskScheduler(fleet_of(["XC2S30", "XC2S30"]))
    tasks = [
        Task(1, 12, 18, 1.0, 0.0),   # fills member 0, finishes at ~1 s
        Task(2, 6, 6, 8.0, 0.0),     # lands on member 1
    ]
    summaries = kill_at(scheduler, 3.0, 1)
    metrics = scheduler.run(tasks)
    assert summaries[0]["relocated"] == [2]
    assert metrics.relocated_tasks == 1
    assert metrics.members_lost == 1
    assert metrics.finished == 2
    assert metrics.recovery_seconds > 0
    # Progress kept: the task needs only its remaining 5 s plus one
    # re-configuration, not a from-scratch 8 s (that would end > 11 s).
    assert 8.0 < metrics.makespan < 8.1


def test_restart_loses_progress():
    """No room anywhere right now, but a survivor is big enough: the
    task re-queues from scratch and waits for space."""
    scheduler = OnlineTaskScheduler(fleet_of(["XC2S30", "XC2S30"]))
    tasks = [
        Task(1, 12, 18, 5.0, 0.0),   # member 0 stays full until ~5 s
        Task(2, 6, 6, 8.0, 0.0),
    ]
    summaries = kill_at(scheduler, 3.0, 1)
    metrics = scheduler.run(tasks)
    assert summaries[0]["restarted"] == [2]
    assert metrics.restarted_tasks == 1
    assert metrics.finished == 2
    # Lost progress: 3 s of work redone after waiting for member 0.
    assert metrics.makespan > 12.0
    assert tasks[1].state is TaskState.FINISHED


def test_drop_only_when_no_survivor_could_ever_fit():
    """A footprint larger than every surviving fabric is dropped —
    current occupancy is irrelevant, dead silicon never comes back."""
    scheduler = OnlineTaskScheduler(fleet_of(["XC2S30", "XC2S15"]))
    tasks = [
        Task(1, 12, 18, 5.0, 0.0),   # only the XC2S30 can host this
        Task(2, 3, 3, 5.0, 0.0),
    ]
    summaries = kill_at(scheduler, 1.0, 0)
    metrics = scheduler.run(tasks)
    assert summaries[0]["dropped"] == [1]
    assert metrics.dropped_tasks == 1
    assert tasks[0].state is TaskState.DROPPED
    assert tasks[1].state is TaskState.FINISHED
    # Conservation holds even through a drop.
    assert metrics.finished + metrics.rejected + metrics.dropped_tasks \
        == len(tasks)


def test_kill_member_validation_and_idempotence():
    with pytest.raises(ValueError, match="requires a fleet"):
        single_scheduler().kill_member(0)
    scheduler = OnlineTaskScheduler(fleet_of(["XC2S15"] * 2))
    with pytest.raises(ValueError, match="no fleet member"):
        scheduler.kill_member(5)
    scheduler.kill_member(1)
    again = scheduler.kill_member(1)
    assert again == {"member": 1, "relocated": [], "restarted": [],
                     "dropped": []}
    assert scheduler.metrics.members_lost == 1  # not double-counted


def test_kill_one_of_four_mid_surge_recovers_all_relocatable_work():
    """ISSUE acceptance: killing 1 of 4 members at the surge peak loses
    the member but not the work — every displaced task is relocated or
    restarted (nothing dropped on a homogeneous fleet) and the stream's
    task accounting stays conservative."""
    tasks = fleet_surge_tasks(60, seed=1)
    scheduler = OnlineTaskScheduler(fleet_of(["XC2S15"] * 4), queue="fifo")
    summaries = kill_at(scheduler, KILL_AT, 1)
    metrics = scheduler.run(tasks)
    summary = summaries[0]
    displaced = (len(summary["relocated"]) + len(summary["restarted"])
                 + len(summary["dropped"]))
    assert displaced >= 1  # the kill genuinely hit running work
    assert summary["dropped"] == []
    assert metrics.relocated_tasks + metrics.restarted_tasks == displaced
    assert metrics.members_lost == 1
    # Task conservation: every task reaches exactly one terminal state.
    assert metrics.finished + metrics.rejected + metrics.dropped_tasks \
        == len(tasks)
    assert all(task.state in TERMINAL for task in tasks)
    # The fleet keeps absorbing the surge on 3 members.
    assert metrics.finished >= 30


def test_stale_patience_timeout_cannot_reject_a_restarted_task():
    """Regression for the latent bug the kill sweep surfaced.

    A task's patience timeout is armed at enqueue and never cancelled
    (cancelling would perturb the event stream the goldens pin).  When
    a fault restarts the task, its patience re-arms at the fault
    instant — but the *original* timeout is still pending, and before
    the epoch guard it saw ``state == QUEUED`` again and rejected the
    restarted task at ``arrival + max_wait``, ahead of its real
    deadline.

    Timeline here: task 2 (max_wait 4.8) is admitted at t=0 on member
    1, killed at t=0.5, restarted with deadline 0.5 + 4.8 = 5.3; the
    stale timeout fires at 4.8 while member 0 is still full (until
    ~5.01 < 5.3).  Unguarded, task 2 is rejected at 4.8; guarded, it
    is admitted when member 0 frees and finishes.
    """
    scheduler = OnlineTaskScheduler(fleet_of(["XC2S30", "XC2S30"]))
    tasks = [
        Task(1, 12, 18, 5.0, 0.0),
        Task(2, 6, 6, 8.0, 0.0, max_wait=4.8),
    ]
    summaries = kill_at(scheduler, 0.5, 1)
    metrics = scheduler.run(tasks)
    assert summaries[0]["restarted"] == [2]
    assert metrics.rejected == 0
    assert metrics.finished == 2
    assert tasks[1].state is TaskState.FINISHED


# -- region faults + port flakes --------------------------------------------


def test_region_fault_displaces_and_relocates_on_the_same_member():
    scheduler = single_scheduler()
    task = Task(1, 2, 2, 5.0, 0.0)
    summaries = []
    scheduler.events.at(1.0, lambda: summaries.append(
        scheduler.inject_region_fault(0, 0, 0, 3, 3, duration=1.5)
    ))
    metrics = scheduler.run([task])
    assert summaries[0]["relocated"] == [1]
    assert metrics.relocated_tasks == 1
    assert metrics.finished == 1
    # The task moved off the bad silicon but stayed on the only device.
    assert (task.rect.row, task.rect.col) != (0, 0)
    # The transient region healed: no active fault regions remain and
    # the fabric is completely free again.
    assert scheduler._fault_regions == {}
    fabric = scheduler.kernel._managers[0].fabric
    assert (fabric.occupancy != 0).sum() == 0


def test_permanent_region_fault_blocks_with_fault_owners():
    scheduler = single_scheduler()
    summary = scheduler.inject_region_fault(0, 2, 2, 3, 4)
    assert summary["fault"] == 1
    record = scheduler._fault_regions[1]
    assert record["heal_at"] is None
    assert all(owner > FAULT_OWNER_BASE for owner, _ in record["owners"])
    fabric = scheduler.kernel._managers[0].fabric
    assert (fabric.occupancy != 0).sum() == 3 * 4
    with pytest.raises(ValueError, match="out of bounds"):
        scheduler.inject_region_fault(0, 7, 10, 4, 4)
    with pytest.raises(ValueError, match="no device"):
        scheduler.inject_region_fault(3, 0, 0, 2, 2)


def test_region_fault_on_a_dead_member_is_moot():
    scheduler = OnlineTaskScheduler(fleet_of(["XC2S15"] * 2))
    scheduler.kill_member(1)
    summary = scheduler.inject_region_fault(1, 0, 0, 2, 2)
    assert summary["fault"] is None
    assert scheduler._fault_regions == {}


def test_flake_port_charges_retry_seconds():
    scheduler = single_scheduler()
    assert scheduler.flake_port(0, retries=2, backoff=0.5) == 1.0
    assert scheduler.metrics.port_retry_seconds == 1.0
    assert scheduler.metrics.faults_injected == 1
    with pytest.raises(ValueError, match="no device"):
        scheduler.flake_port(7)
    with pytest.raises(ValueError, match="cannot be negative"):
        scheduler.flake_port(0, retries=-1)
    # A flake on a dead member charges nothing: the port is gone.
    fleet = OnlineTaskScheduler(fleet_of(["XC2S15"] * 2))
    fleet.kill_member(1)
    assert fleet.flake_port(1) == 0.0


def test_export_fault_state_roundtrip_on_a_fresh_scheduler():
    scheduler = single_scheduler()
    assert scheduler.export_fault_state() is None  # fault-free shape
    scheduler.inject_region_fault(0, 1, 1, 2, 2, duration=4.0)
    state = scheduler.export_fault_state()
    fresh = single_scheduler()
    fresh.restore_fault_state(state)
    assert fresh.export_fault_state() == state
    occupied = (fresh.kernel._managers[0].fabric.occupancy != 0).sum()
    assert occupied == 2 * 2


# -- the always-on service --------------------------------------------------


def fleet_service() -> ReproService:
    service = ReproService(ServiceConfig(device="XC2S30", fleet_size=2,
                                         queue="priority"))
    service.submit(12, 18, 1.0, tenant="a", qos="gold")
    service.submit(6, 6, 8.0, tenant="b", qos="gold")
    service.advance(until=3.0)
    return service


def test_service_member_death_journals_the_relocation():
    service = fleet_service()
    out = service.inject_fault("member-death", member=1)
    assert out == {"kind": "member-death", "now": 3.0, "member": 1,
                   "relocated": [2], "restarted": [], "dropped": []}
    assert [e["event"] for e in service.engine.journal] == [
        "submitted", "admitted", "submitted", "admitted",
        "finished", "relocated",
    ]
    # The survivor hosts the relocated task now.
    assert service.engine.devices[2] == 0
    service.settle()
    assert service.engine.tasks[2].state is TaskState.FINISHED
    stats = service.stats()
    assert stats["members_lost"] == 1
    assert stats["relocated"] == 1 and stats["dropped"] == 0


def test_service_region_and_port_faults():
    service = ReproService(ServiceConfig(device="XC2S15"))
    out = service.inject_fault("region-stuck", row=0, col=0,
                               height=3, width=3, duration=2.0)
    assert out["kind"] == "region-stuck" and out["fault"] == 1
    out = service.inject_fault("port-flaky", retries=3, backoff=0.2)
    assert out["retry_seconds"] == pytest.approx(0.6)
    with pytest.raises(ValueError, match="unknown fault kind"):
        service.inject_fault("cosmic-ray")


def test_service_checkpoint_mid_member_death_is_bit_identical():
    service = fleet_service()
    service.inject_fault("member-death", member=1)
    restored = restore(snapshot(service))
    assert restored.engine.export_fault_state() \
        == service.engine.export_fault_state()
    service.settle()
    restored.settle()
    assert restored.engine.journal == service.engine.journal
    assert restored.engine.telemetry == service.engine.telemetry


def test_post_faults_over_http():
    async def scenario(api, client):
        status, view, _ = await client.request(
            "POST", "/tasks",
            {"height": 12, "width": 18, "exec_seconds": 1.0, "qos": "gold"})
        assert status == 202 and view["admitted"]
        status, view, _ = await client.request(
            "POST", "/tasks",
            {"height": 6, "width": 6, "exec_seconds": 8.0, "qos": "gold"})
        assert status == 202 and view["admitted"]
        await client.request("POST", "/clock/advance", {"seconds": 3.0})
        status, summary, _ = await client.request(
            "POST", "/faults", {"kind": "member-death", "member": 1})
        assert status == 200
        assert summary["kind"] == "member-death"
        assert summary["relocated"] == [2]
        # Validation: a missing kind and an unknown kind are both 400s.
        status, payload, _ = await client.request("POST", "/faults", {})
        assert status == 400 and "kind" in payload["error"]
        status, _, _ = await client.request(
            "POST", "/faults", {"kind": "gremlins"})
        assert status == 400
    with_api(scenario, device="XC2S30", fleet_size=2)


# -- hypothesis: checkpoint cut anywhere mid-outbreak -----------------------


def outbreak_service() -> ReproService:
    """A single-device service with live traffic and an active
    transient stuck-at outbreak (heal pending at t = 2.5)."""
    service = ReproService(ServiceConfig(device="XC2S15", queue="priority"))
    service.submit(4, 4, 3.0, tenant="a", qos="gold")
    service.submit(4, 4, 2.5, tenant="b", qos="silver")
    service.submit(3, 3, 4.0, tenant="c", qos="best-effort")
    service.advance(until=0.5)
    service.inject_fault("region-stuck", row=0, col=0, height=4, width=6,
                         duration=2.0)
    service.submit(5, 5, 1.5, tenant="a", qos="gold")
    return service


@given(cut=st.floats(min_value=0.5, max_value=8.0,
                     allow_nan=False, allow_infinity=False))
def test_checkpoint_cut_mid_outbreak_restores_bit_identically(cut):
    """Snapshot/restore at *any* instant — before, during or after the
    outbreak heals — continues the identical run: fault state roundtrips
    and the settled journal and telemetry streams match bit for bit."""
    original = outbreak_service()
    original.advance(until=cut)
    restored = restore(snapshot(original))
    assert restored.engine.export_fault_state() \
        == original.engine.export_fault_state()
    original.settle()
    restored.settle()
    assert restored.engine.journal == original.engine.journal
    assert restored.engine.telemetry == original.engine.telemetry
    assert restored.engine.metrics.relocated_tasks \
        == original.engine.metrics.relocated_tasks
