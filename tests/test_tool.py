"""Unit tests for the rearrangement & programming tool (Fig. 7)."""

import pytest

from repro.device.clb import CellMode
from repro.device.devices import device
from repro.device.geometry import ClbCoord
from repro.core.tool import RearrangementTool, RelocationJob, main


@pytest.fixture
def tool():
    return RearrangementTool(device("XCV200"))


class TestJobInputs:
    def test_coordinates_single_hop(self, tool):
        jobs = tool.jobs_from_coordinates(ClbCoord(3, 3), ClbCoord(5, 6))
        assert len(jobs) == 1
        assert jobs[0].src == ClbCoord(3, 3)
        assert jobs[0].dst == ClbCoord(5, 6)

    def test_long_moves_staged(self, tool):
        # "The relocation of a complete function may take place in
        # several stages" — hops bounded by max_hop_columns.
        jobs = tool.jobs_from_coordinates(ClbCoord(0, 0), ClbCoord(0, 30))
        assert len(jobs) > 1
        for job in jobs:
            assert abs(job.dst.col - job.src.col) <= tool.max_hop_columns
        assert jobs[-1].dst == ClbCoord(0, 30)

    def test_identity_move_is_empty(self, tool):
        assert tool.jobs_from_coordinates(ClbCoord(2, 2), ClbCoord(2, 2)) == []

    def test_out_of_bounds_rejected(self, tool):
        with pytest.raises(ValueError):
            tool.jobs_from_coordinates(ClbCoord(0, 0), ClbCoord(0, 99))

    def test_placement_diff(self, tool):
        current = {1: ClbCoord(0, 0), 2: ClbCoord(5, 5), 3: ClbCoord(9, 9)}
        target = {1: ClbCoord(0, 2), 2: ClbCoord(5, 5), 3: ClbCoord(9, 12)}
        jobs = tool.jobs_from_placements(current, target)
        # CLB 2 does not move; 1 and 3 do; shortest distance first.
        assert len(jobs) == 2
        assert jobs[0].src.manhattan(jobs[0].dst) <= jobs[1].src.manhattan(
            jobs[1].dst
        )


class TestGeneration:
    def test_files_generated_per_config_step(self, tool):
        job = RelocationJob(ClbCoord(3, 3), ClbCoord(3, 4))
        generated = tool.generate(job)
        # The gated-clock flow has 11 configuration steps (13 minus 2 waits).
        assert len(generated.files) == 11
        assert generated.total_words > 0

    def test_combinational_fewer_files(self, tool):
        job = RelocationJob(
            ClbCoord(3, 3), ClbCoord(3, 4), CellMode.COMBINATIONAL
        )
        generated = tool.generate(job)
        assert len(generated.files) == 5

    def test_generate_all(self, tool):
        jobs = tool.jobs_from_coordinates(ClbCoord(0, 0), ClbCoord(0, 20))
        generated = tool.generate_all(jobs)
        assert len(generated) == len(jobs)


class TestExecution:
    def test_execute_reports_time(self, tool):
        jobs = tool.jobs_from_coordinates(ClbCoord(1, 1), ClbCoord(1, 2))
        report = tool.execute(tool.generate_all(jobs))
        assert report.loads == 11
        assert not report.recovered
        # A nearby gated-clock CLB relocation: tens of milliseconds.
        assert 0.010 < report.seconds < 0.060

    def test_recovery_on_injected_failure(self, tool):
        jobs = tool.jobs_from_coordinates(ClbCoord(1, 1), ClbCoord(1, 2))
        generated = tool.generate_all(jobs)
        snapshot = tool.memory.snapshot()
        report = tool.execute(generated, inject_failure_at=3)
        assert report.recovered
        # "Enabling system recovery in case of failure": memory restored.
        assert tool.memory.snapshot() == snapshot

    def test_manual_recovery_copy(self, tool):
        before = tool.memory.snapshot()
        jobs = tool.jobs_from_coordinates(ClbCoord(0, 0), ClbCoord(0, 1))
        tool.execute(tool.generate_all(jobs))
        tool.restore_recovery_copy()
        # Recovery copy was refreshed after the successful run, so the
        # memory matches the post-execution state, not `before`.
        assert tool.memory.snapshot() is not before


class TestCli:
    def test_cli_runs(self, capsys):
        code = main(["--src", "3,3", "--dst", "5,8", "--mode", "ff-gated-clock"])
        assert code == 0
        out = capsys.readouterr().out
        assert "XCV200" in out
        assert "total load time" in out

    def test_cli_rejects_bad_coords(self):
        with pytest.raises(SystemExit):
            main(["--src", "0,0", "--dst", "0,999"])

    def test_cli_other_device(self, capsys):
        code = main(
            ["--device", "XCV50", "--src", "0,0", "--dst", "1,1",
             "--mode", "combinational"]
        )
        assert code == 0
        assert "XCV50" in capsys.readouterr().out
