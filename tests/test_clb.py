"""Unit tests for CLB / logic-cell configuration records."""

import pytest

from repro.device.clb import CellMode, ClbConfig, LogicCellConfig


class TestCellMode:
    def test_sequential_classification(self):
        assert CellMode.FF_FREE_CLOCK.sequential
        assert CellMode.FF_GATED_CLOCK.sequential
        assert CellMode.LATCH.sequential
        assert not CellMode.COMBINATIONAL.sequential
        assert not CellMode.LUT_RAM.sequential

    def test_lut_ram_not_relocatable(self):
        # Paper, section 2: LUT/RAM relocation would require stopping
        # the system.
        assert not CellMode.LUT_RAM.relocatable
        for mode in CellMode:
            if mode is not CellMode.LUT_RAM:
                assert mode.relocatable


class TestLogicCellConfig:
    def test_lut_table_range_enforced(self):
        with pytest.raises(ValueError):
            LogicCellConfig(lut=1 << 16)

    def test_lut_output_indexing(self):
        # AND2: only input vector (1, 1) -> 1.
        cfg = LogicCellConfig(lut=0x8888)
        assert cfg.lut_output((1, 1)) == 1
        assert cfg.lut_output((0, 1)) == 0
        assert cfg.lut_output((1, 0)) == 0

    def test_missing_inputs_default_zero(self):
        cfg = LogicCellConfig(lut=0x8888)
        assert cfg.lut_output((1,)) == 0  # second input defaults to 0

    def test_vacated_resets(self):
        cfg = LogicCellConfig(mode=CellMode.FF_GATED_CLOCK, lut=0xF, used=True)
        empty = cfg.vacated()
        assert not empty.used
        assert empty.mode is CellMode.COMBINATIONAL
        assert empty.lut == 0


class TestClbConfig:
    def test_four_cells(self):
        clb = ClbConfig()
        assert len(clb.cells) == 4
        assert clb.is_free

    def test_wrong_cell_count_rejected(self):
        with pytest.raises(ValueError):
            ClbConfig(cells=[LogicCellConfig()] * 3)

    def test_place_and_vacate(self):
        clb = ClbConfig()
        clb.place_cell(2, LogicCellConfig(lut=0xAAAA))
        assert clb.used_cells == 1
        assert clb.free_cell_indices() == [0, 1, 3]
        clb.vacate_cell(2)
        assert clb.is_free

    def test_double_place_rejected(self):
        clb = ClbConfig()
        clb.place_cell(0, LogicCellConfig())
        with pytest.raises(ValueError):
            clb.place_cell(0, LogicCellConfig())

    def test_has_lut_ram(self):
        clb = ClbConfig()
        assert not clb.has_lut_ram
        clb.place_cell(1, LogicCellConfig(mode=CellMode.LUT_RAM))
        assert clb.has_lut_ram
