"""Property-based invariants for the configuration-prefetch layer.

Pinned invariants (hypothesis; the CI profile derandomizes them):

* **hits are free** — a resident hit never charges configuration
  seconds: across random application mixes, exactly the hit-counted
  function runs report zero config seconds, and the exposed config
  stall of ``cache``/``plan`` mode never exceeds ``never`` mode (and
  strictly improves whenever any hit landed);
* **eviction order** — the cache never evicts a bitstream whose known
  next use comes *earlier* than that of any bitstream it keeps, never
  exceeds its capacity, and survives an export/restore round-trip at
  any point of a random operation sequence;
* **never mode is inert** — an explicit ``--prefetch never`` produces
  results bit-identical to the axis default, with zero prefetch
  footprint and the historical (prefetch-free) export columns, so the
  golden snapshots stay pinned.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.runner import ScenarioResult, run_scenario
from repro.campaign.spec import ScenarioSpec
from repro.core.cost import CostModel
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.sched.prefetch import BitstreamCache
from repro.sched.scheduler import ApplicationFlowScheduler
from repro.sched.tasks import ApplicationSpec, FunctionSpec

pytestmark = pytest.mark.slow

#: Recurring bitstream pool for random application chains — small
#: enough that repeats (and therefore cache hits) are common.
FUNCTION_POOL = (
    ("filt", 3, 4, 0.8),
    ("fft", 4, 4, 1.2),
    ("huff", 2, 3, 0.5),
    ("quant", 3, 3, 0.7),
    ("dct", 4, 5, 1.0),
)


@st.composite
def application_sets(draw):
    """1–3 applications, each a chain of 1–4 pool functions."""
    apps = []
    for index in range(draw(st.integers(1, 3))):
        chain = draw(st.lists(st.sampled_from(FUNCTION_POOL),
                              min_size=1, max_size=4))
        apps.append(ApplicationSpec(
            f"app-{index}", [FunctionSpec(*fn) for fn in chain]
        ))
    return apps


@st.composite
def cache_operations(draw):
    """A random (capacity, ops) trace over a handful of keys.

    Ops are ``("insert", key, next_use)``, ``("hit", key)`` and
    ``("note", key, horizon)``; the clock advances one second per op so
    recency is always well-defined.
    """
    keys = st.sampled_from(["a", "b", "c", "d", "e", "f"])
    horizons = st.one_of(st.none(), st.floats(0.0, 100.0))
    op = st.one_of(
        st.tuples(st.just("insert"), keys, horizons),
        st.tuples(st.just("hit"), keys),
        st.tuples(st.just("note"), keys, st.floats(0.0, 100.0)),
    )
    return (draw(st.integers(1, 3)),
            draw(st.lists(op, min_size=1, max_size=40)))


def run_mode(apps, mode):
    dev = device("XC2S30")
    manager = LogicSpaceManager(
        Fabric(dev), cost_model=CostModel(dev),
        policy=RearrangePolicy.CONCURRENT,
    )
    sched = ApplicationFlowScheduler(manager, prefetch_mode=mode)
    runs = sched.run(apps)
    return sched, [fn_run for app in runs for fn_run in app.runs]


class TestHitsAreFree:
    @given(apps=application_sets(), mode=st.sampled_from(["cache", "plan"]))
    @settings(max_examples=30)
    def test_exactly_the_hits_charge_nothing(self, apps, mode):
        """Config seconds partition exactly: every hit charges zero,
        every miss charges the cost model's (strictly positive) price,
        and the stall counter is their sum."""
        sched, fn_runs = run_mode(apps, mode)
        free = sum(1 for run in fn_runs if run.config_seconds == 0.0)
        assert free == sched.metrics.prefetch_hits
        assert sched.metrics.config_stall_seconds == pytest.approx(
            sum(run.config_seconds for run in fn_runs)
        )

    @given(apps=application_sets(), mode=st.sampled_from(["cache", "plan"]))
    @settings(max_examples=30)
    def test_caching_never_worsens_config_stall(self, apps, mode):
        """Every placement either hits (free) or pays the same
        shape-determined price ``never`` mode pays, so the exposed
        stall can only shrink — strictly, once any hit lands."""
        never, __ = run_mode(apps, "never")
        cached, __ = run_mode(apps, mode)
        baseline = never.metrics.config_stall_seconds
        stalled = cached.metrics.config_stall_seconds
        assert stalled <= baseline + 1e-9
        if cached.metrics.prefetch_hits:
            assert stalled < baseline


class TestEvictionOrder:
    @given(trace=cache_operations())
    @settings(max_examples=60)
    def test_never_drops_an_earlier_known_next_use(self, trace):
        """Under the kernel's contract — planned loads (known next
        use) go through ``admits``, demand loads (unknown next use)
        insert unconditionally because the bitstream is already on the
        fabric — no eviction ever drops a bitstream needed earlier
        than one it keeps."""
        capacity, ops = trace
        cache = BitstreamCache(capacity=capacity)
        for now, op in enumerate(ops):
            if op[0] == "insert":
                __, key, next_use = op
                if next_use is not None and not cache.admits(next_use):
                    continue  # the planner declines exactly here
                evicted = cache.insert(key, 2, 2, ready_at=float(now),
                                       now=float(now), next_use=next_use)
                if evicted is not None and evicted.next_use is not None:
                    for kept_key in cache.keys():
                        kept = cache.get(kept_key)
                        if kept.next_use is not None:
                            assert evicted.next_use >= kept.next_use, (
                                f"evicted {evicted.key!r} needed at "
                                f"{evicted.next_use} but kept "
                                f"{kept_key!r} needed at {kept.next_use}"
                            )
            elif op[0] == "hit":
                cache.hit(op[1], now=float(now))
            else:
                cache.note_next_use(op[1], op[2])
            assert len(cache) <= capacity

    @given(trace=cache_operations())
    @settings(max_examples=60)
    def test_state_roundtrip_preserves_behaviour(self, trace):
        """Export/restore after a random trace is lossless: the clone
        reports the same state and would evict the same victim."""
        capacity, ops = trace
        cache = BitstreamCache(capacity=capacity)
        for now, op in enumerate(ops):
            if op[0] == "insert":
                cache.insert(op[1], 2, 2, ready_at=float(now),
                             now=float(now), next_use=op[2])
            elif op[0] == "hit":
                cache.hit(op[1], now=float(now))
            else:
                cache.note_next_use(op[1], op[2])
        clone = BitstreamCache()
        clone.restore_state(cache.export_state())
        assert clone.export_state() == cache.export_state()
        if len(cache):
            assert clone.peek_victim().key == cache.peek_victim().key


class TestNeverModeIsInert:
    @given(seed=st.integers(0, 3),
           workload=st.sampled_from(["random", "bursty", "codec-swap"]))
    @settings(max_examples=12)
    def test_explicit_never_is_bit_identical_to_the_default(
            self, seed, workload):
        params = ((("n_apps", 2),) if workload == "codec-swap"
                  else (("n", 10),))
        base = dict(device="XC2S15", policy="concurrent",
                    workload=workload, seed=seed, workload_params=params)
        default = run_scenario(ScenarioSpec(**base))
        explicit = run_scenario(ScenarioSpec(prefetch="never", **base))
        assert default == explicit
        row = explicit.to_row()
        assert "prefetch" not in row
        for name in ScenarioResult.PREFETCH_METRIC_FIELDS:
            assert name not in row
        assert explicit.prefetch_hits == 0
        assert explicit.prefetch_loads == 0
        assert explicit.cache_evictions == 0
        assert explicit.config_stall_seconds > 0.0  # measured, not emitted
