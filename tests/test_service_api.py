"""The service's HTTP face: routing, backpressure, streams, restore.

Everything runs against a real ``asyncio.start_server`` socket on an
ephemeral port — no mocked transports — inside ``asyncio.run`` (the
repo deliberately carries no pytest-asyncio dependency).  Pinned:

* the REST surface routes and validates: submit/status/list/cancel,
  clock control, stats, 404/405/409/400 on the documented conditions;
* throttled submissions surface as **429 with a Retry-After header**
  whose value matches the door's simulated-time hint;
* **concurrent** clients interleave safely: parallel submits, cancels
  and status reads serialize on the event loop without corrupting the
  accounting (the admitted + throttled totals stay conservative);
* the NDJSON telemetry stream delivers backlog then live samples;
* a checkpoint taken over HTTP restores over HTTP into a service that
  continues the same run (journal identity after the swap).
"""

import asyncio
import json

import pytest

from repro.service import ReproService, ServiceAPI, ServiceConfig


class Client:
    """A tiny raw-socket HTTP/JSON client (one request per call)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    async def request(self, method: str, path: str, body=None):
        """Issue one request; returns (status, payload, headers)."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        data = json.dumps(body).encode() if body is not None else b""
        writer.write(
            (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
             f"Content-Length: {len(data)}\r\n\r\n").encode() + data
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        head, _, payload = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, json.loads(payload), headers

    async def stream_lines(self, path: str, n: int) -> list[dict]:
        """Open an NDJSON stream and read ``n`` lines."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
        await writer.drain()
        while (await reader.readline()).strip():
            pass  # skip response head
        lines = []
        for _ in range(n):
            lines.append(json.loads(await reader.readline()))
        writer.close()
        return lines


def with_api(test, **config):
    """Run ``test(api, client)`` against a live server, then tear down."""
    async def body():
        api = ServiceAPI(ReproService(ServiceConfig(**config)))
        host, port = await api.start(port=0)
        try:
            await test(api, Client(host, port))
        finally:
            await api.stop()
    asyncio.run(body())


SUBMIT = {"height": 3, "width": 3, "exec_seconds": 0.5, "qos": "gold"}


# -- routing + validation ---------------------------------------------------


def test_healthz_and_qos_registry():
    async def scenario(api, client):
        status, payload, _ = await client.request("GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"
        status, payload, _ = await client.request("GET", "/qos")
        assert status == 200
        assert set(payload) == {"gold", "silver", "best-effort"}
    with_api(scenario)


def test_submit_status_cancel_lifecycle_over_http():
    async def scenario(api, client):
        status, view, _ = await client.request("POST", "/tasks", SUBMIT)
        assert status == 202 and view["admitted"]
        task_id = view["task"]
        status, fetched, _ = await client.request(
            "GET", f"/tasks/{task_id}")
        assert status == 200 and fetched["state"] == "configuring"
        status, now, _ = await client.request(
            "POST", "/clock/advance", {"seconds": 5.0})
        assert status == 200 and now["now"] == 5.0
        status, fetched, _ = await client.request(
            "GET", f"/tasks/{task_id}")
        assert fetched["state"] == "finished"
        # Terminal cancel is a 409, unknown id a 404.
        status, _, _ = await client.request("DELETE", f"/tasks/{task_id}")
        assert status == 409
        status, _, _ = await client.request("DELETE", "/tasks/999")
        assert status == 404
    with_api(scenario)


def test_validation_errors_map_to_400_and_404():
    async def scenario(api, client):
        status, payload, _ = await client.request(
            "POST", "/tasks", {"height": 3})
        assert status == 400 and "missing field" in payload["error"]
        status, _, _ = await client.request(
            "POST", "/tasks", {**SUBMIT, "qos": "platinum"})
        assert status == 400
        status, _, _ = await client.request("GET", "/no/such/route")
        assert status == 404
        status, _, _ = await client.request("PUT", "/tasks/1")
        assert status == 405
        status, _, _ = await client.request(
            "POST", "/clock/advance", {})
        assert status == 400
    with_api(scenario)


def test_task_listing_filters_and_limits():
    async def scenario(api, client):
        for _ in range(4):
            await client.request("POST", "/tasks", SUBMIT)
        await client.request("POST", "/clock/advance", {"seconds": 10.0})
        await client.request("POST", "/tasks", SUBMIT)
        status, payload, _ = await client.request(
            "GET", "/tasks?state=finished")
        assert status == 200 and len(payload["tasks"]) == 4
        status, payload, _ = await client.request("GET", "/tasks?limit=2")
        assert len(payload["tasks"]) == 2
        # Newest first.
        assert payload["tasks"][0]["task"] > payload["tasks"][1]["task"]
    with_api(scenario)


# -- backpressure -----------------------------------------------------------


def test_throttle_surfaces_as_429_with_retry_after_header():
    async def scenario(api, client):
        last = None
        for _ in range(12):  # gold burst is 10
            last = await client.request("POST", "/tasks", SUBMIT)
        status, view, headers = last
        assert status == 429
        assert view["reason"] == "rate-limit"
        assert float(headers["retry-after"]) == pytest.approx(
            view["retry_after"], abs=1e-3)
    with_api(scenario)


def test_queue_full_backpressure_over_http():
    async def scenario(api, client):
        await client.request(
            "POST", "/tasks",
            {"height": 8, "width": 12, "exec_seconds": 50.0,
             "qos": "gold"})
        for _ in range(2):
            status, _, _ = await client.request("POST", "/tasks", SUBMIT)
            assert status == 202
        status, view, _ = await client.request("POST", "/tasks", SUBMIT)
        assert status == 429 and view["reason"] == "queue-full"
    with_api(scenario, max_queue_depth=2)


# -- concurrency ------------------------------------------------------------


def test_concurrent_submit_cancel_status_stay_consistent():
    async def scenario(api, client):
        async def submitter(tenant):
            results = []
            for _ in range(15):
                results.append(await client.request(
                    "POST", "/tasks",
                    {**SUBMIT, "qos": "best-effort", "tenant": tenant}))
            return results

        batches = await asyncio.gather(*[
            submitter(f"tenant-{i}") for i in range(4)
        ])
        admitted = [view for batch in batches for status, view, _ in batch
                    if status == 202]
        throttled = [view for batch in batches for status, view, _ in batch
                     if status == 429]
        assert len(admitted) + len(throttled) == 60
        # Interleave cancels and status reads concurrently.
        cancels = [client.request("DELETE", f"/tasks/{v['task']}")
                   for v in admitted[::3]]
        reads = [client.request("GET", f"/tasks/{v['task']}")
                 for v in admitted[1::3]]
        outcomes = await asyncio.gather(*cancels, *reads)
        assert all(status in (200, 409) for status, _, _ in outcomes)
        await client.request("POST", "/clock/settle", {})
        _, stats, _ = await client.request("GET", "/stats")
        assert stats["waiting"] == 0 and stats["running"] == 0
        door = sum(t["submitted"] for t in stats["tenants"].values())
        assert door == 60
        # The hot-path counter export: every repro.perf counter column
        # is present, and a run this size must have issued probes.
        from repro.perf import COUNTER_NAMES
        assert set(COUNTER_NAMES) <= set(stats["perf"])
        assert stats["perf"]["admission_probes"] > 0
        terminal = 0
        for state in ("finished", "rejected", "cancelled"):
            _, listed, _ = await client.request(
                "GET", f"/tasks?state={state}")
            terminal += len(listed["tasks"])
        assert terminal == len(admitted)
    with_api(scenario)


# -- telemetry streaming ----------------------------------------------------


def test_telemetry_stream_delivers_backlog_then_live_samples():
    async def scenario(api, client):
        await client.request("POST", "/tasks", SUBMIT)  # one backlog sample
        backlog = len(api.service.engine.telemetry)
        stream = asyncio.ensure_future(
            client.stream_lines(f"/telemetry/stream?limit={backlog + 1}",
                                backlog + 1))
        await asyncio.sleep(0.05)  # stream subscribes
        await client.request("POST", "/tasks", SUBMIT)  # live sample
        lines = await asyncio.wait_for(stream, 5)
        assert len(lines) == backlog + 1
        assert all({"t", "waiting", "running", "fragmentation",
                    "utilization", "members"} <= set(line)
                   for line in lines)
        # The listener is dropped once the limit is reached.
        await asyncio.sleep(0.05)
        assert not api.service.engine.telemetry_listeners
    with_api(scenario)


def test_telemetry_snapshot_endpoint():
    async def scenario(api, client):
        status, payload, _ = await client.request("GET", "/telemetry")
        assert status == 200 and payload["last_sample"] is None
        await client.request("POST", "/tasks", SUBMIT)
        _, payload, _ = await client.request("GET", "/telemetry")
        assert payload["last_sample"]["members"]
    with_api(scenario)


# -- checkpoint/restore over HTTP -------------------------------------------


def test_checkpoint_restore_continues_the_same_run():
    async def scenario(api, client):
        for _ in range(6):
            await client.request(
                "POST", "/tasks", {**SUBMIT, "qos": "silver"})
        await client.request("POST", "/clock/advance", {"seconds": 0.2})
        _, snap, _ = await client.request("POST", "/checkpoint", {})
        original = api.service
        status, payload, _ = await client.request("POST", "/restore", snap)
        assert status == 200 and api.service is not original
        # Both services, driven identically from here, stay identical.
        api.service.settle()
        original.settle()
        assert api.service.engine.journal == original.engine.journal
        assert api.service.engine.telemetry == original.engine.telemetry
    with_api(scenario)


def test_checkpoint_to_file_and_restore_from_path(tmp_path):
    path = str(tmp_path / "ckpt.json")

    async def scenario(api, client):
        await client.request("POST", "/tasks", SUBMIT)
        status, payload, _ = await client.request(
            "POST", "/checkpoint", {"path": path})
        assert status == 200 and payload["saved"] == path
        status, payload, _ = await client.request(
            "POST", "/restore", {"path": path})
        assert status == 200
        assert len(api.service.engine.tasks) == 1
    with_api(scenario)


def test_shutdown_endpoint_resolves_the_shutdown_event():
    async def scenario(api, client):
        assert not api.shutdown.is_set()
        status, payload, _ = await client.request("POST", "/shutdown", {})
        assert status == 200 and api.shutdown.is_set()
    with_api(scenario)
