"""New workload generators and the declarative registry."""

import pytest

from repro.device.devices import device, synthetic_device
from repro.sched.workload import (
    WORKLOADS,
    WorkloadSpec,
    bursty_tasks,
    codec_swap_applications,
    get_workload,
    heavy_tail_tasks,
    make_workload,
    register_workload,
)


def test_bursty_tasks_shape():
    tasks = bursty_tasks(20, seed=1, burst_size=4, size_range=(2, 5))
    assert len(tasks) == 20
    assert [t.task_id for t in tasks] == list(range(1, 21))
    arrivals = [t.arrival for t in tasks]
    assert arrivals == sorted(arrivals)
    # Bursts mean repeated arrival instants somewhere in the stream.
    assert len(set(arrivals)) < len(arrivals)
    assert all(2 <= t.height <= 5 and 2 <= t.width <= 5 for t in tasks)


def test_bursty_tasks_deterministic():
    assert bursty_tasks(15, seed=3) == bursty_tasks(15, seed=3)
    assert bursty_tasks(15, seed=3) != bursty_tasks(15, seed=4)


def test_heavy_tail_tasks():
    tasks = heavy_tail_tasks(200, seed=2, exec_min=0.2, exec_cap=10.0)
    assert len(tasks) == 200
    assert all(0.2 <= t.exec_seconds <= 10.0 for t in tasks)
    # Heavy tail: the max should dwarf the median.
    execs = sorted(t.exec_seconds for t in tasks)
    assert execs[-1] > 4 * execs[len(execs) // 2]
    assert heavy_tail_tasks(50, seed=9) == heavy_tail_tasks(50, seed=9)


def test_generator_validation():
    with pytest.raises(ValueError):
        bursty_tasks(-1)
    with pytest.raises(ValueError):
        bursty_tasks(5, burst_size=0)
    with pytest.raises(ValueError):
        heavy_tail_tasks(5, alpha=0.0)
    with pytest.raises(ValueError):
        codec_swap_applications(device("XCV200"), n_apps=0)


def test_codec_swap_applications_scaled():
    dev = device("XCV200")
    apps = codec_swap_applications(dev, n_apps=4, seed=5)
    assert len(apps) == 4
    assert [a.name for a in apps] == ["A", "B", "C", "D"]
    for app in apps:
        assert 2 <= len(app.functions) <= 4
        for fn in app.functions:
            assert 1 <= fn.height <= dev.clb_rows
            assert 1 <= fn.width <= dev.clb_cols
    assert codec_swap_applications(dev, n_apps=4, seed=5) == apps


def test_registry_contents_and_lookup():
    assert {"random", "bursty", "heavy-tail", "fig1", "codec-swap"} <= set(
        WORKLOADS
    )
    assert get_workload("random").kind == "tasks"
    assert get_workload("codec-swap").kind == "apps"
    with pytest.raises(KeyError):
        get_workload("nope")
    with pytest.raises(ValueError):
        register_workload(WorkloadSpec("random", "tasks", lambda *a: []))
    with pytest.raises(ValueError):
        WorkloadSpec("x", "threads", lambda *a: [])


def test_make_workload_clamps_sizes_to_device():
    tiny = synthetic_device(4, 4)
    tasks = make_workload("random", tiny, seed=0, n=10,
                          size_range=(3, 12))
    assert all(t.height <= 3 and t.width <= 3 for t in tasks)


def test_make_workload_apps():
    apps = make_workload("fig1", device("XCV200"), seed=0)
    assert [a.name for a in apps] == ["A", "B", "C"]
