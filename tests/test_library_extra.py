"""Tests for the extended circuit library and visualisation helpers."""

import numpy as np
import pytest

from repro.analysis.visualize import (
    render_occupancy,
    render_timeline,
    timeline_from_application_runs,
)
from repro.netlist import library as lib
from repro.netlist.simulator import CycleSimulator
from repro.sched.tasks import ApplicationRun, ApplicationSpec, FunctionRun, FunctionSpec


class TestJohnsonCounter:
    def test_period_is_twice_stages(self):
        sim = CycleSimulator(lib.johnson_counter(4))
        start = dict(sim.state)
        for _ in range(8):
            sim.step()
        assert dict(sim.state) == start

    def test_single_bit_changes_per_step(self):
        sim = CycleSimulator(lib.johnson_counter(5))
        previous = dict(sim.state)
        for _ in range(10):
            sim.step()
            current = dict(sim.state)
            flips = sum(1 for k in current if current[k] != previous[k])
            assert flips == 1
            previous = current

    def test_validation(self):
        with pytest.raises(ValueError):
            lib.johnson_counter(1)


class TestParityChain:
    def test_computes_parity(self):
        sim = CycleSimulator(lib.parity_chain(5))
        cases = [
            ({"x0": 1, "x1": 0, "x2": 0, "x3": 0, "x4": 0}, 1),
            ({"x0": 1, "x1": 1, "x2": 0, "x3": 0, "x4": 0}, 0),
            ({"x0": 1, "x1": 1, "x2": 1, "x3": 1, "x4": 1}, 1),
        ]
        for inputs, want in cases:
            out = sim.step(inputs)
            assert out["p4"] == want

    def test_validation(self):
        with pytest.raises(ValueError):
            lib.parity_chain(1)


class TestAccumulator:
    def test_accumulates_when_enabled(self):
        sim = CycleSimulator(lib.accumulator(4))
        sim.step({"en": 1, "d0": 1, "d1": 1})  # +3
        assert lib.accumulator_value(sim.outputs()) == 3
        sim.step({"en": 1, "d0": 1, "d1": 0, "d2": 1})  # +5
        assert lib.accumulator_value(sim.outputs()) == 8

    def test_holds_when_disabled(self):
        sim = CycleSimulator(lib.accumulator(3))
        sim.step({"en": 1, "d0": 1})
        sim.step({"en": 0, "d0": 1})
        sim.step({"en": 0, "d1": 1})
        assert lib.accumulator_value(sim.outputs()) == 1

    def test_wraps_modulo(self):
        sim = CycleSimulator(lib.accumulator(2))
        for _ in range(5):  # 5 mod 4 = 1
            sim.step({"en": 1, "d0": 1, "d1": 0})
        assert lib.accumulator_value(sim.outputs()) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            lib.accumulator(0)


class TestRenderOccupancy:
    def test_free_renders_dots(self):
        occ = np.zeros((2, 3), dtype=int)
        assert render_occupancy(occ) == "...\n..."

    def test_owner_digits(self):
        occ = np.zeros((1, 4), dtype=int)
        occ[0, 0] = 1
        occ[0, 2] = 12
        text = render_occupancy(occ)
        assert text[0] == "1"
        assert text[2] == "c"  # 12th glyph

    def test_column_cap(self):
        occ = np.zeros((1, 100), dtype=int)
        assert len(render_occupancy(occ, max_cols=10)) == 10


class TestRenderTimeline:
    def test_rows_and_axis(self):
        text = render_timeline(
            [("A", [(0.0, 1.0, "1")]), ("B", [(1.0, 2.0, "1")])],
            t_end=2.0,
            width=20,
        )
        lines = text.splitlines()
        assert lines[0].startswith("A |")
        assert lines[1].startswith("B |")
        assert "0" in lines[2] and "2" in lines[2]

    def test_empty(self):
        assert render_timeline([]) == ""

    def test_from_application_runs(self):
        spec = ApplicationSpec("X", [FunctionSpec("X1", 1, 1, 1.0)])
        record = ApplicationRun(spec)
        run = FunctionRun("X", spec.functions[0])
        run.configured_at = 0.5
        run.started_at = 1.0
        run.finished_at = 2.0
        record.runs.append(run)
        record.finished_at = 2.0
        rows = timeline_from_application_runs([record])
        assert rows[0][0] == "X"
        glyphs = {seg[2] for seg in rows[0][1]}
        assert "1" in glyphs and "~" in glyphs
