"""Differential suite: the incremental engine vs. the reference sweep.

The incremental engine is a correctness-critical rewrite of the
manager's hot path, so this suite holds it *observationally identical*
to full recomputation along randomized alloc/release histories:

* property-based (hypothesis) histories on random grids — after every
  single mutation the MER sets, ``fits()``, ``rectangles_fitting()``
  and the fragmentation metrics must match;
* a seeded long-run churn at the XCV200 grid (28x42) of more than 1000
  steps — the acceptance bar for the engine swap;
* fit-heuristic equivalence: the index path of first/best/bottom-left
  returns the same rectangle as the grid path in every reachable state;
* end-to-end: a full scheduler scenario per engine yields equal
  metrics, and the manager stack can never observe a stale MER view.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

pytestmark = pytest.mark.slow

from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.device.geometry import Rect
from repro.placement import metrics
from repro.placement.fit import FIT_ALGORITHMS
from repro.placement.free_space import (
    FREE_SPACE_NAMES,
    FreeSpaceManager,
    make_free_space,
    maximal_empty_rectangles,
)
from repro.placement.incremental import IncrementalFreeSpace


def reference_mers(occupancy: np.ndarray) -> set[Rect]:
    """The ground truth the engines are compared against."""
    return set(maximal_empty_rectangles(occupancy))


def drive(engine, rng, steps: int, max_h: int, max_w: int,
          check_every: int = 1, on_check=None) -> int:
    """Random alloc/release churn against one engine.

    Placement decisions derive only from the engine's own MER set, so
    the same seed drives the same history on any correct engine.
    Returns the number of mutations performed.
    """
    rows, cols = engine.occupancy.shape
    placed: dict[int, Rect] = {}
    owner = 0
    mutations = 0
    for step in range(steps):
        release = placed and (rng.random() < 0.45
                              or engine.free_area() < max_h * max_w)
        if release:
            victim = sorted(placed)[rng.randrange(len(placed))]
            engine.release(placed.pop(victim))
        else:
            h = rng.randint(1, min(max_h, rows))
            w = rng.randint(1, min(max_w, cols))
            fitting = engine.rectangles_fitting(h, w)
            if not fitting:
                continue
            host = min(fitting, key=lambda r: (r.row, r.col))
            rect = Rect(host.row, host.col, h, w)
            owner += 1
            engine.allocate(rect, owner)
            placed[owner] = rect
        mutations += 1
        if on_check is not None and mutations % check_every == 0:
            on_check(engine)
    return mutations


def assert_engine_matches_reference(engine) -> None:
    """One full observational comparison at the current state."""
    occ = engine.occupancy
    ref = reference_mers(occ)
    assert set(engine.mers) == ref
    assert engine.free_area() == int((occ == 0).sum())
    for h, w in ((1, 1), (2, 3), (4, 4), (3, 7)):
        expect = any(r.height >= h and r.width >= w for r in ref)
        assert engine.fits(h, w) == expect
        assert set(engine.rectangles_fitting(h, w)) == {
            r for r in ref if r.height >= h and r.width >= w
        }
    assert metrics.fragmentation_index(occ, index=engine) == \
        pytest.approx(metrics.fragmentation_index(occ))
    assert metrics.average_free_rectangle(occ, index=engine) == \
        pytest.approx(metrics.average_free_rectangle(occ))
    requests = [(1, 2), (3, 3), (5, 2)]
    assert metrics.satisfiable_fraction(occ, requests, index=engine) == \
        pytest.approx(metrics.satisfiable_fraction(occ, requests))


class TestPropertyDifferential:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(2, 8), st.integers(2, 8),
        st.integers(0, 2 ** 16),
    )
    def test_random_histories_match_reference(self, rows, cols, seed):
        import random

        rng = random.Random(seed)
        occ = np.zeros((rows, cols), dtype=np.int32)
        engine = IncrementalFreeSpace(occ)
        drive(engine, rng, steps=25, max_h=rows, max_w=cols,
              on_check=lambda e: assert_engine_matches_reference(e))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2 ** 16))
    def test_engines_mirror_each_other(self, seed):
        """Same seed, either engine: identical placement histories and
        identical final grids."""
        import random

        grids = []
        for name in FREE_SPACE_NAMES:
            occ = np.zeros((6, 9), dtype=np.int32)
            engine = make_free_space(name, occ)
            drive(engine, random.Random(seed), steps=30, max_h=4, max_w=5)
            grids.append(occ.copy())
        assert (grids[0] == grids[1]).all()

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(2, 7), st.integers(2, 7), st.integers(0, 2 ** 12),
        st.integers(1, 4), st.integers(1, 4),
    )
    def test_fit_heuristics_equal_on_index_and_grid(self, rows, cols,
                                                    pattern, h, w):
        rng = np.random.RandomState(pattern)
        occ = (rng.rand(rows, cols) < 0.4).astype(np.int32)
        engine = IncrementalFreeSpace(occ)
        for name, fit in FIT_ALGORITHMS.items():
            assert fit(occ, h, w) == fit(occ, h, w, index=engine), name


class TestLongRunChurn:
    """The acceptance bar: >= 1000 randomized alloc/release steps on
    the XCV200 grid with identical MER sets at every step."""

    def test_thousand_step_churn_at_xcv200_grid(self):
        import random

        rng = random.Random(20030301)
        occ = np.zeros((28, 42), dtype=np.int32)
        engine = IncrementalFreeSpace(occ)
        checked = 0

        def check(eng):
            nonlocal checked
            assert set(eng.mers) == reference_mers(eng.occupancy)
            assert eng.free_area() == int((eng.occupancy == 0).sum())
            checked += 1

        mutations = drive(engine, rng, steps=1300, max_h=8, max_w=10,
                          on_check=check)
        assert mutations >= 1000 and checked == mutations
        # Close with the full observational battery.
        assert_engine_matches_reference(engine)

    def test_recompute_engine_stays_reference_equal(self):
        import random

        rng = random.Random(42)
        occ = np.zeros((12, 16), dtype=np.int32)
        engine = FreeSpaceManager(occ)
        drive(engine, rng, steps=120, max_h=6, max_w=6, check_every=10,
              on_check=lambda e: assert_engine_matches_reference(e))


class TestManagerStack:
    """The stale-cache footgun must be unreachable from the manager."""

    @pytest.mark.parametrize("engine_name", FREE_SPACE_NAMES)
    def test_manager_mutations_keep_index_fresh(self, engine_name):
        fabric = Fabric(device("XC2S30"), free_space=engine_name)
        manager = LogicSpaceManager(
            fabric, policy=RearrangePolicy.CONCURRENT
        )
        outcomes = []
        for owner in range(1, 9):
            outcomes.append(manager.request(3, 4, owner))
            assert set(fabric.free_space.mers) == \
                reference_mers(fabric.occupancy)
        for owner in (2, 5, 7):
            manager.release(owner)
            assert set(fabric.free_space.mers) == \
                reference_mers(fabric.occupancy)
        # A rearrangement (move_region path) must also keep it fresh.
        manager.request(6, 6, 99)
        assert set(fabric.free_space.mers) == reference_mers(fabric.occupancy)

    def test_fabric_move_region_updates_index(self):
        fabric = Fabric(device("XC2S15"), free_space="incremental")
        fabric.allocate_region(Rect(0, 0, 3, 3), 1)
        fabric.move_region(Rect(0, 0, 3, 3), Rect(2, 2, 3, 3), 1)
        assert set(fabric.free_space.mers) == reference_mers(fabric.occupancy)
        # Overlapping slide (the staged nearby move of the paper).
        fabric.move_region(Rect(2, 2, 3, 3), Rect(2, 3, 3, 3), 1)
        assert set(fabric.free_space.mers) == reference_mers(fabric.occupancy)

    def test_engine_owns_mutations_and_validates(self):
        occ = np.zeros((4, 4), dtype=np.int32)
        for name in FREE_SPACE_NAMES:
            occ[:] = 0
            engine = make_free_space(name, occ)
            engine.allocate(Rect(0, 0, 2, 2), 7)
            assert occ[0, 0] == 7 and not engine.fits(4, 4)
            with pytest.raises(ValueError):
                engine.allocate(Rect(1, 1, 2, 2), 8)  # overlaps owner 7
            with pytest.raises(ValueError):
                engine.allocate(Rect(3, 3, 2, 2), 9)  # out of bounds
            with pytest.raises(ValueError):
                engine.allocate(Rect(2, 2, 1, 1), 0)  # 0 is the free marker
            engine.release(Rect(0, 0, 2, 2))
            assert engine.fits(4, 4) and occ[0, 0] == 0

    def test_rebuild_resyncs_after_external_mutation(self):
        """External writers get one documented escape hatch."""
        occ = np.zeros((5, 5), dtype=np.int32)
        for name in FREE_SPACE_NAMES:
            occ[:] = 0
            engine = make_free_space(name, occ)
            assert engine.fits(5, 5)
            occ[2, 2] = 3  # behind the engine's back
            engine.rebuild()
            assert not engine.fits(5, 5)
            assert set(engine.mers) == reference_mers(occ)
            assert engine.free_area() == 24


class TestScenarioEquivalence:
    def test_full_scenarios_agree_across_engines(self):
        """Both schedulers, all policies: the engine is invisible in
        the science."""
        from repro.campaign.runner import run_scenario
        from repro.campaign.spec import ScenarioSpec

        cases = [
            dict(device="XC2S15", policy="concurrent", workload="random",
                 seed=3, workload_params=(("n", 10),)),
            dict(device="XC2S15", policy="halt", workload="bursty",
                 seed=1, workload_params=(("n", 10),)),
            dict(device="XC2S30", policy="none", workload="codec-swap",
                 seed=2, workload_params=(("n_apps", 2),)),
        ]
        for case in cases:
            results = {
                name: run_scenario(ScenarioSpec(free_space=name, **case))
                for name in FREE_SPACE_NAMES
            }
            reference = results["recompute"]
            for name, result in results.items():
                for field in type(result).METRIC_FIELDS:
                    if field == "wall_seconds":
                        continue
                    assert getattr(result, field) == \
                        getattr(reference, field), (case, name, field)
