"""Unit tests for the rearrangement planner."""

import numpy as np
import pytest

from repro.device.geometry import Rect
from repro.core.defrag import DefragPlanner, RearrangementPlan
from repro.placement.compaction import apply_moves, footprints


def occupancy_with(*placements, shape=(10, 14)):
    occ = np.zeros(shape, dtype=int)
    for owner, rect in placements:
        occ[rect.row : rect.row_end, rect.col : rect.col_end] = owner
    return occ


class TestPlanner:
    def test_direct_fit_needs_no_moves(self):
        occ = occupancy_with((1, Rect(0, 0, 3, 3)))
        plan = DefragPlanner().plan(occ, 4, 4)
        assert plan is not None
        assert plan.moves == []
        assert plan.method == "none-needed"

    def test_insufficient_free_area_returns_none(self):
        occ = np.ones((4, 4), dtype=int)
        occ[0, 0] = 0
        assert DefragPlanner().plan(occ, 2, 2) is None

    def test_fragmented_space_consolidated(self):
        # Three pillars leave 2-wide gaps; an 8x4 request needs a
        # rearrangement.
        occ = occupancy_with(
            (1, Rect(0, 2, 10, 2)),
            (2, Rect(0, 6, 10, 2)),
            (3, Rect(0, 10, 10, 2)),
        )
        planner = DefragPlanner()
        assert planner.plan(occ, 8, 4) is not None

    def test_plan_target_actually_free_after_moves(self):
        occ = occupancy_with(
            (1, Rect(0, 2, 10, 2)),
            (2, Rect(0, 6, 10, 2)),
            (3, Rect(0, 10, 10, 2)),
        )
        plan = DefragPlanner().plan(occ, 8, 4)
        result = apply_moves(occ, plan.moves)
        target = plan.target
        view = result[
            target.row : target.row_end, target.col : target.col_end
        ]
        assert (view == 0).all()

    def test_all_functions_survive_plan(self):
        occ = occupancy_with(
            (1, Rect(0, 2, 10, 2)),
            (2, Rect(0, 6, 10, 2)),
            (3, Rect(0, 10, 10, 2)),
        )
        plan = DefragPlanner().plan(occ, 8, 4)
        result = apply_moves(occ, plan.moves)
        before = footprints(occ)
        after = footprints(result)
        assert set(after) == set(before)
        for owner in before:
            assert after[owner].area == before[owner].area

    def test_max_moves_respected(self):
        occ = occupancy_with(
            (1, Rect(0, 2, 10, 2)),
            (2, Rect(0, 6, 10, 2)),
            (3, Rect(0, 10, 10, 2)),
        )
        plan = DefragPlanner(max_moves=8).plan(occ, 8, 4)
        assert plan is not None
        assert len(plan.moves) <= 8

    def test_prefers_fewest_disturbed_functions(self):
        # A single small function blocks the top-left corner; evicting
        # just it is cheaper than compacting everything.
        occ = occupancy_with(
            (1, Rect(0, 2, 4, 2)),
            (2, Rect(6, 8, 4, 4)),
        )
        plan = DefragPlanner().plan(occ, 4, 6)
        assert plan is not None
        assert plan.disturbed_functions <= 1

    def test_validation_of_params(self):
        with pytest.raises(ValueError):
            DefragPlanner(max_moves=0)
        with pytest.raises(ValueError):
            DefragPlanner(max_candidates=0)


class TestRearrangementPlan:
    def test_moved_area_and_disturbed(self):
        from repro.placement.compaction import Move

        plan = RearrangementPlan(
            Rect(0, 0, 2, 2),
            [
                Move(1, Rect(0, 0, 2, 3), Rect(4, 4, 2, 3)),
                Move(1, Rect(4, 4, 2, 3), Rect(6, 6, 2, 3)),
                Move(2, Rect(2, 0, 1, 1), Rect(9, 9, 1, 1)),
            ],
            "eviction",
        )
        assert plan.moved_area == 13
        assert plan.disturbed_functions == 2
        assert "eviction" in str(plan)
