"""The perf harnesses as software: determinism and the regression guard.

Two things the benchmark layer now promises:

* ``bench_sched.bench_kernel`` pins one deterministic workload seed per
  (queue, ports) cell — two invocations replay identical histories, so
  event counts and admission outcomes are comparable run to run (the
  historical single shared seed also meant one pathological stream
  skewed every cell);
* ``bench_guard`` compares fresh smoke rates against the committed
  ``BENCH_*.json`` evidence and fails on any worse-than-``factor``
  move, in the right direction for each metric family (throughputs
  must not drop, per-op latencies must not rise), skipping keys present
  on only one side.

The guard's comparison logic is tested on canned payloads here; CI runs
the real thing (fresh smoke runs) as a separate job step.
"""

import importlib.util
from pathlib import Path

import pytest

_PERF = Path(__file__).resolve().parent.parent / "benchmarks" / "perf"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        name, _PERF / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench_sched = _load("bench_sched")
bench_guard = _load("bench_guard")


class TestKernelSeeding:
    def test_cell_seeds_distinct_and_stable(self):
        """Every (queue, ports) cell gets its own seed, and the mapping
        is a pure function — stable across processes and machines
        (CRC32, not ``hash``)."""
        from repro.sched.ports import PORT_MODEL_NAMES
        from repro.sched.queues import QUEUE_NAMES

        cells = [(q, p) for q in QUEUE_NAMES for p in PORT_MODEL_NAMES]
        seeds = [bench_sched.cell_seed(q, p) for q, p in cells]
        assert len(set(seeds)) == len(cells)
        assert seeds == [bench_sched.cell_seed(q, p) for q, p in cells]

    def test_two_smoke_runs_identical_event_counts(self):
        """The satellite acceptance: re-running the kernel bench
        replays every cell bit-for-bit — identical event counts and
        admission outcomes, only the wall clock may differ."""
        first = bench_sched.bench_kernel(15)
        second = bench_sched.bench_kernel(15)
        deterministic = [
            {k: row[k] for k in ("queue", "ports", "seed",
                                 "events_processed", "finished",
                                 "rejected")}
            for row in first
        ]
        assert deterministic == [
            {k: row[k] for k in ("queue", "ports", "seed",
                                 "events_processed", "finished",
                                 "rejected")}
            for row in second
        ]


class TestGuardRates:
    def test_sched_rates_flatten(self):
        payload = {
            "events": {"events_per_second": 50_000.0},
            "queues": [{"queue": "fifo", "ops_per_second": 1e6}],
            "kernel": [{"queue": "fifo", "ports": "serial",
                        "events_per_second": 4000.0}],
        }
        assert bench_guard.sched_rates(payload) == {
            "events/events_per_second": 50_000.0,
            "queues/fifo/ops_per_second": 1e6,
            "kernel/fifoxserial/events_per_second": 4000.0,
        }

    def test_freespace_rates_flatten(self):
        payload = {"micro": [
            {"grid": "XCV200",
             "us_per_op": {"recompute": 1800.0, "incremental": 110.0}},
        ]}
        assert bench_guard.freespace_rates(payload) == {
            "micro/XCV200/recompute/us_per_op": 1800.0,
            "micro/XCV200/incremental/us_per_op": 110.0,
        }

    def test_fleet_rates_flatten(self):
        payload = {
            "scaling": [{"fleet_size": 2, "events_per_second": 700.0}],
            "policies": [{"policy": "round-robin",
                          "events_per_second": 650.0}],
            "selection": [{"policy": "first-fit",
                           "decisions_per_second": 150_000.0}],
        }
        assert bench_guard.fleet_rates(payload) == {
            "scaling/size-2/events_per_second": 700.0,
            "policies/round-robin/events_per_second": 650.0,
            "selection/first-fit/decisions_per_second": 150_000.0,
        }

    def test_prefetch_rates_flatten_and_stalls_normalize(self):
        payload = {
            "codec_swap": [
                {"prefetch": "never", "events_per_second": 800.0,
                 "config_stall_seconds": 0.4},
                {"prefetch": "plan", "events_per_second": 900.0,
                 "config_stall_seconds": 0.3},
            ],
            "bursty": [],
        }
        assert bench_guard.prefetch_rates(payload) == {
            "codec_swap/never/events_per_second": 800.0,
            "codec_swap/plan/events_per_second": 900.0,
        }
        # Stall is exported as a ratio against the same payload's
        # `never` row, so smoke and full runs stay comparable.
        assert bench_guard.prefetch_stalls(payload) == {
            "codec_swap/plan/relative_config_stall": pytest.approx(0.75),
        }

    def test_prefetch_stalls_skip_degenerate_baseline(self):
        payload = {"codec_swap": [
            {"prefetch": "never", "events_per_second": 1.0,
             "config_stall_seconds": 0.0},
            {"prefetch": "cache", "events_per_second": 1.0,
             "config_stall_seconds": 0.0},
        ], "bursty": []}
        assert bench_guard.prefetch_stalls(payload) == {}

    def test_service_rates_split_by_direction(self):
        payload = {
            "flash_crowd": {
                "submissions_per_second": 800.0,
                "admission_latency_us": {"p50": 90.0, "p99": 1500.0},
            },
            "checkpoint": {"restore_ms": 5.0,
                           "roundtrip_identical": True},
            "http": {"requests_per_second": 2000.0},
        }
        assert bench_guard.service_throughputs(payload) == {
            "flash_crowd/submissions_per_second": 800.0,
            "http/requests_per_second": 2000.0,
        }
        assert bench_guard.service_latencies(payload) == {
            "flash_crowd/admission_latency_us/p99": 1500.0,
            "checkpoint/restore_ms": 5.0,
        }


class TestGuardCompare:
    BASE = {"a": 1000.0, "b": 200.0}

    def test_within_tolerance_passes(self):
        fresh = {"a": 400.0, "b": 190.0}  # 2.5x down: inside 3x
        assert bench_guard.compare(self.BASE, fresh, 3.0,
                                   higher_is_better=True) == []

    def test_throughput_drop_fails(self):
        fresh = {"a": 300.0, "b": 190.0}  # a dropped 3.3x
        failures = bench_guard.compare(self.BASE, fresh, 3.0,
                                       higher_is_better=True)
        assert len(failures) == 1 and failures[0].startswith("a:")

    def test_latency_rise_fails_in_other_direction(self):
        fresh = {"a": 3500.0, "b": 250.0}  # a rose 3.5x
        failures = bench_guard.compare(self.BASE, fresh, 3.0,
                                       higher_is_better=False)
        assert len(failures) == 1 and failures[0].startswith("a:")
        # The same move read as a throughput would *pass* — direction
        # matters.
        assert bench_guard.compare(self.BASE, fresh, 3.0,
                                   higher_is_better=True) == []

    def test_unshared_keys_skipped(self):
        fresh = {"a": 900.0, "new_cell": 5.0}
        assert bench_guard.compare(self.BASE, fresh, 3.0,
                                   higher_is_better=True) == []

    def test_degenerate_timings_skipped(self):
        fresh = {"a": 0.0, "b": 190.0}
        assert bench_guard.compare(self.BASE, fresh, 3.0,
                                   higher_is_better=True) == []


class TestKernelFloors:
    """Absolute floors on the committed kernel baseline itself."""

    @staticmethod
    def _cell(queue, ports, rate):
        return {"queue": queue, "ports": ports,
                "events_per_second": rate}

    def test_healthy_baseline_passes(self):
        payload = {"kernel": [
            self._cell("fifo", "serial", 6500.0),
            self._cell("backfill", "icap", 1100.0),
        ]}
        assert bench_guard.kernel_floor_failures(payload) == []

    def test_blanket_floor_catches_any_cell(self):
        payload = {"kernel": [self._cell("backfill", "icap", 900.0)]}
        failures = bench_guard.kernel_floor_failures(payload)
        assert len(failures) == 1
        assert "backfill/icap" in failures[0]

    def test_named_floor_is_stricter_than_blanket(self):
        # 5000 ev/s clears the blanket floor by 5x but not the cell's
        # own 6000 ev/s claim.
        payload = {"kernel": [self._cell("fifo", "serial", 5000.0)]}
        failures = bench_guard.kernel_floor_failures(payload)
        assert len(failures) == 1 and "fifo/serial" in failures[0]

    def test_committed_baseline_meets_its_floors(self):
        """The repo's own BENCH_sched.json honours every claim the
        guard enforces — the acceptance evidence, checked in CI."""
        import json

        payload = json.loads(
            (Path(__file__).parent.parent / "BENCH_sched.json")
            .read_text()
        )
        assert payload["kernel"], "committed baseline has no kernel grid"
        assert bench_guard.kernel_floor_failures(payload) == []

    def test_slow_committed_baseline_fails_the_cli(self, tmp_path):
        """The floor check runs against the *baseline*, so a healthy
        fresh run cannot mask a walked-back committed claim."""
        import json

        e2e = TestGuardEndToEnd()
        base = e2e._baselines(tmp_path)
        sched = json.loads((base / "BENCH_sched.json").read_text())
        sched["kernel"] = [self._cell("backfill", "icap", 500.0)]
        (base / "BENCH_sched.json").write_text(json.dumps(sched))
        paths = e2e._fresh(tmp_path, events=30_000.0, us=150.0)
        assert e2e._run(base, paths) == 1


class TestGuardEndToEnd:
    """The CLI on canned fresh payloads (no benchmark runs)."""

    def _baselines(self, tmp_path: Path) -> Path:
        import json

        (tmp_path / "BENCH_sched.json").write_text(json.dumps({
            "events": {"events_per_second": 60_000.0},
            "queues": [], "kernel": [],
        }))
        (tmp_path / "BENCH_freespace.json").write_text(json.dumps({
            "micro": [{"grid": "XCV200",
                       "us_per_op": {"incremental": 100.0}}],
        }))
        (tmp_path / "BENCH_fleet.json").write_text(json.dumps({
            "scaling": [{"fleet_size": 2,
                         "events_per_second": 700.0}],
            "policies": [], "selection": [],
        }))
        (tmp_path / "BENCH_service.json").write_text(json.dumps({
            "flash_crowd": {"submissions_per_second": 800.0,
                            "admission_latency_us": {"p99": 1000.0}},
            "checkpoint": {"restore_ms": 5.0,
                           "roundtrip_identical": True},
            "http": {"requests_per_second": 2000.0},
        }))
        (tmp_path / "BENCH_prefetch.json").write_text(json.dumps({
            "codec_swap": [
                {"prefetch": "never", "events_per_second": 800.0,
                 "config_stall_seconds": 0.4},
                {"prefetch": "plan", "events_per_second": 900.0,
                 "config_stall_seconds": 0.25},
            ],
            "bursty": [],
        }))
        return tmp_path

    def _fresh(self, tmp_path: Path, events: float, us: float,
               fleet: float = 600.0, subs: float = 700.0,
               roundtrip: bool = True, plan_stall: float = 0.2):
        import json

        sched = tmp_path / "fresh_sched.json"
        sched.write_text(json.dumps(
            {"events": {"events_per_second": events},
             "queues": [], "kernel": []}
        ))
        free = tmp_path / "fresh_free.json"
        free.write_text(json.dumps(
            {"micro": [{"grid": "XCV200",
                        "us_per_op": {"incremental": us}}]}
        ))
        fleet_path = tmp_path / "fresh_fleet.json"
        fleet_path.write_text(json.dumps(
            {"scaling": [{"fleet_size": 2, "events_per_second": fleet}],
             "policies": [], "selection": []}
        ))
        service = tmp_path / "fresh_service.json"
        service.write_text(json.dumps(
            {"flash_crowd": {"submissions_per_second": subs,
                             "admission_latency_us": {"p99": 1200.0}},
             "checkpoint": {"restore_ms": 6.0,
                            "roundtrip_identical": roundtrip},
             "http": {"requests_per_second": 1800.0}}
        ))
        prefetch = tmp_path / "fresh_prefetch.json"
        prefetch.write_text(json.dumps(
            {"codec_swap": [
                {"prefetch": "never", "events_per_second": 750.0,
                 "config_stall_seconds": 0.5},
                {"prefetch": "plan", "events_per_second": 850.0,
                 "config_stall_seconds": plan_stall},
            ], "bursty": []}
        ))
        return sched, free, fleet_path, service, prefetch

    def _run(self, base: Path, paths) -> int:
        sched, free, fleet, service, prefetch = paths
        return bench_guard.main([
            "--baseline-dir", str(base),
            "--fresh-sched", str(sched),
            "--fresh-freespace", str(free),
            "--fresh-fleet", str(fleet),
            "--fresh-service", str(service),
            "--fresh-prefetch", str(prefetch),
        ])

    def test_clean_comparison_exits_zero(self, tmp_path):
        base = self._baselines(tmp_path)
        paths = self._fresh(tmp_path, events=30_000.0, us=150.0)
        assert self._run(base, paths) == 0

    def test_regression_exits_nonzero(self, tmp_path):
        base = self._baselines(tmp_path)
        paths = self._fresh(tmp_path, events=10_000.0, us=450.0)
        assert self._run(base, paths) == 1

    def test_fleet_throughput_drop_caught(self, tmp_path):
        base = self._baselines(tmp_path)
        paths = self._fresh(tmp_path, events=30_000.0, us=150.0,
                            fleet=100.0)
        assert self._run(base, paths) == 1

    def test_prefetch_stall_rise_caught(self, tmp_path):
        """A mode whose relative config stall climbs past tolerance
        (the cache quietly stopped helping) fails the guard."""
        base = self._baselines(tmp_path)
        # Baseline plan/never stall ratio is 0.25/0.4 = 0.625; the
        # fresh 0.99/0.5 = 1.98 is 3.2x worse and must fail, while the
        # default 0.2/0.5 = 0.4 passes (see the cases above).
        paths = self._fresh(tmp_path, events=30_000.0, us=150.0,
                            plan_stall=0.99)
        assert self._run(base, paths) == 1

    def test_checkpoint_divergence_fails_even_when_fast(self, tmp_path):
        """``roundtrip_identical: false`` is a correctness failure the
        guard must flag regardless of every rate being healthy."""
        base = self._baselines(tmp_path)
        paths = self._fresh(tmp_path, events=30_000.0, us=150.0,
                            roundtrip=False)
        assert self._run(base, paths) == 1
