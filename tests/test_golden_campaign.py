"""Golden regression: fixed campaign grids, field by field.

Scheduler and placement refactors must not silently change the science.
Two snapshots are pinned:

* ``campaign_24.json`` — the canonical 24-run grid (the CLI's default
  axes: 2 devices x 3 policies x 2 workloads x 2 seeds, sized down to
  stay fast);
* ``campaign_defrag.json`` — an 8-run defrag-axis grid (1 device x
  concurrent x the fragmentation-hostile workload x 2 seeds x 4 defrag
  trigger policies), so proactive-consolidation regressions are caught
  the same way.

When a change *intentionally* moves the numbers (a new heuristic, a
cost-model fix), regenerate the snapshots and review the diff like any
other code change:

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_campaign.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.campaign.aggregate import CampaignResult
from repro.campaign.runner import ScenarioResult, run_campaign
from repro.campaign.spec import CampaignSpec

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "campaign_24.json"
GOLDEN_DEFRAG_PATH = GOLDEN_DIR / "campaign_defrag.json"

#: The CLI's default grid axes with a fast task count; any edit here
#: requires regenerating the snapshot.
GOLDEN_GRID = dict(
    devices=["XC2S15", "XC2S30"],
    policies=["none", "halt", "concurrent"],
    workloads=["random", "bursty"],
    seeds=[0, 1],
    workload_params={"random": {"n": 10}, "bursty": {"n": 10}},
)

#: The defrag-axis grid: every trigger policy over the hostile workload.
GOLDEN_DEFRAG_GRID = dict(
    devices=["XC2S15"],
    policies=["concurrent"],
    workloads=["fragmenting"],
    seeds=[0, 1],
    defrags=["never", "on-failure", "threshold", "idle"],
    workload_params={"fragmenting": {"n": 14}},
)

#: Integer-valued metric columns are compared exactly; the rest admit
#: only float-representation noise.
EXACT_FIELDS = {
    "finished", "rejected", "rearrangements", "moves",
    "proactive_defrags", "defrag_moves",
}


def run_grid(grid: dict) -> list[dict]:
    """Execute a grid serially and export comparable rows."""
    spec = CampaignSpec(**grid)
    results = run_campaign(spec.expand(), jobs=1)
    rows = []
    for result in results:
        row = result.to_row()
        row.pop("wall_seconds")  # measurement noise, never compared
        rows.append(row)
    return rows


def run_golden_grid() -> list[dict]:
    """The canonical 24-run grid (kept as a named helper: other suites
    import it as the reference execution of the default axes)."""
    return run_grid(GOLDEN_GRID)


def check_against_snapshot(rows: list[dict], path: Path) -> None:
    """Compare rows to the snapshot at ``path`` (or regenerate it)."""
    if os.environ.get("REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(rows, indent=2) + "\n")
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"golden snapshot {path.name} missing; "
        "run with REGEN_GOLDEN=1 to create it"
    )
    golden = json.loads(path.read_text())
    assert len(golden) == len(rows)
    for index, (expected, actual) in enumerate(zip(golden, rows)):
        assert expected.keys() == actual.keys(), f"run {index}: columns"
        for field, want in expected.items():
            got = actual[field]
            context = f"run {index} ({actual['device']}/" \
                      f"{actual['policy']}/{actual['workload']}/" \
                      f"{actual['defrag']}/seed {actual['seed']}): {field}"
            if isinstance(want, float) and field not in EXACT_FIELDS:
                assert got == pytest.approx(want, rel=1e-9, abs=1e-12), context
            else:
                assert got == want, context


def test_golden_campaign_snapshot():
    rows = run_golden_grid()
    assert len(rows) == 24
    check_against_snapshot(rows, GOLDEN_PATH)


def test_golden_defrag_snapshot():
    rows = run_grid(GOLDEN_DEFRAG_GRID)
    assert len(rows) == 8
    # The axis must genuinely vary: proactive policies fire on this
    # workload, reactive-only ones never do.
    by_defrag: dict[str, int] = {}
    for row in rows:
        by_defrag[row["defrag"]] = (
            by_defrag.get(row["defrag"], 0) + row["proactive_defrags"]
        )
    assert by_defrag["never"] == 0
    assert by_defrag["on-failure"] == 0
    assert by_defrag["threshold"] > 0
    assert by_defrag["idle"] > 0
    check_against_snapshot(rows, GOLDEN_DEFRAG_PATH)


def test_golden_covers_every_cell_once():
    """The snapshot grid is the full cartesian product: every
    (device, policy, workload, seed) combination appears exactly once."""
    rows = run_golden_grid()
    cells = {(r["device"], r["policy"], r["workload"], r["seed"])
             for r in rows}
    assert len(cells) == 24
    # And the summary pools exactly the two seeds per cell.
    spec = CampaignSpec(**GOLDEN_GRID)
    summary = CampaignResult(run_campaign(spec.expand(), jobs=1)).summary_table()
    assert len(summary.rows) == 12
    assert all(row[summary.headers.index("seeds")] == "2"
               for row in summary.rows)


def test_golden_rows_expose_all_metric_fields():
    rows = run_golden_grid()
    metric_columns = set(ScenarioResult.METRIC_FIELDS) - {"wall_seconds"}
    assert metric_columns <= set(rows[0].keys())
