"""Golden regression: fixed campaign grids, field by field.

Scheduler and placement refactors must not silently change the science.
Three snapshots are pinned:

* ``campaign_24.json`` — the canonical 24-run grid (the CLI's default
  axes: 2 devices x 3 policies x 2 workloads x 2 seeds, sized down to
  stay fast);
* ``campaign_defrag.json`` — an 8-run defrag-axis grid (1 device x
  concurrent x the fragmentation-hostile workload x 2 seeds x 4 defrag
  trigger policies), so proactive-consolidation regressions are caught
  the same way;
* ``campaign_sched.json`` — the 24-run queue-discipline x port-model
  grid over a priority-mixed impatient stream, pinning the scheduling
  kernel's policy layers the same way;
* ``campaign_fleet.json`` — a 16-run fleet-size x device-selection
  policy grid over the surge workload, pinning the multi-fabric layer
  (and, together with ``tests/test_fleet.py``'s force-fleet run of the
  24-run grid, the claim that a 1-member fleet changes nothing).

The first two grids run entirely on the default ``fifo`` + ``serial``
policies, so they double as the proof that the kernel refactor is
behaviour-preserving: their rows must stay bit-identical.

When a change *intentionally* moves the numbers (a new heuristic, a
cost-model fix), regenerate the snapshots and review the diff like any
other code change:

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_campaign.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.campaign.aggregate import CampaignResult
from repro.campaign.runner import ScenarioResult, run_campaign
from repro.campaign.spec import CampaignSpec

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "campaign_24.json"
GOLDEN_DEFRAG_PATH = GOLDEN_DIR / "campaign_defrag.json"
GOLDEN_SCHED_PATH = GOLDEN_DIR / "campaign_sched.json"
GOLDEN_FLEET_PATH = GOLDEN_DIR / "campaign_fleet.json"
GOLDEN_FAULTS_PATH = GOLDEN_DIR / "campaign_faults.json"

#: The CLI's default grid axes with a fast task count; any edit here
#: requires regenerating the snapshot.
GOLDEN_GRID = dict(
    devices=["XC2S15", "XC2S30"],
    policies=["none", "halt", "concurrent"],
    workloads=["random", "bursty"],
    seeds=[0, 1],
    workload_params={"random": {"n": 10}, "bursty": {"n": 10}},
)

#: The defrag-axis grid: every trigger policy over the hostile workload.
GOLDEN_DEFRAG_GRID = dict(
    devices=["XC2S15"],
    policies=["concurrent"],
    workloads=["fragmenting"],
    seeds=[0, 1],
    defrags=["never", "on-failure", "threshold", "idle"],
    workload_params={"fragmenting": {"n": 14}},
)

#: The scheduling-policy grid: every queue discipline x every port
#: model over an impatient priority-mixed stream (1 device x concurrent
#: x fragmenting x 2 seeds x 4 queues x 3 port models = 24 runs).
GOLDEN_SCHED_GRID = dict(
    devices=["XC2S15"],
    policies=["concurrent"],
    workloads=["fragmenting"],
    seeds=[0, 1],
    queues=["fifo", "priority", "sjf", "backfill"],
    ports=["serial", "multi-2", "icap"],
    workload_params={"fragmenting": {"n": 25, "priority_levels": 3}},
)

#: The fleet grid: fleet-size x device-selection policy over the surge
#: workload built to overwhelm one device but not a few (1 device x
#: concurrent x fleet-surge x 2 seeds x 2 fleet sizes x 4 policies =
#: 16 runs).
GOLDEN_FLEET_GRID = dict(
    devices=["XC2S15"],
    policies=["concurrent"],
    workloads=["fleet-surge"],
    seeds=[0, 1],
    fleet_sizes=[2, 4],
    device_policies=["first-fit", "round-robin", "least-loaded",
                     "best-fit"],
    workload_params={"fleet-surge": {"n": 30}},
)

#: The fault grid: every fault plan over the surge workload on a
#: 2-member fleet (1 device x concurrent x fleet-surge x 2 seeds x
#: 4 fault plans = 8 runs).  Rows carry the sparse failover columns
#: (relocated / restarted / dropped / recovery_seconds), so this is
#: the committed record of what each fault plan costs.
GOLDEN_FAULTS_GRID = dict(
    devices=["XC2S15"],
    policies=["concurrent"],
    workloads=["fleet-surge"],
    seeds=[0, 1],
    fleet_sizes=[2],
    faults=["none", "kill-member", "outbreak", "flaky-port"],
    workload_params={"fleet-surge": {"n": 24}},
)

#: Integer-valued metric columns are compared exactly; the rest admit
#: only float-representation noise.
EXACT_FIELDS = {
    "finished", "rejected", "rearrangements", "moves",
    "proactive_defrags", "defrag_moves",
    "faults_injected", "members_lost", "relocated", "restarted",
    "dropped",
}


def run_grid(grid: dict) -> list[dict]:
    """Execute a grid serially and export comparable rows.

    Rows go through :meth:`CampaignResult.rows`, the same path the
    CSV/JSON exports use: sparse axis columns (queue/ports) are
    back-filled for grids that sweep them and absent — bit-identical to
    the historical shape — for grids that do not.
    """
    spec = CampaignSpec(**grid)
    rows = CampaignResult(run_campaign(spec.expand(), jobs=1)).rows()
    for row in rows:
        row.pop("wall_seconds")  # measurement noise, never compared
    return rows


def run_golden_grid() -> list[dict]:
    """The canonical 24-run grid (kept as a named helper: other suites
    import it as the reference execution of the default axes)."""
    return run_grid(GOLDEN_GRID)


def check_against_snapshot(rows: list[dict], path: Path) -> None:
    """Compare rows to the snapshot at ``path`` (or regenerate it)."""
    if os.environ.get("REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(rows, indent=2) + "\n")
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"golden snapshot {path.name} missing; "
        "run with REGEN_GOLDEN=1 to create it"
    )
    golden = json.loads(path.read_text())
    assert len(golden) == len(rows)
    for index, (expected, actual) in enumerate(zip(golden, rows)):
        assert expected.keys() == actual.keys(), f"run {index}: columns"
        for field, want in expected.items():
            got = actual[field]
            context = f"run {index} ({actual['device']}/" \
                      f"{actual['policy']}/{actual['workload']}/" \
                      f"{actual['defrag']}/seed {actual['seed']}): {field}"
            if isinstance(want, float) and field not in EXACT_FIELDS:
                assert got == pytest.approx(want, rel=1e-9, abs=1e-12), context
            else:
                assert got == want, context


def test_golden_campaign_snapshot():
    rows = run_golden_grid()
    assert len(rows) == 24
    check_against_snapshot(rows, GOLDEN_PATH)


def test_golden_defrag_snapshot():
    rows = run_grid(GOLDEN_DEFRAG_GRID)
    assert len(rows) == 8
    # The axis must genuinely vary: proactive policies fire on this
    # workload, reactive-only ones never do.
    by_defrag: dict[str, int] = {}
    for row in rows:
        by_defrag[row["defrag"]] = (
            by_defrag.get(row["defrag"], 0) + row["proactive_defrags"]
        )
    assert by_defrag["never"] == 0
    assert by_defrag["on-failure"] == 0
    assert by_defrag["threshold"] > 0
    assert by_defrag["idle"] > 0
    check_against_snapshot(rows, GOLDEN_DEFRAG_PATH)


def test_golden_sched_snapshot():
    rows = run_grid(GOLDEN_SCHED_GRID)
    assert len(rows) == 24
    # The new axes are genuine columns of the exported rows ...
    assert {row["queue"] for row in rows} == {
        "fifo", "priority", "sjf", "backfill"
    }
    assert {row["ports"] for row in rows} == {"serial", "multi-2", "icap"}
    # ... and genuine knobs: admission order moves the science, and the
    # port models change how much channel time the same traffic costs.
    waiting = {}
    busy = {}
    for row in rows:
        waiting.setdefault(row["queue"], set()).add(round(row["mean_waiting"], 9))
        busy.setdefault(row["ports"], set()).add(
            round(row["port_busy_seconds"], 9)
        )
    assert any(waiting["fifo"] != waiting[q]
               for q in ("priority", "sjf", "backfill"))
    assert busy["serial"] != busy["icap"]
    check_against_snapshot(rows, GOLDEN_SCHED_PATH)


def test_golden_fleet_snapshot():
    rows = run_grid(GOLDEN_FLEET_GRID)
    assert len(rows) == 16
    # The fleet axes are genuine columns of the exported rows ...
    assert {row["fleet_size"] for row in rows} == {2, 4}
    assert {row["device_policy"] for row in rows} == {
        "first-fit", "round-robin", "least-loaded", "best-fit"
    }
    # ... and genuine knobs: adding fabrics absorbs the surge (fewer
    # rejections at every selection policy), and the selection policy
    # itself moves the science at a fixed fleet size.
    rejected: dict[tuple[int, str], float] = {}
    for row in rows:
        key = (row["fleet_size"], row["device_policy"])
        rejected[key] = rejected.get(key, 0) + row["rejected"]
    for policy in ("first-fit", "round-robin", "least-loaded",
                   "best-fit"):
        assert rejected[(2, policy)] > rejected[(4, policy)]
    assert len({rejected[(2, p)] for p in
                ("first-fit", "round-robin", "least-loaded")}) > 1
    check_against_snapshot(rows, GOLDEN_FLEET_PATH)


def test_golden_faults_snapshot():
    rows = run_grid(GOLDEN_FAULTS_GRID)
    assert len(rows) == 8
    # The fault axis is a genuine column of the exported rows ...
    assert {row["faults"] for row in rows} == {
        "none", "kill-member", "outbreak", "flaky-port"
    }
    # ... the failover columns ride along for the whole swept grid ...
    for row in rows:
        for field in ("relocated", "restarted", "dropped",
                      "recovery_seconds", "port_retry_seconds"):
            assert field in row
    # ... and the plans do what their names say: only kill-member
    # loses members, only flaky-port burns retry seconds, and the
    # fault-free baseline stays spotless.
    by_plan: dict[str, list[dict]] = {}
    for row in rows:
        by_plan.setdefault(row["faults"], []).append(row)
    for row in by_plan["none"]:
        assert row["faults_injected"] == 0
        assert row["members_lost"] == 0
    for row in by_plan["kill-member"]:
        assert row["members_lost"] == 1
        assert row["dropped"] == 0  # homogeneous fleet: nothing is lost
    for row in by_plan["outbreak"]:
        assert row["faults_injected"] == 2 and row["members_lost"] == 0
    for row in by_plan["flaky-port"]:
        assert row["port_retry_seconds"] == pytest.approx(2.4)
    check_against_snapshot(rows, GOLDEN_FAULTS_PATH)


@pytest.mark.parametrize(
    "device_policy", ["first-fit", "round-robin", "least-loaded",
                      "best-fit"]
)
def test_fleet_grid_serial_equals_parallel(device_policy):
    """Fleet scheduling stays a pure function of the spec: the parallel
    pool returns the exact serial result list for every selection
    policy."""
    grid = dict(GOLDEN_FLEET_GRID)
    grid["device_policies"] = [device_policy]
    specs = CampaignSpec(**grid).expand()
    assert run_campaign(specs, jobs=2) == run_campaign(specs, jobs=1)


@pytest.mark.parametrize("queue", ["fifo", "priority", "sjf", "backfill"])
def test_sched_grid_serial_equals_parallel(queue):
    """Every discipline stays a pure function of the spec: the parallel
    pool returns the exact serial result list."""
    grid = dict(GOLDEN_SCHED_GRID)
    grid["queues"] = [queue]
    grid["ports"] = ["serial", "multi-2"]
    specs = CampaignSpec(**grid).expand()
    assert run_campaign(specs, jobs=2) == run_campaign(specs, jobs=1)


def test_golden_covers_every_cell_once():
    """The snapshot grid is the full cartesian product: every
    (device, policy, workload, seed) combination appears exactly once."""
    rows = run_golden_grid()
    cells = {(r["device"], r["policy"], r["workload"], r["seed"])
             for r in rows}
    assert len(cells) == 24
    # And the summary pools exactly the two seeds per cell.
    spec = CampaignSpec(**GOLDEN_GRID)
    summary = CampaignResult(run_campaign(spec.expand(), jobs=1)).summary_table()
    assert len(summary.rows) == 12
    assert all(row[summary.headers.index("seeds")] == "2"
               for row in summary.rows)


def test_golden_rows_expose_all_metric_fields():
    rows = run_golden_grid()
    metric_columns = set(ScenarioResult.METRIC_FIELDS) - {"wall_seconds"}
    assert metric_columns <= set(rows[0].keys())
