"""Unit tests for partial bitstreams and the configuration controller."""

import pytest

from repro.device.bitstream import (
    ConfigurationController,
    FrameWrite,
    PartialBitstream,
    decode_far,
    encode_far,
)
from repro.device.config_memory import ColumnKind, ConfigMemory, FrameAddress
from repro.device.devices import device, synthetic_device


@pytest.fixture
def memory():
    return ConfigMemory(device("XCV200"))


class TestFarCodec:
    def test_roundtrip_all_kinds(self):
        for kind in ColumnKind:
            addr = FrameAddress(kind, 17, 33)
            assert decode_far(encode_far(addr)) == addr

    def test_distinct_addresses_distinct_words(self):
        a = encode_far(FrameAddress(ColumnKind.CLB, 1, 2))
        b = encode_far(FrameAddress(ColumnKind.CLB, 2, 1))
        assert a != b


class TestPartialBitstream:
    def test_word_count_includes_pad_frame(self, memory):
        stream = PartialBitstream(memory)
        payload = bytes(memory.frame_bytes)
        stream.add_frame_writes(
            [FrameWrite(FrameAddress(ColumnKind.CLB, 0, 0), payload)]
        )
        stream.finalize()
        fdri_words = sum(
            len(p.payload) for p in stream.packets if p.register == "FDRI"
        )
        # One data frame plus one pad frame.
        assert fdri_words == 2 * memory.device.frame_words

    def test_consecutive_minors_merge_into_one_burst(self, memory):
        payload = bytes(memory.frame_bytes)
        stream = PartialBitstream(memory)
        stream.add_frame_writes(
            [
                FrameWrite(FrameAddress(ColumnKind.CLB, 0, m), payload)
                for m in range(4)
            ]
        )
        fdri = [p for p in stream.packets if p.register == "FDRI"]
        assert len(fdri) == 1

    def test_noncontiguous_minors_split_bursts(self, memory):
        payload = bytes(memory.frame_bytes)
        stream = PartialBitstream(memory)
        stream.add_frame_writes(
            [
                FrameWrite(FrameAddress(ColumnKind.CLB, 0, 0), payload),
                FrameWrite(FrameAddress(ColumnKind.CLB, 0, 5), payload),
            ]
        )
        fdri = [p for p in stream.packets if p.register == "FDRI"]
        assert len(fdri) == 2

    def test_finalize_freezes(self, memory):
        stream = PartialBitstream(memory).finalize()
        with pytest.raises(RuntimeError):
            stream.add_column_write(ColumnKind.CLB, 0, [])

    def test_wrong_frame_size_rejected(self, memory):
        stream = PartialBitstream(memory)
        with pytest.raises(ValueError):
            stream.add_frame_writes(
                [FrameWrite(FrameAddress(ColumnKind.CLB, 0, 0), b"no")]
            )

    def test_describe_mentions_words(self, memory):
        stream = PartialBitstream(memory, "unit").finalize()
        assert "unit" in stream.describe()
        assert "words" in stream.describe()


class TestConfigurationController:
    def test_apply_writes_frames(self, memory):
        payload = b"\x5A" * memory.frame_bytes
        stream = PartialBitstream(memory, "t")
        stream.add_frame_writes(
            [FrameWrite(FrameAddress(ColumnKind.CLB, 7, 3), payload)]
        )
        stream.finalize()
        ConfigurationController(memory).apply(stream)
        assert memory.peek_frame(FrameAddress(ColumnKind.CLB, 7, 3)) == payload

    def test_autoincrement_across_burst(self, memory):
        payloads = [
            bytes([i]) * memory.frame_bytes for i in range(1, 4)
        ]
        stream = PartialBitstream(memory, "t")
        stream.add_frame_writes(
            [
                FrameWrite(FrameAddress(ColumnKind.CLB, 2, 10 + i), p)
                for i, p in enumerate(payloads)
            ]
        )
        stream.finalize()
        ConfigurationController(memory).apply(stream)
        for i, p in enumerate(payloads):
            assert memory.peek_frame(
                FrameAddress(ColumnKind.CLB, 2, 10 + i)
            ) == p

    def test_unfinalized_rejected(self, memory):
        stream = PartialBitstream(memory)
        with pytest.raises(RuntimeError):
            ConfigurationController(memory).apply(stream)

    def test_crc_corruption_detected(self, memory):
        payload = bytes(memory.frame_bytes)
        stream = PartialBitstream(memory, "t")
        stream.add_frame_writes(
            [FrameWrite(FrameAddress(ColumnKind.CLB, 0, 0), payload)]
        )
        stream.finalize()
        # Corrupt one FDRI payload word after the CRC was computed.
        for pkt in stream.packets:
            if pkt.register == "FDRI":
                pkt.payload[0] ^= 0xDEADBEEF
                break
        with pytest.raises(ValueError, match="CRC"):
            ConfigurationController(memory).apply(stream)

    def test_device_mismatch_rejected(self):
        small = ConfigMemory(synthetic_device(4, 4))
        big = ConfigMemory(device("XCV200"))
        stream = PartialBitstream(small).finalize()
        with pytest.raises(ValueError, match="device"):
            ConfigurationController(big).apply(stream)

    def test_column_write_roundtrip(self, memory):
        frames = [
            bytes([m % 256]) * memory.frame_bytes for m in range(48)
        ]
        stream = PartialBitstream(memory, "col")
        stream.add_column_write(ColumnKind.CLB, 11, frames)
        stream.finalize()
        ConfigurationController(memory).apply(stream)
        assert memory.read_column(ColumnKind.CLB, 11) == frames
