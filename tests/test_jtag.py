"""Unit tests for the Boundary-Scan TAP and port timing."""

import pytest

from repro.device.jtag import (
    BoundaryScanPort,
    IR_LENGTH,
    SelectMapPort,
    TapController,
    TapState,
    TRANSITIONS,
)


class TestTapController:
    def test_reset_reaches_tlr_from_anywhere(self):
        tap = TapController()
        tap.clock(0)  # run-test/idle
        tap.clock(1)
        tap.clock(0)  # capture-dr
        tap.reset()
        assert tap.state is TapState.TEST_LOGIC_RESET

    def test_transition_table_is_total(self):
        for state, (t0, t1) in TRANSITIONS.items():
            assert isinstance(t0, TapState)
            assert isinstance(t1, TapState)
        assert len(TRANSITIONS) == 16

    def test_canonical_ir_walk(self):
        tap = TapController()
        tap.reset()
        tap.walk_to(TapState.RUN_TEST_IDLE)
        tap.walk_to(TapState.SHIFT_IR)
        assert tap.state is TapState.SHIFT_IR

    def test_shift_counts_cycles(self):
        tap = TapController()
        tap.reset()
        tap.walk_to(TapState.RUN_TEST_IDLE)
        tap.walk_to(TapState.SHIFT_DR)
        before = tap.cycles
        tap.shift(100)
        assert tap.cycles - before == 100
        assert tap.state is TapState.EXIT1_DR

    def test_shift_outside_shift_state_rejected(self):
        tap = TapController()
        tap.reset()
        with pytest.raises(RuntimeError):
            tap.shift(8)


class TestBoundaryScanPort:
    def test_one_bit_per_tck(self):
        port = BoundaryScanPort(tck_hz=20e6)
        before = port.cycles
        port.shift_data(1000)
        spent = port.cycles - before
        # 1000 data bits plus a handful of state-walk cycles.
        assert 1000 <= spent <= 1000 + 16

    def test_configure_timing_scales_with_words(self):
        port = BoundaryScanPort(tck_hz=20e6)
        t_small = port.configure(100)
        t_big = port.configure(10000)
        assert t_big > t_small * 50

    def test_configure_time_matches_bit_count(self):
        port = BoundaryScanPort(tck_hz=20e6)
        seconds = port.configure(1000)
        # 32000 payload bits at 20 MHz = 1.6 ms, plus protocol overhead.
        assert 1.6e-3 <= seconds < 1.7e-3

    def test_elapsed_accumulates(self):
        port = BoundaryScanPort(tck_hz=20e6)
        t1 = port.configure(500)
        t2 = port.configure(500)
        assert port.elapsed >= t1 + t2

    def test_invalid_tck_rejected(self):
        with pytest.raises(ValueError):
            BoundaryScanPort(tck_hz=0)

    def test_unknown_instruction_rejected(self):
        port = BoundaryScanPort()
        with pytest.raises(KeyError):
            port.load_instruction("NOT_AN_INSTRUCTION")

    def test_readback_costs_more_than_configure(self):
        a = BoundaryScanPort()
        b = BoundaryScanPort()
        tc = a.configure(1000)
        tr = b.readback(1000)
        assert tr > tc

    def test_instruction_length(self):
        assert IR_LENGTH == 5


class TestSelectMapPort:
    def test_much_faster_than_boundary_scan(self):
        # SelectMAP moves a byte per clock; Boundary Scan one bit per TCK.
        jtag = BoundaryScanPort(tck_hz=20e6)
        smap = SelectMapPort(clock_hz=50e6)
        words = 5000
        assert smap.configure(words) < jtag.configure(words) / 10

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            SelectMapPort(clock_hz=-1)

    def test_elapsed_accumulates(self):
        port = SelectMapPort()
        port.configure(100)
        port.configure(100)
        assert port.elapsed > 0
        assert port.stats.data_bits == 2 * 100 * 32
