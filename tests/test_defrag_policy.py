"""Unit tests for the proactive defragmentation subsystem.

Covers the trigger-policy layer (`repro.core.defrag_policy`), the
manager's `maybe_defrag` pass, the scheduler wiring (port charging,
metrics counters), and the application-flow fix: a stalled application
must be re-checked after a *proactive* defrag frees space, not only
after a finish event.
"""

import numpy as np
import pytest

from repro.core.defrag import DefragPlanner
from repro.core.defrag_policy import (
    DEFRAG_POLICY_NAMES,
    IdleDefrag,
    NeverDefrag,
    OnFailureDefrag,
    ThresholdDefrag,
    make_defrag_policy,
)
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.device.geometry import Rect
from repro.sched.scheduler import ApplicationFlowScheduler, OnlineTaskScheduler
from repro.sched.tasks import ApplicationSpec, FunctionSpec, Task
from repro.sched.workload import make_workload


def fragmented_manager(**kwargs) -> LogicSpaceManager:
    """An XC2S15 manager with four 8x2 residents and 8x1 free slivers.

    Free area is exactly 32 sites (four full-height single-column
    slivers), so an 8x4 request is satisfiable by area but only after
    compaction; every reactive plan needs more than one move, so a
    planner with ``max_moves=1`` cannot serve it reactively.
    """
    manager = LogicSpaceManager(
        Fabric(device("XC2S15")),
        planner=DefragPlanner(max_moves=1),
        **kwargs,
    )
    for owner, col in enumerate((0, 3, 6, 9), start=1):
        manager.fabric.allocate_region(Rect(0, col, 8, 2), owner)
    return manager


# -- policy registry ---------------------------------------------------------


def test_registry_names_round_trip():
    for name in DEFRAG_POLICY_NAMES:
        assert make_defrag_policy(name).name == name


def test_unknown_policy_rejected():
    with pytest.raises(KeyError, match="unknown defrag policy"):
        make_defrag_policy("eager")


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ThresholdDefrag(threshold=0.0)
    with pytest.raises(ValueError):
        IdleDefrag(min_fragmentation=1.5)
    with pytest.raises(ValueError):
        OnFailureDefrag(cooldown=-1.0)


def test_reactive_and_proactive_flags():
    assert not NeverDefrag().reactive
    assert not NeverDefrag().proactive
    assert OnFailureDefrag().reactive
    assert not OnFailureDefrag().proactive
    assert ThresholdDefrag().proactive
    assert IdleDefrag().proactive


def test_threshold_trigger_and_cooldown():
    policy = ThresholdDefrag(threshold=0.5, cooldown=1.0)
    below = dict(fragmentation=0.4, free_area=10, now=5.0, port_idle=True)
    above = dict(fragmentation=0.6, free_area=10, now=5.0, port_idle=True)
    assert not policy.should_trigger(**below)
    assert policy.should_trigger(**above)
    policy.note_attempt(5.0)
    assert not policy.should_trigger(**above)
    assert policy.should_trigger(**{**above, "now": 6.0})


def test_idle_trigger_requires_idle_port():
    policy = IdleDefrag(min_fragmentation=0.1)
    busy = dict(fragmentation=0.5, free_area=10, now=0.0, port_idle=False)
    idle = dict(fragmentation=0.5, free_area=10, now=0.0, port_idle=True)
    calm = dict(fragmentation=0.05, free_area=10, now=0.0, port_idle=True)
    assert not policy.should_trigger(**busy)
    assert policy.should_trigger(**idle)
    assert not policy.should_trigger(**calm)


def test_full_grid_never_triggers():
    policy = IdleDefrag(min_fragmentation=0.0)
    assert not policy.should_trigger(
        fragmentation=0.0, free_area=0, now=0.0, port_idle=True
    )


# -- manager integration -----------------------------------------------------


def test_never_policy_disables_reactive_rearrangement():
    blocked = fragmented_manager(defrag_policy="never")
    outcome = blocked.request(8, 4, owner=99)
    assert not outcome.success
    assert blocked.maybe_defrag(now=1.0) is None

    # The identical state served reactively with a capable planner:
    reactive = LogicSpaceManager(
        Fabric(device("XC2S15")), defrag_policy="on-failure"
    )
    for owner, col in enumerate((0, 3, 6, 9), start=1):
        reactive.fabric.allocate_region(Rect(0, col, 8, 2), owner)
    assert reactive.request(8, 4, owner=99).success


def test_maybe_defrag_consolidates_and_preserves_owners():
    manager = fragmented_manager(
        defrag_policy=IdleDefrag(min_fragmentation=0.0, cooldown=0.0)
    )
    occupancy_before = manager.fabric.occupancy.copy()
    outcome = manager.maybe_defrag(now=0.0, port_idle=True)
    assert outcome is not None
    assert outcome.largest_after > outcome.largest_before
    assert outcome.port_seconds > 0.0
    assert manager.fabric.owners() == {1, 2, 3, 4}
    for owner in (1, 2, 3, 4):
        before = int((occupancy_before == owner).sum())
        assert int((manager.fabric.occupancy == owner).sum()) == before
    # The consolidated space now hosts the request reactive planning
    # could not serve.
    assert manager.request(8, 4, owner=99).success
    assert manager.defrag_outcomes == [outcome]


def test_maybe_defrag_respects_rearrange_none():
    manager = fragmented_manager(
        policy=RearrangePolicy.NONE,
        defrag_policy=IdleDefrag(min_fragmentation=0.0, cooldown=0.0),
    )
    assert manager.maybe_defrag(now=0.0, port_idle=True) is None


def test_maybe_defrag_declines_on_reactive_policies():
    for name in ("never", "on-failure"):
        manager = fragmented_manager(defrag_policy=name)
        assert manager.maybe_defrag(now=0.0, port_idle=True) is None


# -- scheduler wiring --------------------------------------------------------


def test_task_scheduler_counts_and_charges_proactive_moves():
    dev = device("XC2S15")
    manager = LogicSpaceManager(
        Fabric(dev), defrag_policy=ThresholdDefrag(threshold=0.2)
    )
    tasks = make_workload("fragmenting", dev, seed=0, n=40)
    scheduler = OnlineTaskScheduler(manager)
    metrics = scheduler.run(tasks)
    assert metrics.proactive_defrags > 0
    assert metrics.defrag_moves >= metrics.proactive_defrags
    assert metrics.defrag_port_seconds > 0.0
    # Every proactive move went through the serial port.
    assert metrics.port_busy_seconds >= metrics.defrag_port_seconds


def test_on_failure_runs_keep_zero_defrag_counters():
    dev = device("XC2S15")
    manager = LogicSpaceManager(Fabric(dev), defrag_policy="on-failure")
    tasks = make_workload("fragmenting", dev, seed=0, n=30)
    metrics = OnlineTaskScheduler(manager).run(tasks)
    assert metrics.proactive_defrags == 0
    assert metrics.defrag_moves == 0
    assert metrics.defrag_port_seconds == 0.0


def test_app_scheduler_retries_stalled_after_proactive_defrag():
    """The satellite fix: a stalled application is woken by a background
    compaction, not only by the next finish event.

    App "big" needs an 8x4 block that exists by area but not contiguously;
    the reactive planner (max_moves=1) can never free it, so without the
    proactive retry the app would stay stalled forever once the last
    finish event has fired.
    """
    manager = fragmented_manager(
        defrag_policy=IdleDefrag(min_fragmentation=0.0, cooldown=0.0)
    )
    apps = [
        ApplicationSpec("warm", [FunctionSpec("W1", 8, 1, 1.0)]),
        ApplicationSpec("big", [FunctionSpec("B1", 8, 4, 1.0)]),
    ]
    scheduler = ApplicationFlowScheduler(manager)
    runs = scheduler.run(apps)
    finished = {r.spec.name: r.finished_at for r in runs}
    assert finished["warm"] is not None
    assert finished["big"] is not None, (
        "stalled app was not retried after the proactive defrag"
    )
    assert scheduler.metrics.proactive_defrags >= 1
    assert scheduler.metrics.defrag_moves >= 1
    assert scheduler.metrics.finished == 2


def test_app_scheduler_copies_defrag_counters_into_summary():
    dev = device("XC2S15")
    manager = LogicSpaceManager(
        Fabric(dev), defrag_policy=IdleDefrag(min_fragmentation=0.05)
    )
    apps = make_workload("codec-swap", dev, seed=3, n_apps=4)
    scheduler = ApplicationFlowScheduler(manager)
    scheduler.run(apps)
    assert scheduler.metrics.proactive_defrags == len(
        manager.defrag_outcomes
    )
    assert scheduler.metrics.defrag_moves == sum(
        len(o.moves) for o in manager.defrag_outcomes
    )
