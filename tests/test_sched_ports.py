"""Unit tests for the reconfiguration-port models (repro.sched.ports)."""

import pytest

from repro.sched.events import EventQueue, SequentialResource
from repro.sched.ports import (
    PORT_MODEL_NAMES,
    IcapPortModel,
    MultiPortModel,
    SerialPortModel,
    make_port_model,
    normalize_port_model,
)


class TestNormalize:
    @pytest.mark.parametrize("raw,canonical", [
        ("serial", "serial"),
        ("icap", "icap"),
        ("1", "serial"),
        (1, "serial"),
        ("2", "multi-2"),
        (4, "multi-4"),
        ("multi-3", "multi-3"),
        ("multi:8", "multi-8"),
        ("multi-1", "serial"),
        ("  ICAP ", "icap"),
    ])
    def test_canonical_spellings(self, raw, canonical):
        assert normalize_port_model(raw) == canonical

    @pytest.mark.parametrize("bad", ["uart", "multi-0", "0", "multi-x", ""])
    def test_rejects_unknown_specs(self, bad):
        with pytest.raises(ValueError):
            normalize_port_model(bad)

    def test_names_constant_is_canonical(self):
        for name in PORT_MODEL_NAMES:
            assert normalize_port_model(name) == name


class TestSerialModel:
    def test_matches_sequential_resource_exactly(self):
        """The default model must reproduce the historical serial port
        interval for interval."""
        q1, q2 = EventQueue(), EventQueue()
        legacy = SequentialResource(q1)
        model = SerialPortModel(q2)
        jobs = [(0.5, 0.0), (0.2, 0.3), (0.0, 1.0), (0.7, 0.7)]
        for config, move in jobs:
            assert model.acquire(config, move) == legacy.acquire(config + move)
        assert model.free_at == legacy.free_at
        assert model.busy_seconds == legacy.busy_seconds

    def test_advancing_clock_leaves_idle_gap(self):
        q = EventQueue()
        model = SerialPortModel(q)
        model.acquire(1.0)
        q.now = 5.0
        start, end = model.acquire(2.0)
        assert (start, end) == (5.0, 7.0)


class TestMultiModel:
    def test_two_ports_serve_two_jobs_concurrently(self):
        model = MultiPortModel(EventQueue(), n_ports=2)
        a = model.acquire(1.0)
        b = model.acquire(1.0)
        c = model.acquire(1.0)
        assert a == (0.0, 1.0)
        assert b == (0.0, 1.0)  # second lane, same interval
        assert c == (1.0, 2.0)  # back onto the earliest-free lane
        assert model.busy_seconds == 3.0

    def test_free_at_is_earliest_idle_lane(self):
        model = MultiPortModel(EventQueue(), n_ports=2)
        model.acquire(3.0)
        assert model.free_at == 0.0  # lane 2 still idle
        model.acquire(1.0)
        assert model.free_at == 1.0

    def test_dispatch_is_deterministic(self):
        """Same job sequence, same lane assignment, every time."""
        def intervals():
            model = MultiPortModel(EventQueue(), n_ports=3)
            return [model.acquire(d) for d in (2.0, 1.0, 1.0, 0.5, 2.0)]
        assert intervals() == intervals()

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiPortModel(EventQueue(), n_ports=0)
        with pytest.raises(ValueError):
            MultiPortModel(EventQueue(), n_ports=2).acquire(-1.0)


class TestIcapModel:
    def test_write_and_readback_scaling(self):
        model = IcapPortModel(EventQueue(), write_speedup=8.0,
                              readback_speedup=4.0)
        # Pure configuration: write phase only.
        assert model.acquire(8.0, 0.0) == (0.0, 1.0)
        # Pure move: write phase + readback phase.
        start, end = model.acquire(0.0, 8.0)
        assert end - start == pytest.approx(8.0 / 8.0 + 8.0 / 4.0)

    def test_faster_than_serial_for_the_same_jobs(self):
        serial = SerialPortModel(EventQueue())
        icap = IcapPortModel(EventQueue())
        for config, move in [(1.0, 0.5), (0.3, 0.0), (0.0, 0.8)]:
            __, serial_end = serial.acquire(config, move)
            __, icap_end = icap.acquire(config, move)
        assert icap_end < serial_end

    def test_validation(self):
        with pytest.raises(ValueError):
            IcapPortModel(EventQueue(), write_speedup=0.0)
        with pytest.raises(ValueError):
            IcapPortModel(EventQueue(), readback_speedup=-1.0)

    def test_readback_pipelines_behind_prior_write(self):
        """A move's readback phase runs on its own lane and overlaps
        the previous job's write phase.  The historical model folded
        both phases into one contiguous job on a single channel, which
        would serve the second job at [3.0, 6.0] here."""
        model = IcapPortModel(EventQueue(), write_speedup=8.0,
                              readback_speedup=4.0)
        first = model.acquire(0.0, 8.0)   # readback [0,2], write [2,3]
        second = model.acquire(0.0, 8.0)  # readback [2,4], write [4,5]
        assert first == (0.0, 3.0)
        assert second == (2.0, 5.0)
        assert model.free_at == 5.0

    def test_pure_write_leaves_readback_lane_idle(self):
        """Configurations without moves never touch the readback lane,
        so a following move's readback starts immediately."""
        model = IcapPortModel(EventQueue(), write_speedup=8.0,
                              readback_speedup=4.0)
        model.acquire(8.0, 0.0)               # write [0,1]
        start, end = model.acquire(0.0, 8.0)  # readback [0,2], write [2,3]
        assert (start, end) == (0.0, 3.0)

    def test_busy_seconds_counts_both_phases(self):
        model = IcapPortModel(EventQueue(), write_speedup=8.0,
                              readback_speedup=4.0)
        model.acquire(8.0, 8.0)
        assert model.busy_seconds == pytest.approx(16.0 / 8.0 + 8.0 / 4.0)

    def test_state_roundtrip_and_legacy_restore(self):
        model = IcapPortModel(EventQueue(), write_speedup=8.0,
                              readback_speedup=4.0)
        model.acquire(4.0, 8.0)
        clone = IcapPortModel(EventQueue(), write_speedup=8.0,
                              readback_speedup=4.0)
        clone.restore_state(model.export_state())
        assert clone.free_at == model.free_at
        assert clone.busy_seconds == model.busy_seconds
        # Pre-lane snapshots carried one folded free_at horizon.
        legacy = IcapPortModel(EventQueue())
        legacy.restore_state({"free_at": 7.5, "busy_seconds": 2.0})
        assert legacy.free_at == 7.5 and legacy.busy_seconds == 2.0

    def test_icap_beats_serial_on_a_defrag_heavy_scenario(self):
        """End to end through the kernel: on a relocation-heavy stream
        the pipelined icap port strictly reduces waiting and channel
        occupancy versus the serial channel."""
        from repro.campaign.runner import run_scenario
        from repro.campaign.spec import ScenarioSpec
        results = {}
        for ports in ("serial", "icap"):
            spec = ScenarioSpec(
                "XC2S15", "concurrent", "fragmenting", 0,
                defrag="threshold", ports=ports,
                workload_params=(("n", 25),),
            )
            results[ports] = run_scenario(spec)
        assert results["icap"].moves > 0
        assert (results["icap"].mean_waiting
                < results["serial"].mean_waiting)
        assert (results["icap"].port_busy_seconds
                < results["serial"].port_busy_seconds)


class TestFactory:
    def test_builds_each_model(self):
        q = EventQueue()
        assert isinstance(make_port_model("serial", q), SerialPortModel)
        assert isinstance(make_port_model("icap", q), IcapPortModel)
        multi = make_port_model("multi-4", q)
        assert isinstance(multi, MultiPortModel)
        assert multi.n_ports == 4
        assert isinstance(make_port_model("1", q), SerialPortModel)

    def test_instances_pass_through(self):
        q = EventQueue()
        model = MultiPortModel(q, 2)
        assert make_port_model(model, q) is model

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError):
            make_port_model("parallel-cable-iv", EventQueue())
