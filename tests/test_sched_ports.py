"""Unit tests for the reconfiguration-port models (repro.sched.ports)."""

import pytest

from repro.sched.events import EventQueue, SequentialResource
from repro.sched.ports import (
    PORT_MODEL_NAMES,
    IcapPortModel,
    MultiPortModel,
    SerialPortModel,
    make_port_model,
    normalize_port_model,
)


class TestNormalize:
    @pytest.mark.parametrize("raw,canonical", [
        ("serial", "serial"),
        ("icap", "icap"),
        ("1", "serial"),
        (1, "serial"),
        ("2", "multi-2"),
        (4, "multi-4"),
        ("multi-3", "multi-3"),
        ("multi:8", "multi-8"),
        ("multi-1", "serial"),
        ("  ICAP ", "icap"),
    ])
    def test_canonical_spellings(self, raw, canonical):
        assert normalize_port_model(raw) == canonical

    @pytest.mark.parametrize("bad", ["uart", "multi-0", "0", "multi-x", ""])
    def test_rejects_unknown_specs(self, bad):
        with pytest.raises(ValueError):
            normalize_port_model(bad)

    def test_names_constant_is_canonical(self):
        for name in PORT_MODEL_NAMES:
            assert normalize_port_model(name) == name


class TestSerialModel:
    def test_matches_sequential_resource_exactly(self):
        """The default model must reproduce the historical serial port
        interval for interval."""
        q1, q2 = EventQueue(), EventQueue()
        legacy = SequentialResource(q1)
        model = SerialPortModel(q2)
        jobs = [(0.5, 0.0), (0.2, 0.3), (0.0, 1.0), (0.7, 0.7)]
        for config, move in jobs:
            assert model.acquire(config, move) == legacy.acquire(config + move)
        assert model.free_at == legacy.free_at
        assert model.busy_seconds == legacy.busy_seconds

    def test_advancing_clock_leaves_idle_gap(self):
        q = EventQueue()
        model = SerialPortModel(q)
        model.acquire(1.0)
        q.now = 5.0
        start, end = model.acquire(2.0)
        assert (start, end) == (5.0, 7.0)


class TestMultiModel:
    def test_two_ports_serve_two_jobs_concurrently(self):
        model = MultiPortModel(EventQueue(), n_ports=2)
        a = model.acquire(1.0)
        b = model.acquire(1.0)
        c = model.acquire(1.0)
        assert a == (0.0, 1.0)
        assert b == (0.0, 1.0)  # second lane, same interval
        assert c == (1.0, 2.0)  # back onto the earliest-free lane
        assert model.busy_seconds == 3.0

    def test_free_at_is_earliest_idle_lane(self):
        model = MultiPortModel(EventQueue(), n_ports=2)
        model.acquire(3.0)
        assert model.free_at == 0.0  # lane 2 still idle
        model.acquire(1.0)
        assert model.free_at == 1.0

    def test_dispatch_is_deterministic(self):
        """Same job sequence, same lane assignment, every time."""
        def intervals():
            model = MultiPortModel(EventQueue(), n_ports=3)
            return [model.acquire(d) for d in (2.0, 1.0, 1.0, 0.5, 2.0)]
        assert intervals() == intervals()

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiPortModel(EventQueue(), n_ports=0)
        with pytest.raises(ValueError):
            MultiPortModel(EventQueue(), n_ports=2).acquire(-1.0)


class TestIcapModel:
    def test_write_and_readback_scaling(self):
        model = IcapPortModel(EventQueue(), write_speedup=8.0,
                              readback_speedup=4.0)
        # Pure configuration: write phase only.
        assert model.acquire(8.0, 0.0) == (0.0, 1.0)
        # Pure move: write phase + readback phase.
        start, end = model.acquire(0.0, 8.0)
        assert end - start == pytest.approx(8.0 / 8.0 + 8.0 / 4.0)

    def test_faster_than_serial_for_the_same_jobs(self):
        serial = SerialPortModel(EventQueue())
        icap = IcapPortModel(EventQueue())
        for config, move in [(1.0, 0.5), (0.3, 0.0), (0.0, 0.8)]:
            __, serial_end = serial.acquire(config, move)
            __, icap_end = icap.acquire(config, move)
        assert icap_end < serial_end

    def test_validation(self):
        with pytest.raises(ValueError):
            IcapPortModel(EventQueue(), write_speedup=0.0)
        with pytest.raises(ValueError):
            IcapPortModel(EventQueue(), readback_speedup=-1.0)


class TestFactory:
    def test_builds_each_model(self):
        q = EventQueue()
        assert isinstance(make_port_model("serial", q), SerialPortModel)
        assert isinstance(make_port_model("icap", q), IcapPortModel)
        multi = make_port_model("multi-4", q)
        assert isinstance(multi, MultiPortModel)
        assert multi.n_ports == 4
        assert isinstance(make_port_model("1", q), SerialPortModel)

    def test_instances_pass_through(self):
        q = EventQueue()
        model = MultiPortModel(q, 2)
        assert make_port_model(model, q) is model

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError):
            make_port_model("parallel-cable-iv", EventQueue())
