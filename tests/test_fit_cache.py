"""The fit-score cache: exact invalidation by free-space generation.

:class:`repro.placement.fit.CachedFitter` memoises placement answers
against the free-space engines' ``generation`` counter.  The contract
under test:

* equal generations => byte-identical occupancy => the cached answer
  *is* the fresh answer (hits are observationally invisible);
* every effective mutation bumps the generation and drops the whole
  memo — the cache can never serve an answer computed against a grid
  that no longer exists;
* an **over-retaining** cache must fail: driven through an adversarial
  index whose generation counter does not move on mutation, the same
  query provably returns a stale rectangle — which is exactly the bug
  class the generation key eliminates, and the reason these tests pin
  the counter's semantics rather than just the happy path;
* ``prefetch`` (the admission loop's batch warm) produces bit-identical
  answers to one-at-a-time calls for every heuristic, including the
  vectorised ``first_fit`` masked-argmin path;
* grid-path calls (no index) and indexes without a generation counter
  bypass the cache entirely.
"""

import random

import numpy as np
import pytest

from repro.device.geometry import Rect
from repro.placement.fit import FIT_ALGORITHMS, CachedFitter, first_fit
from repro.placement.free_space import make_free_space
from repro.placement.incremental import IncrementalFreeSpace

SHAPES = [(1, 1), (2, 2), (3, 5), (4, 4), (2, 7), (6, 3)]


def churned_engine(rows=14, cols=20, steps=40, seed=11):
    """An incremental engine after some scattered alloc/release churn."""
    engine = IncrementalFreeSpace(np.zeros((rows, cols), dtype=np.int32))
    rng = random.Random(seed)
    placed = []
    owner = 0
    for _ in range(steps):
        if placed and rng.random() < 0.4:
            engine.release(placed.pop(rng.randrange(len(placed))))
            continue
        h, w = rng.randint(1, 4), rng.randint(1, 4)
        fitting = engine.rectangles_fitting(h, w)
        if not fitting:
            continue
        host = sorted(fitting)[rng.randrange(len(fitting))]
        rect = Rect(host.row + rng.randint(0, host.height - h),
                    host.col + rng.randint(0, host.width - w), h, w)
        owner += 1
        engine.allocate(rect, owner)
        placed.append(rect)
    return engine


class _OverRetainingIndex:
    """Adversarial wrapper: a real engine whose reported generation is
    frozen — the over-retention bug the cache key must make impossible.

    Everything else delegates, so any stale answer the cache serves
    comes purely from the broken invalidation token.
    """

    def __init__(self, engine):
        self._engine = engine
        self.generation = 0  # never moves

    def __getattr__(self, name):
        return getattr(self._engine, name)


class TestCacheTransparency:
    """Cached answers equal fresh answers for every heuristic."""

    @pytest.mark.parametrize("name", sorted(FIT_ALGORITHMS))
    def test_cached_equals_uncached_across_churn(self, name):
        fn = FIT_ALGORITHMS[name]
        cached = CachedFitter(fn)
        engine = IncrementalFreeSpace(np.zeros((12, 16), dtype=np.int32))
        rng = random.Random(5)
        placed = []
        owner = 0
        for step in range(60):
            # Interleave queries (twice each: miss then hit) with
            # mutations; the cached path must match the raw heuristic
            # at every generation.
            for h, w in SHAPES:
                expect = fn(engine.occupancy, h, w, index=engine)
                assert cached(engine.occupancy, h, w,
                              index=engine) == expect
                assert cached(engine.occupancy, h, w,
                              index=engine) == expect
            if placed and rng.random() < 0.45:
                engine.release(placed.pop(rng.randrange(len(placed))))
            else:
                spot = fn(engine.occupancy, rng.randint(1, 4),
                          rng.randint(1, 4), index=engine)
                if spot is None:
                    continue
                owner += 1
                engine.allocate(spot, owner)
                placed.append(spot)
        assert cached.hits > 0 and cached.misses > 0

    def test_repeat_queries_hit_until_mutation(self):
        cached = CachedFitter(first_fit)
        engine = churned_engine()
        occ = engine.occupancy
        cached(occ, 2, 2, index=engine)
        misses = cached.misses
        for _ in range(5):
            cached(occ, 2, 2, index=engine)
        assert cached.misses == misses  # same generation: all hits
        spot = first_fit(occ, 1, 1, index=engine)
        engine.allocate(spot, 999)  # generation bump
        cached(occ, 2, 2, index=engine)
        assert cached.misses == misses + 1  # memo was dropped


class TestExactInvalidation:
    """The generation key invalidates exactly when occupancy changes."""

    def test_noop_release_keeps_cache_warm(self):
        """No-op mutations provably change nothing — no invalidation."""
        cached = CachedFitter(first_fit)
        engine = churned_engine()
        free = first_fit(engine.occupancy, 2, 2, index=engine)
        cached(engine.occupancy, 3, 3, index=engine)
        misses = cached.misses
        engine.release(free)  # already free: generation must not move
        cached(engine.occupancy, 3, 3, index=engine)
        assert cached.misses == misses

    def test_over_retaining_cache_serves_stale_answers(self):
        """With the generation token frozen, the cache demonstrably
        returns a rectangle that is no longer free — the failure mode
        the per-generation key exists to rule out."""
        engine = IncrementalFreeSpace(np.zeros((8, 8), dtype=np.int32))
        broken = _OverRetainingIndex(engine)
        cached = CachedFitter(first_fit)
        first = cached(engine.occupancy, 3, 3, index=broken)
        assert first == Rect(0, 0, 3, 3)
        engine.allocate(Rect(0, 0, 3, 3), owner=7)
        stale = cached(engine.occupancy, 3, 3, index=broken)
        assert stale == first  # served from the over-retained memo
        fresh = first_fit(engine.occupancy, 3, 3, index=engine)
        assert fresh != stale  # ... and it is wrong
        # The real token heals it: the same cache against the honest
        # engine re-misses and returns the true answer.
        assert cached(engine.occupancy, 3, 3, index=engine) == fresh

    def test_cache_keyed_per_index_instance(self):
        """Two engines at the same generation number are different
        grids; the cache must not leak answers across them."""
        cached = CachedFitter(first_fit)
        a = IncrementalFreeSpace(np.zeros((8, 8), dtype=np.int32))
        b = IncrementalFreeSpace(np.zeros((8, 8), dtype=np.int32))
        b.allocate(Rect(0, 0, 4, 8), owner=1)
        b.release(Rect(0, 0, 4, 8))
        b.allocate(Rect(0, 0, 2, 8), owner=2)
        a.allocate(Rect(0, 0, 1, 1), owner=1)
        a.allocate(Rect(0, 1, 1, 1), owner=2)
        a.allocate(Rect(0, 2, 1, 1), owner=3)
        assert a.generation == b.generation
        assert cached(a.occupancy, 2, 2, index=a) == \
            first_fit(a.occupancy, 2, 2, index=a)
        assert cached(b.occupancy, 2, 2, index=b) == \
            first_fit(b.occupancy, 2, 2, index=b)


class TestPrefetch:
    """The admission loop's batch warm is observationally invisible."""

    @pytest.mark.parametrize("name", sorted(FIT_ALGORITHMS))
    def test_prefetch_equals_single_calls(self, name):
        fn = FIT_ALGORITHMS[name]
        engine = churned_engine(seed=23)
        cached = CachedFitter(fn)
        cached.prefetch(engine.occupancy, SHAPES, engine)
        misses = cached.misses
        for h, w in SHAPES:
            assert cached(engine.occupancy, h, w, index=engine) == \
                fn(engine.occupancy, h, w, index=engine)
        assert cached.misses == misses  # all served from the warm memo

    def test_prefetch_first_fit_many_states(self):
        """The vectorised masked-argmin equals min(fitting) over many
        churn states, full grids included."""
        engine = IncrementalFreeSpace(np.zeros((9, 13), dtype=np.int32))
        rng = random.Random(3)
        placed = []
        owner = 0
        for _ in range(80):
            cached = CachedFitter(first_fit)
            cached.prefetch(engine.occupancy, SHAPES, engine)
            for h, w in SHAPES:
                assert cached(engine.occupancy, h, w, index=engine) == \
                    first_fit(engine.occupancy, h, w, index=engine)
            if placed and rng.random() < 0.45:
                engine.release(placed.pop(rng.randrange(len(placed))))
            else:
                spot = first_fit(engine.occupancy, rng.randint(1, 3),
                                 rng.randint(1, 3), index=engine)
                if spot is None:
                    continue
                owner += 1
                engine.allocate(spot, owner)
                placed.append(spot)


class TestBypass:
    """States with no generation token are never cached."""

    def test_grid_path_bypasses_cache(self):
        cached = CachedFitter(first_fit)
        occ = np.zeros((6, 6), dtype=np.int32)
        assert cached(occ, 2, 2) == Rect(0, 0, 2, 2)
        occ[0:2, 0:2] = 5  # mutate with no index attached
        assert cached(occ, 2, 2) == Rect(0, 2, 2, 2)
        assert cached.hits == 0 and cached.misses == 0

    def test_generationless_index_bypasses_cache(self):
        class Bare:
            """Minimal index with no generation attribute."""

            def __init__(self, occ):
                self.occupancy = occ
                self._inner = make_free_space("recompute", occ)

            def rectangles_fitting(self, h, w):
                return self._inner.rectangles_fitting(h, w)

        occ = np.zeros((6, 6), dtype=np.int32)
        bare = Bare(occ)
        cached = CachedFitter(first_fit)
        assert cached(occ, 2, 2, index=bare) == Rect(0, 0, 2, 2)
        occ[0:2, 0:2] = 5
        bare._inner.invalidate()
        assert cached(occ, 2, 2, index=bare) == Rect(0, 2, 2, 2)
        assert cached.hits == 0 and cached.misses == 0
