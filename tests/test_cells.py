"""Unit tests for netlist cell primitives and truth tables."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.device.clb import CellMode
from repro.netlist.cells import (
    Cell,
    LUT_AND2,
    LUT_BUF,
    LUT_MAJ3,
    LUT_MUX21,
    LUT_NOT,
    LUT_OR2,
    LUT_XOR2,
    LUT_XOR3,
    lut_eval,
    mux21,
    or2,
)


class TestTruthTables:
    def test_buf_and_not(self):
        assert lut_eval(LUT_BUF, (0,)) == 0
        assert lut_eval(LUT_BUF, (1,)) == 1
        assert lut_eval(LUT_NOT, (0,)) == 1
        assert lut_eval(LUT_NOT, (1,)) == 0

    @pytest.mark.parametrize("a,b", itertools.product((0, 1), repeat=2))
    def test_two_input_gates(self, a, b):
        assert lut_eval(LUT_AND2, (a, b)) == (a & b)
        assert lut_eval(LUT_OR2, (a, b)) == (a | b)
        assert lut_eval(LUT_XOR2, (a, b)) == (a ^ b)

    @pytest.mark.parametrize("a,b,s", itertools.product((0, 1), repeat=3))
    def test_mux21_semantics(self, a, b, s):
        # The auxiliary relocation circuit's mux: out = s ? b : a.
        assert lut_eval(LUT_MUX21, (a, b, s)) == (b if s else a)

    @pytest.mark.parametrize("a,b,c", itertools.product((0, 1), repeat=3))
    def test_three_input_gates(self, a, b, c):
        assert lut_eval(LUT_XOR3, (a, b, c)) == (a ^ b ^ c)
        assert lut_eval(LUT_MAJ3, (a, b, c)) == int(a + b + c >= 2)

    @given(st.integers(0, 0xFFFF), st.tuples(*[st.integers(0, 1)] * 4))
    def test_lut_eval_reads_correct_bit(self, table, inputs):
        address = sum(bit << i for i, bit in enumerate(inputs))
        assert lut_eval(table, inputs) == (table >> address) & 1


class TestCell:
    def test_default_output_is_name(self):
        cell = Cell("u1", LUT_BUF, ("a",))
        assert cell.output == "u1"

    def test_explicit_output(self):
        cell = Cell("u1", LUT_BUF, ("a",), output="n1")
        assert cell.output == "n1"

    def test_too_many_inputs_rejected(self):
        with pytest.raises(ValueError):
            Cell("u1", 0, ("a", "b", "c", "d", "e"))

    def test_gated_requires_ce(self):
        with pytest.raises(ValueError):
            Cell("u1", LUT_BUF, ("a",), mode=CellMode.FF_GATED_CLOCK)

    def test_latch_requires_ce(self):
        with pytest.raises(ValueError):
            Cell("u1", LUT_BUF, ("a",), mode=CellMode.LATCH)

    def test_free_clock_rejects_ce(self):
        with pytest.raises(ValueError):
            Cell("u1", LUT_BUF, ("a",), mode=CellMode.FF_FREE_CLOCK, ce="en")

    def test_fanin_includes_ce(self):
        cell = Cell(
            "u1", LUT_BUF, ("a",), mode=CellMode.FF_GATED_CLOCK, ce="en"
        )
        assert cell.fanin == ("a", "en")

    def test_sequential_property(self):
        comb = Cell("c", LUT_BUF, ("a",))
        ff = Cell("f", LUT_BUF, ("a",), mode=CellMode.FF_FREE_CLOCK)
        assert not comb.sequential
        assert ff.sequential

    def test_renamed_keeps_function(self):
        cell = Cell("u1", LUT_XOR2, ("a", "b"))
        copy = cell.renamed("u1~replica")
        assert copy.lut == cell.lut
        assert copy.inputs == cell.inputs
        assert copy.name == "u1~replica"
        assert copy.output == "u1~replica"

    def test_rewired_changes_selected_fields(self):
        cell = Cell("u1", LUT_BUF, ("a",))
        rewired = cell.rewired(inputs=("b",))
        assert rewired.inputs == ("b",)
        assert rewired.name == cell.name

    def test_invalid_init_state(self):
        with pytest.raises(ValueError):
            Cell("u1", LUT_BUF, ("a",), init_state=2)


class TestAuxHelpers:
    def test_mux21_helper_semantics(self):
        cell = mux21("m", "a", "b", "s")
        for a, b, s in itertools.product((0, 1), repeat=3):
            assert cell.evaluate_lut((a, b, s)) == (b if s else a)

    def test_or2_helper_semantics(self):
        cell = or2("o", "x", "y")
        for a, b in itertools.product((0, 1), repeat=2):
            assert cell.evaluate_lut((a, b)) == (a | b)
