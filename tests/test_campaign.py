"""Campaign engine: grid expansion, determinism, parallel equivalence."""

import json

import pytest

from repro.campaign import (
    CampaignResult,
    CampaignSpec,
    POLICY_NAMES,
    ScenarioResult,
    ScenarioSpec,
    run_campaign,
    run_scenario,
)
from repro.campaign.cli import build_parser, campaign_from_args, main

TINY = {"n": 8, "size_range": (2, 5)}


def tiny_campaign(**overrides) -> CampaignSpec:
    defaults = dict(
        devices=["XC2S15"],
        policies=["none", "concurrent"],
        workloads=["random"],
        seeds=[0, 1],
        workload_params={"random": dict(TINY)},
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


# -- spec / expansion -------------------------------------------------------


def test_grid_expansion_size_and_order():
    campaign = CampaignSpec(
        devices=["XC2S15", "XC2S30"],
        policies=list(POLICY_NAMES),
        workloads=["random", "bursty"],
        seeds=[0, 1],
    )
    specs = campaign.expand()
    assert len(specs) == campaign.size == 2 * 3 * 2 * 2
    # Deterministic order: device is the slowest-varying axis, seed the
    # fastest.
    assert specs[0] == ScenarioSpec("XC2S15", "none", "random", 0)
    assert specs[1].seed == 1
    assert specs[2].workload == "bursty"
    assert specs[-1] == ScenarioSpec("XC2S30", "concurrent", "bursty", 1)
    # Expansion is reproducible.
    assert specs == campaign.expand()


def test_per_workload_params_only_reach_their_workload():
    campaign = tiny_campaign(
        workloads=["random", "bursty"],
        workload_params={"random": {"n": 5}},
    )
    by_workload = {s.workload: s for s in campaign.expand()}
    assert by_workload["random"].params() == {"n": 5}
    assert by_workload["bursty"].params() == {}


def test_spec_validation():
    with pytest.raises(KeyError):
        ScenarioSpec("NOPE", "none", "random", 0)
    with pytest.raises(ValueError):
        ScenarioSpec("XC2S15", "sometimes", "random", 0)
    with pytest.raises(KeyError):
        ScenarioSpec("XC2S15", "none", "mystery", 0)
    with pytest.raises(ValueError):
        ScenarioSpec("XC2S15", "none", "random", 0, port_kind="uart")


def test_scheduler_kind_derived_from_workload():
    assert ScenarioSpec("XC2S15", "none", "random", 0).scheduler_kind == "tasks"
    assert ScenarioSpec("XC2S15", "none", "fig1", 0).scheduler_kind == "apps"


def test_free_space_axis_expands_and_validates():
    with pytest.raises(ValueError):
        ScenarioSpec("XC2S15", "none", "random", 0, free_space="psychic")
    campaign = tiny_campaign(free_spaces=["recompute", "incremental"])
    specs = campaign.expand()
    assert len(specs) == campaign.size == 2 * 2 * 2
    engines = {s.free_space for s in specs}
    assert engines == {"recompute", "incremental"}
    assert specs[0].to_dict()["free_space"] in engines


def test_free_space_engines_agree_on_the_science():
    """The engine axis must be a pure performance knob: both engines
    see identical MER sets, so every scheduling metric matches."""
    base = dict(device="XC2S15", policy="concurrent", workload="random",
                seed=5, workload_params=(("n", 12),))
    reference = run_scenario(ScenarioSpec(free_space="recompute", **base))
    incremental = run_scenario(ScenarioSpec(free_space="incremental", **base))
    for name in ScenarioResult.METRIC_FIELDS:
        if name == "wall_seconds":
            continue
        assert getattr(reference, name) == getattr(incremental, name), name


# -- determinism ------------------------------------------------------------


def test_same_spec_same_seed_identical_result():
    spec = ScenarioSpec("XC2S15", "concurrent", "random", 7,
                        workload_params=(("n", 10),))
    first, second = run_scenario(spec), run_scenario(spec)
    # wall_seconds is compare-excluded; everything scientific must match.
    assert first == second
    assert first.to_row().keys() == second.to_row().keys()


def test_different_seeds_differ():
    base = dict(device="XC2S15", policy="concurrent", workload="random",
                workload_params=(("n", 10),))
    a = run_scenario(ScenarioSpec(seed=0, **base))
    b = run_scenario(ScenarioSpec(seed=1, **base))
    assert a != b


def test_parallel_equals_serial():
    specs = tiny_campaign().expand()
    serial = run_campaign(specs, jobs=1)
    parallel = run_campaign(specs, jobs=2)
    assert len(serial) == len(parallel) == len(specs)
    assert serial == parallel  # index-aligned, wall clock excluded


def test_halt_penalty_reaches_application_flows():
    """Moving a *running* function under HALT stops it for the move
    span; under CONCURRENT the same moves are free — the policy duel
    must be visible for application workloads, not only task streams."""
    base = dict(device="XC2S15", workload="codec-swap", seed=3,
                workload_params=(("n_apps", 3),))
    halt = run_scenario(ScenarioSpec(policy="halt", **base))
    conc = run_scenario(ScenarioSpec(policy="concurrent", **base))
    assert halt.rearrangements > 0
    assert halt.halted_seconds > 0.0
    assert conc.halted_seconds == 0.0
    assert halt.makespan > conc.makespan


def test_task_runs_report_zero_prefetched_fraction():
    """Independent-task scenarios never prefetch; their exported
    fraction must read 0, not a vacuous 100 %."""
    result = run_scenario(ScenarioSpec("XC2S15", "none", "random", 0,
                                       workload_params=(("n", 5),)))
    assert result.prefetched_fraction == 0.0


def test_application_workload_scenario():
    spec = ScenarioSpec("XC2S30", "concurrent", "codec-swap", 3,
                        workload_params=(("n_apps", 2),))
    result = run_scenario(spec)
    assert result.finished == 2
    assert result.makespan > 0
    assert 0.0 <= result.prefetched_fraction <= 1.0
    # Identical seed reproduces the application run too.
    assert run_scenario(spec) == result


# -- aggregation / export ---------------------------------------------------


@pytest.fixture(scope="module")
def small_results():
    return CampaignResult(run_campaign(tiny_campaign().expand(), jobs=1))


def test_summary_table(small_results):
    table = small_results.summary_table()
    rendered = table.render()
    # One row per (device, workload, policy) cell; 2 seeds pooled.
    assert len(table.rows) == 2
    assert "none" in rendered and "concurrent" in rendered


def test_policy_table(small_results):
    table = small_results.policy_table("mean_waiting")
    assert table.headers == [
        "device", "workload", "fit", "port", "free_space", "defrag",
        "queue", "ports", "fleet", "members", "dev_policy", "prefetch",
        "faults", "none", "concurrent"
    ]
    assert len(table.rows) == 1
    with pytest.raises(KeyError):
        small_results.policy_table("not_a_metric")


def test_rows_backfill_mixed_pre_fleet_and_fleet_results():
    """A result list mixing pre-fleet rows (sparse axes omitted) and
    fleet rows must export rectangular: every row carries the swept
    sparse columns, back-filled from the spec's defaults."""
    pre_fleet = ScenarioResult(
        spec=ScenarioSpec("XC2S15", "none", "random", 0), finished=3
    )
    fleet = ScenarioResult(
        spec=ScenarioSpec("XC2S15", "none", "random", 1, fleet_size=2,
                          device_policy="least-loaded"),
        finished=5,
    )
    hetero = ScenarioResult(
        spec=ScenarioSpec("XC2S15", "none", "random", 2,
                          fleet_devices=("XC2S30",)),
        finished=7,
    )
    rows = CampaignResult([pre_fleet, fleet, hetero]).rows()
    assert [set(row) for row in rows] == [set(rows[0])] * 3
    assert [row["fleet_size"] for row in rows] == [1, 2, 2]
    assert [row["device_policy"] for row in rows] == [
        "first-fit", "least-loaded", "first-fit"
    ]
    assert [row["fleet_devices"] for row in rows] == ["", "", "XC2S30"]
    # Sparse back-fill never disturbs the base axes or the metrics.
    assert [row["seed"] for row in rows] == [0, 1, 2]
    assert [row["finished"] for row in rows] == [3, 5, 7]


def test_rows_without_sparse_axes_keep_the_historical_columns():
    """A campaign that never touches a sparse axis exports exactly the
    pre-fleet column set (the shape the golden snapshots pin)."""
    result = ScenarioResult(
        spec=ScenarioSpec("XC2S15", "none", "random", 0), finished=1
    )
    (row,) = CampaignResult([result]).rows()
    for column in ("queue", "ports", "fleet_size", "device_policy",
                   "fleet_devices"):
        assert column not in row


def test_groups_keep_heterogeneous_fleets_apart():
    """A heterogeneous fleet never pools with a homogeneous fleet of
    the same size: the composition is part of the aggregation cell."""
    homo = ScenarioResult(
        spec=ScenarioSpec("XC2S15", "none", "random", 0, fleet_size=2),
        rejected=1,
    )
    hetero = ScenarioResult(
        spec=ScenarioSpec("XC2S15", "none", "random", 0,
                          fleet_devices=("XC2S30",)),
        rejected=5,
    )
    result = CampaignResult([homo, hetero])
    assert len(result.groups()) == 2
    assert sorted(result.group_means("rejected").values()) == [1.0, 5.0]


def test_pivot_table_with_single_valued_axis():
    """Degenerate pivot: an axis swept at one value yields exactly one
    value column, one row per remaining cell, and no NaN padding."""
    results = [
        ScenarioResult(
            spec=ScenarioSpec("XC2S15", policy, "random", seed),
            rejected=seed,
        )
        for policy in ("none", "concurrent")
        for seed in (0, 1)
    ]
    table = CampaignResult(results).pivot_table("defrag", "rejected")
    assert table.headers[-1] == "on-failure"
    # Two remaining cells (one per rearrangement policy), seed-pooled.
    assert len(table.rows) == 2
    assert [row[-1] for row in table.rows] == ["0.5", "0.5"]
    with pytest.raises(KeyError):
        CampaignResult(results).pivot_table("seed", "rejected")


def test_csv_json_export(small_results, tmp_path):
    csv_path = small_results.to_csv(tmp_path / "out.csv")
    lines = csv_path.read_text().strip().splitlines()
    assert len(lines) == 1 + len(small_results)
    assert lines[0].startswith("device,policy,workload,seed")

    json_path = small_results.to_json(tmp_path / "out.json")
    payload = json.loads(json_path.read_text())
    assert len(payload) == len(small_results)
    assert payload[0]["spec"]["device"] == "XC2S15"
    assert set(payload[0]["metrics"]) == set(ScenarioResult.METRIC_FIELDS)


# -- CLI --------------------------------------------------------------------


def test_cli_default_grid_is_24_runs():
    args = build_parser().parse_args([])
    campaign = campaign_from_args(args)
    assert campaign.size == 24


def test_cli_smoke(tmp_path, capsys):
    code = main([
        "--devices", "XC2S15",
        "--policies", "none", "concurrent",
        "--workloads", "random",
        "--seeds", "0",
        "--tasks", "6",
        "--jobs", "1",
        "--csv", str(tmp_path / "cli.csv"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "campaign summary" in out
    assert "policy comparison" in out
    assert (tmp_path / "cli.csv").exists()
