"""Unit tests for task/application models and workloads."""

import pytest

from repro.device.devices import device
from repro.sched.tasks import (
    ApplicationRun,
    ApplicationSpec,
    FunctionRun,
    FunctionSpec,
    Task,
)
from repro.sched.workload import (
    fig1_applications,
    random_tasks,
    uniform_requests,
)


class TestTask:
    def test_area(self):
        t = Task(1, 3, 5, 1.0, arrival=0.0)
        assert t.area == 15

    def test_waiting_and_turnaround(self):
        t = Task(1, 2, 2, 1.0, arrival=10.0)
        assert t.waiting_seconds == float("inf")
        t.started_at = 12.5
        t.finished_at = 13.5
        assert t.waiting_seconds == 2.5
        assert t.turnaround_seconds == 3.5


class TestApplicationSpec:
    def test_totals(self):
        app = ApplicationSpec(
            "X",
            [FunctionSpec("X1", 2, 3, 1.0), FunctionSpec("X2", 4, 5, 2.0)],
        )
        assert app.total_area == 26
        assert app.total_exec_seconds == 3.0

    def test_function_run_prefetched(self):
        run = FunctionRun("X", FunctionSpec("X1", 1, 1, 1.0))
        run.configured_at = 1.0
        run.started_at = 2.0
        assert run.prefetched
        run.configured_at = 3.0
        assert not run.prefetched

    def test_application_run_stall(self):
        spec = ApplicationSpec("X", [FunctionSpec("X1", 1, 1, 2.0)])
        record = ApplicationRun(spec)
        record.runs.append(FunctionRun("X", spec.functions[0]))
        record.runs[0].started_at = 0.0
        record.runs[0].finished_at = 2.0
        record.finished_at = 2.0
        assert record.makespan == 2.0
        assert record.stall_seconds == 0.0


class TestRandomTasks:
    def test_deterministic_per_seed(self):
        a = random_tasks(10, seed=4)
        b = random_tasks(10, seed=4)
        assert [(t.height, t.width, t.arrival) for t in a] == [
            (t.height, t.width, t.arrival) for t in b
        ]

    def test_arrivals_monotonic(self):
        tasks = random_tasks(50, seed=1)
        arrivals = [t.arrival for t in tasks]
        assert arrivals == sorted(arrivals)

    def test_sizes_in_range(self):
        for t in random_tasks(100, seed=2, size_range=(3, 7)):
            assert 3 <= t.height <= 7
            assert 3 <= t.width <= 7

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            random_tasks(-1)
        with pytest.raises(ValueError):
            random_tasks(1, size_range=(0, 4))


class TestFig1Applications:
    def test_three_applications(self):
        apps = fig1_applications(device("XCV200"))
        assert [a.name for a in apps] == ["A", "B", "C"]
        assert len(apps[2].functions) == 4

    def test_total_demand_exceeds_device(self):
        # The virtual-hardware premise: total area demand > 100 %.
        dev = device("XCV200")
        apps = fig1_applications(dev)
        total = sum(a.total_area for a in apps)
        assert total > dev.clb_count

    def test_each_function_fits_device(self):
        dev = device("XCV200")
        for app in fig1_applications(dev):
            for fn in app.functions:
                assert fn.height <= dev.clb_rows
                assert fn.width <= dev.clb_cols


class TestUniformRequests:
    def test_shape_and_determinism(self):
        a = uniform_requests(20, seed=1)
        assert len(a) == 20
        assert a == uniform_requests(20, seed=1)
