"""Unit tests for the canonical circuit library."""

import pytest

from repro.device.clb import CellMode
from repro.netlist import library as lib
from repro.netlist.simulator import CycleSimulator


class TestCounter:
    def test_bit_range_enforced(self):
        with pytest.raises(ValueError):
            lib.counter(0)
        with pytest.raises(ValueError):
            lib.counter(17)

    def test_wraps_at_modulus(self):
        sim = CycleSimulator(lib.counter(3))
        seen = [lib.counter_value(sim.step()) for _ in range(9)]
        assert seen == [1, 2, 3, 4, 5, 6, 7, 0, 1]

    def test_counter_value_decoder(self):
        assert lib.counter_value({"b0": 1, "b2": 1}) == 5
        assert lib.counter_value({}) == 0


class TestGatedCounter:
    def test_all_ffs_gated(self):
        c = lib.gated_counter(4)
        ffs = [cell for cell in c.cells.values() if cell.sequential]
        assert all(cell.mode is CellMode.FF_GATED_CLOCK for cell in ffs)
        assert all(cell.ce == "en" for cell in ffs)

    def test_freeze_and_resume(self):
        sim = CycleSimulator(lib.gated_counter(4))
        for _ in range(5):
            sim.step({"en": 1})
        frozen = lib.counter_value(sim.outputs())
        for _ in range(7):
            sim.step({"en": 0})
        assert lib.counter_value(sim.outputs()) == frozen
        sim.step({"en": 1})
        assert lib.counter_value(sim.outputs()) == frozen + 1


class TestShiftRegister:
    def test_plain_shift(self):
        sim = CycleSimulator(lib.shift_register(4))
        pattern = [1, 0, 1, 1, 0, 0, 0, 0]
        outs = [sim.step({"din": b})["s3"] for b in pattern]
        assert outs == [0, 0, 0, 1, 0, 1, 1, 0]

    def test_gated_shift_holds(self):
        sim = CycleSimulator(lib.shift_register(2, gated=True))
        sim.step({"din": 1, "en": 1})
        sim.step({"din": 0, "en": 0})  # held
        sim.step({"din": 0, "en": 1})
        assert sim.probe("s1") == 1

    def test_stage_count_validated(self):
        with pytest.raises(ValueError):
            lib.shift_register(0)


class TestLfsr:
    def test_nonzero_orbit(self):
        sim = CycleSimulator(lib.lfsr4())
        states = set()
        for _ in range(15):
            sim.step()
            states.add(tuple(sorted(sim.state.items())))
        assert len(states) == 15  # maximal length

    def test_all_zero_excluded(self):
        sim = CycleSimulator(lib.lfsr4())
        for _ in range(20):
            sim.step()
            assert any(sim.state.values())


class TestMooreFsm:
    def test_gray_cycle(self):
        sim = CycleSimulator(lib.moore_fsm())
        seq = []
        for _ in range(5):
            out = sim.step({"advance": 1})
            seq.append((out["s1"], out["s0"]))
        assert seq == [(0, 1), (1, 1), (1, 0), (0, 0), (0, 1)]

    def test_advance_low_holds_state(self):
        sim = CycleSimulator(lib.moore_fsm())
        sim.step({"advance": 1})
        held = sim.step({"advance": 0})
        again = sim.step({"advance": 0})
        assert held == again

    def test_state3_indicator(self):
        sim = CycleSimulator(lib.moore_fsm())
        hits = []
        for _ in range(4):
            out = sim.step({"advance": 1})
            hits.append(out["in_state3"])
        assert hits.count(1) == 1


class TestLatchPipeline:
    def test_stage_validation(self):
        with pytest.raises(ValueError):
            lib.latch_pipeline(0)

    def test_capture_on_falling_gate(self):
        sim = CycleSimulator(lib.latch_pipeline(1))
        sim.step({"din": 1, "g": 1})
        sim.step({"din": 0, "g": 0})
        # Value stored when the gate fell.
        assert sim.probe("l0") == 1


class TestToggle:
    def test_alternates(self):
        sim = CycleSimulator(lib.toggle())
        assert [sim.step()["q"] for _ in range(4)] == [1, 0, 1, 0]
