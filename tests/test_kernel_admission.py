"""Kernel admission seams: token memos, id reuse, pause/advance.

A long-running service churns through task objects continuously, which
turns two comfortable batch-era assumptions into bugs; this module
pins their fixes:

* the per-item **failure memo** is keyed on a monotonically-assigned
  admission token, never on ``id(item)`` — a new object allocated on a
  recycled interpreter id must not inherit a dead predecessor's
  "already failed at this space version" memo and be silently skipped
  (the classic symptom: a service task that should be admitted sits
  queued until the next unrelated space change);
* the **external-clock hooks** grown for the always-on service:
  ``advance`` processes events up to a target instant and re-stamps
  the metrics, ``pause``/``resume`` bracket a checkpoint window during
  which admission passes are deferred and the clock refuses to move.
"""

import pytest

from repro.core.manager import LogicSpaceManager
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.sched.kernel import SchedulingKernel
from repro.sched.tasks import Task


def kernel_for(on_admitted=None, queue: str = "fifo") -> SchedulingKernel:
    """A kernel over the 8x12 XC2S15 fabric (96 sites)."""
    manager = LogicSpaceManager(Fabric(device("XC2S15")))
    return SchedulingKernel(manager, queue=queue, on_admitted=on_admitted)


def task(task_id: int, height: int, width: int) -> Task:
    return Task(task_id=task_id, height=height, width=width,
                exec_seconds=1.0, arrival=0.0)


# -- token-keyed failure memos ----------------------------------------------


def test_planted_stale_memo_on_a_recycled_id_is_ignored():
    """The regression itself, deterministically: a stale id->token
    mapping (what a dead predecessor on a recycled id leaves behind in
    the worst case) must not suppress a fresh item's admission."""
    admitted = []
    kernel = kernel_for(on_admitted=lambda item, _: admitted.append(item))
    fresh = task(1, 2, 2)
    # Plant the hazard: this interpreter id already maps to an old
    # token whose memo says "failed at the current space version" (the
    # sequence is past it, as it would be after the predecessor lived).
    kernel._token_seq = 1
    kernel._item_tokens[id(fresh)] = 0
    kernel._item_failed_at[0] = kernel._space_version
    kernel.enqueue(fresh, area=fresh.area)
    assert admitted == [fresh], (
        "a recycled id inherited a dead item's failure memo"
    )


def test_recycled_interpreter_id_gets_a_fresh_token():
    """End to end through the allocator: discard a failed item without
    the kernel's help, let CPython recycle its id, and check the
    newcomer is judged on its own shape.  A priority queue, so the
    newcomer's arrival reopens the blocked pass (under FIFO a direct
    tombstone legitimately stays blocked until the next space change —
    the kernel cannot see a removal it was not told about)."""
    admitted = []
    kernel = kernel_for(on_admitted=lambda item, _: admitted.append(item),
                        queue="priority")
    blocked = task(1, 20, 20)  # cannot ever fit 8x12
    kernel.enqueue(blocked, area=blocked.area)
    assert not admitted and len(kernel.queue) == 1
    stale_token = kernel._item_tokens[id(blocked)]
    assert kernel._item_failed_at[stale_token] == kernel._space_version
    # Tombstone it *directly* — the one removal path that cannot call
    # the kernel's bookkeeping — then drop the last strong reference.
    kernel.queue.discard(blocked)
    list(kernel.queue.scan(0.0))  # purge the tombstone's reference
    recycled = id(blocked)
    del blocked
    fresh = task(2, 2, 2)  # fits trivially
    if id(fresh) != recycled:
        pytest.skip("allocator did not recycle the id (layout changed)")
    kernel.enqueue(fresh, area=fresh.area)
    assert admitted == [fresh]


def test_tokens_are_monotonic_and_forgotten_on_exit():
    kernel = kernel_for()
    a, b = task(1, 20, 20), task(2, 20, 20)
    kernel.enqueue(a, area=a.area)
    kernel.enqueue(b, area=b.area)
    token_a = kernel._item_tokens[id(a)]
    token_b = kernel._item_tokens[id(b)]
    assert token_b > token_a
    kernel.cancel(a)
    assert id(a) not in kernel._item_tokens
    assert token_a not in kernel._item_failed_at
    # Re-enqueueing the same object is a new admission attempt.
    kernel.enqueue(a, area=a.area)
    assert kernel._item_tokens[id(a)] > token_b


def test_memo_still_short_circuits_within_one_space_version():
    """The fix must not cost the memo its point: within one space
    version a failed item is not re-planned."""
    requests = []
    kernel = kernel_for()
    original = kernel.manager.request

    def counting(height, width, owner):
        requests.append(owner)
        return original(height, width, owner)

    kernel.manager.request = counting
    big = task(1, 20, 20)
    kernel.enqueue(big, area=big.area)
    first = requests.count(1)
    assert first == 1
    # A FIFO-ordered arrival behind a blocked head re-runs the pass for
    # the newcomer only; the memoed head is skipped.
    small = task(2, 20, 20)
    kernel.enqueue(small, area=small.area)
    assert requests.count(1) == first


# -- pause / resume / advance -----------------------------------------------


def test_pause_defers_admission_until_resume():
    admitted = []
    kernel = kernel_for(on_admitted=lambda item, _: admitted.append(item))
    kernel.pause()
    assert kernel.paused
    fits = task(1, 2, 2)
    kernel.enqueue(fits, area=fits.area)
    assert not admitted, "admission ran inside the checkpoint window"
    kernel.resume()
    assert admitted == [fits]
    assert not kernel.paused
    kernel.resume()  # idempotent


def test_advance_refuses_while_paused_and_backwards():
    kernel = kernel_for()
    kernel.pause()
    with pytest.raises(RuntimeError):
        kernel.advance(1.0)
    kernel.resume()
    kernel.advance(2.0)
    with pytest.raises(ValueError):
        kernel.advance(1.0)


def test_advance_processes_due_events_and_stamps_metrics():
    kernel = kernel_for()
    fired = []
    kernel.events.at(1.0, lambda: fired.append(1.0))
    kernel.events.at(3.0, lambda: fired.append(3.0))
    kernel.advance(2.0)
    assert fired == [1.0]
    assert kernel.now == 2.0
    assert kernel.metrics.makespan == 2.0
    kernel.advance(3.0)
    assert fired == [1.0, 3.0]
    assert kernel.metrics.makespan == 3.0
