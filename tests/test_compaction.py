"""Unit tests for the Diessel-style rearrangement planners."""

import numpy as np
import pytest

from repro.device.geometry import Rect
from repro.placement.compaction import (
    Move,
    apply_moves,
    footprints,
    local_repacking,
    moves_feasible,
    ordered_compaction,
    sequence_moves,
)


def occupancy_with(*placements):
    occ = np.zeros((8, 12), dtype=int)
    for owner, rect in placements:
        occ[rect.row : rect.row_end, rect.col : rect.col_end] = owner
    return occ


class TestFootprints:
    def test_extracts_rects(self):
        occ = occupancy_with((1, Rect(0, 0, 2, 2)), (2, Rect(4, 6, 3, 3)))
        prints = footprints(occ)
        assert prints == {1: Rect(0, 0, 2, 2), 2: Rect(4, 6, 3, 3)}

    def test_empty_grid(self):
        assert footprints(np.zeros((3, 3), dtype=int)) == {}


class TestApplyMoves:
    def test_applies_in_order(self):
        occ = occupancy_with((1, Rect(0, 0, 2, 2)))
        moved = apply_moves(occ, [Move(1, Rect(0, 0, 2, 2), Rect(0, 5, 2, 2))])
        assert footprints(moved) == {1: Rect(0, 5, 2, 2)}
        # Original grid untouched.
        assert footprints(occ) == {1: Rect(0, 0, 2, 2)}

    def test_collision_rejected(self):
        occ = occupancy_with((1, Rect(0, 0, 2, 2)), (2, Rect(0, 3, 2, 2)))
        with pytest.raises(ValueError):
            apply_moves(occ, [Move(1, Rect(0, 0, 2, 2), Rect(0, 3, 2, 2))])


class TestOrderedCompaction:
    def test_slides_left(self):
        occ = occupancy_with((1, Rect(0, 4, 2, 2)), (2, Rect(0, 8, 2, 2)))
        moves = ordered_compaction(occ, toward="left")
        result = apply_moves(occ, moves)
        prints = footprints(result)
        assert prints[1] == Rect(0, 0, 2, 2)
        assert prints[2] == Rect(0, 2, 2, 2)

    def test_slides_top(self):
        occ = occupancy_with((1, Rect(5, 0, 2, 2)))
        moves = ordered_compaction(occ, toward="top")
        assert footprints(apply_moves(occ, moves))[1] == Rect(0, 0, 2, 2)

    def test_already_compact_no_moves(self):
        occ = occupancy_with((1, Rect(0, 0, 3, 3)))
        assert ordered_compaction(occ, toward="left") == []

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            ordered_compaction(np.zeros((2, 2), dtype=int), toward="down")

    def test_moves_are_feasible_in_order(self):
        occ = occupancy_with(
            (1, Rect(0, 2, 2, 2)), (2, Rect(0, 5, 2, 2)), (3, Rect(0, 9, 2, 3))
        )
        moves = ordered_compaction(occ)
        assert moves_feasible(occ, moves)

    def test_compaction_creates_contiguous_space(self):
        occ = occupancy_with(
            (1, Rect(0, 1, 8, 2)), (2, Rect(0, 5, 8, 2)), (3, Rect(0, 9, 8, 2))
        )
        moves = ordered_compaction(occ)
        result = apply_moves(occ, moves)
        # All functions packed leftward: columns 6.. free.
        assert (result[:, 6:] == 0).all()


class TestLocalRepacking:
    def test_repacks_inside_window(self):
        occ = occupancy_with((1, Rect(0, 2, 2, 2)), (2, Rect(4, 4, 2, 2)))
        window = Rect(0, 0, 8, 12)
        moves = local_repacking(occ, window)
        assert moves is not None
        result = apply_moves(occ, moves)
        assert set(footprints(result)) == {1, 2}

    def test_straddling_functions_untouched(self):
        occ = occupancy_with((1, Rect(0, 0, 2, 6)))
        window = Rect(0, 0, 8, 4)  # function 1 straddles the border
        moves = local_repacking(occ, window)
        assert moves == []

    def test_repack_consolidates_toward_corner(self):
        occ = occupancy_with((1, Rect(0, 4, 2, 2)), (2, Rect(5, 8, 2, 2)))
        window = Rect(0, 0, 8, 12)
        moves = local_repacking(occ, window)
        assert moves is not None and moves
        result = apply_moves(occ, moves)
        prints = footprints(result)
        # Everything repacked inside the window, areas preserved.
        for owner, rect in prints.items():
            assert window.contains_rect(rect)
        assert prints[1].area == 4 and prints[2].area == 4


class TestSequenceMoves:
    def test_orders_dependent_moves(self):
        occ = occupancy_with((1, Rect(0, 0, 2, 2)), (2, Rect(0, 2, 2, 2)))
        # Move 1 into 2's current place; 2 must go first.
        moves = [
            Move(1, Rect(0, 0, 2, 2), Rect(0, 2, 2, 2)),
            Move(2, Rect(0, 2, 2, 2), Rect(0, 6, 2, 2)),
        ]
        ordered = sequence_moves(occ, moves)
        assert ordered is not None
        assert ordered[0].owner == 2
        assert moves_feasible(occ, ordered)

    def test_circular_dependency_detected(self):
        occ = occupancy_with((1, Rect(0, 0, 2, 2)), (2, Rect(0, 2, 2, 2)))
        # 1 -> 2's place, 2 -> 1's place: a swap needs scratch space.
        moves = [
            Move(1, Rect(0, 0, 2, 2), Rect(0, 2, 2, 2)),
            Move(2, Rect(0, 2, 2, 2), Rect(0, 0, 2, 2)),
        ]
        assert sequence_moves(occ, moves) is None


class TestMove:
    def test_distance_and_columns(self):
        move = Move(1, Rect(0, 2, 2, 3), Rect(4, 6, 2, 3))
        assert move.distance == 8
        assert move.columns_touched == 7  # columns 2..8
