"""Differential suite v2: the vectorised admission hot path, in lockstep.

Issue 6 vectorised the incremental engine's query cache (``(N, 4)``
coordinate matrices), its absorption filters and its mutation-time
overlap tests, and added a small-set scalar fast path
(``IncrementalFreeSpace.SMALL_SET``) below which the original Python
code runs.  The first differential suite
(``tests/test_free_space_differential.py``) compares each engine to the
ground-truth sweep; this one drives the **vectorised engine and the
reference recompute engine through one identical mutation history in
lockstep** and, after *every* step, holds three observables equal:

* the MER sets,
* every index-backed fragmentation/utilization metric,
* the free-space **generation counters** — including that no-op
  releases bump neither (the fit cache and the planner memo key on this
  counter, so a counter divergence would silently decouple their
  invalidation from reality).

Histories are generated so the MER count repeatedly crosses
``SMALL_SET`` in both directions: every lockstep run exercises the
scalar path, the vectorised path, and both hand-over points.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device.geometry import Rect
from repro.placement import metrics
from repro.placement.free_space import (
    FreeSpaceManager,
    maximal_empty_rectangles,
)
from repro.placement.incremental import IncrementalFreeSpace

pytestmark = pytest.mark.slow


def make_pair(rows: int, cols: int):
    """One (vectorised, reference) engine pair over twin empty grids."""
    inc = IncrementalFreeSpace(np.zeros((rows, cols), dtype=np.int32))
    ref = FreeSpaceManager(np.zeros((rows, cols), dtype=np.int32))
    return inc, ref


def assert_lockstep(inc: IncrementalFreeSpace,
                    ref: FreeSpaceManager) -> None:
    """Full observational equality of the two engines."""
    assert inc.generation == ref.generation
    occ_inc, occ_ref = inc.occupancy, ref.occupancy
    assert (occ_inc == occ_ref).all()
    assert set(inc.mers) == set(ref.mers)
    assert inc.free_area() == ref.free_area()
    assert inc.largest_free_area() == ref.largest_free_area()
    assert metrics.fragmentation_index(occ_inc, index=inc) == \
        pytest.approx(metrics.fragmentation_index(occ_ref, index=ref))
    assert metrics.average_free_rectangle(occ_inc, index=inc) == \
        pytest.approx(metrics.average_free_rectangle(occ_ref, index=ref))
    assert metrics.utilization(occ_inc, index=inc) == \
        pytest.approx(metrics.utilization(occ_ref, index=ref))
    assert metrics.reclaimable_sites(occ_inc, index=inc) == \
        metrics.reclaimable_sites(occ_ref, index=ref)
    requests = [(1, 1), (2, 3), (4, 4), (3, 7)]
    assert metrics.satisfiable_fraction(occ_inc, requests, index=inc) == \
        pytest.approx(
            metrics.satisfiable_fraction(occ_ref, requests, index=ref)
        )


def drive_lockstep(inc: IncrementalFreeSpace, ref: FreeSpaceManager,
                   rng: random.Random, steps: int,
                   max_h: int, max_w: int,
                   check_every: int = 1) -> tuple[int, set[int]]:
    """Apply one random history to both engines, checking as we go.

    Mutations are chosen off the *reference* engine's view (placements
    from its MER set), so any incremental-engine divergence shows up as
    an observational mismatch rather than as a forked history.  A slice
    of the steps are deliberate **no-op releases** of already-free
    regions, which must leave both generation counters untouched.
    Returns (mutations applied, MER-set sizes seen) so callers can
    assert the run crossed the scalar/vectorised threshold.
    """
    rows, cols = ref.occupancy.shape
    placed: dict[int, Rect] = {}
    owner = 0
    mutations = 0
    sizes: set[int] = set()
    for _ in range(steps):
        roll = rng.random()
        if placed and (roll < 0.42
                       or ref.free_area() < max_h * max_w):
            victim = sorted(placed)[rng.randrange(len(placed))]
            rect = placed.pop(victim)
            ref.release(rect)
            inc.release(rect)
        elif roll < 0.52:
            # No-op release: a sub-rectangle of a free MER.  Neither
            # engine may bump its generation for a provably unchanged
            # logic space.
            fitting = ref.rectangles_fitting(1, 1)
            if not fitting:
                continue
            host = min(fitting, key=lambda r: (r.row, r.col))
            rect = Rect(host.row, host.col,
                        rng.randint(1, host.height),
                        rng.randint(1, host.width))
            before = ref.generation
            ref.release(rect)
            inc.release(rect)
            assert ref.generation == before
            assert inc.generation == before
        else:
            h = rng.randint(1, min(max_h, rows))
            w = rng.randint(1, min(max_w, cols))
            fitting = ref.rectangles_fitting(h, w)
            if not fitting:
                continue
            # A random anchor inside a random fitting MER (not first
            # fit): scattering placements keeps the grid fragmented,
            # which is what pushes the MER count over SMALL_SET.
            host = sorted(fitting)[rng.randrange(len(fitting))]
            rect = Rect(host.row + rng.randint(0, host.height - h),
                        host.col + rng.randint(0, host.width - w),
                        h, w)
            owner += 1
            ref.allocate(rect, owner)
            inc.allocate(rect, owner)
            placed[owner] = rect
        mutations += 1
        sizes.add(len(inc.mers))
        if mutations % check_every == 0:
            assert_lockstep(inc, ref)
    assert_lockstep(inc, ref)
    return mutations, sizes


class TestLockstepProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(3, 9), st.integers(3, 9),
        st.integers(0, 2 ** 16),
    )
    def test_random_histories_small_grids(self, rows, cols, seed):
        """Small grids live mostly under SMALL_SET: the scalar paths."""
        inc, ref = make_pair(rows, cols)
        drive_lockstep(inc, ref, random.Random(seed), steps=30,
                       max_h=rows, max_w=cols)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 9), st.integers(3, 9),
           st.integers(0, 2 ** 16))
    def test_random_histories_vectorised_paths_forced(self, rows, cols,
                                                      seed):
        """The same histories with the scalar fast path disabled.

        An instance-level ``SMALL_SET = 0`` forces every mutation and
        query through the vectorised code no matter how few MERs are
        live, so this exercises exactly the numpy paths on the exact
        histories the small-grid test runs scalar — any behavioural
        split between the two regimes fails one of the twins.
        """
        inc, ref = make_pair(rows, cols)
        inc.SMALL_SET = 0
        drive_lockstep(inc, ref, random.Random(seed), steps=30,
                       max_h=rows, max_w=cols)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2 ** 16))
    def test_random_histories_vectorised_grid(self, seed):
        """A mid-size grid whose churn straddles the threshold."""
        inc, ref = make_pair(16, 24)
        drive_lockstep(inc, ref, random.Random(seed),
                       steps=60, max_h=4, max_w=4, check_every=4)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(4, 10), st.integers(4, 10),
        st.integers(0, 2 ** 12),
    )
    def test_generation_counts_effective_mutations_only(self, rows,
                                                        cols, seed):
        """Generations equal the number of *effective* mutations."""
        inc, ref = make_pair(rows, cols)
        mutations, _ = drive_lockstep(inc, ref, random.Random(seed),
                                      steps=25, max_h=rows, max_w=cols,
                                      check_every=25)
        # Every step either mutated both engines once or was a no-op
        # release; the counters must agree with each other at the end
        # (checked inside) and never exceed the mutation count.
        assert inc.generation == ref.generation <= mutations


class TestLongChurn:
    """The acceptance bar: 1000+ lockstep steps on the XCV200 grid."""

    def test_thousand_step_lockstep_churn(self):
        rng = random.Random(20030303)
        inc, ref = make_pair(28, 42)
        full_every = 25
        mutations, sizes = drive_lockstep(
            inc, ref, rng, steps=1200, max_h=7, max_w=10,
            check_every=full_every,
        )
        assert mutations >= 1000
        # The run must exercise both regimes and the hand-over.
        assert min(sizes) <= IncrementalFreeSpace.SMALL_SET
        assert max(sizes) > IncrementalFreeSpace.SMALL_SET
        # Final state agrees with the ground-truth sweep, not just with
        # the sibling engine.
        assert set(inc.mers) == \
            set(maximal_empty_rectangles(inc.occupancy))

    def test_small_grid_long_churn(self):
        """An XC2S15-sized grid: the scalar fast path, 1000+ steps."""
        rng = random.Random(977)
        inc, ref = make_pair(8, 12)
        mutations, sizes = drive_lockstep(
            inc, ref, rng, steps=1100, max_h=4, max_w=5,
            check_every=20,
        )
        assert mutations >= 1000
        assert min(sizes) <= IncrementalFreeSpace.SMALL_SET
