"""Unit tests for relocation plans (Fig. 2 / Fig. 4 flows)."""

import pytest

from repro.device.clb import CellMode
from repro.core.procedure import (
    MIN_WAIT_CYCLES,
    RelocationPlan,
    RelocationVeto,
    StepClass,
    StepKind,
    build_plan,
)


def gated_plan(**overrides):
    kwargs = dict(
        cell="u1",
        mode=CellMode.FF_GATED_CLOCK,
        signal_columns={3, 4, 5},
        src_col=3,
        dst_col=5,
        aux_col=6,
        ce_col=3,
    )
    kwargs.update(overrides)
    return build_plan(**kwargs)


class TestPlanShapes:
    def test_combinational_two_phase(self):
        plan = build_plan(
            "u1", CellMode.COMBINATIONAL, {2}, src_col=2, dst_col=3
        )
        kinds = [s.kind for s in plan.steps]
        assert kinds == [
            StepKind.COPY_CONFIG,
            StepKind.PARALLEL_INPUTS,
            StepKind.PARALLEL_OUTPUTS,
            StepKind.WAIT_PARALLEL,
            StepKind.DISCONNECT_ORIG_OUTPUTS,
            StepKind.DISCONNECT_ORIG_INPUTS,
        ]

    def test_free_clock_adds_capture_wait(self):
        plan = build_plan(
            "u1", CellMode.FF_FREE_CLOCK, {2}, src_col=2, dst_col=3
        )
        kinds = [s.kind for s in plan.steps]
        assert StepKind.WAIT_CAPTURE in kinds
        assert kinds.index(StepKind.WAIT_CAPTURE) < kinds.index(
            StepKind.PARALLEL_OUTPUTS
        )

    def test_gated_uses_full_flow(self):
        plan = gated_plan()
        kinds = [s.kind for s in plan.steps]
        # The Fig. 4 order.
        expected = [
            StepKind.COPY_CONFIG,
            StepKind.CONNECT_AUX,
            StepKind.PARALLEL_INPUTS,
            StepKind.ACTIVATE_CONTROLS,
            StepKind.WAIT_CAPTURE,
            StepKind.DEACTIVATE_CE_CONTROL,
            StepKind.CONNECT_CE,
            StepKind.DEACTIVATE_RELOC_CONTROL,
            StepKind.DISCONNECT_AUX,
            StepKind.PARALLEL_OUTPUTS,
            StepKind.WAIT_PARALLEL,
            StepKind.DISCONNECT_ORIG_OUTPUTS,
            StepKind.DISCONNECT_ORIG_INPUTS,
        ]
        assert kinds == expected

    def test_latch_uses_same_flow_as_gated(self):
        latch = build_plan(
            "u1", CellMode.LATCH, {3}, src_col=3, dst_col=4, aux_col=5,
            ce_col=3,
        )
        gated = gated_plan()
        assert [s.kind for s in latch.steps] == [s.kind for s in gated.steps]


class TestRestrictions:
    def test_lut_ram_vetoed(self):
        with pytest.raises(RelocationVeto, match="RAM"):
            build_plan("u1", CellMode.LUT_RAM, {0}, src_col=0, dst_col=1)

    def test_gated_without_aux_site_vetoed(self):
        with pytest.raises(RelocationVeto, match="auxiliary"):
            build_plan(
                "u1", CellMode.FF_GATED_CLOCK, {0}, src_col=0, dst_col=1
            )


class TestWaits:
    def test_capture_wait_exceeds_two_clk(self):
        plan = gated_plan()
        wait = next(s for s in plan.steps if s.kind is StepKind.WAIT_CAPTURE)
        assert wait.min_wait_cycles == MIN_WAIT_CYCLES[StepKind.WAIT_CAPTURE]
        assert wait.min_wait_cycles > 2

    def test_parallel_wait_exceeds_one_clk(self):
        plan = gated_plan()
        wait = next(s for s in plan.steps if s.kind is StepKind.WAIT_PARALLEL)
        assert wait.min_wait_cycles > 1

    def test_wait_steps_touch_no_columns(self):
        for step in gated_plan().steps:
            if step.is_wait:
                assert step.columns == frozenset()
                assert step.step_class is StepClass.NONE


class TestColumns:
    def test_copy_targets_destination_column(self):
        plan = gated_plan()
        copy = next(s for s in plan.steps if s.kind is StepKind.COPY_CONFIG)
        assert copy.columns == frozenset({5})
        assert copy.step_class is StepClass.LOGIC

    def test_aux_steps_include_aux_column(self):
        plan = gated_plan()
        aux = next(s for s in plan.steps if s.kind is StepKind.CONNECT_AUX)
        assert 6 in aux.columns

    def test_control_steps_touch_only_aux_column(self):
        plan = gated_plan()
        ctl = next(
            s for s in plan.steps if s.kind is StepKind.ACTIVATE_CONTROLS
        )
        assert ctl.columns == frozenset({6})
        assert ctl.step_class is StepClass.CONTROL

    def test_touched_columns_cover_span(self):
        plan = gated_plan(src_col=2, dst_col=8, signal_columns={2, 8})
        assert plan.touched_columns >= set(range(2, 9))

    def test_config_steps_excludes_waits(self):
        plan = gated_plan()
        assert all(not s.is_wait for s in plan.config_steps)
        assert len(plan.config_steps) == len(plan.steps) - 2


class TestOrderValidation:
    def test_valid_plan_passes(self):
        gated_plan().validate_order()

    def test_missing_step_detected(self):
        plan = gated_plan()
        plan.steps = [s for s in plan.steps if s.kind is not StepKind.COPY_CONFIG]
        with pytest.raises(RelocationVeto, match="COPY_CONFIG"):
            plan.validate_order()

    def test_broken_order_detected(self):
        plan = gated_plan()
        # Disconnect outputs before paralleling them: forbidden.
        kinds = [s.kind for s in plan.steps]
        i = kinds.index(StepKind.PARALLEL_OUTPUTS)
        j = kinds.index(StepKind.DISCONNECT_ORIG_OUTPUTS)
        plan.steps[i], plan.steps[j] = plan.steps[j], plan.steps[i]
        with pytest.raises(RelocationVeto):
            plan.validate_order()

    def test_inputs_must_detach_after_outputs(self):
        plan = gated_plan()
        kinds = [s.kind for s in plan.steps]
        i = kinds.index(StepKind.DISCONNECT_ORIG_OUTPUTS)
        j = kinds.index(StepKind.DISCONNECT_ORIG_INPUTS)
        plan.steps[i], plan.steps[j] = plan.steps[j], plan.steps[i]
        with pytest.raises(RelocationVeto, match="outputs"):
            plan.validate_order()
