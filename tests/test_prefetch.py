"""Unit + integration tests for configuration prefetch.

Covers the resident-bitstream cache (:mod:`repro.sched.prefetch`), the
kernel's demand-hit / planned-load paths, the scheduler wiring, and the
campaign layer's sparse ``--prefetch`` axis:

* cache semantics: hit/miss, recency refresh, refresh-in-place,
  LRU-with-known-next-use eviction order, state round-trips;
* a resident hit charges zero configuration seconds and the planner
  only loads into *currently idle* port windows, so planned traffic
  never delays a demand load already queued;
* ``never`` mode builds no cache at all and emits rows bit-identical
  in shape to the historical exports (the golden suite pins the values).
"""

import pytest

from repro.campaign.runner import ScenarioResult, run_scenario
from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.core.cost import CostModel
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.sched.prefetch import (
    PREFETCH_MODES,
    BitstreamCache,
    normalize_prefetch_mode,
)
from repro.sched.scheduler import ApplicationFlowScheduler, OnlineTaskScheduler
from repro.sched.tasks import ApplicationSpec, FunctionSpec, Task
from repro.sched.workload import codec_swap_applications


def make_manager(name="XC2S15"):
    dev = device(name)
    return LogicSpaceManager(
        Fabric(dev), cost_model=CostModel(dev),
        policy=RearrangePolicy.CONCURRENT,
    )


class TestNormalize:
    @pytest.mark.parametrize("raw,canonical", [
        ("never", "never"), ("cache", "cache"), ("plan", "plan"),
        ("  PLAN ", "plan"),
    ])
    def test_canonical_spellings(self, raw, canonical):
        assert normalize_prefetch_mode(raw) == canonical

    @pytest.mark.parametrize("bad", ["always", "on", "", "caches"])
    def test_rejects_unknown_modes(self, bad):
        with pytest.raises(ValueError):
            normalize_prefetch_mode(bad)

    def test_modes_constant_is_canonical(self):
        for name in PREFETCH_MODES:
            assert normalize_prefetch_mode(name) == name


class TestBitstreamCache:
    def test_miss_then_insert_then_hit(self):
        cache = BitstreamCache(capacity=2)
        assert cache.hit("a", now=0.0) is None
        cache.insert("a", 2, 3, ready_at=1.0, now=0.0)
        entry = cache.hit("a", now=5.0)
        assert entry is not None
        assert (entry.height, entry.width) == (2, 3)
        assert entry.ready_at == 1.0
        assert entry.last_used == 5.0

    def test_hit_clears_known_next_use(self):
        cache = BitstreamCache(capacity=2)
        cache.insert("a", 1, 1, ready_at=0.0, now=0.0, next_use=3.0)
        assert cache.hit("a", now=3.0).next_use is None

    def test_refresh_in_place_never_evicts(self):
        cache = BitstreamCache(capacity=1)
        cache.insert("a", 1, 1, ready_at=0.0, now=0.0)
        assert cache.insert("a", 1, 1, ready_at=2.0, now=1.0) is None
        assert len(cache) == 1
        assert cache.get("a").ready_at == 2.0

    def test_evicts_farthest_known_next_use(self):
        cache = BitstreamCache(capacity=2)
        cache.insert("soon", 1, 1, ready_at=0.0, now=0.0, next_use=1.0)
        cache.insert("late", 1, 1, ready_at=0.0, now=0.0, next_use=9.0)
        evicted = cache.insert("new", 1, 1, ready_at=0.0, now=0.5,
                               next_use=2.0)
        assert evicted.key == "late"
        assert "soon" in cache

    def test_unknown_next_use_is_farthest(self):
        cache = BitstreamCache(capacity=2)
        cache.insert("known", 1, 1, ready_at=0.0, now=0.0, next_use=99.0)
        cache.insert("unknown", 1, 1, ready_at=0.0, now=0.0)
        assert cache.insert("new", 1, 1, ready_at=0.0,
                            now=0.5).key == "unknown"

    def test_lru_breaks_ties_among_unknowns(self):
        cache = BitstreamCache(capacity=2)
        cache.insert("old", 1, 1, ready_at=0.0, now=0.0)
        cache.insert("fresh", 1, 1, ready_at=0.0, now=0.0)
        cache.hit("old", now=5.0)  # refresh recency
        assert cache.insert("new", 1, 1, ready_at=0.0,
                            now=6.0).key == "fresh"

    def test_note_next_use_keeps_minimum(self):
        cache = BitstreamCache(capacity=2)
        cache.insert("a", 1, 1, ready_at=0.0, now=0.0, next_use=5.0)
        assert cache.note_next_use("a", 3.0)
        assert cache.get("a").next_use == 3.0
        cache.note_next_use("a", 8.0)  # later demand changes nothing
        assert cache.get("a").next_use == 3.0
        assert not cache.note_next_use("missing", 1.0)

    def test_admits_planned_loads_only_when_worthwhile(self):
        cache = BitstreamCache(capacity=1)
        assert cache.admits(next_use=None)  # space free
        cache.insert("resident", 1, 1, ready_at=0.0, now=0.0, next_use=5.0)
        assert cache.admits(next_use=2.0)       # earlier demand wins
        assert not cache.admits(next_use=7.0)   # victim needed sooner
        assert not cache.admits(next_use=None)  # unknown never beats known

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BitstreamCache(capacity=0)

    def test_state_roundtrip(self):
        cache = BitstreamCache(capacity=3)
        cache.insert("a", 2, 2, ready_at=1.0, now=0.0, next_use=4.0)
        cache.insert("b", 3, 1, ready_at=2.0, now=1.5)
        cache.hit("a", now=2.0)
        clone = BitstreamCache()
        clone.restore_state(cache.export_state())
        assert clone.export_state() == cache.export_state()
        assert clone.peek_victim().key == cache.peek_victim().key


def one_chain(functions, name="A"):
    """A single application from (name, h, w, exec) tuples."""
    return ApplicationSpec(name, [FunctionSpec(*f) for f in functions])


class TestKernelCachePath:
    def test_repeat_function_hits_and_charges_nothing(self):
        """The second demand of the same bitstream is a resident hit:
        zero configuration seconds are charged for it."""
        app = one_chain([("F", 4, 4, 1.0), ("F", 4, 4, 1.0)])
        sched = ApplicationFlowScheduler(make_manager(),
                                         prefetch_mode="cache")
        runs = sched.run([app])
        assert sched.metrics.prefetch_hits == 1
        first, second = runs[0].runs
        assert first.config_seconds > 0.0
        assert second.config_seconds == 0.0
        assert sched.metrics.config_stall_seconds == pytest.approx(
            first.config_seconds
        )

    def test_never_mode_builds_no_cache_and_counts_demand_stall(self):
        app = one_chain([("F", 4, 4, 1.0), ("F", 4, 4, 1.0)])
        sched = ApplicationFlowScheduler(make_manager())
        runs = sched.run([app])
        assert sched.kernel.caches is None
        assert sched.metrics.prefetch_hits == 0
        assert sched.metrics.prefetch_loads == 0
        assert sched.metrics.cache_evictions == 0
        # Both demands paid the port in full.
        charged = [r.config_seconds for r in runs[0].runs]
        assert all(c > 0.0 for c in charged)
        assert sched.metrics.config_stall_seconds == pytest.approx(
            sum(charged)
        )

    def test_cache_mode_never_exceeds_never_mode_stall(self):
        apps_args = dict(n_apps=3, seed=7, repeats=3)
        by_mode = {}
        for mode in ("never", "cache"):
            sched = ApplicationFlowScheduler(make_manager("XC2S30"),
                                             prefetch_mode=mode)
            sched.run(codec_swap_applications(device("XC2S30"),
                                              **apps_args))
            by_mode[mode] = sched.metrics
        assert by_mode["cache"].prefetch_hits > 0
        assert (by_mode["cache"].config_stall_seconds
                < by_mode["never"].config_stall_seconds)


class TestPlanner:
    def waiting_task_setup(self, mode):
        """One task filling the fabric, a second one queued behind it."""
        sched = OnlineTaskScheduler(make_manager(), prefetch_mode=mode)
        dev = sched.manager.fabric.device
        blocker = Task(1, dev.clb_rows, dev.clb_cols,
                       exec_seconds=10.0, arrival=0.0)
        waiter = Task(2, 4, 4, exec_seconds=1.0, arrival=1.0)
        return sched, [blocker, waiter]

    def test_planner_preloads_queued_task_in_idle_window(self):
        """While the waiter queues for space, the idle port preloads
        its bitstream; its eventual admission is then a resident hit."""
        sched, tasks = self.waiting_task_setup("plan")
        sched.run(tasks)
        assert sched.metrics.prefetch_loads == 1
        assert sched.metrics.prefetch_hits == 1
        # Only the blocker's demand load was exposed stall.
        assert sched.metrics.config_stall_seconds == pytest.approx(
            tasks[0].configured_at
        )

    def test_cache_mode_does_not_plan(self):
        """One-shot tasks never repeat, so pure cache mode cannot help
        a task stream — only the planner can."""
        sched, tasks = self.waiting_task_setup("cache")
        sched.run(tasks)
        assert sched.metrics.prefetch_loads == 0
        assert sched.metrics.prefetch_hits == 0

    def test_planner_never_waits_on_a_busy_port(self):
        """A planned load is only issued into a *currently idle* port
        window: the port horizon after the planner ran equals what the
        demand traffic alone had established, whenever the port was
        still busy at plan time."""
        sched, tasks = self.waiting_task_setup("plan")
        kernel = sched.kernel
        dev = sched.manager.fabric.device
        # Fill the fabric so the waiter must queue, then occupy the
        # port far beyond the horizon before asking the planner.
        assert kernel.manager.request(dev.clb_rows, dev.clb_cols, 1).success
        kernel.ports[0].acquire(config_seconds=50.0)
        horizon = kernel.ports[0].free_at
        kernel.enqueue(tasks[1], priority=0, area=tasks[1].area)
        kernel.maybe_prefetch()
        assert kernel.ports[0].free_at == horizon
        assert kernel.metrics.prefetch_loads == 0
        assert kernel.events.now < horizon  # the window genuinely was busy


class TestCampaignAxis:
    def test_spec_validates_and_canonicalises(self):
        spec = ScenarioSpec("XC2S15", "none", "random", 0,
                            prefetch=" CACHE ")
        assert spec.prefetch == "cache"
        with pytest.raises(ValueError):
            ScenarioSpec("XC2S15", "none", "random", 0, prefetch="on")

    def test_to_dict_emits_prefetch_sparsely(self):
        base = ScenarioSpec("XC2S15", "none", "random", 0)
        assert "prefetch" not in base.to_dict()
        swept = ScenarioSpec("XC2S15", "none", "random", 0,
                             prefetch="plan")
        assert swept.to_dict()["prefetch"] == "plan"

    def test_campaign_expands_prefetch_axis(self):
        campaign = CampaignSpec(devices=["XC2S15"], policies=["none"],
                                workloads=["random"], seeds=[0],
                                prefetches=["never", "cache", "plan"])
        specs = campaign.expand()
        assert campaign.size == len(specs) == 3
        assert [s.prefetch for s in specs] == ["never", "cache", "plan"]

    def test_rows_are_sparse_for_never_and_filled_when_swept(self):
        never = run_scenario(
            ScenarioSpec("XC2S15", "none", "random", 0,
                         workload_params=(("n", 8),))
        )
        row = never.to_row()
        for name in ScenarioResult.PREFETCH_METRIC_FIELDS:
            assert name not in row
        swept = run_scenario(
            ScenarioSpec("XC2S15", "none", "random", 0, prefetch="plan",
                         workload_params=(("n", 8),))
        )
        row = swept.to_row()
        assert row["prefetch"] == "plan"
        for name in ScenarioResult.PREFETCH_METRIC_FIELDS:
            assert name in row
