"""Unit + property tests for maximal-empty-rectangle enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device.geometry import Rect
from repro.placement.free_space import (
    FreeSpaceManager,
    largest_empty_rectangle,
    make_free_space,
    maximal_empty_rectangles,
    rectangles_fitting,
)


def brute_force_mers(occupancy: np.ndarray) -> set[Rect]:
    """Reference implementation: enumerate every all-free rectangle and
    keep those not contained in a larger free rectangle."""
    rows, cols = occupancy.shape
    free = occupancy == 0
    empties = []
    for r in range(rows):
        for c in range(cols):
            for h in range(1, rows - r + 1):
                for w in range(1, cols - c + 1):
                    if free[r : r + h, c : c + w].all():
                        empties.append(Rect(r, c, h, w))
    return {
        a for a in empties
        if not any(b != a and b.contains_rect(a) for b in empties)
    }


class TestMaximalEmptyRectangles:
    def test_empty_grid_single_mer(self):
        occ = np.zeros((4, 6), dtype=int)
        mers = maximal_empty_rectangles(occ)
        assert mers == [Rect(0, 0, 4, 6)]

    def test_full_grid_no_mer(self):
        occ = np.ones((3, 3), dtype=int)
        assert maximal_empty_rectangles(occ) == []

    def test_single_obstacle(self):
        occ = np.zeros((3, 3), dtype=int)
        occ[1, 1] = 7
        mers = set(maximal_empty_rectangles(occ))
        assert mers == brute_force_mers(occ)

    def test_l_shape(self):
        occ = np.zeros((4, 4), dtype=int)
        occ[0:2, 0:2] = 1
        assert set(maximal_empty_rectangles(occ)) == brute_force_mers(occ)

    def test_checkerboard(self):
        occ = np.indices((4, 4)).sum(axis=0) % 2
        assert set(maximal_empty_rectangles(occ)) == brute_force_mers(occ)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(2, 6), st.integers(2, 6), st.integers(0, 2 ** 12),
    )
    def test_matches_brute_force(self, rows, cols, pattern):
        rng = np.random.RandomState(pattern)
        occ = (rng.rand(rows, cols) < 0.4).astype(int)
        assert set(maximal_empty_rectangles(occ)) == brute_force_mers(occ)

    def test_all_results_are_empty_rectangles(self):
        rng = np.random.RandomState(3)
        occ = (rng.rand(10, 12) < 0.3).astype(int)
        for rect in maximal_empty_rectangles(occ):
            view = occ[rect.row : rect.row_end, rect.col : rect.col_end]
            assert (view == 0).all()


class TestQueries:
    def test_largest_empty_rectangle(self):
        occ = np.zeros((5, 5), dtype=int)
        occ[:, 2] = 1  # split into two 5x2 halves
        rect = largest_empty_rectangle(occ)
        assert rect.area == 10

    def test_largest_on_full_grid(self):
        assert largest_empty_rectangle(np.ones((2, 2), dtype=int)) is None

    def test_rectangles_fitting_respects_orientation(self):
        occ = np.zeros((3, 6), dtype=int)
        assert rectangles_fitting(occ, 3, 6)
        assert not rectangles_fitting(occ, 6, 3)  # no rotation


class TestFreeSpaceManager:
    def test_cache_invalidation(self):
        occ = np.zeros((4, 4), dtype=int)
        mgr = FreeSpaceManager(occ)
        assert mgr.fits(4, 4)
        occ[0, 0] = 1
        mgr.invalidate()
        assert not mgr.fits(4, 4)
        assert mgr.fits(3, 4)

    def test_free_area(self):
        occ = np.zeros((4, 4), dtype=int)
        occ[0, :] = 5
        assert FreeSpaceManager(occ).free_area() == 12

    def test_owned_mutations_need_no_invalidate(self):
        """The footgun fix: allocate/release keep the cache fresh on
        their own."""
        occ = np.zeros((4, 4), dtype=int)
        mgr = FreeSpaceManager(occ)
        assert mgr.fits(4, 4)
        mgr.allocate(Rect(0, 0, 1, 1), owner=9)
        assert not mgr.fits(4, 4) and occ[0, 0] == 9
        assert mgr.rectangles_fitting(3, 4)
        mgr.release(Rect(0, 0, 1, 1))
        assert mgr.fits(4, 4) and occ[0, 0] == 0

    def test_engine_factory(self):
        occ = np.zeros((3, 3), dtype=int)
        for name in ("recompute", "incremental"):
            engine = make_free_space(name, occ)
            assert engine.occupancy is occ
            assert engine.fits(3, 3)
        with pytest.raises(KeyError):
            make_free_space("clairvoyant", occ)
