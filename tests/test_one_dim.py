"""Unit tests for the 1-D (column-strip) allocation baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.placement.one_dim import OneDimAllocator, Strip


@pytest.fixture
def alloc():
    return OneDimAllocator(rows=28, cols=42)


class TestColumnsNeeded:
    def test_rounds_up(self, alloc):
        assert alloc.columns_needed(28, 1) == 1
        assert alloc.columns_needed(14, 1) == 1  # half a column still costs 1
        assert alloc.columns_needed(28, 3) == 3
        assert alloc.columns_needed(10, 10) == 4  # 100/28 -> 4

    def test_1d_never_cheaper_than_area(self, alloc):
        # ceil(a/rows) * rows >= a: 1-D always wastes sites up.
        for h, w in ((3, 3), (10, 5), (28, 2)):
            assert alloc.columns_needed(h, w) * alloc.rows >= h * w


class TestAllocateRelease:
    def test_first_fit_leftmost(self, alloc):
        strip = alloc.allocate(28, 5, owner=1)
        assert strip == Strip(0, 5)
        strip2 = alloc.allocate(28, 3, owner=2)
        assert strip2 == Strip(5, 3)

    def test_release_and_reuse(self, alloc):
        alloc.allocate(28, 5, owner=1)
        alloc.allocate(28, 5, owner=2)
        alloc.release(1)
        strip = alloc.allocate(28, 4, owner=3)
        assert strip.col == 0

    def test_release_unknown_rejected(self, alloc):
        with pytest.raises(KeyError):
            alloc.release(9)

    def test_exhaustion_returns_none(self, alloc):
        assert alloc.allocate(28, 42, owner=1) is not None
        assert alloc.allocate(1, 1, owner=2) is None

    def test_invalid_owner_rejected(self, alloc):
        with pytest.raises(ValueError):
            alloc.allocate(1, 1, owner=0)

    def test_utilization(self, alloc):
        alloc.allocate(28, 21, owner=1)
        assert alloc.utilization() == pytest.approx(0.5)


class TestFragmentation:
    def test_contiguous_free_not_fragmented(self, alloc):
        alloc.allocate(28, 10, owner=1)
        assert alloc.fragmentation_index() == 0.0

    def test_gap_pattern_fragmented(self, alloc):
        a = alloc.allocate(28, 10, owner=1)
        b = alloc.allocate(28, 10, owner=2)
        c = alloc.allocate(28, 10, owner=3)
        alloc.release(2)
        # Free: 10 (middle) + 12 (right) = 22; largest run 12.
        assert alloc.fragmentation_index() == pytest.approx(1 - 12 / 22)

    def test_compact_defragments(self, alloc):
        alloc.allocate(28, 10, owner=1)
        alloc.allocate(28, 10, owner=2)
        alloc.allocate(28, 10, owner=3)
        alloc.release(2)
        moved = alloc.compact()
        assert moved == 1  # only owner 3 slides left
        assert alloc.fragmentation_index() == 0.0
        assert alloc.allocate(28, 22, owner=9) is not None

    def test_compact_preserves_widths(self, alloc):
        alloc.allocate(28, 7, owner=1)
        alloc.allocate(28, 5, owner=2)
        alloc.release(1)
        alloc.compact()
        assert int((alloc.columns == 2).sum()) == 5

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_compact_idempotent(self, seed):
        import random

        rng = random.Random(seed)
        alloc = OneDimAllocator(rows=28, cols=42)
        owners = []
        for i in range(1, 9):
            if alloc.allocate(rng.randint(1, 28), rng.randint(1, 6), i):
                owners.append(i)
        for owner in owners[::2]:
            alloc.release(owner)
        alloc.compact()
        assert alloc.compact() == 0  # second pass moves nothing


class TestFreeRuns:
    def test_runs_cover_free_columns(self, alloc):
        alloc.allocate(28, 10, owner=1)
        alloc.allocate(28, 10, owner=2)
        alloc.release(1)
        runs = alloc.free_runs()
        assert sum(r.width for r in runs) == 42 - 10
        assert runs[0] == Strip(0, 10)

    def test_strip_to_rect(self):
        rect = Strip(5, 3).to_rect(rows=28)
        assert rect.row == 0 and rect.height == 28
        assert rect.col == 5 and rect.width == 3
