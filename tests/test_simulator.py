"""Unit tests for the cycle simulator (including drive conflicts)."""

import pytest

from repro.device.clb import CellMode
from repro.netlist import library as lib
from repro.netlist.cells import Cell, LUT_AND2, LUT_BUF, LUT_NOT, LUT_XOR2
from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.simulator import (
    CycleSimulator,
    LockstepChecker,
    SimulationError,
)


class TestCombinational:
    def test_majority_voter(self):
        sim = CycleSimulator(lib.majority_voter())
        cases = {
            (0, 0, 0): 0, (1, 0, 0): 0, (1, 1, 0): 1,
            (1, 0, 1): 1, (1, 1, 1): 1, (0, 1, 1): 1,
        }
        for (a, b, c), want in cases.items():
            out = sim.step({"a": a, "b": b, "c": c})
            assert out["vote"] == want, (a, b, c)

    def test_inputs_hold_between_steps(self):
        sim = CycleSimulator(lib.majority_voter())
        sim.step({"a": 1, "b": 1, "c": 0})
        out = sim.step({})  # no changes: inputs registered
        assert out["vote"] == 1

    def test_unknown_input_rejected(self):
        sim = CycleSimulator(lib.majority_voter())
        with pytest.raises(NetlistError):
            sim.step({"zz": 1})


class TestSequential:
    def test_counter_counts(self):
        sim = CycleSimulator(lib.counter(4))
        values = [lib.counter_value(sim.step()) for _ in range(17)]
        assert values == list(range(1, 16)) + [0, 1]

    def test_gated_counter_respects_ce(self):
        sim = CycleSimulator(lib.gated_counter(3))
        assert lib.counter_value(sim.step({"en": 0})) == 0
        assert lib.counter_value(sim.step({"en": 1})) == 1
        assert lib.counter_value(sim.step({"en": 0})) == 1
        assert lib.counter_value(sim.step({"en": 1})) == 2

    def test_lfsr_period_15(self):
        sim = CycleSimulator(lib.lfsr4())
        start = dict(sim.state)
        for _ in range(15):
            sim.step()
        assert dict(sim.state) == start

    def test_shift_register_latency(self):
        sim = CycleSimulator(lib.shift_register(3))
        outs = [sim.step({"din": 1 if i == 0 else 0})["s2"] for i in range(5)]
        assert outs == [0, 0, 1, 0, 0]

    def test_seed_state(self):
        sim = CycleSimulator(lib.counter(4))
        sim.seed_state("b3", 1)
        assert lib.counter_value(sim.outputs()) == 8

    def test_cell_state_unknown_rejected(self):
        sim = CycleSimulator(lib.counter(2))
        with pytest.raises(NetlistError):
            sim.cell_state("not_a_cell")


class TestLatches:
    def test_transparent_when_gate_high(self):
        sim = CycleSimulator(lib.latch_pipeline(2))
        out = sim.step({"din": 1, "g": 1})
        assert out["l1"] == 1

    def test_holds_when_gate_low(self):
        sim = CycleSimulator(lib.latch_pipeline(1))
        sim.step({"din": 1, "g": 1})
        out = sim.step({"din": 0, "g": 0})
        assert out["l0"] == 1  # held

    def test_oscillating_latch_loop_detected(self):
        c = Circuit("osc")
        c.add_input("g")
        c.add_cell(Cell("n", LUT_NOT, ("l",)))
        c.add_cell(
            Cell("l", LUT_BUF, ("n",), mode=CellMode.LATCH, ce="g")
        )
        c.set_outputs(["l"])
        sim = CycleSimulator(c)
        with pytest.raises(SimulationError, match="settle"):
            sim.step({"g": 1})


class TestParallelDriverConflicts:
    def _paralleled(self, same: bool) -> CycleSimulator:
        c = Circuit("p")
        c.add_input("a")
        c.add_cell(Cell("d1", LUT_BUF, ("a",)))
        table = LUT_BUF if same else LUT_NOT
        c.add_cell(Cell("d2", table, ("a",)))
        c.set_outputs(["d1"])
        c.add_parallel_driver("d1", "d2")
        return CycleSimulator(c)

    def test_agreeing_drivers_no_conflict(self):
        sim = self._paralleled(same=True)
        sim.step({"a": 1})
        sim.step({"a": 0})
        assert sim.conflicts == []

    def test_disagreeing_drivers_flagged(self):
        sim = self._paralleled(same=False)
        sim.step({"a": 1})
        assert sim.conflicts
        conflict = sim.conflicts[0]
        assert conflict.net == "d1"
        assert dict(conflict.values)["d1"] != dict(conflict.values)["d2"]

    def test_strict_mode_raises(self):
        c = Circuit("p")
        c.add_input("a")
        c.add_cell(Cell("d1", LUT_BUF, ("a",)))
        c.add_cell(Cell("d2", LUT_NOT, ("a",)))
        c.set_outputs(["d1"])
        c.add_parallel_driver("d1", "d2")
        # With inputs at 0, BUF=0 and NOT=1 disagree immediately: strict
        # mode raises as soon as the conflict is observable.
        with pytest.raises(SimulationError, match="conflict"):
            sim = CycleSimulator(c, strict=True)
            sim.step({"a": 1})

    def test_net_value_follows_primary(self):
        sim = self._paralleled(same=False)
        out = sim.step({"a": 1})
        assert out["d1"] == 1  # primary driver d1 is a buffer


class TestLockstep:
    def test_identical_circuits_stay_clean(self):
        a = lib.counter(4)
        checker = LockstepChecker(CycleSimulator(a), CycleSimulator(a.clone()))
        for _ in range(20):
            checker.step()
        assert checker.clean

    def test_divergence_detected(self):
        dut = CycleSimulator(lib.counter(3))
        golden = CycleSimulator(lib.counter(3))
        dut.seed_state("b0", 1)  # corrupt the DUT
        checker = LockstepChecker(dut, golden)
        checker.step()
        assert not checker.clean
        assert checker.mismatches

    def test_output_mismatch_rejected_at_build(self):
        a = CycleSimulator(lib.counter(2))
        b = CycleSimulator(lib.counter(3))
        with pytest.raises(NetlistError):
            LockstepChecker(a, b)

    def test_run_and_snapshot(self):
        sim = CycleSimulator(lib.counter(3))
        trace = sim.run([{} for _ in range(3)])
        assert len(trace) == 3
        snap = sim.snapshot()
        assert set(snap) == {"b0", "b1", "b2"}
