"""Integration tests for the on-line schedulers."""

import pytest

from repro.device.fabric import Fabric
from repro.device.devices import device
from repro.core.cost import CostModel
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.sched.scheduler import (
    ApplicationFlowScheduler,
    OnlineTaskScheduler,
)
from repro.sched.tasks import ApplicationSpec, FunctionSpec, Task, TaskState
from repro.sched.workload import fig1_applications, random_tasks


def make_manager(policy=RearrangePolicy.CONCURRENT, port="selectmap"):
    dev = device("XCV200")
    return LogicSpaceManager(
        Fabric(dev), cost_model=CostModel(dev, port_kind=port), policy=policy
    )


class TestOnlineTaskScheduler:
    def test_all_tasks_finish_under_light_load(self):
        sched = OnlineTaskScheduler(make_manager())
        tasks = random_tasks(20, seed=1, mean_interarrival=5.0,
                             size_range=(2, 5), exec_range=(0.5, 1.0))
        metrics = sched.run(tasks)
        assert metrics.finished == 20
        assert all(t.state is TaskState.FINISHED for t in tasks)

    def test_fifo_order_preserved_for_queued(self):
        mgr = make_manager(policy=RearrangePolicy.NONE)
        sched = OnlineTaskScheduler(mgr)
        # Two device-filling tasks arriving together: strict FIFO.
        tasks = [
            Task(1, 28, 42, 1.0, arrival=0.0),
            Task(2, 28, 42, 1.0, arrival=0.0),
        ]
        sched.run(tasks)
        assert tasks[0].started_at < tasks[1].started_at

    def test_waiting_time_measured(self):
        mgr = make_manager(policy=RearrangePolicy.NONE)
        sched = OnlineTaskScheduler(mgr)
        tasks = [
            Task(1, 28, 42, 2.0, arrival=0.0),
            Task(2, 4, 4, 1.0, arrival=0.5),
        ]
        metrics = sched.run(tasks)
        assert metrics.finished == 2
        # Task 2 had to wait for the device-filling task 1.
        assert tasks[2 - 1].waiting_seconds > 1.0

    def test_port_serialisation(self):
        sched = OnlineTaskScheduler(make_manager())
        tasks = [Task(i, 4, 4, 1.0, arrival=0.0) for i in range(1, 5)]
        metrics = sched.run(tasks)
        starts = sorted(t.started_at for t in tasks)
        # Configuration is serial: no two tasks start at the same instant.
        assert len(set(starts)) == len(starts)
        assert metrics.port_busy_seconds > 0

    def test_halt_policy_extends_moved_tasks(self):
        mgr = make_manager(policy=RearrangePolicy.HALT, port="boundary-scan")
        sched = OnlineTaskScheduler(mgr)
        tasks = [
            Task(1, 28, 14, 30.0, arrival=0.0),
            Task(2, 28, 14, 30.0, arrival=0.0),
            Task(3, 28, 14, 30.0, arrival=0.0),
            # Arrives when three pillars may be fragmented after one exits.
            Task(4, 28, 20, 5.0, arrival=31.0),
        ]
        metrics = sched.run(tasks)
        assert metrics.finished == 4
        if metrics.rearrangements:
            assert metrics.halted_seconds > 0

    def test_concurrent_policy_never_halts(self):
        mgr = make_manager(policy=RearrangePolicy.CONCURRENT)
        sched = OnlineTaskScheduler(mgr)
        metrics = sched.run(
            random_tasks(30, seed=5, mean_interarrival=1.0,
                         size_range=(4, 12), exec_range=(10, 30))
        )
        assert metrics.halted_seconds == 0.0

    def test_fragmentation_sampled(self):
        sched = OnlineTaskScheduler(make_manager())
        metrics = sched.run(random_tasks(10, seed=2))
        assert metrics.fragmentation_samples
        assert all(0.0 <= f <= 1.0 for f in metrics.fragmentation_samples)


class TestApplicationFlowScheduler:
    def test_single_app_runs_to_completion(self):
        app = ApplicationSpec(
            "A", [FunctionSpec("A1", 4, 4, 0.5), FunctionSpec("A2", 4, 4, 0.5)]
        )
        runs = ApplicationFlowScheduler(make_manager()).run([app])
        assert runs[0].finished_at is not None
        assert len(runs[0].runs) == 2

    def test_prefetch_hides_reconfiguration(self):
        # With prefetch and free space, the successor is configured while
        # the current function runs: stall ~ 0 beyond the first config.
        app = ApplicationSpec(
            "A",
            [FunctionSpec(f"A{i}", 4, 4, 0.5) for i in range(1, 4)],
        )
        runs = ApplicationFlowScheduler(make_manager(), prefetch=True).run([app])
        record = runs[0]
        assert record.stall_seconds < 0.01
        assert all(r.prefetched for r in record.runs[1:])

    def test_no_prefetch_pays_reconfiguration(self):
        app = ApplicationSpec(
            "A",
            [FunctionSpec(f"A{i}", 10, 10, 0.5) for i in range(1, 4)],
        )
        fast = ApplicationFlowScheduler(make_manager(), prefetch=True).run(
            [app]
        )[0]
        slow = ApplicationFlowScheduler(make_manager(), prefetch=False).run(
            [app]
        )[0]
        assert slow.makespan > fast.makespan

    def test_fig1_scenario_all_apps_finish(self):
        apps = fig1_applications(device("XCV200"))
        runs = ApplicationFlowScheduler(make_manager()).run(apps)
        assert all(r.finished_at is not None for r in runs)

    def test_parallelism_induces_stalls(self):
        # Fig. 1's point: more applications sharing the device retard the
        # advance reconfiguration of incoming functions.
        dev = device("XCV200")
        solo = ApplicationFlowScheduler(make_manager()).run(
            fig1_applications(dev)[:1]
        )
        full = ApplicationFlowScheduler(make_manager()).run(
            fig1_applications(dev)
        )
        stall_solo = solo[0].stall_seconds
        stall_full = next(r for r in full if r.spec.name == "A").stall_seconds
        assert stall_full >= stall_solo


class TestQueueTimeouts:
    def test_impatient_task_rejected(self):
        mgr = make_manager(policy=RearrangePolicy.NONE)
        sched = OnlineTaskScheduler(mgr)
        tasks = [
            Task(1, 28, 42, 10.0, arrival=0.0),
            Task(2, 28, 42, 1.0, arrival=0.0, max_wait=2.0),
        ]
        metrics = sched.run(tasks)
        assert metrics.finished == 1
        assert metrics.rejected == 1
        assert tasks[1].state is TaskState.REJECTED

    def test_patient_task_not_rejected(self):
        mgr = make_manager(policy=RearrangePolicy.NONE)
        sched = OnlineTaskScheduler(mgr)
        tasks = [
            Task(1, 28, 42, 1.0, arrival=0.0),
            Task(2, 28, 42, 1.0, arrival=0.0, max_wait=30.0),
        ]
        metrics = sched.run(tasks)
        assert metrics.finished == 2
        assert metrics.rejected == 0

    def test_timeout_unblocks_queue(self):
        # A huge impatient task at the head must not starve a small
        # patient task behind it forever.
        mgr = make_manager(policy=RearrangePolicy.NONE)
        sched = OnlineTaskScheduler(mgr)
        tasks = [
            Task(1, 28, 30, 20.0, arrival=0.0),
            Task(2, 28, 42, 1.0, arrival=0.1, max_wait=1.0),  # can't fit
            Task(3, 4, 4, 1.0, arrival=0.2),
        ]
        metrics = sched.run(tasks)
        assert tasks[1].state is TaskState.REJECTED
        assert tasks[2].state is TaskState.FINISHED
        # Task 3 started long before task 1 finished (it fit beside it
        # once the impatient giant gave up).
        assert tasks[2].started_at < 5.0

    def test_allocation_rate_improves_with_rearrangement(self):
        # Diessel-style metric: share of impatient tasks allocated.
        results = {}
        for policy in (RearrangePolicy.NONE, RearrangePolicy.CONCURRENT):
            mgr = make_manager(policy=policy)
            sched = OnlineTaskScheduler(mgr)
            metrics = sched.run(
                random_tasks(60, seed=9, mean_interarrival=1.5,
                             size_range=(4, 12), exec_range=(20, 60),
                             max_wait=10.0)
            )
            results[policy] = metrics.finished
        assert results[RearrangePolicy.CONCURRENT] >= results[
            RearrangePolicy.NONE
        ]
