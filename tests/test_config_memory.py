"""Unit tests for the configuration memory model."""

import pytest

from repro.device.config_memory import (
    ColumnKind,
    ConfigMemory,
    FrameAddress,
    LOGIC_MINORS,
    ROUTING_MINORS,
    STATE_MINORS,
)
from repro.device.devices import device, synthetic_device


@pytest.fixture
def memory():
    return ConfigMemory(device("XCV200"))


class TestLayout:
    def test_column_counts(self, memory):
        assert memory.column_count(ColumnKind.CLB) == 42
        assert memory.column_count(ColumnKind.CLOCK) == 1
        assert memory.column_count(ColumnKind.IOB) == 2
        assert memory.column_count(ColumnKind.BRAM_CONTENT) == 2

    def test_frames_per_kind(self, memory):
        assert memory.frames_in_column(ColumnKind.CLB) == 48
        assert memory.frames_in_column(ColumnKind.CLOCK) == 8
        assert memory.frames_in_column(ColumnKind.IOB) == 54

    def test_minor_partitions_cover_clb_column(self):
        minors = list(ROUTING_MINORS) + list(LOGIC_MINORS) + list(STATE_MINORS)
        assert sorted(minors) == list(range(48))

    def test_clb_major_mapping(self, memory):
        assert memory.clb_major(0) == 0
        assert memory.clb_major(41) == 41
        with pytest.raises(IndexError):
            memory.clb_major(42)


class TestFrameIO:
    def test_write_read_roundtrip(self, memory):
        addr = FrameAddress(ColumnKind.CLB, 5, 10)
        payload = bytes(range(memory.frame_bytes % 256)) + bytes(
            memory.frame_bytes - (memory.frame_bytes % 256)
        )
        payload = payload[: memory.frame_bytes]
        memory.write_frame(addr, payload)
        assert memory.read_frame(addr) == payload

    def test_initial_frames_zero(self, memory):
        addr = FrameAddress(ColumnKind.CLB, 0, 0)
        assert memory.peek_frame(addr) == bytes(memory.frame_bytes)

    def test_wrong_payload_size_rejected(self, memory):
        addr = FrameAddress(ColumnKind.CLB, 0, 0)
        with pytest.raises(ValueError, match="bytes"):
            memory.write_frame(addr, b"\x00")

    def test_bad_address_rejected(self, memory):
        with pytest.raises(IndexError):
            memory.write_frame(
                FrameAddress(ColumnKind.CLB, 99, 0), bytes(memory.frame_bytes)
            )
        with pytest.raises(IndexError):
            memory.read_frame(FrameAddress(ColumnKind.CLB, 0, 48))

    def test_burst_is_one_transaction(self, memory):
        writes = [
            (FrameAddress(ColumnKind.CLB, 1, m), bytes(memory.frame_bytes))
            for m in range(5)
        ]
        memory.write_frames(writes)
        assert memory.stats.frames_written == 5
        assert memory.stats.transactions == 1

    def test_empty_burst_costs_nothing(self, memory):
        memory.write_frames([])
        assert memory.stats.transactions == 0


class TestColumnIO:
    def test_rewrite_in_place_preserves_content(self, memory):
        addr = FrameAddress(ColumnKind.CLB, 3, 7)
        payload = b"\xAB" * memory.frame_bytes
        memory.write_frame(addr, payload)
        # "Rewriting the same configuration data does not generate any
        # transient signals" — and must not change the content either.
        memory.write_column(ColumnKind.CLB, 3)
        assert memory.peek_frame(addr) == payload

    def test_column_write_counts(self, memory):
        memory.write_column(ColumnKind.CLB, 0)
        assert memory.stats.frames_written == 48
        assert memory.stats.transactions == 1

    def test_column_shape_enforced(self, memory):
        with pytest.raises(ValueError, match="frames"):
            memory.write_column(ColumnKind.CLB, 0, [b""] * 3)

    def test_read_column(self, memory):
        frames = memory.read_column(ColumnKind.CLOCK, 0)
        assert len(frames) == 8
        assert memory.stats.frames_read == 8


class TestSnapshotRestore:
    def test_roundtrip(self, memory):
        addr = FrameAddress(ColumnKind.CLB, 2, 2)
        snap = memory.snapshot()
        memory.write_frame(addr, b"\xFF" * memory.frame_bytes)
        assert memory.peek_frame(addr) != bytes(memory.frame_bytes)
        memory.restore(snap)
        assert memory.peek_frame(addr) == bytes(memory.frame_bytes)

    def test_equality_semantics(self):
        a = ConfigMemory(synthetic_device(4, 4))
        b = ConfigMemory(synthetic_device(4, 4))
        assert a == b
        a.write_frame(
            FrameAddress(ColumnKind.CLB, 0, 0), b"\x01" * a.frame_bytes
        )
        assert a != b
