"""The fleet layer: selection policies, routing, and proxy fidelity.

Three claims are pinned here:

* the four device-selection policies order members as documented and
  cost O(devices) arithmetic on top of MER-index probes — never a
  resident scan;
* :class:`~repro.fleet.manager.FleetManager` routes requests/releases
  to the right member and keeps its O(1) load counters true;
* a 1-member fleet is a *perfect proxy* for its single manager: both
  schedulers produce bit-identical metrics through it, and the golden
  24-run campaign grid reproduces its committed snapshot rows when
  forced through the fleet layer (``run_scenario(..., force_fleet=True)``).
"""

import pytest

from repro.campaign.runner import run_scenario
from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.core.manager import LogicSpaceManager
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.fleet import (
    DEVICE_POLICY_NAMES,
    FleetManager,
    RoundRobinPolicy,
    make_device_policy,
)
from repro.sched.scheduler import ApplicationFlowScheduler, OnlineTaskScheduler
from repro.sched.workload import fleet_surge_tasks, make_workload

from test_golden_campaign import (
    GOLDEN_GRID,
    GOLDEN_PATH,
    check_against_snapshot,
)


def manager_for(name: str = "XC2S15") -> LogicSpaceManager:
    return LogicSpaceManager(Fabric(device(name)))


def fleet_of(n: int, policy: str = "first-fit",
             name: str = "XC2S15") -> FleetManager:
    return FleetManager([manager_for(name) for _ in range(n)],
                        policy=policy)


# -- selection policies -----------------------------------------------------


def test_policy_registry_rejects_unknown_names():
    with pytest.raises(ValueError):
        make_device_policy("psychic")
    for name in DEVICE_POLICY_NAMES:
        assert make_device_policy(name).name == name
    # Configured instances pass through untouched.
    instance = RoundRobinPolicy()
    assert make_device_policy(instance) is instance


def test_first_fit_prefers_lowest_index_with_direct_fit():
    fleet = fleet_of(3)
    # Occupy member 0 entirely: it can only accept via rearrangement.
    bounds = fleet.members[0].fabric.bounds
    fleet.members[0].fabric.allocate_region(bounds, owner=99)
    order = fleet.policy.order(fleet, 3, 3)
    assert order == [1, 2, 0]


def test_round_robin_rotates_after_each_placement():
    fleet = fleet_of(3, policy="round-robin")
    placed = [fleet.request(2, 2, owner).device for owner in (1, 2, 3, 4)]
    assert placed == [0, 1, 2, 0]


def test_least_loaded_orders_by_allocated_fraction():
    fleet = fleet_of(3, policy="least-loaded")
    fleet.request(4, 4, 1)          # member 0 takes 16 sites
    assert fleet.request(2, 2, 2).device == 1
    assert fleet.request(2, 2, 3).device == 2
    # Members 1 and 2 hold 4 sites each; 1 wins the tie by index.
    assert fleet.policy.order(fleet, 2, 2) == [1, 2, 0]


def test_best_fit_picks_smallest_adequate_largest_free_rectangle():
    fleet = FleetManager(
        [manager_for("XC2S30"), manager_for("XC2S15")], policy="best-fit"
    )
    # XC2S15's largest free rectangle is smaller but still adequate for
    # a small request, so it is preferred; the big XC2S30 is preserved.
    assert fleet.policy.order(fleet, 2, 2) == [1, 0]
    # A request only the XC2S30 can host directly flips the order.
    rows15 = fleet.members[1].fabric.device.clb_rows
    assert fleet.policy.order(fleet, rows15 + 1, 2) == [0, 1]


def test_selection_probes_only_the_mer_index(monkeypatch):
    """Admission is O(policy): ordering a 4-member fleet touches the
    free-space index (fits/mers), never the occupancy of residents."""
    fleet = fleet_of(4, policy="best-fit")
    for owner in range(1, 9):
        fleet.request(2, 2, 100 + owner)
    calls = {"footprint": 0}
    for member in fleet.members:
        original = member.fabric.footprint

        def counting(owner, _orig=original):
            calls["footprint"] += 1
            return _orig(owner)

        monkeypatch.setattr(member.fabric, "footprint", counting)
    fleet.policy.order(fleet, 3, 3)
    assert calls["footprint"] == 0


# -- FleetManager routing ---------------------------------------------------


def test_release_routes_to_the_hosting_member():
    fleet = fleet_of(2, policy="round-robin")
    out_a = fleet.request(3, 3, 1)
    out_b = fleet.request(3, 3, 2)
    assert (out_a.device, out_b.device) == (0, 1)
    assert fleet.device_of(2) == 1
    fleet.release(2)
    assert fleet.members[1].fabric.free_site_count() == \
        fleet.members[1].fabric.device.clb_count
    with pytest.raises(KeyError):
        fleet.release(2)
    assert fleet.load(0) > 0.0 and fleet.load(1) == 0.0


def test_failed_request_reports_failure_without_owner_entry():
    fleet = fleet_of(2)
    rows = fleet.members[0].fabric.device.clb_rows
    outcome = fleet.request(rows + 1, 2, 7)
    assert not outcome.success
    with pytest.raises(KeyError):
        fleet.device_of(7)


def test_heterogeneous_fleet_places_oversized_on_the_big_member():
    fleet = FleetManager(
        [manager_for("XC2S15"), manager_for("XCV200")], policy="first-fit"
    )
    rows15 = fleet.members[0].fabric.device.clb_rows
    outcome = fleet.request(rows15 + 2, rows15 + 2, 1)
    assert outcome.success and outcome.device == 1
    assert fleet.device_names == ("XC2S15", "XCV200")


def test_fleet_telemetry_aggregates_site_weighted():
    fleet = fleet_of(2)
    fleet.request(4, 4, 1)
    util = fleet.utilization()
    member = fleet.members[0]
    expected = member.utilization() * member.fabric.device.clb_count / (
        2 * member.fabric.device.clb_count
    )
    assert util == pytest.approx(expected)
    assert 0.0 <= fleet.fragmentation() <= 1.0


def test_fleet_rejects_empty_member_list():
    with pytest.raises(ValueError):
        FleetManager([])


# -- proxy fidelity ---------------------------------------------------------


def test_single_member_fleet_is_bit_identical_for_tasks():
    dev = device("XC2S15")
    plain = OnlineTaskScheduler(manager_for()).run(
        make_workload("random", dev, 3)
    )
    for policy in DEVICE_POLICY_NAMES:
        fleet = OnlineTaskScheduler(fleet_of(1, policy=policy)).run(
            make_workload("random", dev, 3)
        )
        assert fleet == plain


def test_single_member_fleet_is_bit_identical_for_apps():
    dev = device("XC2S15")
    plain = ApplicationFlowScheduler(manager_for())
    plain.run(make_workload("codec-swap", dev, 1))
    fleet = ApplicationFlowScheduler(fleet_of(1))
    fleet.run(make_workload("codec-swap", dev, 1))
    assert fleet.metrics == plain.metrics


def test_golden_grid_reproduces_through_the_fleet_layer():
    """run_scenario(force_fleet=True) wraps every run in a 1-member
    fleet; the committed golden snapshot must reproduce bit-identically
    (the acceptance claim that the fleet layer is a perfect proxy)."""
    from repro.campaign.aggregate import CampaignResult

    specs = CampaignSpec(**GOLDEN_GRID).expand()
    results = [run_scenario(spec, force_fleet=True) for spec in specs]
    rows = CampaignResult(results).rows()
    for row in rows:
        row.pop("wall_seconds")
    check_against_snapshot(rows, GOLDEN_PATH)


def test_fleet_scales_the_surge_workload():
    """The fleet-surge stream overwhelms one device but not four, and
    every selection policy keeps the whole stream accounted for."""
    rejected = {}
    for size in (1, 4):
        tasks = fleet_surge_tasks(40, seed=0, size_range=(3, 7))
        metrics = OnlineTaskScheduler(
            fleet_of(size, policy="least-loaded")
        ).run(tasks)
        assert metrics.finished + metrics.rejected == 40
        rejected[size] = metrics.rejected
    assert rejected[1] > 2 * rejected[4]
    assert rejected[1] >= 20


@pytest.mark.parametrize("policy", DEVICE_POLICY_NAMES)
def test_every_policy_runs_the_surge_clean(policy):
    tasks = fleet_surge_tasks(30, seed=1, size_range=(3, 7))
    metrics = OnlineTaskScheduler(fleet_of(3, policy=policy)).run(tasks)
    assert metrics.finished + metrics.rejected == 30
    assert metrics.makespan > 0


# -- spec-level fleet axes --------------------------------------------------


def test_spec_fleet_validation():
    with pytest.raises(ValueError):
        ScenarioSpec("XC2S15", "none", "random", 0, device_policy="psychic")
    with pytest.raises(ValueError):
        ScenarioSpec("XC2S15", "none", "random", 0, fleet_size=0)
    with pytest.raises(KeyError):
        ScenarioSpec("XC2S15", "none", "random", 0,
                     fleet_devices=("NOPE",))
    # An explicit composition conflicts with an explicit size — the
    # same rule CampaignSpec enforces, never a silent overwrite.
    with pytest.raises(ValueError):
        ScenarioSpec("XC2S15", "none", "random", 0, fleet_size=4,
                     fleet_devices=("XC2S30",))


def test_spec_fleet_devices_pin_size_and_names():
    spec = ScenarioSpec("XC2S15", "none", "random", 0,
                        fleet_devices=["XC2S30", "XCV200"])
    assert spec.fleet_size == 3
    assert spec.fleet_device_names() == ("XC2S15", "XC2S30", "XCV200")
    assert spec.to_dict()["fleet_devices"] == "XC2S30+XCV200"
    plain = ScenarioSpec("XC2S15", "none", "random", 0, fleet_size=2)
    assert plain.fleet_device_names() == ("XC2S15", "XC2S15")


def test_spec_to_dict_omits_default_fleet_axes():
    row = ScenarioSpec("XC2S15", "none", "random", 0).to_dict()
    assert "fleet_size" not in row
    assert "device_policy" not in row
    assert "fleet_devices" not in row


def test_campaign_fleet_devices_conflicts_with_fleet_sizes():
    spec = CampaignSpec(fleet_devices=["XC2S15"], fleet_sizes=[1, 2])
    with pytest.raises(ValueError):
        spec.expand()


def test_heterogeneous_scenario_runs_end_to_end():
    spec = ScenarioSpec(
        "XC2S15", "concurrent", "fleet-surge", 0,
        fleet_devices=("XC2S30",), device_policy="least-loaded",
        workload_params=(("n", 20),),
    )
    result = run_scenario(spec)
    assert result.finished + result.rejected == 20
    assert run_scenario(spec) == result


# -- admission prefetch across the fleet seam -------------------------------


def surge_metrics(fleet: FleetManager, queue: str = "backfill"):
    """Run the seeded surge through a fleet; returns the metrics."""
    tasks = fleet_surge_tasks(40, seed=7, size_range=(3, 7))
    return OnlineTaskScheduler(fleet, queue=queue).run(tasks)


def test_fleet_prefetch_reaches_every_member():
    """The kernel's batched admission probe must warm *every* member's
    caches — losing the fast path the moment a second device joined
    was the bug this section pins."""
    fleet = fleet_of(2, policy="least-loaded")
    counts = [0, 0]

    def counting(index, member):
        original = member.prefetch_admission

        def wrapped(shapes):
            counts[index] += 1
            return original(shapes)

        return wrapped

    for index, member in enumerate(fleet.members):
        member.prefetch_admission = counting(index, member)
    surge_metrics(fleet)
    assert all(count > 0 for count in counts), counts


def test_fleet_prefetch_is_bitwise_neutral():
    """Prefetching is a cache warmer: a fleet run with the hook
    disabled produces bit-identical metrics (the same guarantee the
    single-device kernel documents)."""
    for policy in ("first-fit", "least-loaded"):
        warm = surge_metrics(fleet_of(2, policy=policy))
        cold_fleet = fleet_of(2, policy=policy)
        cold_fleet.prefetch_admission = None  # kernel skips the hook
        cold = surge_metrics(cold_fleet)
        assert cold == warm


# -- kernel telemetry across the fleet seam ---------------------------------


def test_kernel_samples_heterogeneous_fleet_site_weighted():
    """The kernel's telemetry must aggregate over *every* member's
    fabric, not echo member 0: load the big member only and check the
    sample is the hand-computed site-weighted mean."""
    from repro.sched.kernel import SchedulingKernel

    fleet = FleetManager([manager_for("XC2S15"), manager_for("XCV200")])
    assert fleet.request(10, 10, 1).device == 1  # too big for XC2S15
    kernel = SchedulingKernel(fleet)
    kernel.sample()
    assert len(kernel.member_samples) == 2
    sites = [m.fabric.device.clb_count for m in fleet.members]
    frag = [m.fragmentation() for m in fleet.members]
    util = [m.utilization() for m in fleet.members]
    expected_frag = (frag[0] * sites[0] + frag[1] * sites[1]) / sum(sites)
    expected_util = (util[0] * sites[0] + util[1] * sites[1]) / sum(sites)
    assert kernel.metrics.fragmentation_samples == [expected_frag]
    assert kernel.metrics.utilization_samples == [expected_util]
    # Member 0 is idle, so echoing it would report zero utilization.
    assert util[0] == 0.0 and expected_util > 0.0


def test_kernel_samples_single_member_fleet_verbatim():
    """A 1-member fleet's sample is the member's reading, bit for bit —
    no aggregation arithmetic may perturb the golden-pinned proxy."""
    from repro.sched.kernel import SchedulingKernel

    fleet = fleet_of(1)
    fleet.request(4, 4, 1)
    kernel = SchedulingKernel(fleet)
    kernel.sample()
    member = fleet.members[0]
    assert kernel.member_samples == [
        (member.fragmentation(), member.utilization())
    ]
    assert kernel.metrics.fragmentation_samples == [member.fragmentation()]
    assert kernel.metrics.utilization_samples == [member.utilization()]
