"""Unit tests for repro.device.geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.device.geometry import (
    CELLS_PER_CLB,
    CellCoord,
    ClbCoord,
    Rect,
    span_columns,
)


class TestClbCoord:
    def test_ordering_and_equality(self):
        assert ClbCoord(1, 2) == ClbCoord(1, 2)
        assert ClbCoord(0, 5) < ClbCoord(1, 0)

    def test_neighbours_are_four(self):
        n = ClbCoord(3, 3).neighbours()
        assert len(n) == 4
        assert ClbCoord(2, 3) in n and ClbCoord(3, 4) in n

    def test_manhattan(self):
        assert ClbCoord(0, 0).manhattan(ClbCoord(3, 4)) == 7
        assert ClbCoord(5, 5).manhattan(ClbCoord(5, 5)) == 0

    def test_str(self):
        assert str(ClbCoord(3, 17)) == "R3C17"


class TestCellCoord:
    def test_cell_index_bounds(self):
        with pytest.raises(ValueError):
            CellCoord(0, 0, CELLS_PER_CLB)
        with pytest.raises(ValueError):
            CellCoord(0, 0, -1)

    def test_clb_property(self):
        assert CellCoord(2, 3, 1).clb == ClbCoord(2, 3)

    def test_slice_index(self):
        assert CellCoord(0, 0, 0).slice_index == 0
        assert CellCoord(0, 0, 1).slice_index == 0
        assert CellCoord(0, 0, 2).slice_index == 1
        assert CellCoord(0, 0, 3).slice_index == 1

    def test_str(self):
        assert str(CellCoord(3, 17, 2)) == "R3C17.2"


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 5)
        with pytest.raises(ValueError):
            Rect(0, 0, 5, -1)

    def test_area_and_ends(self):
        r = Rect(2, 3, 4, 5)
        assert r.area == 20
        assert r.row_end == 6
        assert r.col_end == 8

    def test_contains(self):
        r = Rect(1, 1, 2, 2)
        assert r.contains(ClbCoord(1, 1))
        assert r.contains(ClbCoord(2, 2))
        assert not r.contains(ClbCoord(3, 2))
        assert not r.contains(ClbCoord(0, 1))

    def test_contains_rect(self):
        outer = Rect(0, 0, 5, 5)
        assert outer.contains_rect(Rect(1, 1, 2, 2))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(4, 4, 2, 2))

    def test_overlaps_symmetry(self):
        a = Rect(0, 0, 3, 3)
        b = Rect(2, 2, 3, 3)
        c = Rect(3, 3, 2, 2)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)

    def test_sites_enumeration(self):
        sites = list(Rect(1, 2, 2, 3).sites())
        assert len(sites) == 6
        assert sites[0] == ClbCoord(1, 2)
        assert sites[-1] == ClbCoord(2, 4)

    def test_columns(self):
        assert list(Rect(0, 3, 2, 4).columns()) == [3, 4, 5, 6]

    def test_translated(self):
        assert Rect(1, 1, 2, 2).translated(2, -1) == Rect(3, 0, 2, 2)

    def test_center(self):
        assert Rect(0, 0, 4, 4).center() == ClbCoord(2, 2)

    @given(
        st.integers(0, 10), st.integers(0, 10),
        st.integers(1, 8), st.integers(1, 8),
    )
    def test_sites_count_matches_area(self, row, col, h, w):
        r = Rect(row, col, h, w)
        assert len(list(r.sites())) == r.area

    @given(
        st.integers(0, 6), st.integers(0, 6),
        st.integers(1, 5), st.integers(1, 5),
        st.integers(0, 6), st.integers(0, 6),
        st.integers(1, 5), st.integers(1, 5),
    )
    def test_overlap_iff_shared_site(self, r1, c1, h1, w1, r2, c2, h2, w2):
        a = Rect(r1, c1, h1, w1)
        b = Rect(r2, c2, h2, w2)
        shared = set(a.sites()) & set(b.sites())
        assert a.overlaps(b) == bool(shared)


class TestSpanColumns:
    def test_single(self):
        assert list(span_columns(Rect(0, 3, 1, 2))) == [3, 4]

    def test_multiple(self):
        span = span_columns(Rect(0, 2, 1, 1), Rect(0, 7, 1, 2))
        assert list(span) == [2, 3, 4, 5, 6, 7, 8]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            span_columns()
