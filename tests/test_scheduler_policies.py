"""Scheduler behaviour under the pluggable queue/port policies.

Covers the strategy layers over the scheduling kernel: admission order
per queue discipline, the ``max_wait`` timeout interaction with each
discipline (a backfilled or priority-bumped task must neutralise its
pending timeout), the timeout-atomicity regression, the port models'
end-to-end effect, and the stall-accounting fix for application runs.
"""

import pytest

from repro.core.cost import CostModel
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.sched.queues import QUEUE_NAMES, BackfillDiscipline
from repro.sched.scheduler import (
    ApplicationFlowScheduler,
    OnlineTaskScheduler,
)
from repro.sched.tasks import (
    ApplicationSpec,
    FunctionSpec,
    Task,
    TaskState,
)
from repro.sched.workload import random_tasks


def make_manager(policy=RearrangePolicy.NONE, dev_name="XC2S15",
                 port="selectmap"):
    dev = device(dev_name)
    return LogicSpaceManager(
        Fabric(dev), cost_model=CostModel(dev, port_kind=port), policy=policy
    )


def blocked_head_stream():
    """XC2S15 is 8x12: a long 8x10 blocker leaves an 8x2 strip free, an
    8x12 head request cannot fit until the blocker leaves at t = 10,
    and a 2x2 follower fits in the strip immediately."""
    return [
        Task(1, 8, 10, 10.0, arrival=0.0),
        Task(2, 8, 12, 1.0, arrival=1.0),
        Task(3, 2, 2, 1.0, arrival=2.0),
    ]


class TestQueueDisciplineOrdering:
    def test_priority_jumps_the_fifo_order(self):
        low = Task(2, 8, 12, 1.0, arrival=1.0, priority=0)
        high = Task(3, 8, 12, 1.0, arrival=1.5, priority=5)
        blocker = Task(1, 8, 12, 10.0, arrival=0.0)

        fifo = OnlineTaskScheduler(make_manager(), queue="fifo")
        fifo.run([blocker, low, high])
        assert low.started_at < high.started_at

        low2 = Task(2, 8, 12, 1.0, arrival=1.0, priority=0)
        high2 = Task(3, 8, 12, 1.0, arrival=1.5, priority=5)
        blocker2 = Task(1, 8, 12, 10.0, arrival=0.0)
        prio = OnlineTaskScheduler(make_manager(), queue="priority")
        prio.run([blocker2, low2, high2])
        assert high2.started_at < low2.started_at
        assert prio.metrics.finished == 3

    def test_sjf_admits_the_smallest_first(self):
        blocker = Task(1, 8, 12, 10.0, arrival=0.0)
        big = Task(2, 8, 12, 1.0, arrival=1.0)
        small = Task(3, 2, 2, 1.0, arrival=2.0)
        sched = OnlineTaskScheduler(make_manager(), queue="sjf")
        sched.run([blocker, big, small])
        assert small.started_at < big.started_at
        assert sched.metrics.finished == 3

    def test_backfill_lets_a_small_task_jump_a_blocked_head(self):
        fifo_tasks = blocked_head_stream()
        OnlineTaskScheduler(make_manager(), queue="fifo").run(fifo_tasks)
        # Strict FIFO: the small task is stuck behind the infeasible head.
        assert fifo_tasks[2].started_at > 9.0

        bf_tasks = blocked_head_stream()
        sched = OnlineTaskScheduler(make_manager(), queue="backfill")
        sched.run(bf_tasks)
        # Backfill: the 2x2 task takes the free strip right away.
        assert bf_tasks[2].started_at < 3.0
        assert sched.metrics.finished == 3

    def test_backfill_age_guard_protects_a_starving_head(self):
        tasks = blocked_head_stream()
        tasks[2].arrival = 8.0  # head has waited 7 s by then
        sched = OnlineTaskScheduler(
            make_manager(), queue=BackfillDiscipline(max_age=5.0)
        )
        sched.run(tasks)
        # Over-age head: strict FIFO again, no jumping.
        assert tasks[2].started_at > 9.0

    def test_fifo_remains_the_default(self):
        sched = OnlineTaskScheduler(make_manager())
        assert sched.kernel.queue.name == "fifo"
        assert sched.kernel.port.name == "serial"

    @pytest.mark.parametrize("queue", QUEUE_NAMES)
    def test_every_discipline_finishes_a_light_stream(self, queue):
        tasks = random_tasks(15, seed=3, mean_interarrival=5.0,
                             size_range=(2, 5), exec_range=(0.3, 0.8),
                             priority_levels=3)
        metrics = OnlineTaskScheduler(
            make_manager(RearrangePolicy.CONCURRENT), queue=queue
        ).run(tasks)
        assert metrics.finished == 15

    @pytest.mark.parametrize("queue", QUEUE_NAMES)
    def test_disciplines_are_deterministic(self, queue):
        def once():
            tasks = random_tasks(25, seed=11, mean_interarrival=0.4,
                                 size_range=(2, 7), exec_range=(0.5, 3.0),
                                 max_wait=4.0, priority_levels=3)
            return OnlineTaskScheduler(
                make_manager(RearrangePolicy.CONCURRENT), queue=queue
            ).run(tasks)
        assert once() == once()


class TestTimeoutInteraction:
    """Satellite: ``max_wait`` must compose with every discipline."""

    def test_timeout_atomicity_regression(self):
        """State change and rejection counter are one atomic step: even
        a task the queue has never seen (the historical
        ``deque.remove`` ValueError path returned early here, leaving a
        REJECTED task uncounted) is counted exactly once."""
        sched = OnlineTaskScheduler(make_manager())
        ghost = Task(99, 4, 4, 1.0, arrival=0.0, max_wait=1.0)
        ghost.state = TaskState.QUEUED  # queued, but never enqueued
        sched._on_timeout(ghost)
        assert ghost.state is TaskState.REJECTED
        assert sched.metrics.rejected == 1
        # A second firing must not double-count.
        sched._on_timeout(ghost)
        assert sched.metrics.rejected == 1

    @pytest.mark.parametrize("queue", QUEUE_NAMES)
    def test_impatient_task_rejected_under_every_discipline(self, queue):
        tasks = [
            Task(1, 8, 12, 10.0, arrival=0.0),
            Task(2, 8, 12, 1.0, arrival=0.0, max_wait=2.0),
        ]
        metrics = OnlineTaskScheduler(make_manager(), queue=queue).run(tasks)
        assert metrics.finished == 1
        assert metrics.rejected == 1
        assert tasks[1].state is TaskState.REJECTED

    def test_backfilled_task_neutralises_its_timeout(self):
        """A task placed by backfilling before its patience ran out must
        not be rejected when the stale timeout event fires."""
        tasks = blocked_head_stream()
        tasks[2].max_wait = 3.0  # fires at t = 5, after backfill at ~2
        metrics = OnlineTaskScheduler(
            make_manager(), queue="backfill"
        ).run(tasks)
        assert tasks[2].state is TaskState.FINISHED
        assert metrics.rejected == 0
        assert metrics.finished == 3

    def test_priority_bumped_task_neutralises_its_timeout(self):
        blocker = Task(1, 8, 12, 4.0, arrival=0.0)
        low = Task(2, 8, 12, 1.0, arrival=1.0, priority=0)
        high = Task(3, 8, 12, 1.0, arrival=2.0, priority=9, max_wait=3.0)
        metrics = OnlineTaskScheduler(
            make_manager(), queue="priority"
        ).run([blocker, low, high])
        # The bump places `high` at t = 4, before its t = 5 timeout.
        assert high.state is TaskState.FINISHED
        assert metrics.rejected == 0

    def test_timed_out_head_unblocks_backfill_queue(self):
        """A tombstoned head must disappear from the scan: the next
        live task becomes the head and places immediately."""
        tasks = [
            Task(1, 8, 10, 10.0, arrival=0.0),
            Task(2, 8, 12, 1.0, arrival=1.0, max_wait=2.0),  # dies t = 3
            Task(3, 8, 2, 1.0, arrival=1.5),  # fits the strip
        ]
        metrics = OnlineTaskScheduler(
            make_manager(), queue=BackfillDiscipline(max_age=0.0)
        ).run(tasks)
        # max_age 0 forbids jumping, so task 3 waits for the head to
        # time out, then places into the free strip at t = 3.
        assert tasks[1].state is TaskState.REJECTED
        assert tasks[2].started_at == pytest.approx(3.0, abs=0.5)
        assert metrics.rejected == 1


class TestPortModels:
    def test_multi_port_configures_concurrently(self):
        tasks = [Task(i, 4, 4, 1.0, arrival=0.0) for i in range(1, 5)]
        OnlineTaskScheduler(
            make_manager(dev_name="XCV200", port="boundary-scan"),
            ports="multi-2",
        ).run(tasks)
        starts = sorted(t.started_at for t in tasks)
        # Two lanes: the first two configurations end simultaneously.
        assert starts[0] == starts[1]
        assert starts[2] == starts[3]
        assert starts[2] > starts[0]

    def test_more_ports_never_hurt_makespan(self):
        def run(ports):
            tasks = [Task(i, 4, 4, 1.0, arrival=0.0) for i in range(1, 7)]
            return OnlineTaskScheduler(
                make_manager(dev_name="XCV200", port="boundary-scan"),
                ports=ports,
            ).run(tasks).makespan
        assert run("multi-2") < run("serial")
        assert run("multi-4") <= run("multi-2")

    def test_icap_beats_the_serial_baseline(self):
        def run(ports):
            tasks = [Task(i, 6, 6, 1.0, arrival=0.0) for i in range(1, 5)]
            return OnlineTaskScheduler(
                make_manager(dev_name="XCV200", port="boundary-scan"),
                ports=ports,
            ).run(tasks)
        serial, icap = run("serial"), run("icap")
        assert icap.port_busy_seconds < serial.port_busy_seconds
        assert icap.makespan < serial.makespan

    def test_application_scheduler_accepts_port_models(self):
        app = ApplicationSpec(
            "A", [FunctionSpec(f"A{i}", 6, 6, 0.5) for i in range(1, 4)]
        )
        manager = make_manager(RearrangePolicy.CONCURRENT,
                               dev_name="XCV200", port="boundary-scan")
        runs = ApplicationFlowScheduler(manager, ports="icap").run([app])
        assert runs[0].finished_at is not None


class TestApplicationPriorities:
    def app(self, name, priority=0, exec_seconds=1.0):
        """One full-device-function application on XC2S15."""
        return ApplicationSpec(
            name, [FunctionSpec(f"{name}1", 8, 12, exec_seconds)],
            priority=priority,
        )

    def test_priority_app_wakes_from_stall_first(self):
        apps = [self.app("R"), self.app("L"), self.app("H", priority=5)]

        fifo = ApplicationFlowScheduler(
            make_manager(RearrangePolicy.CONCURRENT), queue="fifo"
        )
        runs = fifo.run([a for a in apps])
        by_name = {r.spec.name: r for r in runs}
        assert (by_name["L"].runs[0].started_at
                < by_name["H"].runs[0].started_at)

        prio = ApplicationFlowScheduler(
            make_manager(RearrangePolicy.CONCURRENT), queue="priority"
        )
        runs = prio.run([self.app("R"), self.app("L"),
                         self.app("H", priority=5)])
        by_name = {r.spec.name: r for r in runs}
        assert (by_name["H"].runs[0].started_at
                < by_name["L"].runs[0].started_at)
        assert prio.metrics.finished == 3

    def test_backfill_coincides_with_fifo_for_applications(self):
        """The stall retry always attempts every stalled application,
        so backfill has no blocked head to jump: documented behaviour,
        pinned here so a silent semantics change is caught."""
        def run(queue):
            apps = [self.app(n) for n in ("A", "B", "C")]
            sched = ApplicationFlowScheduler(
                make_manager(RearrangePolicy.CONCURRENT), queue=queue
            )
            sched.run(apps)
            return sched.metrics
        assert run("backfill") == run("fifo")


class TestStallAccounting:
    """Satellite: stall excludes un-hidden configuration time."""

    def test_solo_unprefetched_app_reports_zero_stall(self):
        """A lone application that simply pays each configuration in
        line suffers no *contention*: its exposed configuration time
        must not masquerade as stall."""
        app = ApplicationSpec(
            "A", [FunctionSpec(f"A{i}", 10, 10, 0.5) for i in range(1, 4)]
        )
        sched = ApplicationFlowScheduler(
            make_manager(RearrangePolicy.CONCURRENT, dev_name="XCV200"),
            prefetch=False,
        )
        sched.run([app])
        assert sched.metrics.makespan > app.total_exec_seconds
        assert sched.metrics.stall_seconds == pytest.approx(0.0, abs=1e-9)

    def test_space_contention_still_counts_as_stall(self):
        """Two full-device apps: the second waits a whole execution for
        space — that wait is genuine stall and must survive the fix."""
        mk = lambda name: ApplicationSpec(
            name, [FunctionSpec(f"{name}1", 8, 12, 1.0)]
        )
        sched = ApplicationFlowScheduler(
            make_manager(RearrangePolicy.CONCURRENT)
        )
        sched.run([mk("A"), mk("B")])
        assert sched.metrics.stall_seconds > 0.9

    def test_prefetched_chain_still_reports_near_zero_stall(self):
        app = ApplicationSpec(
            "A", [FunctionSpec(f"A{i}", 4, 4, 0.5) for i in range(1, 4)]
        )
        sched = ApplicationFlowScheduler(
            make_manager(RearrangePolicy.CONCURRENT, dev_name="XCV200"),
            prefetch=True,
        )
        sched.run([app])
        assert sched.metrics.stall_seconds == pytest.approx(0.0, abs=1e-6)


class TestSeededPolicyMatrix:
    """Issue 6: the full seeded policy grid stays deterministic.

    One scenario per (queue discipline x port model x defrag policy x
    fleet size) cell, all on the heavy-tail stream, whose long-lived
    anchor tasks force both reactive rearrangement (the batched
    admission probes and the eviction planner) and proactive defrag.
    Two guarantees, both load-bearing for the hot-path refactor:

    * **serial == parallel** — the campaign runner returns identical
      results in-process and over a worker pool, so nothing in the
      admission path (fit cache, planner memo, batched screens) leaks
      cross-scenario state through module globals;
    * **run-to-run identical** — repeating the whole grid in the same
      process reproduces every metric bit-for-bit, so the caches are
      invisible even when instances are reused generation after
      generation.

    ``wall_seconds`` is compare-excluded on ``ScenarioResult``; every
    other metric participates in ``==``.
    """

    @staticmethod
    def _matrix():
        from repro.campaign.spec import ScenarioSpec
        from repro.core.defrag_policy import DEFRAG_POLICY_NAMES
        from repro.sched.ports import PORT_MODEL_NAMES

        return [
            ScenarioSpec(
                device="XC2S15", policy="concurrent",
                workload="heavy-tail", seed=9,
                defrag=defrag, queue=queue, ports=ports,
                fleet_size=fleet,
                workload_params=(("n", 20), ("priority_levels", 3)),
            )
            for queue in QUEUE_NAMES
            for ports in PORT_MODEL_NAMES
            for defrag in DEFRAG_POLICY_NAMES
            for fleet in (1, 2)
        ]

    def test_serial_equals_parallel_and_run_to_run(self):
        from repro.campaign.runner import run_campaign

        specs = self._matrix()
        serial = run_campaign(specs, jobs=1)
        again = run_campaign(specs, jobs=1)
        parallel = run_campaign(specs, jobs=2)
        assert serial == again, "grid is not reproducible in-process"
        assert serial == parallel, "worker pool changed the science"
        # The grid must actually exercise the interesting machinery:
        # some cell rearranges, some cell defrags proactively, and the
        # two fleet sizes disagree somewhere.
        assert any(r.rearrangements > 0 for r in serial)
        assert any(r.proactive_defrags > 0 for r in serial)
        by_fleet = {}
        for spec, result in zip(specs, serial):
            key = (spec.queue, spec.ports, spec.defrag)
            by_fleet.setdefault(key, {})[spec.fleet_size] = result
        assert any(
            cell[1].finished != cell[2].finished
            or cell[1].rejected != cell[2].rejected
            or cell[1].makespan != cell[2].makespan
            for cell in by_fleet.values()
        )
