"""Unit + property tests for placement heuristics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device.geometry import Rect
from repro.placement.fit import (
    FIT_ALGORITHMS,
    best_fit,
    bottom_left,
    first_fit,
    fitter,
    free_anchor_mask,
)


def grid(rows=8, cols=8):
    return np.zeros((rows, cols), dtype=int)


class TestFreeAnchorMask:
    def test_empty_grid_all_anchors(self):
        mask = free_anchor_mask(grid(4, 4), 2, 2)
        assert mask.shape == (3, 3)
        assert mask.all()

    def test_oversized_request_empty(self):
        assert free_anchor_mask(grid(3, 3), 4, 1).size == 0

    def test_obstacle_blocks_windows(self):
        occ = grid(4, 4)
        occ[1, 1] = 9
        mask = free_anchor_mask(occ, 2, 2)
        assert not mask[0, 0]
        assert not mask[1, 1]
        assert mask[2, 2]

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(2, 7), st.integers(2, 7),
        st.integers(1, 4), st.integers(1, 4), st.integers(0, 10 ** 6),
    )
    def test_mask_matches_direct_check(self, rows, cols, h, w, seed):
        rng = np.random.RandomState(seed)
        occ = (rng.rand(rows, cols) < 0.35).astype(int)
        mask = free_anchor_mask(occ, h, w)
        if h > rows or w > cols:
            assert mask.size == 0
            return
        for r in range(rows - h + 1):
            for c in range(cols - w + 1):
                want = bool((occ[r : r + h, c : c + w] == 0).all())
                assert bool(mask[r, c]) == want


class TestFirstFit:
    def test_picks_row_major_first(self):
        occ = grid()
        occ[0, :4] = 1
        assert first_fit(occ, 2, 2) == Rect(0, 4, 2, 2)

    def test_none_when_no_space(self):
        occ = np.ones((4, 4), dtype=int)
        assert first_fit(occ, 1, 1) is None

    def test_exact_fit(self):
        assert first_fit(grid(3, 3), 3, 3) == Rect(0, 0, 3, 3)


class TestBestFit:
    def test_prefers_tight_hole(self):
        occ = grid(6, 10)
        occ[:, 3] = 1  # 6x3 hole on the left, 6x6 on the right
        rect = best_fit(occ, 6, 3)
        assert rect == Rect(0, 0, 6, 3)

    def test_none_when_too_large(self):
        assert best_fit(grid(3, 3), 4, 4) is None


class TestBottomLeft:
    def test_minimises_row_plus_col(self):
        occ = grid()
        occ[0, 0] = 1
        rect = bottom_left(occ, 1, 1)
        assert rect in (Rect(0, 1, 1, 1), Rect(1, 0, 1, 1))

    def test_ties_break_to_lower_row(self):
        occ = grid()
        occ[0, 0] = 1
        assert bottom_left(occ, 1, 1) == Rect(0, 1, 1, 1)


class TestRegistry:
    def test_known_names(self):
        assert set(FIT_ALGORITHMS) == {"first", "best", "bottom-left"}
        assert fitter("first") is first_fit

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="bottom-left"):
            fitter("worst")


@settings(max_examples=40, deadline=None)
@given(
    st.integers(3, 8), st.integers(3, 8),
    st.integers(1, 4), st.integers(1, 4), st.integers(0, 10 ** 6),
)
def test_all_heuristics_return_free_rectangles(rows, cols, h, w, seed):
    rng = np.random.RandomState(seed)
    occ = (rng.rand(rows, cols) < 0.3).astype(int)
    for name, algo in FIT_ALGORITHMS.items():
        rect = algo(occ, h, w)
        if rect is not None:
            view = occ[rect.row : rect.row_end, rect.col : rect.col_end]
            assert view.shape == (h, w), name
            assert (view == 0).all(), name
