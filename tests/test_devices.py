"""Unit tests for the device table (repro.device.devices)."""

import pytest

from repro.device.devices import (
    DEVICE_TABLE,
    XCV200,
    device,
    fallback_frame_bits,
    synthetic_device,
)


class TestDeviceTable:
    def test_xcv200_dimensions_match_paper(self):
        # The paper's experiments run on a Virtex XCV200: 28x42 CLBs.
        assert XCV200.clb_rows == 28
        assert XCV200.clb_cols == 42
        assert XCV200.clb_count == 1176
        assert XCV200.logic_cell_count == 4704

    def test_xcv200_frame_length(self):
        # XAPP151: the XCV200 frame is 576 bits = 18 words.
        assert XCV200.frame_bits == 576
        assert XCV200.frame_words == 18

    def test_frame_bits_are_word_multiples(self):
        for dev in DEVICE_TABLE.values():
            assert dev.frame_bits % 32 == 0, dev.name

    def test_family_ordering_monotonic(self):
        virtex = [d for d in DEVICE_TABLE.values() if d.family == "virtex"]
        virtex.sort(key=lambda d: d.clb_count)
        frames = [d.frame_bits for d in virtex]
        assert frames == sorted(frames)

    def test_total_frames_positive(self):
        for dev in DEVICE_TABLE.values():
            assert dev.total_frames > 0
            assert dev.configuration_bits == dev.total_frames * dev.frame_bits

    def test_lookup_case_insensitive(self):
        assert device("xcv200") is XCV200

    def test_lookup_unknown_raises_with_list(self):
        with pytest.raises(KeyError, match="XCV200"):
            device("XCV9999")

    def test_spartan2_shares_virtex_architecture(self):
        xc2s200 = device("XC2S200")
        assert xc2s200.clb_rows == XCV200.clb_rows
        assert xc2s200.frame_bits == XCV200.frame_bits
        assert xc2s200.family == "spartan2"


class TestSyntheticDevice:
    def test_builds_with_fallback_frame(self):
        dev = synthetic_device(10, 12)
        assert dev.clb_rows == 10
        assert dev.frame_bits == fallback_frame_bits(10)
        assert dev.frame_bits % 32 == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            synthetic_device(0, 5)

    def test_custom_name(self):
        assert synthetic_device(4, 4, name="TINY").name == "TINY"

    def test_fallback_close_to_table(self):
        # The fallback formula should approximate published values.
        for dev in DEVICE_TABLE.values():
            if dev.family != "virtex":
                continue
            approx = fallback_frame_bits(dev.clb_rows)
            assert abs(approx - dev.frame_bits) <= 128, dev.name
