"""Unit tests for duplicate-then-disconnect path relocation (Fig. 5)."""

import pytest

from repro.device.devices import device, synthetic_device
from repro.device.geometry import ClbCoord
from repro.device.routing import RoutingError, RoutingGraph, WireKind, path_channels
from repro.core.routing_relocation import (
    PathPhase,
    RoutingRelocator,
)
from repro.netlist.timing import square_wave


@pytest.fixture
def graph():
    return RoutingGraph(device("XCV200"))


class TestRelocatePath:
    def test_connectivity_never_broken(self, graph):
        path = graph.route_and_allocate(ClbCoord(2, 2), ClbCoord(10, 14))
        report = RoutingRelocator(graph).relocate_path(path)
        assert report.connectivity_preserved
        assert report.phases == [
            PathPhase.ORIGINAL_ONLY,
            PathPhase.PARALLEL,
            PathPhase.REPLICA_ONLY,
        ]

    def test_wires_peak_during_parallel(self, graph):
        path = graph.route_and_allocate(ClbCoord(0, 0), ClbCoord(5, 5))
        report = RoutingRelocator(graph).relocate_path(path)
        assert report.wires_during > report.wires_before
        assert report.wires_during > report.wires_after

    def test_original_wires_released(self, graph):
        path = graph.route_and_allocate(ClbCoord(0, 0), ClbCoord(6, 6))
        relocator = RoutingRelocator(graph)
        report = relocator.relocate_path(path)
        # Original channels are fully free again (the disjoint replica
        # reused none of them, and nothing else is allocated).
        for seg in report.original.segments:
            assert (
                graph.free_wires(seg.a, seg.b, seg.kind)
                == graph.capacity[seg.kind]
            )

    def test_disjoint_replica(self, graph):
        path = graph.route_and_allocate(ClbCoord(3, 3), ClbCoord(3, 9))
        report = RoutingRelocator(graph).relocate_path(path, disjoint=True)
        assert not (
            path_channels(report.original) & path_channels(report.replica)
        )

    def test_timing_effective_delay_is_max(self, graph):
        path = graph.route_and_allocate(ClbCoord(1, 1), ClbCoord(1, 8))
        report = RoutingRelocator(graph).relocate_path(path)
        assert report.timing.effective_delay == pytest.approx(
            max(report.original.delay_ns, report.replica.delay_ns)
        )

    def test_custom_source_wave(self, graph):
        path = graph.route_and_allocate(ClbCoord(0, 0), ClbCoord(0, 4))
        wave = square_wave(period=50.0, edges=4)
        report = RoutingRelocator(graph).relocate_path(path, source_wave=wave)
        assert len(report.timing.fuzz_intervals) <= 4

    def test_failure_leaves_state_untouched(self):
        # Saturate a tiny fabric so no replica path can exist.
        graph = RoutingGraph(
            synthetic_device(1, 2),
            capacity={WireKind.SINGLE: 1, WireKind.HEX: 0},
        )
        a, b = ClbCoord(0, 0), ClbCoord(0, 1)
        path = graph.route_and_allocate(a, b)
        used_before = graph.total_wires_used()
        with pytest.raises(RoutingError):
            RoutingRelocator(graph).relocate_path(path, disjoint=True)
        assert graph.total_wires_used() == used_before

    def test_columns_cover_both_paths(self, graph):
        path = graph.route_and_allocate(ClbCoord(0, 2), ClbCoord(0, 10))
        report = RoutingRelocator(graph).relocate_path(path)
        assert report.columns() >= report.original.columns()
        assert report.columns() >= report.replica.columns()


class TestOptimizePath:
    def test_already_optimal_returns_none(self, graph):
        path = graph.route_and_allocate(ClbCoord(0, 0), ClbCoord(0, 1))
        assert RoutingRelocator(graph).optimize_path(path) is None

    def test_congested_path_improved(self, graph):
        # Force a deliberately bad path: route the long way by blocking
        # the direct channel first, then free it.
        a, b = ClbCoord(5, 5), ClbCoord(5, 6)
        blockers = [
            graph.route_and_allocate(a, b) for _ in range(24)
        ]  # exhaust direct singles
        detour = graph.route_and_allocate(a, b)
        assert detour.length > 1
        for blocker in blockers:
            graph.release(blocker)
        report = RoutingRelocator(graph).optimize_path(detour)
        assert report is not None
        assert report.replica.delay_ns < report.original.delay_ns

    def test_relocate_many_sequential(self, graph):
        paths = [
            graph.route_and_allocate(ClbCoord(r, 0), ClbCoord(r, 6))
            for r in range(4)
        ]
        reports = RoutingRelocator(graph).relocate_many(paths)
        assert len(reports) == 4
        assert all(r.connectivity_preserved for r in reports)
