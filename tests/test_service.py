"""The always-on service core: door, engine, checkpoint identity.

Four claims are pinned here:

* the **QoS door** behaves as documented: class priorities order
  admission, per-tenant token buckets throttle with honest
  ``Retry-After`` hints, and the queue-depth bound sheds load with the
  ``queue-full`` reason — all deterministically in simulated time;
* the **engine** runs a correct task life-cycle incrementally:
  submissions admit or queue, patience rejects, and cancellation works
  in *both* the queued and the running state (a running cancel frees
  space that wakes waiting work, exactly like a finish);
* **checkpoint/restore is lossless**: a service frozen mid-flight and
  thawed produces the same journal and telemetry streams, bit for bit,
  as the original had it never been interrupted — including with a
  blocked waiting queue, in-flight executions and hot token buckets;
* the **flash-crowd smoke**: the seeded ``fleet-surge`` campaign
  workload replayed through the door keeps the service live and the
  accounting consistent (every submission is admitted, throttled, or
  rejected — none vanish).
"""

import math

import pytest

from repro.campaign.replay import replay_trace, replay_workload, service_trace
from repro.service import (
    QOS_CLASSES,
    ReproService,
    ServiceConfig,
    TokenBucket,
    get_qos,
    qos_for_priority,
    restore,
    snapshot,
)
from repro.service.admission import DEPTH_RETRY_AFTER, AdmissionController
from repro.service.checkpoint import load, save


def small_service(**overrides) -> ReproService:
    """A 1-member XC2S15 service (the tightest fabric: 96 sites)."""
    return ReproService(ServiceConfig(**overrides))


# -- QoS registry -----------------------------------------------------------


def test_qos_registry_is_consistent():
    assert set(QOS_CLASSES) == {"gold", "silver", "best-effort"}
    gold, silver, best = (QOS_CLASSES[n] for n in
                          ("gold", "silver", "best-effort"))
    # Better classes: higher priority, longer patience, tighter rate.
    assert gold.priority > silver.priority > best.priority
    assert gold.patience > silver.patience > best.patience
    assert gold.rate < silver.rate < best.rate
    with pytest.raises(ValueError):
        get_qos("platinum")


def test_priority_round_trips_through_qos_classes():
    for name, qos in QOS_CLASSES.items():
        assert qos_for_priority(qos.priority) == name
    assert qos_for_priority(-3) == "best-effort"
    assert qos_for_priority(7) == "gold"


# -- token buckets ----------------------------------------------------------


def test_token_bucket_refills_in_simulated_time():
    bucket = TokenBucket(rate=2.0, burst=3.0, tokens=3.0)
    assert [bucket.try_take(0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
    # Empty: the retry hint is the exact refill horizon (1 token / rate).
    assert bucket.try_take(0.0) == pytest.approx(0.5)
    # Half the horizon later, half a token exists: hint shrinks to match.
    assert bucket.try_take(0.25) == pytest.approx(0.25)
    assert bucket.try_take(0.5) == 0.0
    # Refill saturates at the burst.
    bucket.try_take(1000.0)
    assert bucket.tokens == pytest.approx(bucket.burst - 1.0)


def test_admission_controller_is_per_tenant_and_per_class():
    door = AdmissionController()
    gold_burst = int(QOS_CLASSES["gold"].burst)
    for _ in range(gold_burst):
        assert door.admit("a", "gold", 0.0, 0).admitted
    refused = door.admit("a", "gold", 0.0, 0)
    assert not refused.admitted and refused.reason == "rate-limit"
    assert refused.retry_after > 0.0
    # Tenant b's gold bucket and tenant a's silver bucket are untouched.
    assert door.admit("b", "gold", 0.0, 0).admitted
    assert door.admit("a", "silver", 0.0, 0).admitted
    stats = door.stats["a"].to_dict()
    assert stats["submitted"] == gold_burst + 2
    assert stats["throttled_rate"] == 1


def test_depth_bound_sheds_load_before_metering_it():
    door = AdmissionController(max_queue_depth=4)
    refused = door.admit("a", "gold", 0.0, queue_depth=4)
    assert not refused.admitted and refused.reason == "queue-full"
    assert refused.retry_after > 0.0
    # A depth refusal must not spend a token (the bucket is consulted
    # read-only for the Retry-After hint, never drained).
    bucket = door.buckets[("a", "gold")]
    assert bucket.tokens == bucket.burst
    assert door.stats["a"].throttled_depth == 1


def test_queue_full_retry_hint_tracks_refill_deficit():
    """A queue-full 429 owes an honest hint: a tenant whose bucket is
    also drained is told its actual refill deficit — which shrinks as
    simulated time advances — not a blanket constant."""
    door = AdmissionController(max_queue_depth=4)
    qos = get_qos("gold")
    for _ in range(int(qos.burst)):
        assert door.admit("a", "gold", 0.0, queue_depth=0).admitted
    hints = []
    for now in (0.0, 0.01, 0.02):
        refused = door.admit("a", "gold", now, queue_depth=4)
        assert not refused.admitted and refused.reason == "queue-full"
        hints.append(refused.retry_after)
    assert hints[0] > hints[1] > hints[2] > 0.0
    # The probe is pure: three refusals later the bucket still holds
    # exactly what the admitted burst left it.
    assert door.buckets[("a", "gold")].tokens == 0.0
    # A refilled tenant is only queue-bound: constant drain-time hint.
    recovered = door.admit("a", "gold", 10.0, queue_depth=4)
    assert recovered.retry_after == DEPTH_RETRY_AFTER


# -- engine life-cycle ------------------------------------------------------


def test_submit_places_immediately_when_space_exists():
    svc = small_service()
    view = svc.submit(4, 4, 1.0, tenant="t", qos="gold")
    assert view["admitted"] and view["state"] == "configuring"
    assert view["device"] == 0 and view["rect"] is not None
    svc.advance(seconds=5.0)
    assert svc.status(view["task"])["state"] == "finished"
    events = [e["event"] for e in svc.engine.journal]
    assert events == ["submitted", "admitted", "finished"]


def test_submissions_queue_and_patience_rejects():
    svc = small_service()
    # XC2S15 is 8x12 = 96 sites; an 8x12 task fills the fabric.
    svc.submit(8, 12, 10.0, qos="gold")
    waiting = svc.submit(2, 2, 1.0, qos="best-effort")  # patience 2.0
    assert waiting["state"] == "queued"
    svc.advance(seconds=5.0)
    assert svc.status(waiting["task"])["state"] == "rejected"
    assert [e["event"] for e in svc.engine.journal
            if e["task"] == waiting["task"]] == ["submitted", "rejected"]


def test_qos_priority_orders_admission_of_waiting_work():
    svc = small_service()
    svc.submit(8, 12, 2.0, qos="gold")  # fill the fabric
    best = svc.submit(4, 4, 1.0, qos="best-effort", max_wait=50.0)
    gold = svc.submit(4, 4, 1.0, qos="gold", max_wait=50.0)
    svc.settle()
    # The later-arriving gold task was admitted first.
    started = {v["task"]: v["started_at"] for v in svc.tasks()}
    assert started[gold["task"]] < started[best["task"]]


def test_cancel_queued_task_tombstones_it():
    svc = small_service()
    svc.submit(8, 12, 4.0, qos="gold")
    waiting = svc.submit(3, 3, 1.0, qos="gold")
    view = svc.cancel(waiting["task"])
    assert view["state"] == "cancelled"
    svc.settle()
    assert svc.status(waiting["task"])["state"] == "cancelled"
    assert svc.stats()["finished"] == 1  # only the runner finished


def test_cancel_running_task_frees_space_and_wakes_queue():
    svc = small_service()
    hog = svc.submit(8, 12, 100.0, qos="gold")
    waiting = svc.submit(4, 4, 1.0, qos="gold", max_wait=None)
    assert waiting["state"] == "queued"
    view = svc.cancel(hog["task"])
    assert view["state"] == "cancelled"
    # The freed fabric admitted the waiting task synchronously.
    assert svc.status(waiting["task"])["state"] == "configuring"
    svc.settle()
    assert svc.status(waiting["task"])["state"] == "finished"


def test_cancel_rejects_terminal_and_unknown_tasks():
    svc = small_service()
    done = svc.submit(2, 2, 0.5, qos="gold")
    svc.advance(seconds=5.0)
    with pytest.raises(ValueError):
        svc.cancel(done["task"])
    with pytest.raises(KeyError):
        svc.cancel(999)


def test_door_throttles_submissions_with_retry_hint():
    svc = small_service()
    views = [svc.submit(1, 1, 0.1, tenant="t", qos="gold")
             for _ in range(int(QOS_CLASSES["gold"].burst) + 1)]
    refused = views[-1]
    assert not refused["admitted"]
    assert refused["reason"] == "rate-limit"
    assert refused["retry_after"] > 0.0
    # Advancing past the hint makes the next submission admissible.
    svc.advance(seconds=refused["retry_after"] + 1e-9)
    assert svc.submit(1, 1, 0.1, tenant="t", qos="gold")["admitted"]


def test_depth_bound_rejects_when_queue_is_full():
    svc = small_service(max_queue_depth=2)
    svc.submit(8, 12, 100.0, qos="gold")  # occupy the fabric
    for _ in range(2):
        assert svc.submit(4, 4, 1.0, qos="gold")["admitted"]
    refused = svc.submit(4, 4, 1.0, qos="gold")
    assert not refused["admitted"] and refused["reason"] == "queue-full"
    assert svc.stats()["tenants"]["default"]["throttled_depth"] == 1


def test_advance_validates_direction_and_arguments():
    svc = small_service()
    svc.advance(seconds=1.0)
    with pytest.raises(ValueError):
        svc.advance(until=0.5)  # backwards
    with pytest.raises(ValueError):
        svc.advance()
    with pytest.raises(ValueError):
        svc.advance(until=2.0, seconds=1.0)


# -- checkpoint/restore -----------------------------------------------------


def surge_service(**overrides) -> tuple[ReproService, list[dict]]:
    """A service plus a surge trace that queues, throttles and rejects."""
    svc = ReproService(ServiceConfig(
        fleet_size=overrides.pop("fleet_size", 1), **overrides
    ))
    trace = service_trace("fleet-surge", device=svc.config.device,
                          seed=11, n=80,
                          tenants=("alice", "bob", "carol"))
    return svc, trace


def run_split(trace: list[dict], cut: int, fleet_size: int = 1,
              **overrides):
    """Replay ``trace`` with a snapshot/restore at submission ``cut``;
    returns (uninterrupted service, restored service)."""
    whole, _ = surge_service(fleet_size=fleet_size, **overrides)
    for sub in trace:
        whole.submit(**sub)
    whole.settle()

    first, _ = surge_service(fleet_size=fleet_size, **overrides)
    for sub in trace[:cut]:
        first.submit(**sub)
    thawed = restore(snapshot(first))
    for sub in trace[cut:]:
        thawed.submit(**sub)
    thawed.settle()
    return whole, thawed


@pytest.mark.parametrize("cut", [1, 20, 40, 79])
def test_checkpoint_roundtrip_streams_are_bit_identical(cut):
    _, trace = surge_service()
    whole, thawed = run_split(trace, cut)
    assert thawed.engine.journal == whole.engine.journal
    assert thawed.engine.telemetry == whole.engine.telemetry
    assert thawed.stats() == whole.stats()


def test_checkpoint_roundtrip_on_a_fleet():
    _, trace = surge_service(fleet_size=2)
    whole, thawed = run_split(trace, 33, fleet_size=2)
    assert thawed.engine.journal == whole.engine.journal
    assert thawed.engine.telemetry == whole.engine.telemetry


def _prefetch_stat_view(svc: ReproService) -> dict:
    """The stall/prefetch counters a roundtrip must carry losslessly."""
    metrics = svc.engine.metrics
    return {
        "config_stall_seconds": metrics.config_stall_seconds,
        "prefetch_hits": metrics.prefetch_hits,
        "prefetch_loads": metrics.prefetch_loads,
        "cache_evictions": metrics.cache_evictions,
        "prefetched_functions": metrics.prefetched_functions,
        "prefetch_state": snapshot(svc)["prefetch"],
    }


@pytest.mark.parametrize("cut", [10, 40])
def test_checkpoint_roundtrip_carries_prefetch_state(cut):
    """A plan-mode service frozen mid-flight resumes with its resident
    caches, wishlist and stall/prefetch counters intact — the restored
    run's streams *and* prefetch statistics match the uninterrupted
    run exactly."""
    _, trace = surge_service(prefetch="plan")
    whole, thawed = run_split(trace, cut, prefetch="plan")
    assert whole.engine.metrics.config_stall_seconds > 0.0
    assert thawed.engine.journal == whole.engine.journal
    assert thawed.engine.telemetry == whole.engine.telemetry
    assert _prefetch_stat_view(thawed) == _prefetch_stat_view(whole)


def test_never_mode_snapshot_has_no_prefetch_state():
    """prefetch="never" services carry an explicit null in the
    snapshot (and restore accepts pre-prefetch snapshots without the
    key at all)."""
    svc = small_service()
    state = snapshot(svc)
    assert state["prefetch"] is None
    del state["prefetch"]
    thawed = restore(state)
    assert thawed.engine.kernel.caches is None


def test_snapshot_mid_flight_captures_queue_and_running_work():
    svc, trace = surge_service()
    for sub in trace[:40]:
        svc.submit(**sub)
    state = snapshot(svc)
    assert state["version"] == 1
    assert state["running"], "expected in-flight work at the cut"
    # The snapshot is read-only: the service keeps running afterwards.
    svc.settle()
    assert svc.stats()["running"] == 0


def test_snapshot_is_json_clean_and_file_roundtrips(tmp_path):
    svc, trace = surge_service()
    for sub in trace[:25]:
        svc.submit(**sub)
    path = save(svc, tmp_path / "ckpt.json")
    thawed = load(path)
    svc.settle()
    thawed.settle()
    assert thawed.engine.journal == svc.engine.journal


def test_restore_refuses_unknown_snapshot_versions():
    svc = small_service()
    state = snapshot(svc)
    state["version"] = 99
    with pytest.raises(ValueError):
        restore(state)


def test_restored_door_remembers_bucket_levels():
    svc = small_service()
    burst = int(QOS_CLASSES["gold"].burst)
    for _ in range(burst):
        svc.submit(1, 1, 0.1, tenant="t", qos="gold")
    thawed = restore(snapshot(svc))
    # The original would throttle the next gold submission; so must
    # the restored service — buckets travel in the checkpoint.
    assert not svc.submit(1, 1, 0.1, tenant="t", qos="gold")["admitted"]
    assert not thawed.submit(1, 1, 0.1, tenant="t", qos="gold")["admitted"]


# -- flash-crowd smoke ------------------------------------------------------


def test_flash_crowd_replay_accounting_is_conservative():
    svc = ReproService(ServiceConfig(fleet_size=2, max_queue_depth=16))
    summary = replay_workload(svc, "fleet-surge", seed=3, n=150,
                              tenants=("alice", "bob"))
    assert summary["submitted"] == 150
    assert summary["admitted"] + summary["throttled"] == 150
    stats = summary["stats"]
    # Every admitted task ended somewhere: finished, rejected by
    # patience, or (here, after settle) nothing left in flight.
    assert stats["finished"] + stats["rejected"] == summary["admitted"]
    assert stats["waiting"] == 0 and stats["running"] == 0
    door = sum(t["submitted"] for t in stats["tenants"].values())
    assert door == 150
    assert all(math.isfinite(w) for w in
               svc.engine.metrics.waiting_seconds)


def test_replay_trace_is_deterministic():
    svc_a = ReproService(ServiceConfig(fleet_size=2))
    svc_b = ReproService(ServiceConfig(fleet_size=2))
    trace = service_trace("fleet-surge", seed=5, n=60)
    a = replay_trace(svc_a, list(trace))
    b = replay_trace(svc_b, list(trace))
    # The perf export is process-global diagnostics (both replays bump
    # the same counters), not service state: exclude it from the
    # determinism comparison.
    a["stats"].pop("perf", None)
    b["stats"].pop("perf", None)
    assert a == b
    assert svc_a.engine.journal == svc_b.engine.journal


def test_service_trace_refuses_application_workloads():
    with pytest.raises(ValueError):
        service_trace("fig1")
