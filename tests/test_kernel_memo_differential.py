"""Differential suite for the admission shape memos.

The kernel's shape-level failure memos and dominance certificates
(:meth:`SchedulingKernel._shape_blocked`) exist purely to skip probes
whose outcome is provably unchanged — so a kernel with the memos
disabled must produce *bit-identical* schedules: the same admissions,
rejections, timeouts, metrics and port timelines, event for event.
This suite runs the two kernels in lockstep over hypothesis-chosen
workloads (timeout-heavy churn, every queue discipline x port model),
and separately pins the invalidation contract: a memo can never
outlive a space-version bump, and every memo verdict is backed by a
real failing probe.
"""

from hypothesis import given, settings, strategies as st

from repro.core.manager import LogicSpaceManager
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.sched.scheduler import OnlineTaskScheduler
from repro.sched.workload import heavy_tail_tasks


def _disable_memos(kernel) -> None:
    """Turn the shape memos off on one kernel instance: every probe
    runs against the manager, nothing is recorded."""
    kernel._shape_blocked = lambda height, width, count=True: False
    kernel._note_shape_failed = lambda height, width, dominant: None


def _churn_tasks(n: int, seed: int):
    """A timeout-heavy stream on the XC2S15's 8x12 grid: tight
    footprints and short deadlines keep the queue saturated, so the
    memos (and their invalidation) are exercised hard."""
    return heavy_tail_tasks(
        n, seed=seed, mean_interarrival=0.05, size_range=(2, 6),
        max_wait=4.0, priority_levels=3,
    )


def _run(queue: str, ports: str, seed: int, n: int, memoised: bool):
    manager = LogicSpaceManager(Fabric(device("XC2S15")))
    scheduler = OnlineTaskScheduler(manager, queue=queue, ports=ports)
    if not memoised:
        _disable_memos(scheduler.kernel)
    metrics = scheduler.run(_churn_tasks(n, seed))
    return (
        metrics,
        scheduler.events.processed,
        scheduler.port.busy_seconds,
        manager.fabric.occupancy.tobytes(),
        # The admission trace: every placement that happened, in order,
        # with its rearrangement method.  Failed probes are *meant* to
        # differ — skipping them is exactly what the memos do — so the
        # raw ``manager.outcomes`` log (which records probes, not
        # schedule) is compared on its successes only.
        [(o.owner, o.rect, o.method, o.config_seconds)
         for o in manager.outcomes if o.success],
    )


@settings(max_examples=4, deadline=None)
@given(
    queue=st.sampled_from(["fifo", "priority", "backfill"]),
    ports=st.sampled_from(["serial", "icap"]),
    seed=st.integers(min_value=0, max_value=9999),
)
def test_memoised_kernel_is_observationally_identical(queue, ports, seed):
    """500+-step lockstep: memos on vs off, identical everything."""
    n = 220  # ~3 events per task: arrival + admit/timeout + finish
    memo = _run(queue, ports, seed, n, memoised=True)
    bare = _run(queue, ports, seed, n, memoised=False)
    assert memo[0] == bare[0], "metrics diverged"
    assert memo[1] == bare[1], "event counts diverged"
    assert memo[2] == bare[2], "port busy time diverged"
    assert memo[3] == bare[3], "final occupancy diverged"
    assert memo[4] == bare[4], "admission trace diverged"
    assert memo[1] >= 500, "churn too small to exercise the memos"


def test_shape_memo_never_outlives_a_generation_bump():
    """The invalidation contract, hit directly: both the exact-shape
    memo and a dominance certificate go stale the moment the space
    version bumps (``note_space_changed`` — the hook every occupancy
    mutation reaches)."""
    manager = LogicSpaceManager(Fabric(device("XC2S15")))
    kernel = OnlineTaskScheduler(manager).kernel
    kernel._note_shape_failed(3, 3, dominant=True)
    assert kernel._shape_blocked(3, 3, count=False)
    # dominance: an equal-or-larger footprint is blocked too
    assert kernel._shape_blocked(4, 5, count=False)
    kernel.note_space_changed()
    assert not kernel._shape_blocked(3, 3, count=False)
    assert not kernel._shape_blocked(4, 5, count=False)


def test_every_memo_skip_is_backed_by_a_real_failure():
    """Soundness under churn: whenever the memo calls a shape blocked,
    an actual probe of that shape against the live manager must fail —
    no admissible item is ever skipped."""
    manager = LogicSpaceManager(Fabric(device("XC2S15")))
    scheduler = OnlineTaskScheduler(manager, queue="backfill",
                                    ports="icap")
    kernel = scheduler.kernel
    original = kernel._shape_blocked
    verified = [0]

    def checked(height: int, width: int, count: bool = True) -> bool:
        blocked = original(height, width, count=count)
        if blocked:
            outcome = manager.request(height, width, owner=10_000_000)
            assert not outcome.success, (
                f"memo skipped an admissible {height}x{width} shape"
            )
            verified[0] += 1
        return blocked

    kernel._shape_blocked = checked
    scheduler.run(_churn_tasks(200, seed=3))
    assert verified[0] > 0, "the memo never fired: churn too gentle"
