"""Unit tests for readback / flip-flop state capture."""

import pytest

from repro.device.config_memory import ConfigMemory
from repro.device.devices import device, synthetic_device
from repro.device.geometry import CellCoord
from repro.device.readback import (
    StateCapture,
    capture_hazard_window,
)


@pytest.fixture
def capture():
    return StateCapture(ConfigMemory(device("XCV200")))


class TestLocations:
    def test_distinct_sites_distinct_bits(self, capture):
        sites = [
            CellCoord(r, c, k)
            for r in range(3)
            for c in range(2)
            for k in range(4)
        ]
        locations = {
            (capture.location(s).address, capture.location(s).bit)
            for s in sites
        }
        assert len(locations) == len(sites)

    def test_same_column_same_major(self, capture):
        a = capture.location(CellCoord(0, 7, 0))
        b = capture.location(CellCoord(27, 7, 3))
        assert a.address.major == b.address.major

    def test_out_of_bounds_rejected(self, capture):
        with pytest.raises(IndexError):
            capture.location(CellCoord(0, 99, 0))
        with pytest.raises(IndexError):
            capture.location(CellCoord(99, 0, 0))

    def test_state_bits_fit_in_state_frames(self, capture):
        # Every site of the device must map without overflowing the
        # column's state minors.
        dev = capture.memory.device
        capture.location(CellCoord(dev.clb_rows - 1, 0, 3))


class TestCaptureRestore:
    def test_roundtrip(self, capture):
        states = {
            CellCoord(0, 0, 0): 1,
            CellCoord(0, 0, 1): 0,
            CellCoord(5, 0, 2): 1,
            CellCoord(7, 3, 3): 1,
        }
        capture.capture(states)
        for site, value in states.items():
            assert capture.read_state(site) == value

    def test_capture_overwrites_previous(self, capture):
        site = CellCoord(2, 2, 0)
        capture.capture({site: 1})
        capture.capture({site: 0})
        assert capture.read_state(site) == 0

    def test_capture_leaves_other_bits_alone(self, capture):
        a, b = CellCoord(0, 5, 0), CellCoord(1, 5, 1)
        capture.capture({a: 1, b: 1})
        capture.capture({a: 0})  # only a updated
        assert capture.read_state(b) == 1

    def test_read_states_bulk(self, capture):
        sites = [CellCoord(r, 1, 0) for r in range(4)]
        capture.capture({s: i % 2 for i, s in enumerate(sites)})
        values = capture.read_states(sites)
        assert [values[s] for s in sites] == [0, 1, 0, 1]

    def test_counts_captures(self, capture):
        capture.capture({CellCoord(0, 0, 0): 1})
        capture.capture({CellCoord(0, 1, 0): 1})
        assert capture.captures == 2

    def test_frames_written_grouped_per_frame(self, capture):
        before = capture.memory.stats.frames_written
        # Sites of one column land in the same state frame.
        capture.capture({CellCoord(r, 9, 0): 1 for r in range(8)})
        assert capture.memory.stats.frames_written - before == 1


class TestHazardWindow:
    def test_zero_when_halted(self):
        assert capture_hazard_window(0) == 0

    def test_lost_updates_equal_enabled_edges(self):
        # The coherency argument: every enabled edge between capture and
        # rewrite is a lost update — why the paper's concurrent
        # procedure does not use capture-based transfer.
        assert capture_hazard_window(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            capture_hazard_window(-1)
