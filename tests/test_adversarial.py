"""The adversarial fragmentation stream and its pinned worst seed.

``fragmenting-adversarial`` is an attack on the allocator: long-lived
small anchors shatter the free space, and every third arrival demands
an ~85 %-of-device contiguous rectangle with sub-second patience.  The
committed :data:`~repro.sched.workload.ADVERSARIAL_SEED` was found by
``tools/find_adversarial_seed.py`` sweeping seeds 0..127 on the
reference cell (XC2S15 / concurrent / first fit / fifo / serial) and
keeping the most rejection-heavy stream.  These tests pin:

* the seed itself and the damage it does (the regression floor — a
  generator or allocator change that blunts the attack fails here and
  means the search should be re-run);
* the stream's adversarial *structure*, so the generator cannot drift
  into an easier shape while keeping the numbers by luck;
* the search tool's scoring path end to end.
"""

import subprocess
import sys
from pathlib import Path

from repro.campaign.runner import run_scenario
from repro.campaign.spec import ScenarioSpec
from repro.device.devices import device
from repro.sched.workload import ADVERSARIAL_SEED, make_workload

REPO = Path(__file__).resolve().parents[1]

#: the fixed scoring cell of the seed search (see the tool's docstring).
REFERENCE = dict(device="XC2S15", policy="concurrent",
                 workload="fragmenting-adversarial",
                 workload_params={"n": 40})


def reference_result(seed: int):
    return run_scenario(ScenarioSpec(seed=seed, **REFERENCE))


def test_committed_seed_is_the_search_winner():
    """Seed 16 won the 128-seed sweep with 11 rejections; the exact
    value is pinned so the attack's strength is part of the contract
    (re-run the search tool before changing either number)."""
    assert ADVERSARIAL_SEED == 16
    result = reference_result(ADVERSARIAL_SEED)
    assert result.rejected == 11
    assert result.mean_waiting > 0.3


def test_committed_seed_beats_the_default_seeds():
    """The searched seed must stay strictly nastier than the lazy
    choices (0 and 1) — otherwise the pin has decayed into noise."""
    pinned = reference_result(ADVERSARIAL_SEED).rejected
    for lazy in (0, 1):
        assert pinned > reference_result(lazy).rejected


def test_stream_structure_is_adversarial():
    dev = device("XC2S15")
    tasks = make_workload("fragmenting-adversarial", dev,
                          seed=ADVERSARIAL_SEED, n=40)
    assert tasks == make_workload("fragmenting-adversarial", dev,
                                  seed=ADVERSARIAL_SEED, n=40)
    assert len(tasks) == 40
    device_area = dev.clb_rows * dev.clb_cols
    large = [t for t in tasks if t.height * t.width >= 0.5 * device_area]
    # Every third arrival is a near-device-sized demand ...
    assert [i for i, t in enumerate(tasks) if t in large][:4] == [2, 5, 8, 11]
    assert len(large) == 13
    for task in large:
        assert task.height >= 0.8 * dev.clb_rows
        assert task.width >= 0.8 * dev.clb_cols
    # ... with sub-second patience, against anchors that outlive the
    # whole surge (tens of seconds vs. sub-second inter-arrivals).
    assert all(t.max_wait == 0.8 for t in tasks)
    anchors = [t for t in tasks if t not in large]
    assert min(t.exec_seconds for t in anchors) >= 20.0


def test_search_tool_ranks_and_reports(tmp_path):
    """The committed tool runs end to end and prints a ranked table
    (3 seeds keeps it fast; the full sweep is an offline job)."""
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "find_adversarial_seed.py"),
         "--seeds", "3", "--tasks", "20", "--top", "2"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src")},
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stderr
    assert "worst seed:" in proc.stdout
    assert "rejected" in proc.stdout


def test_search_scoring_matches_the_campaign_runner():
    """The tool's score is exactly the reference-cell scenario result
    (no drift between the search and what the tests pin)."""
    sys.path.insert(0, str(REPO / "tools"))
    try:
        from find_adversarial_seed import score_seed
    finally:
        sys.path.pop(0)
    rejected, waiting = score_seed(ADVERSARIAL_SEED)
    result = reference_result(ADVERSARIAL_SEED)
    assert (rejected, waiting) == (result.rejected, result.mean_waiting)
