"""CLI help audit: the documented surface matches the real one.

Two invariants, kept mechanical so a renamed flag can never leave the
help text behind again (the ``--ports`` → ``--port-kinds`` split once
did):

* every public grid axis, sizing and execution flag appears in
  ``--help`` output;
* every ``--flag`` token *mentioned* anywhere in the help text is a
  real option of the parser — stale cross-references fail the suite.
"""

import re

from repro.campaign.cli import build_parser
from repro.campaign.runner import ScenarioResult
from repro.fleet.policies import DEVICE_POLICY_NAMES
from repro.sched.queues import QUEUE_NAMES

#: Every public flag of ``python -m repro.campaign``; extending the CLI
#: without extending this list fails the audit below.
PUBLIC_FLAGS = (
    "--devices", "--policies", "--workloads", "--seeds", "--fits",
    "--port-kinds", "--free-space", "--defrag", "--queue", "--ports",
    "--fleet-size", "--device-policy", "--fleet-devices", "--prefetch",
    "--faults", "--trace",
    "--tasks", "--apps", "--priority-levels",
    "--jobs", "--metric", "--csv", "--json", "--quiet",
)


def parser_option_strings() -> set[str]:
    """All option strings the parser actually accepts."""
    out: set[str] = set()
    for action in build_parser()._actions:
        out.update(s for s in action.option_strings if s.startswith("--"))
    return out


def raw_help_strings() -> list[str]:
    """The un-wrapped per-option help strings (``format_help`` output
    is re-wrapped to the terminal width, which would split names like
    ``round-robin`` across lines and make substring checks flaky)."""
    parser = build_parser()
    return [parser.description or ""] + [
        action.help or "" for action in parser._actions
    ]


def test_help_mentions_every_public_axis():
    help_text = build_parser().format_help()
    for flag in PUBLIC_FLAGS:
        assert flag in help_text, f"--help is missing {flag}"


def test_public_flag_list_is_complete():
    """The audit list and the parser agree exactly (minus --help)."""
    assert parser_option_strings() - {"--help"} == set(PUBLIC_FLAGS)


def test_every_flag_mentioned_in_help_exists():
    """No help string may reference a flag the parser does not accept
    (this is the regression the --ports/--port-kinds rename risked)."""
    mentioned = set()
    for text in raw_help_strings():
        mentioned.update(re.findall(r"--[a-z][a-z-]*", text))
    unknown = mentioned - parser_option_strings() - {"--help"}
    assert not unknown, f"help text mentions unknown flags: {unknown}"


def test_help_names_every_axis_choice():
    """Choice-valued axes spell their values out in their help string
    (or argparse renders the choices itself), so ``--help`` is a
    complete catalogue of the grid."""
    helps = " ".join(raw_help_strings())
    for name in QUEUE_NAMES + DEVICE_POLICY_NAMES:
        assert name in helps, f"--help is missing choice {name}"
    # --metric catalogues every exportable column: argparse renders its
    # choices into the help, so the choices themselves are the check.
    metric = next(a for a in build_parser()._actions
                  if "--metric" in a.option_strings)
    assert tuple(metric.choices) == (
        ScenarioResult.METRIC_FIELDS
        + ScenarioResult.PREFETCH_METRIC_FIELDS
        + ScenarioResult.FAULT_METRIC_FIELDS
        + ScenarioResult.TRACE_METRIC_FIELDS
    )
