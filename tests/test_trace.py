"""The NDJSON arrival-trace layer: format, replayer, shaped generators.

Covers :mod:`repro.sched.trace` (round-trip identity, loud parse
failures, the thinned nonhomogeneous generators) and its registry
face in :mod:`repro.sched.workload` (``trace`` / ``diurnal`` /
``flash-crowd`` / ``multi-tenant``).  One test pins the QoS-name ->
priority mapping to :mod:`repro.service.qos` — the two modules must
agree *numerically* without the sched layer importing the service
layer (no layering cycle).
"""

import pytest
from hypothesis import given, strategies as st

from repro.device.devices import device
from repro.sched.tasks import Task
from repro.sched.trace import (
    QOS_PRIORITY,
    diurnal_tasks,
    flash_crowd_tasks,
    format_trace,
    multi_tenant_tasks,
    parse_trace,
    qos_of_priority,
    read_trace,
    write_trace,
)
from repro.sched.workload import WORKLOADS, make_workload


# -- format + parse ----------------------------------------------------------


def make_tasks():
    return [
        Task(task_id=1, height=4, width=6, exec_seconds=1.2, arrival=0.41,
             max_wait=1.5, priority=2, tenant="video"),
        Task(task_id=2, height=2, width=2, exec_seconds=0.3, arrival=0.9,
             max_wait=None, priority=0, tenant=""),
        Task(task_id=3, height=7, width=3, exec_seconds=2.0, arrival=1.1,
             max_wait=0.8, priority=1, tenant="audio"),
    ]


def test_roundtrip_preserves_every_field():
    text = format_trace(make_tasks())
    parsed = parse_trace(text)
    for original, replayed in zip(make_tasks(), parsed):
        assert replayed.task_id == original.task_id
        assert replayed.height == original.height
        assert replayed.width == original.width
        assert replayed.exec_seconds == original.exec_seconds
        assert replayed.arrival == original.arrival
        assert replayed.max_wait == original.max_wait
        assert replayed.priority == original.priority
        assert replayed.tenant == original.tenant


def test_format_is_one_json_object_per_line():
    text = format_trace(make_tasks())
    lines = text.splitlines()
    assert len(lines) == 3
    assert text.endswith("\n")
    assert format_trace([]) == ""


def test_file_roundtrip(tmp_path):
    path = tmp_path / "arrivals.ndjson"
    write_trace(path, make_tasks())
    assert parse_trace(path.read_text()) == read_trace(path)
    assert len(read_trace(path)) == 3


def test_blank_lines_are_skipped():
    text = format_trace(make_tasks())
    padded = "\n" + text.replace("\n", "\n\n")
    assert len(parse_trace(padded)) == 3


@pytest.mark.parametrize("line, message", [
    ("{not json", "invalid JSON"),
    ('{"at": 0, "qos": "platinum", "height": 2, "width": 2, '
     '"duration": 1}', "unknown qos"),
    ('{"at": 0, "height": 0, "width": 2, "duration": 1}',
     "non-positive shape"),
    ('{"at": -1, "height": 2, "width": 2, "duration": 1}',
     "negative time"),
    ('{"at": 0, "height": 2, "width": 2, "duration": -1}',
     "negative time"),
])
def test_bad_lines_fail_loudly_with_line_numbers(line, message):
    good = format_trace(make_tasks()[:1])
    with pytest.raises(ValueError, match=f"line 2.*{message}"):
        parse_trace(good + line + "\n")


def test_qos_defaults_to_best_effort_and_tenant_to_empty():
    tasks = parse_trace(
        '{"at": 0.5, "height": 2, "width": 3, "duration": 1.0}\n'
    )
    assert tasks[0].priority == 0
    assert tasks[0].tenant == ""
    assert tasks[0].max_wait is None


def test_qos_of_priority_saturates():
    assert qos_of_priority(-3) == "best-effort"
    assert qos_of_priority(0) == "best-effort"
    assert qos_of_priority(1) == "silver"
    assert qos_of_priority(2) == "gold"
    assert qos_of_priority(9) == "gold"


def test_qos_priorities_match_the_service_layer():
    """The trace layer mirrors repro.service.qos numerically; a drift
    would silently re-prioritize replayed service traffic."""
    from repro.service.qos import QOS_CLASSES
    assert set(QOS_PRIORITY) == set(QOS_CLASSES)
    for name, qos in QOS_CLASSES.items():
        assert QOS_PRIORITY[name] == qos.priority


@given(st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
        st.floats(min_value=0, max_value=50, allow_nan=False),
        st.one_of(st.none(),
                  st.floats(min_value=0, max_value=10, allow_nan=False)),
        st.sampled_from(sorted(QOS_PRIORITY)),
        st.text(alphabet="abcxyz-", max_size=8),
    ),
    max_size=20,
))
def test_roundtrip_property(rows):
    tasks = [
        Task(task_id=i + 1, height=h, width=w, exec_seconds=dur,
             arrival=at, max_wait=wait, priority=QOS_PRIORITY[qos],
             tenant=tenant)
        for i, (at, h, w, dur, wait, qos, tenant) in enumerate(rows)
    ]
    replayed = parse_trace(format_trace(tasks))
    assert [
        (t.arrival, t.height, t.width, t.exec_seconds, t.max_wait,
         t.priority, t.tenant)
        for t in replayed
    ] == [
        (t.arrival, t.height, t.width, t.exec_seconds, t.max_wait,
         t.priority, t.tenant)
        for t in tasks
    ]


# -- shaped generators -------------------------------------------------------


def assert_valid_stream(tasks, n):
    assert len(tasks) == n
    assert [t.task_id for t in tasks] == list(range(1, n + 1))
    arrivals = [t.arrival for t in tasks]
    assert arrivals == sorted(arrivals)
    assert all(t.height >= 1 and t.width >= 1 for t in tasks)


def test_diurnal_deterministic_and_valid():
    a = diurnal_tasks(50, seed=3)
    b = diurnal_tasks(50, seed=3)
    assert a == b
    assert a != diurnal_tasks(50, seed=4)
    assert_valid_stream(a, 50)


def test_diurnal_peak_hours_are_denser_than_troughs():
    """With period 8, [0, 2) is the rising trough and [3, 5) straddles
    the peak: the peak window must collect clearly more arrivals."""
    tasks = diurnal_tasks(400, seed=0, period=8.0, base_rate=2.0,
                          peak_rate=30.0)
    horizon = tasks[-1].arrival
    trough = sum(1 for t in tasks if (t.arrival % 8.0) < 2.0)
    peak = sum(1 for t in tasks if 3.0 <= (t.arrival % 8.0) < 5.0)
    assert horizon > 8.0  # the sample actually spans a full period
    assert peak > trough


def test_flash_crowd_window_is_denser():
    tasks = flash_crowd_tasks(300, seed=1, base_rate=4.0, flash_at=2.0,
                              flash_duration=1.0, flash_factor=10.0)
    assert_valid_stream(tasks, 300)
    in_window = sum(1 for t in tasks if 2.0 <= t.arrival < 3.0)
    before = sum(1 for t in tasks if 1.0 <= t.arrival < 2.0)
    assert in_window > 2 * max(1, before)


def test_multi_tenant_labels_and_qos_follow_rank():
    tasks = multi_tenant_tasks(200, seed=5, tenants=3)
    assert_valid_stream(tasks, 200)
    tenants = {t.tenant for t in tasks}
    assert tenants == {"t-0", "t-1", "t-2"}
    for task in tasks:
        rank = int(task.tenant.split("-")[1])
        assert task.priority == max(0, 2 - rank)
    counts = {name: sum(1 for t in tasks if t.tenant == name)
              for name in tenants}
    assert counts["t-0"] > counts["t-2"]  # Zipf-like skew


@pytest.mark.parametrize("factory, kwargs", [
    (diurnal_tasks, {"n": -1}),
    (diurnal_tasks, {"n": 5, "base_rate": 0.0}),
    (diurnal_tasks, {"n": 5, "base_rate": 5.0, "peak_rate": 1.0}),
    (flash_crowd_tasks, {"n": -1}),
    (flash_crowd_tasks, {"n": 5, "flash_factor": 0.5}),
    (multi_tenant_tasks, {"n": -1}),
    (multi_tenant_tasks, {"n": 5, "tenants": 0}),
])
def test_generator_validation(factory, kwargs):
    with pytest.raises(ValueError):
        factory(**kwargs)


# -- registry face -----------------------------------------------------------


def test_trace_families_are_registered():
    for name in ("trace", "diurnal", "flash-crowd", "multi-tenant"):
        assert name in WORKLOADS
    assert WORKLOADS["multi-tenant"].tenanted
    assert WORKLOADS["trace"].tenanted
    assert not WORKLOADS["diurnal"].tenanted


def test_trace_workload_replays_a_file(tmp_path):
    path = tmp_path / "t.ndjson"
    write_trace(path, make_tasks())
    dev = device("XC2S15")
    tasks = make_workload("trace", dev, seed=99, path=str(path))
    # the seed is irrelevant: a trace IS the arrival sequence, and
    # shapes are never clamped to the device.
    assert tasks == make_workload("trace", dev, seed=0, path=str(path))
    assert [t.height for t in tasks] == [4, 2, 7]


def test_trace_workload_requires_a_path():
    dev = device("XC2S15")
    with pytest.raises(ValueError, match="--trace FILE"):
        make_workload("trace", dev, seed=0)
    with pytest.raises(ValueError, match="unknown trace parameters"):
        make_workload("trace", dev, seed=0, path="x", n=40)
