"""End-to-end integration tests across the whole stack.

Each test exercises a realistic multi-subsystem scenario: live circuits
+ relocation + manager + tool + configuration memory together.
"""

import random

import pytest

from repro.core.active_replication import ActiveReplicationTester, StuckAtFault
from repro.core.cost import CostModel
from repro.core.function_move import FunctionRelocator
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.core.relocation import make_lockstep_engine
from repro.core.tool import RearrangementTool
from repro.device.clb import CellMode
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.device.geometry import CellCoord, ClbCoord, Rect
from repro.netlist import library as lib
from repro.netlist.itc99 import generate
from repro.netlist.synth import place
from repro.placement.metrics import fragmentation_index
from repro.sched.scheduler import OnlineTaskScheduler
from repro.sched.workload import random_tasks


class TestTwoFunctionsSharingTheFabric:
    def test_independent_circuits_relocate_without_crosstalk(self):
        """Two live circuits on one device; relocating cells of one
        must never disturb the other."""
        fabric = Fabric(device("XCV200"))
        counter = lib.counter(4)
        lfsr = lib.lfsr4()
        d1 = place(counter, fabric, owner=1, origin=ClbCoord(0, 0))
        d2 = place(lfsr, fabric, owner=2, origin=ClbCoord(10, 10))
        e1, c1 = make_lockstep_engine(d1)
        e2, c2 = make_lockstep_engine(d2)
        for _ in range(5):
            c1.step()
            c2.step()
        e1.relocate("b1")
        e2.relocate("r2")
        for _ in range(15):
            c1.step()
            c2.step()
        assert c1.clean and c2.clean

    def test_function_move_between_live_neighbours(self):
        """Move a whole function while another keeps running nearby."""
        fabric = Fabric(device("XCV200"))
        d1 = place(lib.counter(4), fabric, owner=1, origin=ClbCoord(0, 0))
        d2 = place(lib.counter(8), fabric, owner=2, origin=ClbCoord(0, 4))
        e1, c1 = make_lockstep_engine(d1)
        e2, c2 = make_lockstep_engine(d2)
        for _ in range(4):
            c1.step()
            c2.step()
        report = FunctionRelocator(e1).relocate_function(ClbCoord(20, 20))
        for _ in range(12):
            c1.step()
            c2.step()
        assert report.transparent
        assert c1.clean and c2.clean
        assert fabric.footprint(1).row == 20


class TestManagerWithLiveMoves:
    def test_defrag_plan_executed_by_function_relocator(self):
        """The manager plans a rearrangement; the function relocator
        executes it on a live design — the full concurrent pipeline."""
        fabric = Fabric(device("XCV200"))
        design = place(lib.counter(8), fabric, owner=1, origin=ClbCoord(0, 0))
        engine, checker = make_lockstep_engine(design)
        for _ in range(4):
            checker.step()
        # Move the live function to clear the left edge.
        src = design.region
        mover = FunctionRelocator(engine)
        report = mover.relocate_function(ClbCoord(24, 38))
        for _ in range(8):
            checker.step()
        assert checker.clean
        assert fabric.region_is_free(src)
        # The freed space is allocatable by the manager immediately.
        manager = LogicSpaceManager(fabric, policy=RearrangePolicy.NONE)
        outcome = manager.request(src.height, src.width, owner=7)
        assert outcome.success


class TestToolAgainstManagedFabric:
    def test_tool_generates_files_for_manager_moves(self):
        """Manager moves map 1:1 onto tool jobs whose files load into
        the simulated configuration memory."""
        dev = device("XCV200")
        manager = LogicSpaceManager(
            Fabric(dev), policy=RearrangePolicy.CONCURRENT
        )
        manager.request(28, 14, owner=1)
        manager.request(28, 14, owner=2)
        manager.release(1)
        outcome = manager.request(28, 20, owner=3)
        assert outcome.success and outcome.moves
        tool = RearrangementTool(dev)
        for execution in outcome.moves:
            move = execution.move
            jobs = tool.jobs_from_coordinates(
                ClbCoord(move.src.row, move.src.col),
                ClbCoord(move.dst.row, move.dst.col),
            )
            report = tool.execute(tool.generate_all(jobs))
            assert not report.recovered
            assert report.seconds > 0


class TestTestRotationDuringOperation:
    def test_self_test_sweeps_under_running_scheduler_load(self):
        """On-line test rotation over a region while circuits run."""
        fabric = Fabric(device("XCV200"))
        design = place(
            generate("b01", seed=5), fabric, owner=1, origin=ClbCoord(0, 0)
        )
        rng = random.Random(5)
        stim = lambda cyc: {
            pi: rng.randint(0, 1) for pi in design.circuit.inputs
        }
        engine, checker = make_lockstep_engine(design, stimulus=stim)
        tester = ActiveReplicationTester(engine)
        victim = design.site_of(f"{design.circuit.name}_ff0")
        tester.inject_fault(StuckAtFault(victim, 1))
        for _ in range(5):
            checker.step(stim(0))
        report = tester.rotate(
            [ClbCoord(r, c) for r in range(4) for c in range(4)]
        )
        for _ in range(15):
            checker.step(stim(0))
        assert checker.clean
        assert any(f.site == victim for f in report.detected)


class TestSchedulerEndToEnd:
    def test_full_stream_with_boundary_scan_costs(self):
        dev = device("XCV200")
        manager = LogicSpaceManager(
            Fabric(dev),
            cost_model=CostModel(dev, port_kind="boundary-scan"),
            policy=RearrangePolicy.CONCURRENT,
        )
        scheduler = OnlineTaskScheduler(manager)
        metrics = scheduler.run(
            random_tasks(25, seed=11, mean_interarrival=2.0,
                         size_range=(3, 10), exec_range=(10, 40))
        )
        assert metrics.finished == 25
        assert metrics.halted_seconds == 0.0
        assert metrics.port_busy_seconds > 0
        assert 0.0 <= metrics.mean_fragmentation <= 1.0

    def test_occupancy_empty_after_all_releases(self):
        manager = LogicSpaceManager(Fabric(device("XCV200")))
        scheduler = OnlineTaskScheduler(manager)
        scheduler.run(random_tasks(15, seed=3))
        assert manager.fabric.utilization() == 0.0
        assert fragmentation_index(manager.fabric.occupancy) == 0.0


class TestConfigMemoryConsistency:
    def test_relocation_streams_apply_cleanly_in_sequence(self):
        """Generate and load the files for a staged long move; the
        configuration memory accepts every stream with consistent CRCs
        and frame accounting."""
        dev = device("XCV200")
        tool = RearrangementTool(dev)
        jobs = tool.jobs_from_coordinates(
            ClbCoord(0, 0), ClbCoord(24, 36), CellMode.FF_GATED_CLOCK
        )
        generated = tool.generate_all(jobs)
        before = tool.memory.stats.frames_written
        report = tool.execute(generated)
        written = tool.memory.stats.frames_written - before
        assert not report.recovered
        expected = sum(
            len(tool.cost.frames_for_step(step))
            for gen in generated
            for step in gen.plan.steps
            if not step.is_wait
        )
        assert written == expected
