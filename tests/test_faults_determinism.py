"""Fault injection never costs determinism — the battery's hard core.

Two claims:

* the fault-axis campaign grid is **execution-mode invariant**: the
  same 32 scenarios produce equal :class:`ScenarioResult` rows run
  serially, run through the multiprocessing pool, and run a second
  time (fault plans are seeded and the scheduler's fault machinery
  runs on the simulation timeline, so nothing leaks from the host);
* **task conservation survives a kill at every event instant**: for
  every moment anything happens in a baseline fleet run, re-running
  the stream with a member death injected exactly then still leaves
  every task in exactly one terminal state — finished, rejected or
  dropped — with the counters agreeing.  This sweep is what surfaced
  the stale-patience-timeout bug pinned in ``tests/test_faults.py``.
"""

from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.core.manager import LogicSpaceManager
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.fleet.manager import FleetManager
from repro.sched.scheduler import OnlineTaskScheduler
from repro.sched.tasks import TaskState
from repro.sched.workload import fleet_surge_tasks

TERMINAL = (TaskState.FINISHED, TaskState.REJECTED, TaskState.DROPPED)

#: 2 devices x 2 policies x 2 seeds x 4 fault plans = 32 scenarios,
#: every one on a 2-member fleet so ``kill-member`` is legal.
FAULT_GRID = dict(
    devices=["XC2S15", "XC2S30"],
    policies=["none", "concurrent"],
    workloads=["fleet-surge"],
    seeds=[0, 1],
    fleet_sizes=[2],
    faults=["none", "kill-member", "outbreak", "flaky-port"],
    workload_params={"fleet-surge": {"n": 16}},
)


def test_fault_grid_is_execution_mode_invariant():
    specs = CampaignSpec(**FAULT_GRID).expand()
    assert len(specs) == 32
    serial = run_campaign(specs, jobs=1)
    parallel = run_campaign(specs, jobs=4)
    rerun = run_campaign(specs, jobs=1)
    # ScenarioResult equality excludes the wall clock by design.
    assert serial == parallel
    assert serial == rerun
    # The axis is a genuine knob: at least one fault plan moves the
    # numbers relative to the fault-free baseline on some cell.
    by_plan = {}
    for result in serial:
        by_plan.setdefault(result.spec.faults, []).append(
            (result.finished, result.rejected, result.makespan)
        )
    assert any(by_plan["none"] != by_plan[name]
               for name in ("kill-member", "outbreak", "flaky-port"))
    # Fault metrics stay zero on the fault-free plan (the sparse-column
    # guarantee the committed goldens rely on).
    for result in serial:
        if result.spec.faults == "none":
            assert result.faults_injected == 0
            assert (result.relocated, result.restarted,
                    result.dropped) == (0, 0, 0)
        else:
            assert result.faults_injected >= 1


def surge_fleet(members: int = 4):
    return FleetManager(
        [LogicSpaceManager(Fabric(device("XC2S15")))
         for _ in range(members)],
        policy="first-fit",
    )


def baseline_event_instants(tasks) -> list[float]:
    """Every instant at which the fault-free run does anything: task
    arrivals plus each task's configuration and completion times."""
    scheduler = OnlineTaskScheduler(surge_fleet(), queue="fifo")
    scheduler.run(tasks)
    instants = set()
    for task in tasks:
        instants.add(task.arrival)
        if task.configured_at is not None:
            instants.add(task.configured_at)
        if task.finished_at is not None:
            instants.add(task.finished_at)
    return sorted(instants)


def test_kill_at_every_event_instant_conserves_tasks():
    kill_times = baseline_event_instants(fleet_surge_tasks(24, seed=3))
    assert len(kill_times) >= 40  # the sweep is genuinely dense
    for at in kill_times:
        tasks = fleet_surge_tasks(24, seed=3)  # fresh mutable stream
        scheduler = OnlineTaskScheduler(surge_fleet(), queue="fifo")
        scheduler.events.at(at, lambda: scheduler.kill_member(1))
        metrics = scheduler.run(tasks)
        context = f"kill at t={at}"
        assert metrics.members_lost == 1, context
        assert all(task.state in TERMINAL for task in tasks), context
        assert (metrics.finished + metrics.rejected
                + metrics.dropped_tasks) == len(tasks), context
        # Displacement bookkeeping is internally consistent too.
        assert metrics.relocated_tasks >= 0
        assert metrics.dropped_tasks == 0  # homogeneous fleet: never


def test_kill_sweep_is_victim_independent_for_conservation():
    """The same sweep, coarser, over every legal victim: conservation
    does not depend on which member dies."""
    tasks_proto = fleet_surge_tasks(18, seed=7)
    horizon = max(t.arrival for t in tasks_proto) + 2.0
    sample = [i * horizon / 12 for i in range(13)]
    for victim in (1, 2, 3):
        for at in sample:
            tasks = fleet_surge_tasks(18, seed=7)
            scheduler = OnlineTaskScheduler(surge_fleet(), queue="fifo")
            scheduler.events.at(at, lambda: scheduler.kill_member(victim))
            metrics = scheduler.run(tasks)
            assert (metrics.finished + metrics.rejected
                    + metrics.dropped_tasks) == len(tasks), \
                f"victim {victim}, kill at t={at}"
            assert all(task.state in TERMINAL for task in tasks)


def test_repeated_fault_runs_are_bit_identical():
    """One in-process double-run of the heaviest plan: identical
    summaries, metrics and final task states."""
    def run_once():
        tasks = fleet_surge_tasks(20, seed=5)
        scheduler = OnlineTaskScheduler(surge_fleet(), queue="fifo")
        summaries = []
        scheduler.events.at(
            2.0, lambda: summaries.append(scheduler.kill_member(2))
        )
        scheduler.events.at(
            2.5, lambda: scheduler.inject_region_fault(
                0, 0, 0, 3, 3, duration=1.0)
        )
        scheduler.events.at(1.0, lambda: scheduler.flake_port(3))
        metrics = scheduler.run(tasks)
        return (
            summaries,
            [task.state for task in tasks],
            (metrics.finished, metrics.rejected, metrics.dropped_tasks,
             metrics.relocated_tasks, metrics.restarted_tasks,
             metrics.recovery_seconds, metrics.port_retry_seconds,
             metrics.makespan),
        )

    assert run_once() == run_once()
