"""Tests for the .rnl netlist serialisation format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import library as lib
from repro.netlist.io import NetlistFormatError, dumps, load, loads, save
from repro.netlist.itc99 import generate
from repro.netlist.simulator import CycleSimulator


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: lib.counter(4),
            lambda: lib.gated_counter(3),
            lambda: lib.latch_pipeline(2),
            lambda: lib.majority_voter(),
            lambda: lib.lfsr4(),
        ],
    )
    def test_library_circuits(self, factory):
        original = factory()
        restored = loads(dumps(original))
        assert restored.name == original.name
        assert restored.inputs == original.inputs
        assert restored.outputs == original.outputs
        assert list(restored.cells) == list(original.cells)
        for name, cell in original.cells.items():
            other = restored.cells[name]
            assert other.lut == cell.lut
            assert other.inputs == cell.inputs
            assert other.mode == cell.mode
            assert other.ce == cell.ce
            assert other.init_state == cell.init_state
            assert other.output == cell.output

    def test_itc99_roundtrip_behaviour(self):
        import random

        original = generate("b02", seed=6, gated_fraction=0.5)
        restored = loads(dumps(original))
        a, b = CycleSimulator(original), CycleSimulator(restored)
        rng = random.Random(0)
        for _ in range(40):
            vec = {pi: rng.randint(0, 1) for pi in original.inputs}
            assert a.step(vec) == b.step(vec)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "counter.rnl"
        original = lib.counter(3)
        save(original, str(path))
        restored = load(str(path))
        assert list(restored.cells) == list(original.cells)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_generated_circuits_roundtrip(self, seed):
        original = generate("b01", seed=seed % 89)
        assert dumps(loads(dumps(original))) == dumps(original)


class TestFormatErrors:
    def test_comments_and_blanks_ignored(self):
        text = dumps(lib.toggle())
        text = "# header comment\n\n" + text.replace(
            ".inputs", "# inline\n.inputs"
        )
        loads(text)

    def test_missing_circuit(self):
        with pytest.raises(NetlistFormatError, match=".circuit"):
            loads(".inputs a\n.end\n")

    def test_missing_end(self):
        with pytest.raises(NetlistFormatError, match=".end"):
            loads(".circuit t\n.inputs a\n")

    def test_content_after_end(self):
        with pytest.raises(NetlistFormatError, match="after .end"):
            loads(".circuit t\n.end\n.inputs a\n")

    def test_duplicate_circuit(self):
        with pytest.raises(NetlistFormatError, match="duplicate"):
            loads(".circuit a\n.circuit b\n.end\n")

    def test_unknown_directive(self):
        with pytest.raises(NetlistFormatError, match="unknown directive"):
            loads(".circuit t\n.bogus x\n.end\n")

    def test_bad_lut(self):
        with pytest.raises(NetlistFormatError, match="lut"):
            loads(".circuit t\n.cell g inputs= mode=combinational\n.end\n")

    def test_unknown_mode(self):
        with pytest.raises(NetlistFormatError, match="mode"):
            loads(
                ".circuit t\n.cell g lut=0x1 inputs= mode=warp\n.end\n"
            )

    def test_unknown_key(self):
        with pytest.raises(NetlistFormatError, match="unknown keys"):
            loads(
                ".circuit t\n.cell g lut=0x1 inputs= zap=1\n.end\n"
            )

    def test_invalid_netlist_rejected(self):
        # Structurally parses but reads an undriven net.
        with pytest.raises(NetlistFormatError, match="invalid netlist"):
            loads(
                ".circuit t\n.cell g lut=0xAAAA inputs=phantom\n.end\n"
            )

    def test_bad_init(self):
        with pytest.raises(NetlistFormatError, match="init"):
            loads(
                ".circuit t\n.cell g lut=0x1 inputs= init=5\n.end\n"
            )
