"""Unit tests for the reconfiguration cost model."""

import pytest

from repro.device.clb import CellMode
from repro.device.devices import device
from repro.core.cost import CostModel, CostParameters
from repro.core.procedure import StepClass, StepKind, build_plan


@pytest.fixture
def xcv200():
    return device("XCV200")


def gated_plan(src=3, dst=5):
    return build_plan(
        "u1",
        CellMode.FF_GATED_CLOCK,
        signal_columns=set(range(min(src, dst), max(src, dst) + 1)),
        src_col=src,
        dst_col=dst,
        aux_col=dst + 1,
        ce_col=src,
    )


class TestParameters:
    def test_granularity_validated(self):
        with pytest.raises(ValueError):
            CostParameters(granularity="nibble")

    def test_port_kind_validated(self, xcv200):
        with pytest.raises(ValueError):
            CostModel(xcv200, port_kind="carrier-pigeon")


class TestFrameAccounting:
    def test_column_granularity_writes_whole_columns(self, xcv200):
        model = CostModel(xcv200, CostParameters(granularity="column"))
        plan = gated_plan()
        copy = plan.steps[0]
        frames = model.frames_for_step(copy)
        assert len(frames) == 48 * len(copy.columns)

    def test_frame_granularity_writes_fewer(self, xcv200):
        column = CostModel(xcv200, CostParameters(granularity="column"))
        frame = CostModel(xcv200, CostParameters(granularity="frame"))
        step = gated_plan().steps[1]  # CONNECT_AUX (routing)
        assert len(frame.frames_for_step(step)) < len(
            column.frames_for_step(step)
        )

    def test_wait_steps_cost_nothing(self, xcv200):
        model = CostModel(xcv200)
        plan = gated_plan()
        wait = next(s for s in plan.steps if s.kind is StepKind.WAIT_CAPTURE)
        assert model.frames_for_step(wait) == []
        assert model.step_cost(wait).seconds == 0.0
        assert model.bitstream_for_step(wait) is None

    def test_logic_step_uses_logic_frames(self, xcv200):
        model = CostModel(xcv200, CostParameters(granularity="frame"))
        plan = gated_plan()
        copy = plan.steps[0]
        assert copy.step_class is StepClass.LOGIC
        assert len(model.frames_for_step(copy)) == 18  # LOGIC_MINORS


class TestTiming:
    def test_gated_relocation_near_paper_value(self, xcv200):
        """The headline number: ~22.6 ms per gated-clock CLB cell over
        Boundary Scan at 20 MHz with column-granularity writes.  A nearby
        relocation must land in the same ballpark (15-35 ms)."""
        model = CostModel(
            xcv200, CostParameters(granularity="column", tck_hz=20e6)
        )
        cost = model.plan_cost(gated_plan(3, 4))  # nearby move, as advised
        assert 0.015 <= cost.total_seconds <= 0.035

    def test_frame_granularity_cheaper(self, xcv200):
        column = CostModel(xcv200, CostParameters(granularity="column"))
        frame = CostModel(xcv200, CostParameters(granularity="frame"))
        plan = gated_plan()
        assert (
            frame.plan_cost(plan).total_seconds
            < column.plan_cost(plan).total_seconds
        )

    def test_selectmap_much_faster(self, xcv200):
        jtag = CostModel(xcv200, port_kind="boundary-scan")
        smap = CostModel(xcv200, port_kind="selectmap")
        plan = gated_plan()
        assert (
            smap.plan_cost(plan).total_seconds
            < jtag.plan_cost(plan).total_seconds / 5
        )

    def test_readback_verify_doubles_cost(self, xcv200):
        base = CostModel(xcv200, CostParameters())
        verify = CostModel(xcv200, CostParameters(readback_verify=True))
        plan = gated_plan()
        t0 = base.plan_cost(plan).total_seconds
        t1 = verify.plan_cost(plan).total_seconds
        assert t1 > 1.8 * t0

    def test_longer_moves_cost_more(self, xcv200):
        model = CostModel(xcv200)
        near = model.plan_cost(gated_plan(3, 4)).total_seconds
        far = model.plan_cost(gated_plan(3, 20)).total_seconds
        assert far > near * 2

    def test_tck_scaling(self, xcv200):
        slow = CostModel(xcv200, CostParameters(tck_hz=10e6))
        fast = CostModel(xcv200, CostParameters(tck_hz=20e6))
        plan = gated_plan()
        assert slow.plan_cost(plan).total_seconds == pytest.approx(
            2 * fast.plan_cost(plan).total_seconds, rel=0.01
        )

    def test_plan_cost_totals_consistent(self, xcv200):
        model = CostModel(xcv200)
        cost = model.plan_cost(gated_plan())
        assert cost.total_seconds == pytest.approx(
            sum(s.seconds for s in cost.steps)
        )
        assert cost.total_frames == sum(s.frames for s in cost.steps)
        assert cost.total_words == sum(s.words for s in cost.steps)

    def test_seconds_for_columns_monotonic(self, xcv200):
        model = CostModel(xcv200)
        assert model.seconds_for_columns(0) == 0.0
        assert (
            model.seconds_for_columns(1)
            < model.seconds_for_columns(4)
            < model.seconds_for_columns(16)
        )
