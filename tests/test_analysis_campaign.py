"""repro.analysis over campaign results from both free-space engines.

The analysis layer (stats, reporting tables, ASCII visualisation) is
what the campaign exports feed; these tests drive it with real results
produced under each free-space engine, plus the degenerate shapes the
aggregation helpers must survive: an empty campaign and a single run.
"""

import pytest

from repro.analysis.reporting import series
from repro.analysis.stats import confidence_interval_95, mean, stddev
from repro.analysis.visualize import (
    render_occupancy,
    render_timeline,
    timeline_from_application_runs,
)
from repro.campaign.aggregate import CampaignResult
from repro.campaign.runner import build_manager, run_campaign, run_scenario
from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.placement.free_space import FREE_SPACE_NAMES
from repro.sched.scheduler import ApplicationFlowScheduler
from repro.sched.workload import make_workload


def engine_campaign() -> CampaignResult:
    """A small grid sweeping the free-space engine axis."""
    spec = CampaignSpec(
        devices=["XC2S15"],
        policies=["none", "concurrent"],
        workloads=["random"],
        seeds=[0, 1],
        free_spaces=list(FREE_SPACE_NAMES),
        workload_params={"random": {"n": 8}},
    )
    return CampaignResult(run_campaign(spec.expand(), jobs=1))


@pytest.fixture(scope="module")
def both_engines():
    return engine_campaign()


class TestTablesAcrossEngines:
    def test_summary_has_one_row_per_engine_cell(self, both_engines):
        table = both_engines.summary_table()
        assert "free_space" in table.headers
        # 2 policies x 2 engines, seeds pooled.
        assert len(table.rows) == 4
        rendered = table.render()
        assert "recompute" in rendered and "incremental" in rendered

    def test_engine_axis_never_changes_group_means(self, both_engines):
        """Seed-averaged metrics are identical per engine: the engine
        axis is a pure performance knob, visible only in wall clock."""
        means = both_engines.group_means("mean_waiting")
        by_cell: dict[tuple, dict[str, float]] = {}
        for (device, workload, fit, port, engine, defrag, queue, ports,
             fleet, members, dev_policy, prefetch, faults, policy), \
                value in means.items():
            by_cell.setdefault(
                (device, workload, fit, port, defrag, queue, ports,
                 fleet, members, dev_policy, prefetch, faults, policy),
                {})[engine] = value
        for cell, engines in by_cell.items():
            assert len(engines) == len(FREE_SPACE_NAMES), cell
            values = list(engines.values())
            assert all(v == pytest.approx(values[0]) for v in values), cell

    def test_policy_table_keeps_engines_apart(self, both_engines):
        table = both_engines.policy_table("mean_fragmentation")
        assert table.headers[:5] == [
            "device", "workload", "fit", "port", "free_space"
        ]
        assert len(table.rows) == len(FREE_SPACE_NAMES)

    def test_stats_over_exported_rows(self, both_engines):
        waits = [row["mean_waiting"] for row in both_engines.rows()]
        assert len(waits) == 8
        assert stddev(waits) >= 0.0
        lo, hi = confidence_interval_95(waits)
        assert lo <= mean(waits) <= hi
        chart = series("waiting by run", list(range(len(waits))), waits,
                       x_label="run", y_label="s")
        assert len(chart.rows) == len(waits)


class TestDegenerateShapes:
    def test_empty_campaign(self):
        empty = CampaignResult([])
        assert len(empty) == 0
        assert empty.rows() == []
        assert empty.groups() == {}
        assert empty.group_means("mean_waiting") == {}
        table = empty.summary_table()
        assert table.rows == [] and "0 runs" in table.title
        assert empty.policy_table("mean_waiting").rows == []
        with pytest.raises(ValueError):
            empty.to_csv("unused.csv")

    def test_single_run(self, tmp_path):
        result = run_scenario(
            ScenarioSpec("XC2S15", "none", "random", 0,
                         workload_params=(("n", 5),))
        )
        single = CampaignResult([result])
        assert len(single.summary_table().rows) == 1
        policy = single.policy_table("finished")
        assert len(policy.rows) == 1 and policy.headers[-1] == "none"
        csv_path = single.to_csv(tmp_path / "single.csv")
        assert len(csv_path.read_text().strip().splitlines()) == 2
        payload = single.to_json(tmp_path / "single.json")
        assert payload.exists()


class TestVisualizeAcrossEngines:
    @pytest.mark.parametrize("engine", FREE_SPACE_NAMES)
    def test_occupancy_render_reflects_manager_state(self, engine):
        spec = ScenarioSpec("XC2S15", "none", "random", 0,
                            free_space=engine,
                            workload_params=(("n", 6),))
        manager = build_manager(spec)
        manager.request(2, 3, 1)
        manager.request(3, 2, 2)
        text = render_occupancy(manager.fabric.occupancy)
        assert "1" in text and "2" in text and "." in text
        manager.release(1)
        after = render_occupancy(manager.fabric.occupancy)
        assert "1" not in after and "2" in after

    @pytest.mark.parametrize("engine", FREE_SPACE_NAMES)
    def test_timeline_from_real_application_runs(self, engine):
        spec = ScenarioSpec("XC2S30", "concurrent", "codec-swap", 1,
                            free_space=engine,
                            workload_params=(("n_apps", 2),))
        manager = build_manager(spec)
        apps = make_workload("codec-swap", manager.fabric.device, 1,
                             n_apps=2)
        runs = ApplicationFlowScheduler(manager).run(apps)
        rows = timeline_from_application_runs(runs)
        assert len(rows) == 2
        chart = render_timeline(rows, width=48)
        assert chart.count("|") >= 4  # two framed rows
        assert "1" in chart  # first function glyph appears

    def test_timeline_engines_render_identically(self):
        charts = []
        for engine in FREE_SPACE_NAMES:
            spec = ScenarioSpec("XC2S30", "concurrent", "codec-swap", 1,
                                free_space=engine,
                                workload_params=(("n_apps", 2),))
            manager = build_manager(spec)
            apps = make_workload("codec-swap", manager.fabric.device, 1,
                                 n_apps=2)
            runs = ApplicationFlowScheduler(manager).run(apps)
            charts.append(
                render_timeline(timeline_from_application_runs(runs),
                                width=48)
            )
        assert charts[0] == charts[1]
