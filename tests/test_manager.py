"""Unit tests for the on-line logic-space manager."""

import pytest

from repro.device.clb import CellMode
from repro.device.fabric import Fabric
from repro.device.devices import device
from repro.device.geometry import Rect
from repro.core.manager import (
    LogicSpaceManager,
    PlacementOutcome,
    RearrangePolicy,
)


@pytest.fixture
def manager():
    return LogicSpaceManager(Fabric(device("XCV200")))


class TestDirectPlacement:
    def test_simple_request_succeeds(self, manager):
        outcome = manager.request(4, 4, owner=1)
        assert outcome.success
        assert outcome.rect is not None
        assert outcome.moves == []
        assert outcome.config_seconds > 0

    def test_release_frees_space(self, manager):
        manager.request(28, 42, owner=1)  # whole device
        assert not manager.request(1, 1, owner=2).success or True
        manager.release(1)
        assert manager.request(28, 42, owner=3).success

    def test_release_unknown_owner_rejected(self, manager):
        with pytest.raises(KeyError):
            manager.release(77)

    def test_oversized_request_fails(self, manager):
        outcome = manager.request(29, 42, owner=1)
        assert not outcome.success


class TestRearrangement:
    def _fragment(self, manager):
        """Build pillars so no 20-wide rectangle is free."""
        manager.request(28, 10, owner=1)
        manager.request(28, 10, owner=2)
        manager.fabric.free_region(Rect(0, 10, 28, 10), 2)
        manager.request(28, 10, owner=3)
        # layout: [1: 0-9][free: 10-19? no -- 3 landed there]
        # After these requests: 1 at cols 0-9, 3 at cols 10-19; free 20-41.

    def test_policy_none_fails_without_space(self):
        mgr = LogicSpaceManager(
            Fabric(device("XCV200")), policy=RearrangePolicy.NONE
        )
        mgr.request(28, 14, owner=1)
        mgr.request(28, 14, owner=2)
        # Free the middle, then occupy the right: fragmented halves.
        mgr.release(1)
        outcome = mgr.request(28, 20, owner=3)
        # 28 free columns exist (0-13 and 28-41) but not 20 contiguous:
        # cols 0-13 free (14 wide), 28-41 free (14 wide).
        assert not outcome.success

    def test_concurrent_policy_rearranges(self):
        mgr = LogicSpaceManager(
            Fabric(device("XCV200")), policy=RearrangePolicy.CONCURRENT
        )
        mgr.request(28, 14, owner=1)
        mgr.request(28, 14, owner=2)
        mgr.release(1)
        outcome = mgr.request(28, 20, owner=3)
        assert outcome.success
        assert outcome.moves
        assert outcome.halted_seconds == 0.0  # the paper's contribution

    def test_halt_policy_charges_halt_time(self):
        mgr = LogicSpaceManager(
            Fabric(device("XCV200")), policy=RearrangePolicy.HALT
        )
        mgr.request(28, 14, owner=1)
        mgr.request(28, 14, owner=2)
        mgr.release(1)
        outcome = mgr.request(28, 20, owner=3)
        assert outcome.success
        assert outcome.halted_seconds > 0.0
        assert outcome.halted_seconds == pytest.approx(
            outcome.rearrange_seconds
        )

    def test_footprints_preserved_after_rearrangement(self):
        mgr = LogicSpaceManager(
            Fabric(device("XCV200")), policy=RearrangePolicy.CONCURRENT
        )
        mgr.request(28, 14, owner=1)
        mgr.request(28, 14, owner=2)
        mgr.release(1)
        mgr.request(28, 20, owner=3)
        assert mgr.fabric.footprint(2).area == 28 * 14
        assert mgr.fabric.footprint(3).area == 28 * 20


class TestCosts:
    def test_move_cost_scales_with_area(self, manager):
        from repro.placement.compaction import Move

        small = Move(1, Rect(0, 0, 2, 2), Rect(0, 4, 2, 2))
        large = Move(1, Rect(0, 0, 4, 4), Rect(0, 8, 4, 4))
        assert manager.move_seconds(large) > manager.move_seconds(small)

    def test_per_clb_cost_near_paper_number(self, manager):
        # ~22.6 ms per gated-clock CLB for a nearby move (paper §2).
        seconds = manager.clb_move_seconds(10, 11)
        assert 0.010 <= seconds <= 0.040

    def test_move_cost_cached(self, manager):
        a = manager.clb_move_seconds(3, 7)
        b = manager.clb_move_seconds(3, 7)
        assert a == b
        assert (3, 7) in manager._move_cost_cache

    def test_free_clock_cells_cheaper_to_move(self):
        fabric = Fabric(device("XCV200"))
        gated = LogicSpaceManager(
            fabric, moved_cell_mode=CellMode.FF_GATED_CLOCK
        )
        free = LogicSpaceManager(
            fabric, moved_cell_mode=CellMode.FF_FREE_CLOCK
        )
        assert free.clb_move_seconds(5, 6) < gated.clb_move_seconds(5, 6)

    def test_config_seconds_scales_with_width(self, manager):
        narrow = manager.config_seconds(Rect(0, 0, 10, 2))
        wide = manager.config_seconds(Rect(0, 0, 10, 12))
        assert wide > narrow


class TestTelemetry:
    def test_fragmentation_and_utilization(self, manager):
        assert manager.utilization() == 0.0
        manager.request(14, 21, owner=1)
        assert manager.utilization() == pytest.approx(0.25)
        assert 0.0 <= manager.fragmentation() <= 1.0

    def test_outcomes_recorded(self, manager):
        manager.request(2, 2, owner=1)
        manager.request(99, 99, owner=2)
        assert len(manager.outcomes) == 2
        assert manager.outcomes[0].success
        assert not manager.outcomes[1].success
