"""Property suite for the rearrangement planner (hypothesis).

The planner's contract, pinned over randomized occupancy states:

* every plan's move list is *collision-free when sequenced*: executed
  one at a time, each move leaves a rectangle its owner wholly occupies
  and lands on sites that are free at that moment;
* the promised ``target`` rectangle is genuinely free (and of the
  requested shape) after the moves are applied;
* consolidation never shrinks the largest free rectangle — and when a
  plan is returned at all, it strictly grows it;
* no resident function is ever lost or reshaped by a plan.

These are exactly the invariants the manager relies on when it executes
a plan against the real fabric, where a violation would corrupt running
functions (``Fabric.move_region`` would raise mid-plan).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.defrag import DefragPlanner
from repro.placement.compaction import footprints
from repro.placement.fit import first_fit
from repro.placement.free_space import largest_empty_rectangle


@st.composite
def occupied_grids(draw):
    """A random occupancy grid with rectangular, hole-punched residents.

    Functions are packed with first-fit and a random subset is then
    released, which is how real fragmentation arises (the paper's
    "many small pools of resources are created as they are released").
    """
    rows = draw(st.integers(min_value=6, max_value=12))
    cols = draw(st.integers(min_value=6, max_value=14))
    occ = np.zeros((rows, cols), dtype=np.int32)
    owner = 0
    for _ in range(draw(st.integers(min_value=1, max_value=14))):
        h = draw(st.integers(min_value=1, max_value=4))
        w = draw(st.integers(min_value=1, max_value=4))
        spot = first_fit(occ, h, w)
        if spot is None:
            continue
        owner += 1
        occ[spot.row : spot.row_end, spot.col : spot.col_end] = owner
    for resident in [int(o) for o in np.unique(occ) if o != 0]:
        if draw(st.booleans()):
            occ[occ == resident] = 0
    return occ


def sequential_apply(occupancy: np.ndarray, moves) -> np.ndarray:
    """Execute a move list one move at a time, asserting the physical
    preconditions the fabric enforces: the source is wholly owned by
    the mover, the destination is free when the move runs."""
    grid = occupancy.copy()
    for m in moves:
        assert (m.src.height, m.src.width) == (m.dst.height, m.dst.width), (
            f"{m} changes shape"
        )
        src = grid[m.src.row : m.src.row_end, m.src.col : m.src.col_end]
        assert (src == m.owner).all(), f"{m}: source not owned by mover"
        src[...] = 0
        dst = grid[m.dst.row : m.dst.row_end, m.dst.col : m.dst.col_end]
        assert (dst == 0).all(), f"{m}: destination occupied when sequenced"
        dst[...] = m.owner
    return grid


def assert_residents_preserved(before: np.ndarray, after: np.ndarray):
    """No function lost, duplicated, or reshaped by the plan."""
    prints_before = footprints(before)
    prints_after = footprints(after)
    assert prints_before.keys() == prints_after.keys()
    for owner, rect in prints_before.items():
        moved = prints_after[owner]
        assert (rect.height, rect.width) == (moved.height, moved.width)
        assert (after == owner).sum() == (before == owner).sum()


@pytest.mark.slow
@settings(max_examples=80)
@given(
    occ=occupied_grids(),
    height=st.integers(min_value=1, max_value=6),
    width=st.integers(min_value=1, max_value=6),
)
def test_request_plans_are_sound(occ, height, width):
    """plan(): sequenced collision-freedom + a genuinely free target."""
    plan = DefragPlanner().plan(occ, height, width)
    if plan is None:
        return
    assert (plan.target.height, plan.target.width) == (height, width)
    after = sequential_apply(occ, plan.moves)
    target = after[
        plan.target.row : plan.target.row_end,
        plan.target.col : plan.target.col_end,
    ]
    assert (target == 0).all(), "promised rectangle is not free"
    assert_residents_preserved(occ, after)


@pytest.mark.slow
@settings(max_examples=80)
@given(occ=occupied_grids())
def test_consolidation_never_shrinks_largest_free_rectangle(occ):
    """plan_consolidation(): sequenced soundness, monotone improvement."""
    before = largest_empty_rectangle(occ)
    before_area = before.area if before is not None else 0
    plan = DefragPlanner().plan_consolidation(occ)
    if plan is None:
        return
    assert plan.moves, "a consolidation plan without moves is pointless"
    after = sequential_apply(occ, plan.moves)
    best = largest_empty_rectangle(after)
    after_area = best.area if best is not None else 0
    assert after_area >= before_area, "consolidation shrank the LFR"
    assert after_area > before_area, (
        "a returned plan must strictly grow the LFR"
    )
    # The promised target is the compacted grid's largest free rectangle.
    view = after[
        plan.target.row : plan.target.row_end,
        plan.target.col : plan.target.col_end,
    ]
    assert (view == 0).all()
    assert plan.target.area == after_area
    assert_residents_preserved(occ, after)


@pytest.mark.slow
@settings(max_examples=40)
@given(occ=occupied_grids())
def test_consolidation_respects_move_cap(occ):
    """Truncated compactions never exceed max_consolidation_moves."""
    planner = DefragPlanner(max_consolidation_moves=3)
    plan = planner.plan_consolidation(occ)
    if plan is not None:
        assert len(plan.moves) <= 3


@pytest.mark.slow
@settings(max_examples=40)
@given(
    occ=occupied_grids(),
    height=st.integers(min_value=1, max_value=6),
    width=st.integers(min_value=1, max_value=6),
)
def test_plans_never_exceed_free_area(occ, height, width):
    """A plan can only consolidate free sites, never mint new ones."""
    plan = DefragPlanner().plan(occ, height, width)
    if plan is None or not plan.moves:
        return
    assert int((occ == 0).sum()) >= height * width
