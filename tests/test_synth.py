"""Unit tests for packing, placement and mapped designs."""

import pytest

from repro.device.fabric import Fabric
from repro.device.devices import device, synthetic_device
from repro.device.geometry import CELLS_PER_CLB, ClbCoord
from repro.netlist import library as lib
from repro.netlist.itc99 import generate
from repro.netlist.synth import MappingError, footprint_shape, pack, place


@pytest.fixture
def fabric():
    return Fabric(device("XCV200"))


class TestPack:
    def test_clusters_cover_all_cells(self):
        circuit = lib.counter(8)
        clusters = pack(circuit)
        names = [n for cluster in clusters for n in cluster]
        assert sorted(names) == sorted(circuit.cells)

    def test_cluster_size_bound(self):
        for cluster in pack(generate("b03", seed=1)):
            assert 1 <= len(cluster) <= CELLS_PER_CLB

    def test_connected_cells_cluster_together(self):
        # A 2-cell circuit must land in one cluster.
        circuit = lib.toggle()
        circuit.add_input("x")
        clusters = pack(circuit)
        assert len(clusters) == 1


class TestFootprintShape:
    def test_near_square(self):
        h, w = footprint_shape(9, 100, 100)
        assert h * w >= 9
        assert abs(h - w) <= 1

    def test_respects_device_limits(self):
        h, w = footprint_shape(100, 5, 100)
        assert h <= 5 and h * w >= 100

    def test_impossible_rejected(self):
        with pytest.raises(MappingError):
            footprint_shape(100, 3, 3)

    def test_empty_rejected(self):
        with pytest.raises(MappingError):
            footprint_shape(0, 5, 5)


class TestPlace:
    def test_all_cells_placed_in_region(self, fabric):
        circuit = generate("b01", seed=1)
        design = place(circuit, fabric, owner=1)
        assert set(design.placement) == set(circuit.cells)
        for site in design.placement.values():
            assert design.region.contains(site.clb)

    def test_no_two_cells_share_site(self, fabric):
        design = place(generate("b03", seed=1), fabric, owner=1)
        sites = list(design.placement.values())
        assert len(sites) == len(set(sites))

    def test_region_allocated(self, fabric):
        design = place(lib.counter(8), fabric, owner=5)
        assert fabric.occupant(ClbCoord(design.region.row, design.region.col)) == 5

    def test_origin_respected(self, fabric):
        design = place(
            lib.counter(8), fabric, owner=1, origin=ClbCoord(10, 10)
        )
        assert design.region.row == 10 and design.region.col == 10

    def test_occupied_origin_rejected(self, fabric):
        fabric.allocate_region(
            __import__("repro.device.geometry", fromlist=["Rect"]).Rect(10, 10, 3, 3), 9
        )
        with pytest.raises(MappingError):
            place(lib.counter(8), fabric, owner=1, origin=ClbCoord(10, 10))

    def test_too_large_for_device(self):
        tiny = Fabric(synthetic_device(2, 2))
        with pytest.raises(MappingError):
            place(generate("b03", seed=1), tiny, owner=1)

    def test_second_design_avoids_first(self, fabric):
        d1 = place(lib.counter(8), fabric, owner=1)
        d2 = place(lib.counter(8), fabric, owner=2)
        assert not d1.region.overlaps(d2.region)


class TestRouting:
    def test_route_all_allocates(self, fabric):
        design = place(generate("b01", seed=1), fabric, owner=1)
        count = design.route_all()
        assert count == len(design.routes)
        assert fabric.routing.total_wires_used() > 0
        design.unroute_all()
        assert fabric.routing.total_wires_used() == 0

    def test_intra_clb_connections_not_routed(self, fabric):
        design = place(lib.toggle(), fabric, owner=1)
        assert design.route_all() == 0


class TestMappedDesignQueries:
    def test_site_of_unknown_rejected(self, fabric):
        design = place(lib.counter(4), fabric, owner=1)
        with pytest.raises(MappingError):
            design.site_of("nope")

    def test_signal_columns_cover_connected_cells(self, fabric):
        design = place(generate("b01", seed=1), fabric, owner=1)
        cell = next(iter(design.circuit.cells))
        cols = design.signal_columns(cell)
        assert design.site_of(cell).col in cols

    def test_connected_cells_symmetric(self, fabric):
        design = place(lib.counter(4), fabric, owner=1)
        assert "b1" in design.connected_cells("c2")
        assert "c2" in design.connected_cells("b1")

    def test_remove_from_fabric(self, fabric):
        design = place(lib.counter(4), fabric, owner=1, route=True)
        design.remove_from_fabric()
        assert fabric.utilization() == 0.0
        assert fabric.routing.total_wires_used() == 0
