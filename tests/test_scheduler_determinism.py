"""Determinism: same seed + same policy => identical metrics, always.

The campaign engine's serial == parallel guarantee (and the golden
snapshots) rest on scenario execution being a pure function of the
spec.  The proactive defrag policies add trigger state (cooldowns,
attempt timestamps) to that path, so this suite re-runs every scheduler
x defrag-policy combination twice from fresh state and requires the
full :class:`~repro.sched.scheduler.ScheduleMetrics` — including the
new defrag counters — to come out identical, field for field.
"""

import pytest

from repro.campaign.runner import run_scenario
from repro.campaign.spec import ScenarioSpec, normalize_params
from repro.core.defrag_policy import DEFRAG_POLICY_NAMES
from repro.core.manager import LogicSpaceManager
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.sched.scheduler import ApplicationFlowScheduler, OnlineTaskScheduler
from repro.sched.workload import make_workload


def run_tasks_once(defrag: str):
    """One fresh fragmenting-stream run under ``defrag``."""
    dev = device("XC2S15")
    manager = LogicSpaceManager(Fabric(dev), defrag_policy=defrag)
    tasks = make_workload("fragmenting", dev, seed=7, n=30)
    return OnlineTaskScheduler(manager).run(tasks)


def run_apps_once(defrag: str):
    """One fresh codec-swap application run under ``defrag``."""
    dev = device("XC2S15")
    manager = LogicSpaceManager(Fabric(dev), defrag_policy=defrag)
    apps = make_workload("codec-swap", dev, seed=7, n_apps=4)
    scheduler = ApplicationFlowScheduler(manager)
    scheduler.run(apps)
    return scheduler.metrics


@pytest.mark.parametrize("defrag", DEFRAG_POLICY_NAMES)
def test_task_scheduler_is_deterministic(defrag):
    assert run_tasks_once(defrag) == run_tasks_once(defrag)


@pytest.mark.parametrize("defrag", DEFRAG_POLICY_NAMES)
def test_app_scheduler_is_deterministic(defrag):
    assert run_apps_once(defrag) == run_apps_once(defrag)


@pytest.mark.parametrize("defrag", DEFRAG_POLICY_NAMES)
@pytest.mark.parametrize(
    "workload,params",
    [("fragmenting", {"n": 25}), ("codec-swap", {"n_apps": 3})],
)
def test_scenario_results_are_reproducible(defrag, workload, params):
    """The campaign path: a spec re-run yields an equal ScenarioResult
    (wall clock is excluded from comparison by construction)."""
    spec = ScenarioSpec(
        device="XC2S15",
        policy="concurrent",
        workload=workload,
        seed=11,
        defrag=defrag,
        workload_params=normalize_params(params),
    )
    assert run_scenario(spec) == run_scenario(spec)


def test_proactive_policies_change_the_run():
    """Sanity: the new policies are not dead knobs on the hostile
    workload — proactive consolidation actually fires."""
    metrics = run_tasks_once("idle")
    assert metrics.proactive_defrags > 0
    baseline = run_tasks_once("on-failure")
    assert baseline.proactive_defrags == 0
    assert metrics != baseline
