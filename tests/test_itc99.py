"""Unit tests for the ITC'99-statistics benchmark generator."""

import pytest

from repro.device.clb import CellMode
from repro.netlist.itc99 import ITC99_STATS, generate, generate_suite, spec
from repro.netlist.simulator import CycleSimulator


class TestSpec:
    def test_known_circuits_present(self):
        for name in ("b01", "b02", "b09", "b14"):
            assert name in ITC99_STATS

    def test_spec_matches_table(self):
        s = spec("b01")
        assert (s.inputs, s.outputs, s.flip_flops, s.gates) == ITC99_STATS["b01"]

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="b01"):
            spec("b99")

    def test_lut_budget_positive(self):
        for name in ITC99_STATS:
            assert spec(name).luts >= 1


class TestGenerate:
    def test_statistics_match(self):
        for name in ("b01", "b06", "b09"):
            s = spec(name)
            circuit = generate(name, seed=11)
            stats = circuit.stats()
            assert stats.inputs == s.inputs
            assert stats.outputs == s.outputs
            assert stats.flip_flops == s.flip_flops
            assert stats.cells >= s.flip_flops + 1

    def test_deterministic_per_seed(self):
        a = generate("b03", seed=5)
        b = generate("b03", seed=5)
        assert list(a.cells) == list(b.cells)
        assert [c.lut for c in a.cells.values()] == [
            c.lut for c in b.cells.values()
        ]

    def test_different_seeds_differ(self):
        a = generate("b03", seed=1)
        b = generate("b03", seed=2)
        assert [c.lut for c in a.cells.values()] != [
            c.lut for c in b.cells.values()
        ]

    def test_validates_structurally(self):
        generate("b08", seed=3).validate()

    def test_gated_fraction(self):
        circuit = generate("b03", seed=7, gated_fraction=0.5)
        stats = circuit.stats()
        assert stats.gated_flip_flops == round(0.5 * spec("b03").flip_flops)
        # All gated FFs share one enable net.
        ces = {
            c.ce
            for c in circuit.cells.values()
            if c.mode is CellMode.FF_GATED_CLOCK
        }
        assert len(ces) == 1

    def test_gated_fraction_bounds(self):
        with pytest.raises(ValueError):
            generate("b01", gated_fraction=1.5)

    def test_simulates_without_error(self):
        circuit = generate("b02", seed=9)
        sim = CycleSimulator(circuit)
        import random

        rng = random.Random(0)
        for _ in range(30):
            sim.step({pi: rng.randint(0, 1) for pi in circuit.inputs})
        assert set(sim.outputs()) == set(circuit.outputs)

    def test_purely_synchronous_single_clock(self):
        # The paper's test circuits are "purely synchronous with only one
        # single-phase clock signal": no latches in the default suite.
        circuit = generate("b05", seed=4)
        assert circuit.stats().latches == 0


class TestSuite:
    def test_default_suite_excludes_b14(self):
        suite = generate_suite()
        names = {c.name for c in suite}
        assert "b14" not in names
        assert "b01" in names and "b13" in names

    def test_custom_selection(self):
        suite = generate_suite(["b01", "b02"])
        assert [c.name for c in suite] == ["b01", "b02"]
