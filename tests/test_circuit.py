"""Unit tests for the netlist container."""

import pytest

from repro.device.clb import CellMode
from repro.netlist.cells import Cell, LUT_AND2, LUT_BUF, LUT_NOT, LUT_XOR2
from repro.netlist.circuit import Circuit, NetlistError


def small_circuit():
    c = Circuit("small")
    c.add_input("a")
    c.add_input("b")
    c.add_cell(Cell("g1", LUT_AND2, ("a", "b")))
    c.add_cell(Cell("g2", LUT_XOR2, ("g1", "a")))
    c.add_cell(Cell("q", LUT_BUF, ("g2",), mode=CellMode.FF_FREE_CLOCK))
    c.set_outputs(["q"])
    return c


class TestConstruction:
    def test_duplicate_input_rejected(self):
        c = Circuit("t")
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.add_input("a")

    def test_duplicate_cell_rejected(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_cell(Cell("g", LUT_BUF, ("a",)))
        with pytest.raises(NetlistError):
            c.add_cell(Cell("g", LUT_BUF, ("a",)))

    def test_output_net_collision_rejected(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_cell(Cell("g", LUT_BUF, ("a",)))
        with pytest.raises(NetlistError):
            c.add_cell(Cell("h", LUT_BUF, ("a",), output="g"))

    def test_cell_driving_input_net_rejected(self):
        c = Circuit("t")
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.add_cell(Cell("g", LUT_BUF, ("g",), output="a"))

    def test_remove_cell(self):
        c = small_circuit()
        c.remove_cell("g2")
        assert "g2" not in c.cells
        with pytest.raises(NetlistError):
            c.remove_cell("g2")


class TestValidation:
    def test_valid_circuit_passes(self):
        small_circuit().validate()

    def test_undriven_net_detected(self):
        c = Circuit("t")
        c.add_cell(Cell("g", LUT_BUF, ("phantom",)))
        with pytest.raises(NetlistError, match="undriven"):
            c.validate()

    def test_undriven_output_detected(self):
        c = Circuit("t")
        c.add_input("a")
        c.set_outputs(["nowhere"])
        with pytest.raises(NetlistError, match="undriven"):
            c.validate()

    def test_combinational_loop_detected(self):
        c = Circuit("t")
        c.add_cell(Cell("g1", LUT_NOT, ("g2",)))
        c.add_cell(Cell("g2", LUT_BUF, ("g1",)))
        with pytest.raises(NetlistError, match="loop"):
            c.validate()

    def test_registered_feedback_is_legal(self):
        c = Circuit("t")
        c.add_cell(Cell("q", LUT_NOT, ("q",), mode=CellMode.FF_FREE_CLOCK))
        c.set_outputs(["q"])
        c.validate()

    def test_topo_order_respects_dependencies(self):
        c = small_circuit()
        order = c.topo_order()
        assert order.index("g1") < order.index("g2")


class TestParallelDrivers:
    def test_add_and_promote(self):
        c = small_circuit()
        replica = Cell("g2~replica", LUT_XOR2, ("g1", "a"))
        c.add_cell(replica)
        c.add_parallel_driver("g2", "g2~replica")
        assert c.parallel_drivers["g2"] == ["g2", "g2~replica"]
        c.promote_parallel_driver("g2", "g2~replica")
        assert "g2" not in c.parallel_drivers
        assert c.cells["g2~replica"].output == "g2"
        assert c.cells["g2"].output == "g2~detached"

    def test_parallel_on_undriven_net_rejected(self):
        c = small_circuit()
        c.add_cell(Cell("x", LUT_BUF, ("a",)))
        with pytest.raises(NetlistError):
            c.add_parallel_driver("phantom", "x")

    def test_duplicate_parallel_rejected(self):
        c = small_circuit()
        c.add_cell(Cell("r", LUT_XOR2, ("g1", "a")))
        c.add_parallel_driver("g2", "r")
        with pytest.raises(NetlistError):
            c.add_parallel_driver("g2", "r")

    def test_promote_unknown_rejected(self):
        c = small_circuit()
        with pytest.raises(NetlistError):
            c.promote_parallel_driver("g2", "nobody")

    def test_remove_cell_cleans_groups(self):
        c = small_circuit()
        c.add_cell(Cell("r", LUT_XOR2, ("g1", "a")))
        c.add_parallel_driver("g2", "r")
        c.remove_cell("r")
        assert "g2" not in c.parallel_drivers


class TestQueriesAndStats:
    def test_fanout(self):
        c = small_circuit()
        assert set(c.fanout("a")) == {"g1", "g2"}
        assert c.fanout("g2") == ["q"]

    def test_stats(self):
        c = small_circuit()
        s = c.stats()
        assert s.inputs == 2
        assert s.outputs == 1
        assert s.cells == 3
        assert s.flip_flops == 1
        assert s.combinational == 2
        assert s.sequential == 1

    def test_all_nets(self):
        c = small_circuit()
        assert {"a", "b", "g1", "g2", "q"} <= c.all_nets()

    def test_clone_is_independent(self):
        c = small_circuit()
        d = c.clone()
        d.remove_cell("g2")
        assert "g2" in c.cells
        assert c.outputs == d.outputs

    def test_str_mentions_counts(self):
        text = str(small_circuit())
        assert "3 cells" in text and "1 FF" in text
