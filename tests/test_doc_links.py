"""The documentation dead-link gate, run as part of tier-1.

``tools/check_docstrings.py --check-doc-links`` verifies that every
dotted ``repro.*`` name and backticked repo path in the narrative docs
exists on disk, and ``--covers-packages`` that ``docs/paper_mapping.md``
mentions every top-level ``src/repro`` package.  CI runs the script;
this suite runs the same checks in-process so a renamed module or a
new package that the docs miss turns tier-1 red locally too.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
GATED_DOCS = ("docs/architecture.md", "docs/paper_mapping.md",
              "docs/service.md")


@pytest.fixture(scope="module")
def gate():
    """The checker module, loaded from tools/ (not a package)."""
    spec = importlib.util.spec_from_file_location(
        "check_docstrings", REPO_ROOT / "tools" / "check_docstrings.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def run_from_repo_root(monkeypatch):
    """The gate resolves paths relative to the repo root, as in CI."""
    monkeypatch.chdir(REPO_ROOT)


def test_docs_name_only_modules_that_exist(gate):
    problems = gate.check_doc_links([str(REPO_ROOT / d)
                                     for d in GATED_DOCS])
    assert problems == []


def test_paper_mapping_covers_every_top_level_package(gate):
    problems = gate.check_package_coverage(
        str(REPO_ROOT / "docs" / "paper_mapping.md")
    )
    assert problems == []


def test_gate_detects_dead_references(gate, tmp_path):
    """The gate genuinely fails on rot (guards the guard)."""
    bad = tmp_path / "bad.md"
    bad.write_text(
        "uses `repro.sched.wormhole` and `tests/no_such_file.py` "
        "and `repro.teleport.Engine`\n"
    )
    problems = gate.check_doc_links([str(bad)])
    assert len(problems) == 3
    assert not gate.module_exists("repro.sched.wormhole")
    assert gate.module_exists("repro.sched.kernel.SchedulingKernel")
    # A lower-case function re-exported by a package __init__ is a
    # live link, not a dead one...
    assert gate.module_exists("repro.fleet.make_device_policy")
    assert gate.module_exists("repro.campaign.run_scenario")
    # ... but a word that merely appears in the __init__ prose is not:
    # resolution reads the bound names (AST), never the text.
    assert not gate.module_exists("repro.campaign.run")
    assert not gate.module_exists("repro.sched.the")
    assert not gate.module_exists("repro.fleet.devices")
    # A class renamed away from a surviving module rots the link too.
    assert gate.module_exists("repro.fleet.manager.FleetManager")
    assert not gate.module_exists("repro.fleet.manager.NoSuchClass")
    assert gate.module_exists(
        "repro.core.manager.LogicSpaceManager.maybe_defrag"
    )


def test_coverage_check_notices_a_missing_package(gate, tmp_path):
    partial = tmp_path / "partial.md"
    partial.write_text("only repro.device and repro.netlist here\n")
    problems = gate.check_package_coverage(str(partial))
    assert any("repro.fleet" in p for p in problems)
    assert any("repro.campaign" in p for p in problems)
