"""Integration tests for whole-function relocation."""

import random

import pytest

from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.device.geometry import ClbCoord, Rect
from repro.core.function_move import FunctionRelocator
from repro.core.procedure import RelocationVeto
from repro.core.relocation import make_lockstep_engine
from repro.netlist import library as lib
from repro.netlist.itc99 import generate
from repro.netlist.synth import place


def build(circuit, origin=None, stimulus=None):
    fabric = Fabric(device("XCV200"))
    design = place(circuit, fabric, owner=1, origin=origin)
    engine, checker = make_lockstep_engine(design, stimulus=stimulus)
    return design, engine, checker


class TestFunctionMove:
    def test_counter_moves_transparently(self):
        design, engine, checker = build(lib.counter(4), ClbCoord(0, 0))
        for _ in range(5):
            checker.step()
        mover = FunctionRelocator(engine)
        report = mover.relocate_function(ClbCoord(10, 20))
        for _ in range(15):
            checker.step()
        assert report.transparent
        assert checker.clean
        assert design.region == Rect(10, 20, report.src.height,
                                     report.src.width)

    def test_all_cells_land_at_offset(self):
        design, engine, checker = build(lib.counter(8), ClbCoord(2, 2))
        before = dict(design.placement)
        FunctionRelocator(engine).relocate_function(ClbCoord(12, 22))
        for name, old in before.items():
            new = design.placement[name]
            assert (new.row - old.row, new.col - old.col) == (10, 20)
            assert new.cell == old.cell

    def test_occupancy_follows_the_move(self):
        design, engine, checker = build(lib.counter(4), ClbCoord(0, 0))
        src = design.region
        FunctionRelocator(engine).relocate_function(ClbCoord(15, 30))
        assert design.fabric.region_is_free(src)
        assert design.fabric.footprint(1) == design.region

    def test_staged_move(self):
        design, engine, checker = build(lib.counter(4), ClbCoord(0, 0))
        mover = FunctionRelocator(engine)
        report = mover.relocate_function(
            ClbCoord(0, 30), max_hop_columns=10
        )
        assert len(report.stages) == 3
        assert design.region.col == 30
        assert report.transparent

    def test_gated_function_moves_transparently(self):
        rng = random.Random(4)
        stim = lambda cyc: {"en": rng.randint(0, 1)}
        design, engine, checker = build(
            lib.gated_counter(4), ClbCoord(0, 0), stimulus=stim
        )
        for _ in range(6):
            checker.step(stim(0))
        report = FunctionRelocator(engine).relocate_function(ClbCoord(8, 8))
        for _ in range(20):
            checker.step(stim(0))
        assert report.transparent and checker.clean

    def test_overlap_without_staging_vetoed(self):
        design, engine, checker = build(lib.counter(4), ClbCoord(5, 5))
        mover = FunctionRelocator(engine)
        with pytest.raises(RelocationVeto, match="overlap"):
            mover.relocate_function(ClbCoord(5, 6))

    def test_destination_occupied_by_other_function_vetoed(self):
        design, engine, checker = build(lib.counter(4), ClbCoord(0, 0))
        design.fabric.allocate_region(Rect(10, 10, 3, 3), 99)
        with pytest.raises(RelocationVeto, match="overlaps function"):
            FunctionRelocator(engine).relocate_function(ClbCoord(10, 10))

    def test_out_of_bounds_vetoed(self):
        design, engine, checker = build(lib.counter(4), ClbCoord(0, 0))
        with pytest.raises(RelocationVeto, match="bounds"):
            FunctionRelocator(engine).relocate_function(ClbCoord(27, 41))

    def test_itc99_function_move(self):
        circuit = generate("b01", seed=2)
        rng = random.Random(2)
        stim = lambda cyc: {pi: rng.randint(0, 1) for pi in circuit.inputs}
        design, engine, checker = build(circuit, ClbCoord(0, 0), stim)
        for _ in range(5):
            checker.step(stim(0))
        report = FunctionRelocator(engine).relocate_function(ClbCoord(10, 10))
        for _ in range(20):
            checker.step(stim(0))
        assert report.cells_moved == len(circuit.cells)
        assert report.transparent and checker.clean

    def test_move_cost_accumulates(self):
        design, engine, checker = build(lib.counter(4), ClbCoord(0, 0))
        report = FunctionRelocator(engine).relocate_function(ClbCoord(10, 20))
        assert report.total_seconds == pytest.approx(
            sum(r.total_seconds for r in report.cell_reports)
        )
        assert report.total_seconds > 0


class TestHaltingRelocation:
    def test_state_preserved_but_time_lost(self):
        design, engine, checker = build(lib.counter(4), ClbCoord(0, 0))
        for _ in range(5):
            checker.step()
        report = engine.relocate_halting("b1")
        # The move itself is correct...
        for _ in range(10):
            checker.step()
        assert checker.clean
        # ...but it costs halted wall-clock time (no cycles advanced
        # during the procedure; the application was stopped).
        assert report.total_seconds > 0
        assert report.total_cycles == 0

    def test_halting_cheaper_in_port_time_than_concurrent(self):
        # The halting flow skips the aux circuit and parallel phases.
        d1, e1, c1 = build(lib.gated_counter(3), ClbCoord(0, 0),
                           stimulus=lambda c: {"en": 1})
        for _ in range(3):
            c1.step({"en": 1})
        halting = e1.relocate_halting("b1")
        d2, e2, c2 = build(lib.gated_counter(3), ClbCoord(0, 0),
                           stimulus=lambda c: {"en": 1})
        for _ in range(3):
            c2.step({"en": 1})
        concurrent = e2.relocate("b1")
        assert halting.total_seconds < concurrent.total_seconds

    def test_vetoes_occupied_destination(self):
        design, engine, checker = build(lib.counter(4), ClbCoord(0, 0))
        dst = design.site_of("b0")
        with pytest.raises(RelocationVeto):
            engine.relocate_halting("b1", dst)
