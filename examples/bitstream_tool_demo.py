#!/usr/bin/env python3
"""The rearrangement & programming tool, end to end (Fig. 7).

Demonstrates both input forms of the paper's tool:

1. source/destination CLB coordinates — the tool builds the Fig. 4 plan,
   generates one partial configuration file per step, and plays them
   through the Boundary Scan port;
2. a new placement (diff against the current one) — the tool emits a
   staged job list, shortest moves first.

Also shows the recovery path: a corrupted file aborts the load and the
configuration memory is rolled back to the recovery copy.

Run:  python examples/bitstream_tool_demo.py
(or the installed CLI:  repro-rearrange --src 3,3 --dst 5,8)
"""

from repro.core.tool import RearrangementTool
from repro.device.clb import CellMode
from repro.device.devices import device
from repro.device.geometry import ClbCoord


def main() -> None:
    tool = RearrangementTool(device("XCV200"), tck_hz=20e6)

    print("=== input form 2: explicit coordinates ===")
    jobs = tool.jobs_from_coordinates(
        ClbCoord(3, 3), ClbCoord(5, 6), CellMode.FF_GATED_CLOCK
    )
    generated = tool.generate_all(jobs)
    for gen in generated:
        print(f"job {gen.job}")
        for stream in gen.files:
            print(f"  {stream.describe()}")
        ms = gen.total_words * 32 / tool.port.tck_hz * 1e3
        print(f"  -> {gen.total_words} words, ~{ms:.2f} ms over "
              f"Boundary Scan")
    report = tool.execute(generated)
    print(f"execution: {report}\n")

    print("=== input form 1: new placement (diff) ===")
    current = {1: ClbCoord(0, 0), 2: ClbCoord(10, 10), 3: ClbCoord(20, 38)}
    target = {1: ClbCoord(0, 18), 2: ClbCoord(10, 10), 3: ClbCoord(22, 40)}
    jobs = tool.jobs_from_placements(current, target)
    print(f"{len(jobs)} staged jobs (shortest first, hops <= "
          f"{tool.max_hop_columns} columns):")
    for job in jobs:
        print(f"  {job}")
    report = tool.execute(tool.generate_all(jobs))
    print(f"execution: {report}\n")

    print("=== recovery: corrupted partial configuration ===")
    jobs = tool.jobs_from_coordinates(ClbCoord(7, 7), ClbCoord(7, 8))
    generated = tool.generate_all(jobs)
    before = tool.memory.snapshot()
    report = tool.execute(generated, inject_failure_at=2)
    restored = tool.memory.snapshot() == before
    print(f"execution: {report}")
    print(f"configuration memory restored from recovery copy: "
          f"{'YES' if restored else 'NO'}")


if __name__ == "__main__":
    main()
