#!/usr/bin/env python3
"""On-line defragmentation: rearranging running functions for space.

The paper's motivating scenario (section 1): functions of different
sizes come and go; the free space shatters into "many small pools of
resources"; an incoming function finds enough *total* area but no
*contiguous* rectangle.  The logic-space manager then plans a
rearrangement, and — the paper's contribution — executes it with dynamic
relocation, concurrently with the running functions (zero halted time),
paying only configuration-port time.

Run:  python examples/defrag_scenario.py
"""

from repro.core.cost import CostModel
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.placement.metrics import fragmentation_index, utilization


def ascii_grid(occupancy, max_cols=42) -> str:
    """Render the occupancy grid (one char per CLB site)."""
    chars = " 123456789abcdefghijklmnopqrstuvwxyz"
    lines = []
    for row in occupancy[:, :max_cols]:
        lines.append(
            "".join(chars[v % len(chars)] if v else "." for v in row)
        )
    return "\n".join(lines)


def main() -> None:
    dev = device("XCV200")
    manager = LogicSpaceManager(
        Fabric(dev),
        cost_model=CostModel(dev),
        policy=RearrangePolicy.CONCURRENT,
    )

    # Fill the device with functions, then release every other one:
    # a classic fragmentation pattern (pillars with gaps).
    owners = []
    for i in range(6):
        outcome = manager.request(28, 6, owner=i + 1)
        assert outcome.success
        owners.append(i + 1)
    for owner in owners[::2]:
        manager.release(owner)

    occ = manager.fabric.occupancy
    print("Fragmented logic space (. = free):")
    print(ascii_grid(occ))
    print(f"\nutilization        : {utilization(occ):.1%}")
    print(f"fragmentation index: {fragmentation_index(occ):.3f}")

    # An incoming function needs 28x16 contiguous: total free area is
    # 28x24 but the largest free rectangle is only 28x6.
    print("\nincoming function: 28 rows x 16 columns")
    outcome = manager.request(28, 16, owner=99)
    assert outcome.success, "rearrangement failed"

    print(f"placed at          : {outcome.rect} via {outcome.method}")
    print(f"functions moved    : {len(outcome.moves)}")
    for execution in outcome.moves:
        move = execution.move
        print(
            f"  function {move.owner}: {move.src} -> {move.dst} "
            f"({execution.seconds * 1e3:.1f} ms of port time, "
            f"halted {execution.halt_seconds * 1e3:.1f} ms)"
        )
    print(f"own configuration  : {outcome.config_seconds * 1e3:.1f} ms")
    print(f"halted time total  : {outcome.halted_seconds * 1e3:.1f} ms "
          "(zero: moves ran concurrently with execution)")

    occ = manager.fabric.occupancy
    print("\nLogic space after the transparent rearrangement:")
    print(ascii_grid(occ))
    print(f"\nutilization        : {utilization(occ):.1%}")
    print(f"fragmentation index: {fragmentation_index(occ):.3f}")


if __name__ == "__main__":
    main()
