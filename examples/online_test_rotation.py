#!/usr/bin/env python3
"""On-line concurrent self-test via dynamic relocation (extension).

The relocation mechanism was born from the authors' on-line testing work
(paper reference [8], "Active Replication"): to test a CLB that is in
use, first relocate its occupants — transparently — then run a built-in
self-test on the vacated cells, and sweep the whole array this way while
the application keeps running.

This example places a live counter on the XCV200, injects two stuck-at
defects (one under the counter itself!), and rotates the test over a
region of the array.  Both defects are found; the counter never skips a
beat.

Run:  python examples/online_test_rotation.py
"""

from repro.core.active_replication import ActiveReplicationTester, StuckAtFault
from repro.core.relocation import make_lockstep_engine
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.device.geometry import CellCoord, ClbCoord
from repro.netlist import library
from repro.netlist.synth import place


def main() -> None:
    fabric = Fabric(device("XCV200"))
    design = place(library.counter(8), fabric, owner=1,
                   origin=ClbCoord(0, 0))
    engine, checker = make_lockstep_engine(design)
    tester = ActiveReplicationTester(engine)

    # Two physical defects: one under the running counter, one in a
    # free area.
    victim_live = design.site_of("b3")
    victim_free = CellCoord(4, 4, 2)
    tester.inject_fault(StuckAtFault(victim_live, 0))
    tester.inject_fault(StuckAtFault(victim_free, 1))
    print(f"injected defects: {victim_live} (stuck-at-0, under the "
          f"counter), {victim_free} (stuck-at-1, free area)")

    for _ in range(5):
        checker.step()
    print(f"counter running, value = "
          f"{library.counter_value(checker.dut.outputs())}")

    region = [ClbCoord(r, c) for r in range(6) for c in range(6)]
    print(f"\nrotating self-test over {len(region)} CLBs ...")
    report = tester.rotate(region)

    for _ in range(10):
        checker.step()

    print(f"\nCLBs tested            : {report.clbs_tested}")
    print(f"cells tested           : {report.cells_tested}")
    print(f"live cells relocated   : {len(report.relocations)}")
    print(f"vacating port time     : "
          f"{report.relocation_seconds * 1e3:.1f} ms")
    print(f"defects detected       : {len(report.detected)}")
    for fault in report.detected:
        print(f"  stuck-at-{fault.value} at {fault.site}")
    print(f"array coverage         : {tester.coverage():.1%}")
    print(f"application disturbed  : "
          f"{'no' if checker.clean else 'YES'}")
    assert checker.clean
    assert len(report.detected) == 2
    print("\nboth defects found while the counter kept running: OK")


if __name__ == "__main__":
    main()
