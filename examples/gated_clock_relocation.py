#!/usr/bin/env python3
"""Gated-clock relocation: why the auxiliary circuit exists (Fig. 3/4).

Scenario: a gated-clock counter whose clock-enable (CE) is *inactive*
while a relocation happens — exactly the case the paper identifies:

    "the previous method does not ensure that the CLB replica captures
    the correct state information, because CE may not be active during
    the relocation procedure."

We relocate the same flip-flop twice, on two identical systems:

1. with the **naive copy** (no auxiliary circuit) — state is lost and
   the lockstep checker catches mismatches and drive conflicts;
2. with the **auxiliary relocation circuit** (OR gate + 2:1 mux in a
   nearby free CLB, per Fig. 3) — fully transparent.

Run:  python examples/gated_clock_relocation.py
"""

from repro.core.relocation import make_lockstep_engine
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.netlist import library
from repro.netlist.synth import place


def run_case(use_aux: bool) -> None:
    label = "auxiliary circuit" if use_aux else "naive copy"
    fabric = Fabric(device("XCV200"))
    design = place(library.gated_counter(4), fabric, owner=1)
    engine, checker = make_lockstep_engine(design)

    # Count to 5 with CE active, then freeze CE (the hazardous window).
    for _ in range(5):
        checker.step({"en": 1})
    value_before = library.counter_value(checker.dut.outputs())
    for _ in range(2):
        checker.step({"en": 0})

    report = engine.relocate("b1", use_aux=use_aux)

    # Keep CE low a little longer, then resume counting.
    for _ in range(3):
        checker.step({"en": 0})
    for _ in range(8):
        checker.step({"en": 1})
    value_after = library.counter_value(checker.dut.outputs())
    golden_after = library.counter_value(checker.golden.outputs())

    print(f"--- {label} ---")
    if report.aux is not None:
        print(f"auxiliary circuit CLB : {report.aux}")
    print(f"counter before        : {value_before}")
    print(f"counter after         : {value_after} (golden: {golden_after})")
    print(f"output mismatches     : {len(checker.mismatches)}")
    print(f"drive conflicts       : {len(checker.dut.conflicts)}")
    print(f"transparent           : {'YES' if checker.clean else 'NO'}")
    print()


def main() -> None:
    print(__doc__)
    run_case(use_aux=False)
    run_case(use_aux=True)
    print("The naive copy loses the state held while CE was inactive;")
    print("the auxiliary relocation circuit transfers it coherently.")


if __name__ == "__main__":
    main()
