#!/usr/bin/env python3
"""Quickstart: relocate a live flip-flop without disturbing the circuit.

This is the paper's experiment in five minutes: a 4-bit counter runs on
a simulated Virtex XCV200; we relocate one of its flip-flops to another
CLB using the two-phase dynamic relocation procedure while the counter
keeps counting, verified cycle-by-cycle against a golden copy.

Run:  python examples/quickstart.py
"""

from repro.core.relocation import make_lockstep_engine
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.netlist import library
from repro.netlist.synth import place


def main() -> None:
    # 1. A device and a live circuit placed on it.
    dev = device("XCV200")
    fabric = Fabric(dev)
    counter = library.counter(4)
    design = place(counter, fabric, owner=1)
    print(f"device : {dev}")
    print(f"circuit: {counter}")
    print(f"placed : {design.region} "
          f"(utilization {fabric.utilization():.1%})")

    # 2. An engine whose simulator runs in lockstep with a golden copy.
    engine, checker = make_lockstep_engine(design)

    # 3. Let the counter count a little.
    for _ in range(5):
        checker.step()
    print(f"\ncounter value before relocation: "
          f"{library.counter_value(checker.dut.outputs())}")

    # 4. Relocate bit 2's flip-flop while everything keeps running.
    src = design.site_of("b2")
    report = engine.relocate("b2")
    print(f"\nrelocated cell b2: {src} -> {report.dst}")
    print(f"  mode            : {report.mode.value}")
    print(f"  steps           : {len(report.steps)}")
    print(f"  frames written  : {report.total_frames}")
    print(f"  port time       : {report.total_seconds * 1e3:.2f} ms "
          f"(Boundary Scan @ 20 MHz)")

    # 5. Keep running and check transparency.
    for _ in range(10):
        checker.step()
    print(f"\ncounter value after relocation : "
          f"{library.counter_value(checker.dut.outputs())}")
    print(f"output mismatches vs golden run: {len(checker.mismatches)}")
    print(f"drive conflicts (glitches)     : {len(checker.dut.conflicts)}")
    assert checker.clean, "relocation was not transparent!"
    print("\ntransparent relocation: OK "
          "(no loss of state, no output glitches)")


if __name__ == "__main__":
    main()
