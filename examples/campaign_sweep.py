#!/usr/bin/env python3
"""Campaign sweep: a policy x workload x device grid, run in parallel.

The programmatic face of ``python -m repro.campaign``: build a
:class:`~repro.campaign.CampaignSpec` grid, fan it out over worker
processes, and read the two aggregate views the paper's evaluation
cares about —

* the summary table (per device/workload/policy cell, seeds averaged);
* the policy duel: NONE vs HALT vs CONCURRENT side by side, where the
  paper's claim shows up as CONCURRENT matching HALT's waiting times
  with *zero* halted seconds.

Run:  python examples/campaign_sweep.py
"""

from repro.campaign import CampaignResult, CampaignSpec, run_campaign


def main() -> None:
    """Expand, run and report a 36-run campaign grid."""
    grid = CampaignSpec(
        devices=["XC2S15", "XC2S30"],
        policies=["none", "halt", "concurrent"],
        workloads=["random", "bursty", "heavy-tail"],
        seeds=[0, 1],
        workload_params={
            "random": {"n": 25},
            "bursty": {"n": 25, "burst_size": 5},
            "heavy-tail": {"n": 25, "exec_cap": 8.0},
        },
    )
    specs = grid.expand()
    print(f"grid: {grid.size} scenarios "
          f"({len(grid.devices)} devices x {len(grid.policies)} policies "
          f"x {len(grid.workloads)} workloads x {len(grid.seeds)} seeds)")

    results = CampaignResult(run_campaign(specs, jobs=4))

    results.summary_table().show()
    results.policy_table("mean_waiting").show()
    results.policy_table("halted_seconds").show()

    # The paper's contribution, read off the aggregate: concurrent
    # rearrangement never halts anything.
    halted = results.group_means("halted_seconds")
    concurrent_halt = [v for (*_, policy), v in halted.items()
                       if policy == "concurrent"]
    print(f"\nhalted seconds under CONCURRENT, all cells: "
          f"{concurrent_halt} (all zero — the moves were transparent)")
    assert all(v == 0.0 for v in concurrent_halt)


if __name__ == "__main__":
    main()
