#!/usr/bin/env python3
"""Virtual hardware: applications swapping functions through one FPGA.

The paper's introduction motivates run-time management with applications
whose total area demand exceeds the device ("to use temporal
partitioning to implement those applications whose area requirements
exceed the reconfigurable logic space available"), e.g. context
switching between coding/decoding schemes in communication, video or
audio systems.

This example runs the Fig. 1 scenario: three applications (A, B, C) with
sequential function chains share an XCV200 whose capacity they jointly
exceed by ~2x.  Successor functions are configured *in advance* during
the reconfiguration interval rt; the report shows how much of the
reconfiguration time was hidden, and what parallelism does to it.

Run:  python examples/codec_swap.py
"""

from repro.analysis.visualize import (
    render_timeline,
    timeline_from_application_runs,
)
from repro.core.cost import CostModel
from repro.core.manager import LogicSpaceManager, RearrangePolicy
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.sched.scheduler import ApplicationFlowScheduler
from repro.sched.workload import fig1_applications


def run(apps, prefetch=True):
    dev = device("XCV200")
    manager = LogicSpaceManager(
        Fabric(dev),
        cost_model=CostModel(dev),
        policy=RearrangePolicy.CONCURRENT,
    )
    scheduler = ApplicationFlowScheduler(manager, prefetch=prefetch)
    return scheduler.run(apps)


def report(runs, label):
    print(f"--- {label} ---")
    for record in runs:
        prefetched = sum(1 for r in record.runs if r.prefetched)
        print(
            f"  app {record.spec.name}: "
            f"{len(record.spec.functions)} functions, "
            f"area demand {record.spec.total_area} CLBs, "
            f"makespan {record.makespan:.3f} s, "
            f"stall {record.stall_seconds * 1e3:.1f} ms, "
            f"prefetched {prefetched}/{len(record.runs)}"
        )
    total_stall = sum(r.stall_seconds for r in runs)
    print(f"  total reconfiguration stall: {total_stall * 1e3:.1f} ms\n")
    return total_stall


def main() -> None:
    dev = device("XCV200")
    apps = fig1_applications(dev)
    demand = sum(a.total_area for a in apps)
    print(f"device capacity : {dev.clb_count} CLBs")
    print(f"total demand    : {demand} CLBs "
          f"({demand / dev.clb_count:.0%} of the device)\n")

    with_prefetch = run(apps, prefetch=True)
    stall_pf = report(with_prefetch, "functions swapped in advance (rt)")

    print("timeline (digits = executing function, ~ = configuring):")
    print(render_timeline(timeline_from_application_runs(with_prefetch)))
    print()

    without = run(apps, prefetch=False)
    stall_np = report(without, "no advance reconfiguration")

    hidden = stall_np - stall_pf
    print(f"reconfiguration time hidden by swapping in advance: "
          f"{hidden * 1e3:.1f} ms")

    print("\nparallelism sweep (Fig. 1's caveat):")
    for k in (1, 2, 3):
        runs = run(apps[:k], prefetch=True)
        stall = sum(r.stall_seconds for r in runs)
        print(f"  {k} application(s): total stall {stall * 1e3:8.1f} ms")


if __name__ == "__main__":
    main()
