#!/usr/bin/env python3
"""Fleet sweep: shard one surge over fleets of 1/2/4 fabrics.

The multi-fabric face of ``python -m repro.campaign``: the
``fleet-surge`` workload arrives fast enough to overwhelm a single
XC2S15 — most tasks time out waiting for space — while a fleet of four
absorbs the same stream almost losslessly.  The sweep reads two
aggregate views:

* the fleet table (one column per fleet size): rejections collapse and
  waiting shrinks as fabrics are added;
* the device-policy duel at a contended fleet size: ``least-loaded``
  and ``best-fit`` beat occupancy-blind ``round-robin``.

A direct 1-member-fleet vs plain-manager run at the end demonstrates
the proxy property the test suite pins bit-identically.

Run:  python examples/fleet_sweep.py
"""

from repro.campaign import CampaignResult, CampaignSpec, run_campaign
from repro.campaign.aggregate import GROUP_AXES
from repro.core.manager import LogicSpaceManager
from repro.device.devices import device
from repro.device.fabric import Fabric
from repro.fleet import DEVICE_POLICY_NAMES, FleetManager
from repro.sched.scheduler import OnlineTaskScheduler
from repro.sched.workload import make_workload


def main() -> None:
    """Expand, run and report the fleet-axis campaign grid."""
    grid = CampaignSpec(
        devices=["XC2S15"],
        policies=["concurrent"],
        workloads=["fleet-surge"],
        seeds=[0, 1, 2, 3],
        fleet_sizes=[1, 2, 4],
        device_policies=list(DEVICE_POLICY_NAMES),
        workload_params={"fleet-surge": {"n": 40}},
    )
    specs = grid.expand()
    print(f"grid: {grid.size} scenarios "
          f"({len(grid.fleet_sizes)} fleet sizes "
          f"x {len(grid.device_policies)} device policies "
          f"x {len(grid.seeds)} seeds)")

    results = CampaignResult(run_campaign(specs, jobs=4))

    results.fleet_table("rejected").show()
    results.fleet_table("mean_waiting").show()
    results.device_policy_table("rejected").show()

    # Adding fabrics absorbs the surge for every selection policy.
    rejected = results.group_means("rejected")
    size_axis = GROUP_AXES.index("fleet_size")
    by_size: dict[str, list[float]] = {}
    for key, value in rejected.items():
        by_size.setdefault(key[size_axis], []).append(value)
    means = {size: sum(vs) / len(vs) for size, vs in by_size.items()}
    print(f"\nmean rejected by fleet size: "
          f"{ {s: round(v, 2) for s, v in sorted(means.items())} }")
    assert means["1"] > means["2"] > means["4"]

    # The 1-member fleet is a perfect proxy for the plain manager.
    dev = device("XC2S15")
    plain = OnlineTaskScheduler(
        LogicSpaceManager(Fabric(dev))
    ).run(make_workload("fleet-surge", dev, 0))
    fleet = OnlineTaskScheduler(
        FleetManager([LogicSpaceManager(Fabric(dev))])
    ).run(make_workload("fleet-surge", dev, 0))
    assert fleet == plain
    print("1-member fleet vs plain manager: bit-identical metrics OK")


if __name__ == "__main__":
    main()
