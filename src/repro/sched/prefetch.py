"""Configuration prefetch: hiding reconfiguration time in idle windows.

The paper charges every function load to the serial reconfiguration
channel, so configuration stall dominates waiting time whenever the
port is contended.  Two classic mitigations from the related work
(PAPERS.md) are modelled here:

* **configuration caching** — a bitstream that is already resident in
  configuration memory does not need to be written again; a repeat of
  the same function skips the load entirely (the multi-context /
  configuration-cache literature);
* **configuration prefetch** — Resano et al.'s hybrid heuristic: load
  the configurations of *predicted* future functions while the port
  would otherwise sit idle, so the load is off the critical path when
  the function is finally admitted.

:class:`BitstreamCache` is the resident set: a bounded cache of
bitstream keys with **LRU-with-known-next-use** eviction.  Entries may
carry the instant they are next needed (the planner knows it for
application successors, and a queued task wants its bitstream "as soon
as possible"); the eviction victim is always the entry whose next use
is *farthest* (unknown counts as infinitely far), ties broken by least
recent use.  That ordering gives the invariant the property suite pins:
**an eviction never drops a bitstream with a known earlier next-use
than any kept entry**.

The planner half lives in :class:`~repro.sched.kernel.SchedulingKernel`
(:meth:`~repro.sched.kernel.SchedulingKernel.maybe_prefetch`): it walks
the queue discipline's candidate order plus the application layer's
explicit successor offers (:class:`PrefetchRequest`), and issues loads
through the normal ``PortModel.acquire`` machinery — only when the
target member's port is idle *right now*, so a planned load can never
delay a demand load that was already queued.

Three modes (:data:`PREFETCH_MODES`) select how much of this runs:

* ``never`` — neither cache nor planner is built; every code path is
  bit-identical to the historical behaviour (the golden snapshots and
  every committed campaign row run in this mode);
* ``cache`` — demand loads leave their bitstream resident, repeats hit;
* ``plan`` — ``cache`` plus idle-window planned loads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Prefetch modes accepted by the kernel, schedulers and campaign axis.
PREFETCH_MODES = ("never", "cache", "plan")

#: Default resident-set capacity (bitstreams kept per fleet member).
DEFAULT_CACHE_CAPACITY = 8

#: Upper bound on candidates the planner examines per invocation (the
#: wishlist plus the head of the queue discipline's order).
PLAN_CANDIDATE_BOUND = 16

#: Upper bound on outstanding application-successor offers the kernel
#: retains (oldest dropped first; a dropped offer only costs a miss).
WISHLIST_BOUND = 32


def normalize_prefetch_mode(name: str) -> str:
    """Canonical spelling of a prefetch mode (raises on unknown)."""
    text = str(name).strip().lower()
    if text not in PREFETCH_MODES:
        raise ValueError(
            f"unknown prefetch mode {name!r}; choose from {PREFETCH_MODES}"
        )
    return text


@dataclass(slots=True)
class PrefetchRequest:
    """One bitstream the planner should try to preload.

    ``next_use`` is the best known estimate of when the bitstream will
    be demanded (``None`` = unknown); ``device`` pins the fleet member
    the load must land on (``None`` = let the kernel predict one via
    the device-selection policy).
    """

    key: str
    height: int
    width: int
    next_use: float | None = None
    device: int | None = None


@dataclass(slots=True)
class CacheEntry:
    """One resident bitstream.

    ``ready_at`` is the instant its (pre)load completes — a planned
    load hit before it finishes simply waits for the in-flight load
    instead of re-charging the port.  ``next_use`` is the known
    earliest future demand (``None`` = unknown), the signal the
    eviction order protects.
    """

    key: str
    height: int
    width: int
    ready_at: float
    last_used: float
    next_use: float | None = None
    seq: int = 0

    def to_dict(self) -> dict:
        """Serializable entry state (checkpoint/restore)."""
        return {
            "key": self.key,
            "height": self.height,
            "width": self.width,
            "ready_at": self.ready_at,
            "last_used": self.last_used,
            "next_use": self.next_use,
            "seq": self.seq,
        }


class BitstreamCache:
    """Bounded resident-bitstream set, LRU-with-known-next-use eviction.

    Keys are opaque strings (``task:<id>`` for independent tasks,
    ``fn:<name>:<h>x<w>`` for application functions).  The cache does
    not touch the port or the clock itself — the kernel charges loads
    and supplies ``now`` — so it stays a pure, checkpointable value.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: dict[str, CacheEntry] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> CacheEntry | None:
        """The resident entry for ``key`` (no side effects)."""
        return self._entries.get(key)

    def keys(self) -> tuple[str, ...]:
        """The resident keys, in insertion order (no side effects)."""
        return tuple(self._entries)

    def hit(self, key: str, now: float) -> CacheEntry | None:
        """Consume a resident entry for a demand at ``now``.

        Returns the entry (its load is *not* re-charged; the caller
        waits until ``ready_at`` if the preload is still in flight) or
        ``None`` on a miss.  A consumed entry's ``next_use`` is cleared
        — the known demand just happened — and its recency refreshed.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        entry.last_used = now
        entry.next_use = None
        return entry

    def note_next_use(self, key: str, next_use: float | None) -> bool:
        """Record a known future demand for a resident bitstream (the
        eviction order protects it); returns False on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        if next_use is not None and (
            entry.next_use is None or next_use < entry.next_use
        ):
            entry.next_use = next_use
        return True

    @staticmethod
    def _victim_rank(entry: CacheEntry) -> tuple[float, float, int]:
        """Eviction preference: farthest known next use first (unknown
        = infinitely far), then least recently used, then oldest."""
        horizon = entry.next_use if entry.next_use is not None else math.inf
        return (horizon, -entry.last_used, -entry.seq)

    def peek_victim(self) -> CacheEntry | None:
        """The entry an insertion at capacity would evict."""
        if not self._entries:
            return None
        return max(self._entries.values(), key=self._victim_rank)

    def admits(self, next_use: float | None) -> bool:
        """Whether a *planned* load with this known next use is worth
        inserting: there is free space, or the victim is needed later
        (or not at known time at all).  Demand loads bypass this check
        — their bitstream is resident by construction."""
        if len(self._entries) < self.capacity:
            return True
        victim = self.peek_victim()
        assert victim is not None
        if victim.next_use is None:
            return True
        return next_use is not None and next_use < victim.next_use

    def insert(self, key: str, height: int, width: int, *,
               ready_at: float, now: float,
               next_use: float | None = None) -> CacheEntry | None:
        """Make ``key`` resident; returns the evicted entry, if any.

        An already-resident key is refreshed in place (no eviction).
        At capacity the victim with the farthest next use goes first —
        never an entry with a known earlier next-use than a kept one.
        """
        entry = self._entries.get(key)
        if entry is not None:
            entry.ready_at = ready_at
            entry.last_used = now
            if next_use is not None:
                entry.next_use = next_use
            return None
        evicted: CacheEntry | None = None
        if len(self._entries) >= self.capacity:
            evicted = self.peek_victim()
            assert evicted is not None
            del self._entries[evicted.key]
        self._entries[key] = CacheEntry(
            key, height, width, ready_at=ready_at, last_used=now,
            next_use=next_use, seq=self._seq,
        )
        self._seq += 1
        return evicted

    def export_state(self) -> dict:
        """Serializable cache state (checkpoint/restore)."""
        return {
            "capacity": self.capacity,
            "seq": self._seq,
            "entries": [
                entry.to_dict() for entry in self._entries.values()
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Load a previously exported cache state."""
        self.capacity = int(state["capacity"])
        self._seq = int(state["seq"])
        self._entries = {}
        for row in state["entries"]:
            self._entries[row["key"]] = CacheEntry(
                key=row["key"],
                height=int(row["height"]),
                width=int(row["width"]),
                ready_at=float(row["ready_at"]),
                last_used=float(row["last_used"]),
                next_use=(float(row["next_use"])
                          if row["next_use"] is not None else None),
                seq=int(row["seq"]),
            )
