"""Reconfiguration-port models: how configuration traffic is served.

The cost model (:mod:`repro.core.cost`) prices every job in *port
seconds* — the serial-channel time a configuration or a relocation move
occupies on the paper's Boundary-Scan flow.  A :class:`PortModel` then
decides how those seconds are served:

* ``serial`` — one sequential channel; jobs queue back to back.  This
  is the paper's model and reproduces the historical
  :class:`~repro.sched.events.SequentialResource` behaviour exactly;
* ``multi-N`` — ``N`` independent configuration ports; each job is
  placed whole on the earliest-free port (a job's moves and its own
  configuration are inherently ordered, so they never split across
  ports), modelling multi-context / multi-ICAP devices;
* ``icap`` — one channel with distinct write and readback throughput.
  Configuration jobs are pure frame *writes* and complete
  ``write_speedup`` times faster than the Boundary-Scan baseline;
  relocation moves re-read the source frames before rewriting them, so
  each move pays a write phase (``/ write_speedup``) plus a readback
  phase (``/ readback_speedup``) — the asymmetry of real ICAP readback
  paths feeding straight into the relocation cost model.

Every model exposes ``free_at`` (earliest instant any capacity is
idle — the proactive-defrag trigger's ``port_idle`` signal) and the
total ``busy_seconds`` consumed.
"""

from __future__ import annotations

import re
from typing import Protocol

from .events import EventQueue, SequentialResource

#: Canonical port-model names accepted everywhere (``multi-N`` admits
#: any N >= 2; these are the spellings shown in help text).
PORT_MODEL_NAMES = ("serial", "multi-2", "icap")


class PortModel(Protocol):
    """Service model for reconfiguration-port time."""

    free_at: float
    busy_seconds: float

    def acquire(self, config_seconds: float = 0.0,
                move_seconds: float = 0.0) -> tuple[float, float]:
        """Reserve one contiguous job of configuration + move time at
        the earliest opportunity; returns the granted [start, end)."""
        ...


class SerialPortModel:
    """One sequential configuration channel (the paper's model)."""

    name = "serial"

    def __init__(self, events: EventQueue) -> None:
        self._port = SequentialResource(events)

    @property
    def free_at(self) -> float:
        """Instant the channel next becomes idle."""
        return self._port.free_at

    @property
    def busy_seconds(self) -> float:
        """Total channel time consumed so far."""
        return self._port.busy_seconds

    def acquire(self, config_seconds: float = 0.0,
                move_seconds: float = 0.0) -> tuple[float, float]:
        """Queue the whole job on the single channel."""
        return self._port.acquire(config_seconds + move_seconds)

    def export_state(self) -> dict:
        """Serializable channel state (checkpoint/restore)."""
        return {"free_at": self._port.free_at,
                "busy_seconds": self._port.busy_seconds}

    def restore_state(self, state: dict) -> None:
        """Load a previously exported channel state."""
        self._port.free_at = float(state["free_at"])
        self._port.busy_seconds = float(state["busy_seconds"])


class MultiPortModel:
    """``N`` independent configuration ports, earliest-free dispatch.

    Each job (its moves plus its own configuration, inherently ordered)
    runs whole on one port; the port chosen is the one free earliest,
    ties broken deterministically by port index.  ``free_at`` is the
    earliest instant *any* port is idle, so the defrag trigger's
    ``port_idle`` check fires as soon as spare bandwidth exists.
    """

    name = "multi"

    def __init__(self, events: EventQueue, n_ports: int = 2) -> None:
        if n_ports < 1:
            raise ValueError("n_ports must be positive")
        self._events = events
        self.n_ports = n_ports
        self._lane_free = [0.0] * n_ports
        self.busy_seconds = 0.0

    @property
    def free_at(self) -> float:
        """Earliest instant any of the ports is idle."""
        return min(self._lane_free)

    def acquire(self, config_seconds: float = 0.0,
                move_seconds: float = 0.0) -> tuple[float, float]:
        """Place the job whole on the earliest-free port."""
        duration = config_seconds + move_seconds
        if duration < 0:
            raise ValueError("duration cannot be negative")
        lane = min(range(self.n_ports), key=lambda i: self._lane_free[i])
        start = max(self._events.now, self._lane_free[lane])
        end = start + duration
        self._lane_free[lane] = end
        self.busy_seconds += duration
        return start, end

    def export_state(self) -> dict:
        """Serializable per-lane state (checkpoint/restore)."""
        return {"lane_free": list(self._lane_free),
                "busy_seconds": self.busy_seconds}

    def restore_state(self, state: dict) -> None:
        """Load a previously exported per-lane state."""
        lanes = [float(v) for v in state["lane_free"]]
        if len(lanes) != self.n_ports:
            raise ValueError(
                f"state has {len(lanes)} lanes, model has {self.n_ports}"
            )
        self._lane_free = lanes
        self.busy_seconds = float(state["busy_seconds"])


class IcapPortModel:
    """Write and readback channels with asymmetric throughput.

    Baseline port seconds assume Boundary-Scan-rate frame writes.  An
    ICAP-style internal port writes ``write_speedup`` times faster; a
    relocation move additionally *reads back* the source frames before
    rewriting them, paying ``move / readback_speedup`` on the readback
    path plus ``move / write_speedup`` on the write path.

    The two paths are distinct hardware, so they are modelled as
    distinct lanes: a job's readback phase runs on the readback lane
    and may overlap a *previous* job still occupying the write lane;
    its own write phase (configuration + move rewrites, inherently
    ordered after the readback) then starts once both the readback has
    finished and the write lane is free.  Total channel time consumed
    is identical to serving both phases back to back — only the
    *placement* of the readback seconds changes, which is exactly the
    asymmetric-path pipelining real ICAP readback hardware provides.
    (Historically both phases were folded into one contiguous job on a
    single channel, which serialized readback traffic behind unrelated
    writes and defeated the asymmetric model for relocations.)
    """

    name = "icap"

    def __init__(self, events: EventQueue, write_speedup: float = 8.0,
                 readback_speedup: float = 4.0) -> None:
        if write_speedup <= 0 or readback_speedup <= 0:
            raise ValueError("speedups must be positive")
        self._events = events
        self.write_speedup = write_speedup
        self.readback_speedup = readback_speedup
        self._write_free = 0.0
        self._readback_free = 0.0
        self.busy_seconds = 0.0

    @property
    def free_at(self) -> float:
        """Instant both channels are idle (the port-idle signal)."""
        return max(self._write_free, self._readback_free)

    def acquire(self, config_seconds: float = 0.0,
                move_seconds: float = 0.0) -> tuple[float, float]:
        """Serve the job: readback lane first, then the write lane.

        Returns the granted [start, end) of the whole job — ``start``
        is when its first phase begins, ``end`` when its write phase
        (the part that makes the new configuration usable) completes.
        """
        now = self._events.now
        readback = move_seconds / self.readback_speedup
        write = (config_seconds + move_seconds) / self.write_speedup
        if readback > 0.0:
            rb_start = max(now, self._readback_free)
            rb_end = rb_start + readback
            self._readback_free = rb_end
        else:
            rb_start = rb_end = now
        w_start = max(now, self._write_free, rb_end)
        w_end = w_start + write
        self._write_free = w_end
        self.busy_seconds += readback + write
        start = rb_start if readback > 0.0 else w_start
        return start, w_end

    def export_state(self) -> dict:
        """Serializable per-lane state (checkpoint/restore)."""
        return {"write_free": self._write_free,
                "readback_free": self._readback_free,
                "busy_seconds": self.busy_seconds}

    def restore_state(self, state: dict) -> None:
        """Load a previously exported state.  Pre-lane snapshots (one
        ``free_at`` horizon for the folded single channel) restore with
        both lanes at that horizon — the closest legal state."""
        if "free_at" in state and "write_free" not in state:
            self._write_free = float(state["free_at"])
            self._readback_free = float(state["free_at"])
        else:
            self._write_free = float(state["write_free"])
            self._readback_free = float(state["readback_free"])
        self.busy_seconds = float(state["busy_seconds"])


_MULTI_RE = re.compile(r"^multi[-:](\d+)$")


def normalize_port_model(name: str | int) -> str:
    """Canonical spelling of a port-model spec.

    Accepts ``"serial"``, ``"icap"``, ``"multi-N"`` / ``"multi:N"``,
    or a bare port count (``"1"`` -> ``"serial"``, ``"2"`` ->
    ``"multi-2"``) so the campaign CLI reads naturally as ``--ports 2``.
    Raises :class:`ValueError` for anything else.
    """
    text = str(name).strip().lower()
    if text in ("serial", "icap"):
        return text
    if text.isdigit():
        count = int(text)
        if count < 1:
            raise ValueError("port count must be positive")
        return "serial" if count == 1 else f"multi-{count}"
    match = _MULTI_RE.match(text)
    if match:
        count = int(match.group(1))
        if count < 1:
            raise ValueError("port count must be positive")
        return "serial" if count == 1 else f"multi-{count}"
    raise ValueError(
        f"unknown port model {name!r}; choose from {PORT_MODEL_NAMES} "
        "(multi-N for any N >= 2, or a bare port count)"
    )


def make_port_model(spec: str | PortModel, events: EventQueue) -> PortModel:
    """Build the port model a spec string names (instances pass through)."""
    if not isinstance(spec, (str, int)):
        return spec
    canonical = normalize_port_model(spec)
    if canonical == "serial":
        return SerialPortModel(events)
    if canonical == "icap":
        return IcapPortModel(events)
    return MultiPortModel(events, int(canonical.split("-", 1)[1]))
