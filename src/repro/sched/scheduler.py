"""On-line schedulers over the logic-space manager.

Two experiment drivers:

* :class:`OnlineTaskScheduler` — independent task stream (the
  defragmentation study): tasks arrive, are placed (possibly after a
  rearrangement), configured through the serial port, run, and release
  their region; unplaceable tasks wait in FIFO order.
* :class:`ApplicationFlowScheduler` — the Fig. 1 scenario: applications
  execute function chains; the successor of a running function is
  configured *in advance* during the reconfiguration interval ``rt``
  whenever space and the port allow, hiding reconfiguration time; when
  prefetching fails (parallelism took the space), the application
  stalls, which is exactly the effect Fig. 1 illustrates.

Both charge every configuration and every rearrangement move to the
single reconfiguration port (:class:`~repro.sched.events.SequentialResource`),
and apply the halting penalty to moved tasks under the HALT policy.

Both also run the manager's *proactive* defragmentation hook on finish
events: when the manager's :class:`~repro.core.defrag_policy.DefragPolicy`
(``threshold`` / ``idle``) triggers, a background consolidation compacts
the resident functions to maximise the largest free rectangle, its moves
charged to the same port so proactive compaction competes with arrivals
for the serial channel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.manager import (
    DefragOutcome,
    LogicSpaceManager,
    PlacementOutcome,
)
from repro.placement import metrics

from .events import EventHandle, EventQueue, SequentialResource
from .tasks import (
    ApplicationRun,
    ApplicationSpec,
    FunctionRun,
    Task,
    TaskState,
)


@dataclass
class ScheduleMetrics:
    """Aggregated outcome of one scheduling run."""

    finished: int = 0
    rejected: int = 0
    waiting_seconds: list[float] = field(default_factory=list)
    turnaround_seconds: list[float] = field(default_factory=list)
    halted_seconds: float = 0.0
    port_busy_seconds: float = 0.0
    makespan: float = 0.0
    rearrangements: int = 0
    moves: int = 0
    #: proactive-defrag counters: background consolidations executed,
    #: the moves they issued, and the port time they consumed (reactive
    #: rearrangements are counted separately above).
    proactive_defrags: int = 0
    defrag_moves: int = 0
    defrag_port_seconds: float = 0.0
    fragmentation_samples: list[float] = field(default_factory=list)
    utilization_samples: list[float] = field(default_factory=list)
    #: application-flow extras (zero for independent-task runs):
    #: reconfiguration-induced stall and prefetch success counts.
    stall_seconds: float = 0.0
    prefetched_functions: int = 0
    total_functions: int = 0

    @property
    def mean_waiting(self) -> float:
        """Mean task waiting time (0 when nothing finished)."""
        return (
            sum(self.waiting_seconds) / len(self.waiting_seconds)
            if self.waiting_seconds
            else 0.0
        )

    @property
    def mean_fragmentation(self) -> float:
        """Mean sampled fragmentation index."""
        return (
            sum(self.fragmentation_samples) / len(self.fragmentation_samples)
            if self.fragmentation_samples
            else 0.0
        )

    @property
    def mean_turnaround(self) -> float:
        """Mean task turnaround time (0 when nothing finished)."""
        return (
            sum(self.turnaround_seconds) / len(self.turnaround_seconds)
            if self.turnaround_seconds
            else 0.0
        )

    @property
    def mean_utilization(self) -> float:
        """Mean sampled site occupancy."""
        return (
            sum(self.utilization_samples) / len(self.utilization_samples)
            if self.utilization_samples
            else 0.0
        )

    @property
    def prefetched_fraction(self) -> float:
        """Fraction of functions whose configuration was fully hidden
        (0.0 for runs with no function chains at all, i.e. the
        independent-task experiments, which never prefetch)."""
        if self.total_functions == 0:
            return 0.0
        return self.prefetched_functions / self.total_functions


def summarize_application_runs(
    runs: list[ApplicationRun],
    makespan: float = 0.0,
    port_busy_seconds: float = 0.0,
) -> ScheduleMetrics:
    """Fold :class:`ApplicationRun` records into :class:`ScheduleMetrics`.

    This gives the application-flow experiment the same result shape as
    the independent-task experiment, so the campaign engine
    (:mod:`repro.campaign`) can aggregate both uniformly: ``finished``
    counts completed applications, ``turnaround_seconds`` holds per-app
    completion times, ``stall_seconds`` sums the reconfiguration-induced
    delay.  :meth:`ApplicationFlowScheduler.run` launches every
    application at t = 0, so an application's absolute finish time *is*
    its turnaround — measured from launch, not from its first function's
    start, so time spent stalled waiting for the first placement counts
    too (``ApplicationRun.makespan`` would exclude it).
    """
    out = ScheduleMetrics(
        makespan=makespan, port_busy_seconds=port_busy_seconds
    )
    for record in runs:
        if record.finished_at is not None:
            out.finished += 1
            out.turnaround_seconds.append(record.finished_at)
            out.stall_seconds += max(
                0.0, record.finished_at - record.spec.total_exec_seconds
            )
        else:
            out.rejected += 1
        out.total_functions += len(record.runs)
        out.prefetched_functions += sum(
            1 for r in record.runs if r.prefetched
        )
    return out


def _extend_finish(events: EventQueue, handle: EventHandle,
                   seconds: float, action) -> EventHandle:
    """Push a finish event ``seconds`` later — the HALT-policy penalty.

    Shared by both schedulers so the cancel/reschedule arithmetic cannot
    drift between them."""
    new_handle = events.at(handle.time + seconds, action)
    handle.cancel()
    return new_handle


class OnlineTaskScheduler:
    """FIFO on-line scheduler for independent tasks."""

    def __init__(self, manager: LogicSpaceManager) -> None:
        self.manager = manager
        self.events = EventQueue()
        self.port = SequentialResource(self.events)
        self.waiting: deque[Task] = deque()
        self.running: dict[int, tuple[Task, EventHandle]] = {}
        self.metrics = ScheduleMetrics()
        #: occupancy version counter: a failed head-of-queue placement is
        #: only retried after the logic space actually changed.
        self._space_version = 0
        self._failed_at_version: int | None = None

    def run(self, tasks: list[Task]) -> ScheduleMetrics:
        """Simulate the whole stream; returns the aggregated metrics."""
        for task in tasks:
            self.events.at(task.arrival, lambda t=task: self._on_arrival(t))
        self.events.run()
        self.metrics.makespan = self.events.now
        self.metrics.port_busy_seconds = self.port.busy_seconds
        return self.metrics

    # -- event handlers -----------------------------------------------------

    def _on_arrival(self, task: Task) -> None:
        task.state = TaskState.QUEUED
        self.waiting.append(task)
        if task.max_wait is not None:
            self.events.after(task.max_wait, lambda: self._on_timeout(task))
        self._drain_queue()

    def _on_timeout(self, task: Task) -> None:
        """The task's patience ran out while still queued: reject it."""
        if task.state is not TaskState.QUEUED:
            return
        task.state = TaskState.REJECTED
        try:
            self.waiting.remove(task)
        except ValueError:
            return
        self.metrics.rejected += 1
        # The head of the queue changed: give the next task a chance.
        self._failed_at_version = None
        self._drain_queue()

    def _drain_queue(self) -> None:
        """Place waiting tasks in FIFO order; stop at the first failure
        (strict FIFO avoids starving large tasks)."""
        while self.waiting:
            if self._failed_at_version == self._space_version:
                return  # nothing changed since the head last failed
            task = self.waiting[0]
            outcome = self.manager.request(task.height, task.width, task.task_id)
            if not outcome.success:
                self._failed_at_version = self._space_version
                return
            self.waiting.popleft()
            self._space_version += 1
            self._commit_placement(task, outcome)

    def _commit_placement(self, task: Task, outcome: PlacementOutcome) -> None:
        if outcome.moves:
            self.metrics.rearrangements += 1
            self.metrics.moves += len(outcome.moves)
            self._apply_halts(outcome)
        __, config_done = self.port.acquire(outcome.total_port_seconds)
        task.rect = outcome.rect
        task.state = TaskState.CONFIGURING
        task.configured_at = config_done
        task.started_at = config_done
        finish_time = config_done + task.exec_seconds
        handle = self.events.at(finish_time, lambda t=task: self._on_finish(t))
        self.running[task.task_id] = (task, handle)
        self._sample()

    def _apply_halts(self, outcome: PlacementOutcome | DefragOutcome) -> None:
        """Under the HALT policy, extend each moved task's finish time by
        its stopped interval — the cost the paper's concurrent relocation
        eliminates."""
        for execution in outcome.moves:
            if not execution.halted:
                continue
            owner = execution.move.owner
            entry = self.running.get(owner)
            if entry is None:
                continue
            moved_task, handle = entry
            moved_task.halted_seconds += execution.seconds
            self.metrics.halted_seconds += execution.seconds
            new_handle = _extend_finish(
                self.events, handle, execution.seconds,
                lambda t=moved_task: self._on_finish(t),
            )
            self.running[owner] = (moved_task, new_handle)

    def _on_finish(self, task: Task) -> None:
        task.state = TaskState.FINISHED
        task.finished_at = self.events.now
        self.running.pop(task.task_id, None)
        self.manager.release(task.task_id)
        self._space_version += 1
        self.metrics.finished += 1
        self.metrics.waiting_seconds.append(task.waiting_seconds)
        self.metrics.turnaround_seconds.append(task.turnaround_seconds)
        self._sample()
        self._drain_queue()
        self._maybe_defrag()

    def _maybe_defrag(self) -> None:
        """Proactive-defrag hook, checked on every finish event.

        When the manager's trigger policy fires and the planner finds a
        profitable consolidation, the moves are charged to the
        reconfiguration port (background compaction competes with
        arrivals for the single serial channel), HALT-policy stops are
        applied to the moved tasks, and the queue head is retried — the
        consolidated free space may now host a task that failed before.
        """
        outcome = self.manager.maybe_defrag(
            now=self.events.now,
            port_idle=self.port.free_at <= self.events.now,
        )
        if outcome is None:
            return
        self.metrics.proactive_defrags += 1
        self.metrics.defrag_moves += len(outcome.moves)
        self.metrics.defrag_port_seconds += outcome.port_seconds
        self._apply_halts(outcome)
        self.port.acquire(outcome.port_seconds)
        self._space_version += 1
        self._sample()
        self._drain_queue()

    def _sample(self) -> None:
        # Index-backed: the fragmentation sample reads the engine's MER
        # set instead of re-sweeping the grid on every placement event.
        self.metrics.fragmentation_samples.append(self.manager.fragmentation())
        self.metrics.utilization_samples.append(self.manager.utilization())


class ApplicationFlowScheduler:
    """Fig. 1: applications sharing the device in space and time."""

    def __init__(self, manager: LogicSpaceManager,
                 prefetch: bool = True) -> None:
        self.manager = manager
        self.prefetch = prefetch
        self.events = EventQueue()
        self.port = SequentialResource(self.events)
        self.metrics = ScheduleMetrics()
        self._owner_seq = 1000
        self._stalled: deque[tuple["_AppState", int]] = deque()
        #: owner -> (state, index, finish handle) of executing functions,
        #: so HALT-policy moves can push their finish events out.
        self._running: dict[
            int, tuple["_AppState", int, EventHandle]
        ] = {}

    def run(self, apps: list[ApplicationSpec]) -> list[ApplicationRun]:
        """Run every application to completion; returns their records.

        The uniform summary of the run is left in :attr:`metrics`
        (finished applications, per-app makespans as turnaround, stall
        and prefetch counts) for the campaign engine.
        """
        states = [_AppState(ApplicationRun(app)) for app in apps]
        for state in states:
            self.events.at(0.0, lambda s=state: self._start_function(s, 0))
        self.events.run()
        runs = [s.record for s in states]
        summary = summarize_application_runs(
            runs,
            makespan=self.events.now,
            port_busy_seconds=self.port.busy_seconds,
        )
        summary.rearrangements = self.metrics.rearrangements
        summary.moves = self.metrics.moves
        summary.halted_seconds = self.metrics.halted_seconds
        summary.proactive_defrags = self.metrics.proactive_defrags
        summary.defrag_moves = self.metrics.defrag_moves
        summary.defrag_port_seconds = self.metrics.defrag_port_seconds
        self.metrics = summary
        return runs

    # -- internals ----------------------------------------------------------

    def _next_owner(self) -> int:
        self._owner_seq += 1
        return self._owner_seq

    def _start_function(self, state: "_AppState", index: int) -> None:
        """Begin function ``index``: it must be placed and configured."""
        run = state.ensure_run(index)
        if run.rect is None and not self._place_function(state, index):
            # No space: stall until some function releases its region.
            self._stalled.append((state, index))
            return
        start = max(self.events.now, run.configured_at or 0.0)
        if start > self.events.now:
            self.events.at(start, lambda: self._begin_execution(state, index))
        else:
            self._begin_execution(state, index)

    def _begin_execution(self, state: "_AppState", index: int) -> None:
        run = state.record.runs[index]
        run.started_at = self.events.now
        spec = state.record.spec.functions[index]
        # Register as running *before* prefetching: the successor's
        # placement may trigger a rearrangement that moves this very
        # function, and under HALT that move must find it executing.
        handle = self.events.after(
            spec.exec_seconds, lambda: self._finish_function(state, index)
        )
        self._running[state.owners[index]] = (state, index, handle)
        # Prefetch the successor during the reconfiguration interval rt.
        if self.prefetch and index + 1 < len(state.record.spec.functions):
            self._place_function(state, index + 1)

    def _place_function(self, state: "_AppState", index: int) -> bool:
        """Try to place + configure function ``index`` right now."""
        run = state.ensure_run(index)
        if run.rect is not None:
            return True
        spec = state.record.spec.functions[index]
        owner = self._next_owner()
        outcome = self.manager.request(spec.height, spec.width, owner)
        if not outcome.success:
            return False
        if outcome.moves:
            self.metrics.rearrangements += 1
            self.metrics.moves += len(outcome.moves)
            self._apply_halts(outcome)
        __, config_done = self.port.acquire(outcome.total_port_seconds)
        run.rect = outcome.rect
        run.configured_at = config_done
        state.owners[index] = owner
        return True

    def _apply_halts(self, outcome: PlacementOutcome | DefragOutcome) -> None:
        """Under the HALT policy, a moved *executing* function is
        stopped for its move span: push its finish event out by that
        time (prefetched-but-idle functions move for free either way)."""
        for execution in outcome.moves:
            if not execution.halted:
                continue
            entry = self._running.get(execution.move.owner)
            if entry is None:
                continue
            state, index, handle = entry
            self.metrics.halted_seconds += execution.seconds
            new_handle = _extend_finish(
                self.events, handle, execution.seconds,
                lambda s=state, i=index: self._finish_function(s, i),
            )
            self._running[execution.move.owner] = (state, index, new_handle)

    def _finish_function(self, state: "_AppState", index: int) -> None:
        run = state.record.runs[index]
        run.finished_at = self.events.now
        owner = state.owners.pop(index)
        self._running.pop(owner, None)
        self.manager.release(owner)
        self._retry_stalled()
        if index + 1 < len(state.record.spec.functions):
            self._start_function(state, index + 1)
        else:
            state.record.finished_at = self.events.now
        self._maybe_defrag()

    def _maybe_defrag(self) -> None:
        """Proactive-defrag hook, checked on every function finish.

        Mirrors the task scheduler: triggered consolidations charge the
        reconfiguration port and apply HALT-policy stops.  Crucially the
        stalled queue is re-checked *after* the compaction — a
        background defrag frees contiguous space exactly like a finish
        event does, and a stalled application must not stay stranded
        until the next finish to benefit from it.
        """
        outcome = self.manager.maybe_defrag(
            now=self.events.now,
            port_idle=self.port.free_at <= self.events.now,
        )
        if outcome is None:
            return
        self.metrics.proactive_defrags += 1
        self.metrics.defrag_moves += len(outcome.moves)
        self.metrics.defrag_port_seconds += outcome.port_seconds
        self._apply_halts(outcome)
        self.port.acquire(outcome.port_seconds)
        self._retry_stalled()

    def _retry_stalled(self) -> None:
        """Space was released: wake stalled applications (FIFO)."""
        still_stalled: deque[tuple[_AppState, int]] = deque()
        while self._stalled:
            state, index = self._stalled.popleft()
            if self._place_function(state, index):
                run = state.record.runs[index]
                start = max(self.events.now, run.configured_at or 0.0)
                self.events.at(
                    start,
                    lambda s=state, i=index: self._begin_execution(s, i),
                )
            else:
                still_stalled.append((state, index))
        self._stalled = still_stalled


@dataclass
class _AppState:
    """Book-keeping for one running application."""

    record: ApplicationRun
    owners: dict[int, int] = field(default_factory=dict)

    def ensure_run(self, index: int) -> FunctionRun:
        while len(self.record.runs) <= index:
            next_index = len(self.record.runs)
            self.record.runs.append(
                FunctionRun(
                    self.record.spec.name,
                    self.record.spec.functions[next_index],
                )
            )
        return self.record.runs[index]
