"""On-line schedulers over the logic-space manager.

Two experiment drivers, both thin strategy layers over the shared
:class:`~repro.sched.kernel.SchedulingKernel`:

* :class:`OnlineTaskScheduler` — independent task stream (the
  defragmentation study): tasks arrive, are placed (possibly after a
  rearrangement), configured through the reconfiguration port, run, and
  release their region; unplaceable tasks wait in the order the queue
  discipline dictates.
* :class:`ApplicationFlowScheduler` — the Fig. 1 scenario: applications
  execute function chains; the successor of a running function is
  configured *in advance* during the reconfiguration interval ``rt``
  whenever space and the port allow, hiding reconfiguration time; when
  prefetching fails (parallelism took the space), the application
  stalls, which is exactly the effect Fig. 1 illustrates.

The kernel owns the event queue, the reconfiguration-port model, the
HALT-extension arithmetic, the proactive-defrag hook and the
fragmentation/utilization sampling; the schedulers translate their
workload shape into kernel calls.  Both take the same two policy knobs:

* ``queue`` — a :mod:`~repro.sched.queues` discipline name (``fifo``,
  ``priority``, ``sjf``, ``backfill``) ordering waiting tasks (or, for
  the application scheduler, stalled applications);
* ``ports`` — a :mod:`~repro.sched.ports` model (``serial``,
  ``multi-N``, ``icap``) serving configuration and relocation traffic.

With the defaults (``fifo`` + ``serial``) both schedulers reproduce the
historical hand-rolled behaviour event for event; the golden campaign
snapshots pin it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.manager import PlacementOutcome

from .kernel import ScheduleMetrics, SchedulingKernel
from .ports import PortModel
from .queues import QueueDiscipline, make_queue
from .tasks import (
    ApplicationRun,
    ApplicationSpec,
    FunctionRun,
    Task,
    TaskState,
)

__all__ = [
    "ApplicationFlowScheduler",
    "OnlineTaskScheduler",
    "ScheduleMetrics",
    "summarize_application_runs",
]


def _function_key(spec) -> str:
    """Bitstream identity of an application function.

    Keyed by function name *and* shape: a function reused across chain
    repeats (or across applications built from the same library) maps
    to the same bitstream and can hit the resident cache, while two
    different functions that merely share a name cannot collide.
    """
    return f"fn:{spec.name}:{spec.height}x{spec.width}"


def _exposed_config_seconds(record: ApplicationRun) -> float:
    """Configuration time the chain could not hide behind execution.

    Function ``i`` becomes *ready* when function ``i-1`` finishes (the
    first function at t = 0).  Its configuration occupies the interval
    ``[configured_at - config_seconds, configured_at]``; only the part
    of that interval after the ready instant was exposed — a prefetch
    that completed early contributes nothing, a configuration that ran
    entirely after the predecessor finished contributes all of itself.
    Time spent *waiting for space* before the configuration began is
    deliberately not counted here: that is genuine stall.
    """
    exposed = 0.0
    ready = 0.0
    for run in record.runs:
        if run.configured_at is not None:
            exposed += min(
                run.config_seconds, max(0.0, run.configured_at - ready)
            )
        if run.finished_at is None:
            break
        ready = run.finished_at
    return exposed


def summarize_application_runs(
    runs: list[ApplicationRun],
    makespan: float = 0.0,
    port_busy_seconds: float = 0.0,
) -> ScheduleMetrics:
    """Fold :class:`ApplicationRun` records into :class:`ScheduleMetrics`.

    This gives the application-flow experiment the same result shape as
    the independent-task experiment, so the campaign engine
    (:mod:`repro.campaign`) can aggregate both uniformly: ``finished``
    counts completed applications, ``turnaround_seconds`` holds per-app
    completion times.  :meth:`ApplicationFlowScheduler.run` launches
    every application at t = 0, so an application's absolute finish
    time *is* its turnaround — measured from launch, not from its first
    function's start, so time spent stalled waiting for the first
    placement counts too (``ApplicationRun.makespan`` would exclude it).

    ``stall_seconds`` is the time an application lost to *contention*:
    elapsed time minus pure execution minus the configuration time that
    was genuinely un-hidden (see :func:`_exposed_config_seconds`).
    Subtracting the exposed configuration keeps the metric true to its
    meaning — a solo application that simply pays its own configuration
    up front reports zero stall, while waiting for space or for the
    port behind other applications' traffic is counted in full.
    """
    out = ScheduleMetrics(
        makespan=makespan, port_busy_seconds=port_busy_seconds
    )
    for record in runs:
        if record.finished_at is not None:
            out.finished += 1
            out.turnaround_seconds.append(record.finished_at)
            out.stall_seconds += max(
                0.0,
                record.finished_at
                - record.spec.total_exec_seconds
                - _exposed_config_seconds(record),
            )
        else:
            out.rejected += 1
        out.total_functions += len(record.runs)
        out.prefetched_functions += sum(
            1 for r in record.runs if r.prefetched
        )
    return out


class OnlineTaskScheduler:
    """On-line scheduler for independent tasks (pluggable policies).

    ``manager`` is a :class:`LogicSpaceManager` or a
    :class:`~repro.fleet.manager.FleetManager`; the kernel derives the
    device axis (one port per fabric) from it.
    """

    def __init__(self, manager,
                 queue: str | QueueDiscipline = "fifo",
                 ports: str | PortModel = "serial",
                 prefetch_mode: str = "never") -> None:
        self.kernel = SchedulingKernel(
            manager,
            queue=queue,
            ports=ports,
            prefetch=prefetch_mode,
            on_admitted=self._on_admitted,
            halt_listener=self._on_halt,
        )
        self.manager = manager
        #: task_id -> running Task, for HALT-stop attribution.
        self._running_tasks: dict[int, Task] = {}

    @property
    def events(self):
        """The kernel's event queue (shared simulation timeline)."""
        return self.kernel.events

    @property
    def port(self):
        """The kernel's reconfiguration-port model."""
        return self.kernel.port

    @property
    def metrics(self) -> ScheduleMetrics:
        """The kernel's aggregated run metrics."""
        return self.kernel.metrics

    def run(self, tasks: list[Task]) -> ScheduleMetrics:
        """Simulate the whole stream; returns the aggregated metrics."""
        for task in tasks:
            self.events.at(task.arrival, lambda t=task: self._on_arrival(t))
        self.kernel.run()
        return self.metrics

    # -- event handlers -----------------------------------------------------

    def _on_arrival(self, task: Task) -> None:
        task.state = TaskState.QUEUED
        if task.max_wait is not None:
            self.events.after(task.max_wait, lambda: self._on_timeout(task))
        self.kernel.enqueue(task, priority=task.priority, area=task.area)

    def _on_timeout(self, task: Task) -> None:
        """The task's patience ran out while still queued: reject it.

        State change and counter are atomic: the task is marked
        ``REJECTED`` and counted in the same step, and the queue entry
        is lazily tombstoned (an already-absent entry is a no-op), so
        no path exists on which a task ends rejected but uncounted.
        """
        if task.state is not TaskState.QUEUED:
            return
        task.state = TaskState.REJECTED
        self.metrics.rejected += 1
        self.kernel.cancel(task)

    def _on_admitted(self, task: Task, outcome: PlacementOutcome) -> None:
        """A waiting task was placed: configure it and start it."""
        config_done = self.kernel.charge_placement(
            outcome, key=task.prefetch_key
        )
        task.rect = outcome.rect
        task.state = TaskState.CONFIGURING
        task.configured_at = config_done
        task.started_at = config_done
        finish_time = config_done + task.exec_seconds
        self._running_tasks[task.task_id] = task
        self.kernel.start_running(
            task.task_id, finish_time, lambda t=task: self._on_finish(t)
        )
        self.kernel.sample()

    def _on_halt(self, owner: int, seconds: float) -> None:
        """Attribute a HALT-policy stop to the moved task's record."""
        task = self._running_tasks.get(owner)
        if task is not None:
            task.halted_seconds += seconds

    def _on_finish(self, task: Task) -> None:
        task.state = TaskState.FINISHED
        task.finished_at = self.events.now
        self.kernel.finish_running(task.task_id)
        self._running_tasks.pop(task.task_id, None)
        self.manager.release(task.task_id)
        self.kernel.note_space_changed()
        self.metrics.finished += 1
        self.metrics.waiting_seconds.append(task.waiting_seconds)
        self.metrics.turnaround_seconds.append(task.turnaround_seconds)
        self.kernel.sample()
        self.kernel.drain()
        self.kernel.maybe_defrag()


class ApplicationFlowScheduler:
    """Fig. 1: applications sharing the device in space and time.

    ``manager`` is a :class:`LogicSpaceManager` or a
    :class:`~repro.fleet.manager.FleetManager` (function chains then
    spread over the fleet, each function configured on the member its
    device-selection policy picked).
    """

    def __init__(self, manager,
                 prefetch: bool = True,
                 queue: str | QueueDiscipline = "fifo",
                 ports: str | PortModel = "serial",
                 prefetch_mode: str = "never") -> None:
        self.manager = manager
        self.prefetch = prefetch
        self.kernel = SchedulingKernel(
            manager,
            ports=ports,
            prefetch=prefetch_mode,
            on_space_reclaimed=self._retry_stalled,
            sample_on_defrag=False,
        )
        self._owner_seq = 1000
        #: stalled (application, function-index) records, woken in the
        #: queue discipline's order whenever space is released.
        self._stalled: QueueDiscipline = make_queue(queue)

    @property
    def events(self):
        """The kernel's event queue (shared simulation timeline)."""
        return self.kernel.events

    @property
    def port(self):
        """The kernel's reconfiguration-port model."""
        return self.kernel.port

    @property
    def metrics(self) -> ScheduleMetrics:
        """Aggregated run metrics (uniform summary after :meth:`run`)."""
        return self.kernel.metrics

    def run(self, apps: list[ApplicationSpec]) -> list[ApplicationRun]:
        """Run every application to completion; returns their records.

        The uniform summary of the run is left in :attr:`metrics`
        (finished applications, per-app makespans as turnaround, stall
        and prefetch counts) for the campaign engine.
        """
        states = [_AppState(ApplicationRun(app)) for app in apps]
        for state in states:
            self.events.at(0.0, lambda s=state: self._start_function(s, 0))
        self.kernel.run()
        runs = [s.record for s in states]
        summary = summarize_application_runs(
            runs,
            makespan=self.events.now,
            port_busy_seconds=self.kernel.port_busy_seconds,
        )
        summary.rearrangements = self.metrics.rearrangements
        summary.moves = self.metrics.moves
        summary.halted_seconds = self.metrics.halted_seconds
        summary.proactive_defrags = self.metrics.proactive_defrags
        summary.defrag_moves = self.metrics.defrag_moves
        summary.defrag_port_seconds = self.metrics.defrag_port_seconds
        summary.config_stall_seconds = self.metrics.config_stall_seconds
        summary.prefetch_hits = self.metrics.prefetch_hits
        summary.prefetch_loads = self.metrics.prefetch_loads
        summary.cache_evictions = self.metrics.cache_evictions
        self.kernel.metrics = summary
        return runs

    # -- internals ----------------------------------------------------------

    def _next_owner(self) -> int:
        self._owner_seq += 1
        return self._owner_seq

    def _start_function(self, state: "_AppState", index: int) -> None:
        """Begin function ``index``: it must be placed and configured."""
        run = state.ensure_run(index)
        if run.rect is None and not self._place_function(state, index):
            # No space: stall until some function releases its region.
            spec = state.record.spec
            fn = spec.functions[index]
            # The demand is *now*; preloading the bitstream while the
            # application waits for space makes the eventual placement
            # a resident hit.
            self.kernel.offer_prefetch(
                _function_key(fn), fn.height, fn.width,
                next_use=self.events.now,
            )
            self.kernel.maybe_prefetch()
            self._stalled.push(
                _Stall(state, index),
                priority=spec.priority,
                area=fn.area,
                now=self.events.now,
            )
            return
        start = max(self.events.now, run.configured_at or 0.0)
        if start > self.events.now:
            self.events.at(start, lambda: self._begin_execution(state, index))
        else:
            self._begin_execution(state, index)

    def _begin_execution(self, state: "_AppState", index: int) -> None:
        run = state.record.runs[index]
        run.started_at = self.events.now
        spec = state.record.spec.functions[index]
        # Register as running *before* prefetching: the successor's
        # placement may trigger a rearrangement that moves this very
        # function, and under HALT that move must find it executing.
        self.kernel.start_running(
            state.owners[index],
            self.events.now + spec.exec_seconds,
            lambda: self._finish_function(state, index),
        )
        # Prefetch the successor during the reconfiguration interval rt.
        if self.prefetch and index + 1 < len(state.record.spec.functions):
            if not self._place_function(state, index + 1):
                # Space prefetch failed (parallelism took the region);
                # the *bitstream* can still be preloaded so the config
                # is off the critical path once space frees up.
                nxt = state.record.spec.functions[index + 1]
                self.kernel.offer_prefetch(
                    _function_key(nxt), nxt.height, nxt.width,
                    next_use=self.events.now + spec.exec_seconds,
                )
                self.kernel.maybe_prefetch()

    def _place_function(self, state: "_AppState", index: int) -> bool:
        """Try to place + configure function ``index`` right now."""
        run = state.ensure_run(index)
        if run.rect is not None:
            return True
        spec = state.record.spec.functions[index]
        owner = self._next_owner()
        outcome = self.manager.request(spec.height, spec.width, owner)
        if not outcome.success:
            return False
        config_done = self.kernel.charge_placement(
            outcome, key=_function_key(spec)
        )
        run.rect = outcome.rect
        run.configured_at = config_done
        # What the port was actually charged — zero on a resident-cache
        # hit, so a hit's "configuration" is never counted as exposed.
        run.config_seconds = self.kernel.last_config_seconds
        state.owners[index] = owner
        return True

    def _finish_function(self, state: "_AppState", index: int) -> None:
        run = state.record.runs[index]
        run.finished_at = self.events.now
        owner = state.owners.pop(index)
        self.kernel.finish_running(owner)
        self.manager.release(owner)
        self._retry_stalled()
        if index + 1 < len(state.record.spec.functions):
            self._start_function(state, index + 1)
        else:
            state.record.finished_at = self.events.now
        self.kernel.maybe_defrag()

    def _retry_stalled(self) -> None:
        """Space was released: wake stalled applications.

        Every stalled record is attempted in the queue discipline's
        order (FIFO by default); failures simply stay queued.  Because
        *every* record is always attempted — one application's failed
        placement never blocks the rest, the historical behaviour —
        disciplines contribute only the retry order here: ``backfill``
        has no blocked head to jump and therefore coincides with
        ``fifo`` for application workloads.  The kernel invokes this
        after a proactive defrag too — a background consolidation
        frees contiguous space exactly like a finish event does, and a
        stalled application must not stay stranded until the next
        finish to benefit from it.
        """
        for stall in self._stalled.ordered(self.events.now):
            state, index = stall.state, stall.index
            if self._place_function(state, index):
                self._stalled.take(stall)
                run = state.record.runs[index]
                start = max(self.events.now, run.configured_at or 0.0)
                self.events.at(
                    start,
                    lambda s=state, i=index: self._begin_execution(s, i),
                )


@dataclass
class _Stall:
    """One stalled (application, function-index) admission request."""

    state: "_AppState"
    index: int


@dataclass
class _AppState:
    """Book-keeping for one running application."""

    record: ApplicationRun
    owners: dict[int, int] = field(default_factory=dict)

    def ensure_run(self, index: int) -> FunctionRun:
        while len(self.record.runs) <= index:
            next_index = len(self.record.runs)
            self.record.runs.append(
                FunctionRun(
                    self.record.spec.name,
                    self.record.spec.functions[next_index],
                )
            )
        return self.record.runs[index]
