"""On-line schedulers over the logic-space manager.

Two experiment drivers, both thin strategy layers over the shared
:class:`~repro.sched.kernel.SchedulingKernel`:

* :class:`OnlineTaskScheduler` — independent task stream (the
  defragmentation study): tasks arrive, are placed (possibly after a
  rearrangement), configured through the reconfiguration port, run, and
  release their region; unplaceable tasks wait in the order the queue
  discipline dictates.
* :class:`ApplicationFlowScheduler` — the Fig. 1 scenario: applications
  execute function chains; the successor of a running function is
  configured *in advance* during the reconfiguration interval ``rt``
  whenever space and the port allow, hiding reconfiguration time; when
  prefetching fails (parallelism took the space), the application
  stalls, which is exactly the effect Fig. 1 illustrates.

The kernel owns the event queue, the reconfiguration-port model, the
HALT-extension arithmetic, the proactive-defrag hook and the
fragmentation/utilization sampling; the schedulers translate their
workload shape into kernel calls.  Both take the same two policy knobs:

* ``queue`` — a :mod:`~repro.sched.queues` discipline name (``fifo``,
  ``priority``, ``sjf``, ``backfill``) ordering waiting tasks (or, for
  the application scheduler, stalled applications);
* ``ports`` — a :mod:`~repro.sched.ports` model (``serial``,
  ``multi-N``, ``icap``) serving configuration and relocation traffic.

With the defaults (``fifo`` + ``serial``) both schedulers reproduce the
historical hand-rolled behaviour event for event; the golden campaign
snapshots pin it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.manager import PlacementOutcome
from repro.device.geometry import Rect

from .kernel import ScheduleMetrics, SchedulingKernel
from .ports import PortModel
from .queues import QueueDiscipline, make_queue
from .tasks import (
    ApplicationRun,
    ApplicationSpec,
    FunctionRun,
    Task,
    TaskState,
)

__all__ = [
    "ApplicationFlowScheduler",
    "FAULT_OWNER_BASE",
    "OnlineTaskScheduler",
    "ScheduleMetrics",
    "summarize_application_runs",
]

#: owner ids claimed by stuck-at fault blockers (see
#: :meth:`OnlineTaskScheduler.inject_region_fault`).  Far above any
#: task id or application owner sequence, still comfortably inside the
#: fabric's int32 occupancy range.
FAULT_OWNER_BASE = 1_000_000_000


def _function_key(spec) -> str:
    """Bitstream identity of an application function.

    Keyed by function name *and* shape: a function reused across chain
    repeats (or across applications built from the same library) maps
    to the same bitstream and can hit the resident cache, while two
    different functions that merely share a name cannot collide.
    """
    return f"fn:{spec.name}:{spec.height}x{spec.width}"


def _exposed_config_seconds(record: ApplicationRun) -> float:
    """Configuration time the chain could not hide behind execution.

    Function ``i`` becomes *ready* when function ``i-1`` finishes (the
    first function at t = 0).  Its configuration occupies the interval
    ``[configured_at - config_seconds, configured_at]``; only the part
    of that interval after the ready instant was exposed — a prefetch
    that completed early contributes nothing, a configuration that ran
    entirely after the predecessor finished contributes all of itself.
    Time spent *waiting for space* before the configuration began is
    deliberately not counted here: that is genuine stall.
    """
    exposed = 0.0
    ready = 0.0
    for run in record.runs:
        if run.configured_at is not None:
            exposed += min(
                run.config_seconds, max(0.0, run.configured_at - ready)
            )
        if run.finished_at is None:
            break
        ready = run.finished_at
    return exposed


def summarize_application_runs(
    runs: list[ApplicationRun],
    makespan: float = 0.0,
    port_busy_seconds: float = 0.0,
) -> ScheduleMetrics:
    """Fold :class:`ApplicationRun` records into :class:`ScheduleMetrics`.

    This gives the application-flow experiment the same result shape as
    the independent-task experiment, so the campaign engine
    (:mod:`repro.campaign`) can aggregate both uniformly: ``finished``
    counts completed applications, ``turnaround_seconds`` holds per-app
    completion times.  :meth:`ApplicationFlowScheduler.run` launches
    every application at t = 0, so an application's absolute finish
    time *is* its turnaround — measured from launch, not from its first
    function's start, so time spent stalled waiting for the first
    placement counts too (``ApplicationRun.makespan`` would exclude it).

    ``stall_seconds`` is the time an application lost to *contention*:
    elapsed time minus pure execution minus the configuration time that
    was genuinely un-hidden (see :func:`_exposed_config_seconds`).
    Subtracting the exposed configuration keeps the metric true to its
    meaning — a solo application that simply pays its own configuration
    up front reports zero stall, while waiting for space or for the
    port behind other applications' traffic is counted in full.
    """
    out = ScheduleMetrics(
        makespan=makespan, port_busy_seconds=port_busy_seconds
    )
    for record in runs:
        if record.finished_at is not None:
            out.finished += 1
            out.turnaround_seconds.append(record.finished_at)
            out.stall_seconds += max(
                0.0,
                record.finished_at
                - record.spec.total_exec_seconds
                - _exposed_config_seconds(record),
            )
        else:
            out.rejected += 1
        out.total_functions += len(record.runs)
        out.prefetched_functions += sum(
            1 for r in record.runs if r.prefetched
        )
    return out


class OnlineTaskScheduler:
    """On-line scheduler for independent tasks (pluggable policies).

    ``manager`` is a :class:`LogicSpaceManager` or a
    :class:`~repro.fleet.manager.FleetManager`; the kernel derives the
    device axis (one port per fabric) from it.
    """

    def __init__(self, manager,
                 queue: str | QueueDiscipline = "fifo",
                 ports: str | PortModel = "serial",
                 prefetch_mode: str = "never") -> None:
        self.kernel = SchedulingKernel(
            manager,
            queue=queue,
            ports=ports,
            prefetch=prefetch_mode,
            on_admitted=self._on_admitted,
            halt_listener=self._on_halt,
        )
        self.manager = manager
        #: task_id -> running Task, for HALT-stop attribution.
        self._running_tasks: dict[int, Task] = {}
        #: task_id -> queueing epoch, bumped every time the task enters
        #: the waiting queue.  A task's patience timeout captures the
        #: epoch it was armed for; fault recovery can re-queue a task
        #: that already ran once, and without the epoch guard the
        #: *original* timeout (scheduled at arrival + max_wait, never
        #: cancelled — cancelling would perturb the event stream the
        #: goldens pin) would see state == QUEUED again and reject the
        #: restarted task early.
        self._queue_epochs: dict[int, int] = {}
        #: task_id -> absolute patience deadline of the *current*
        #: queueing round.  A restarted task's patience re-arms at the
        #: fault instant, not at arrival, so checkpoints must carry the
        #: true deadline to restore it bit-identically.
        self._queue_deadlines: dict[int, float] = {}
        #: active stuck-at regions: fault id -> blocker record (device,
        #: injected rect, the (owner, rect) blockers actually allocated,
        #: heal instant).  Checkpoints carry it (see
        #: :meth:`export_fault_state`).
        self._fault_regions: dict[int, dict] = {}
        self._fault_seq = 0
        self._fault_owner_seq = 0

    @property
    def events(self):
        """The kernel's event queue (shared simulation timeline)."""
        return self.kernel.events

    @property
    def port(self):
        """The kernel's reconfiguration-port model."""
        return self.kernel.port

    @property
    def metrics(self) -> ScheduleMetrics:
        """The kernel's aggregated run metrics."""
        return self.kernel.metrics

    def run(self, tasks: list[Task]) -> ScheduleMetrics:
        """Simulate the whole stream; returns the aggregated metrics."""
        for task in tasks:
            self.events.at(task.arrival, lambda t=task: self._on_arrival(t))
        self.kernel.run()
        return self.metrics

    # -- event handlers -----------------------------------------------------

    def _enqueue_task(self, task: Task) -> None:
        """Put ``task`` in the waiting queue with a fresh patience
        window (shared by first arrival and fault-recovery restart)."""
        task.state = TaskState.QUEUED
        epoch = self._queue_epochs.get(task.task_id, 0) + 1
        self._queue_epochs[task.task_id] = epoch
        if task.max_wait is not None:
            self._queue_deadlines[task.task_id] = \
                self.events.now + task.max_wait
            self.events.after(
                task.max_wait, lambda: self._on_timeout(task, epoch)
            )
        self.kernel.enqueue(task, priority=task.priority, area=task.area)

    def _on_arrival(self, task: Task) -> None:
        self._enqueue_task(task)

    def _on_timeout(self, task: Task, epoch: int | None = None) -> None:
        """The task's patience ran out while still queued: reject it.

        State change and counter are atomic: the task is marked
        ``REJECTED`` and counted in the same step, and the queue entry
        is lazily tombstoned (an already-absent entry is a no-op), so
        no path exists on which a task ends rejected but uncounted.
        ``epoch`` guards against a stale timeout outliving the queueing
        round it was armed for (fault recovery re-queues tasks; the
        original event is left to fire as a no-op so the event stream —
        and therefore the makespan the goldens pin — is unchanged).
        """
        if task.state is not TaskState.QUEUED:
            return
        if epoch is not None \
                and epoch != self._queue_epochs.get(task.task_id):
            return
        task.state = TaskState.REJECTED
        self.metrics.rejected += 1
        self._queue_epochs.pop(task.task_id, None)
        self._queue_deadlines.pop(task.task_id, None)
        self.kernel.cancel(task)

    def _on_admitted(self, task: Task, outcome: PlacementOutcome) -> None:
        """A waiting task was placed: configure it and start it."""
        # The patience deadline only means anything while queued (the
        # epoch stays: it guards the still-pending timeout event).
        self._queue_deadlines.pop(task.task_id, None)
        config_done = self.kernel.charge_placement(
            outcome, key=task.prefetch_key
        )
        task.rect = outcome.rect
        task.state = TaskState.CONFIGURING
        task.configured_at = config_done
        task.started_at = config_done
        finish_time = config_done + task.exec_seconds
        self._running_tasks[task.task_id] = task
        self.kernel.start_running(
            task.task_id, finish_time, lambda t=task: self._on_finish(t)
        )
        self.kernel.sample()

    def _on_halt(self, owner: int, seconds: float) -> None:
        """Attribute a HALT-policy stop to the moved task's record."""
        task = self._running_tasks.get(owner)
        if task is not None:
            task.halted_seconds += seconds

    def _on_finish(self, task: Task) -> None:
        task.state = TaskState.FINISHED
        task.finished_at = self.events.now
        self.kernel.finish_running(task.task_id)
        self._running_tasks.pop(task.task_id, None)
        self._queue_epochs.pop(task.task_id, None)
        self._queue_deadlines.pop(task.task_id, None)
        self.manager.release(task.task_id)
        self.kernel.note_space_changed()
        self.metrics.finished += 1
        if task.tenant:
            counts = self.metrics.tenant_finished
            counts[task.tenant] = counts.get(task.tenant, 0) + 1
        self.metrics.waiting_seconds.append(task.waiting_seconds)
        self.metrics.turnaround_seconds.append(task.turnaround_seconds)
        self.kernel.sample()
        self.kernel.drain()
        self.kernel.maybe_defrag()

    # -- fault injection + failover (see repro.faults) ----------------------

    def _on_relocated(self, task: Task, outcome: PlacementOutcome) -> None:
        """Hook: ``task`` survived a fault by moving to a new region
        (subclasses journal it; the base scheduler needs no extra
        bookkeeping — the metrics were already counted)."""

    def _on_restarted(self, task: Task) -> None:
        """Hook: ``task`` lost its progress to a fault and was
        re-queued from scratch."""

    def _on_dropped(self, task: Task) -> None:
        """Hook: ``task`` was lost to a fault and no surviving member
        could ever host its footprint."""

    def _device_of(self, owner: int) -> int:
        """Fleet member hosting ``owner`` (0 outside a fleet)."""
        device_of = getattr(self.manager, "device_of", None)
        return device_of(owner) if device_of is not None else 0

    def _fits_any_survivor(self, height: int, width: int) -> bool:
        """Whether some surviving fabric could *ever* host the shape
        (pure bounds check — current occupancy is irrelevant: space
        frees up, dead silicon does not)."""
        for index, manager in enumerate(self.kernel._managers):
            if index in self.kernel.lost_members:
                continue
            device = manager.fabric.device
            if height <= device.clb_rows and width <= device.clb_cols:
                return True
        return False

    def _displace(self, owner: int) -> tuple[Task, object, float] | None:
        """Tear a running task off its (failed) region.

        Cancels the pending finish event, frees the region through the
        normal release path (keeping fleet owner-routing and load
        counters consistent — on a dead member the fabric state is
        moot, the bookkeeping is not) and returns the material the
        recovery step needs: the task, its finish action and the
        seconds of work it had not yet delivered.
        """
        entry = self.kernel.running.pop(owner, None)
        if entry is None:
            return None
        task = self._running_tasks[owner]
        on_finish, handle = entry
        remaining = max(0.0, handle.time - self.events.now)
        handle.cancel()
        self.manager.release(owner)
        return task, on_finish, remaining

    def _recover(self, task: Task, on_finish, remaining: float,
                 fault_now: float, summary: dict) -> None:
        """Decide a displaced task's fate: relocate, restart or drop.

        The relocation path is the paper's own mechanism — the same
        ``manager.request`` that admits new work finds the task a new
        region (on a fleet, only surviving members are consulted), and
        the configuration is re-charged to the accepting device's port:
        the bitstream must be rewritten there, so the time the old port
        already sank is not refunded.  If no region is available right
        now but some surviving fabric is large enough, the task is
        *restarted*: re-queued from scratch with a fresh patience
        window (its progress is lost — partial results died with the
        region).  Only a footprint no surviving member could ever host
        is *dropped*.
        """
        kernel = self.kernel
        outcome = self.manager.request(task.height, task.width,
                                       task.task_id)
        if outcome.success:
            config_done = kernel.charge_placement(
                outcome, key=task.prefetch_key
            )
            task.rect = outcome.rect
            task.configured_at = config_done
            kernel.metrics.relocated_tasks += 1
            kernel.metrics.recovery_seconds += max(
                0.0, config_done - fault_now
            )
            kernel.start_running(task.task_id, config_done + remaining,
                                 on_finish)
            summary["relocated"].append(task.task_id)
            self._on_relocated(task, outcome)
            return
        self._running_tasks.pop(task.task_id, None)
        if self._fits_any_survivor(task.height, task.width):
            task.rect = None
            task.configured_at = None
            task.started_at = None
            kernel.metrics.restarted_tasks += 1
            summary["restarted"].append(task.task_id)
            self._enqueue_task(task)
            self._on_restarted(task)
            return
        task.state = TaskState.DROPPED
        self._queue_epochs.pop(task.task_id, None)
        self._queue_deadlines.pop(task.task_id, None)
        kernel.metrics.dropped_tasks += 1
        summary["dropped"].append(task.task_id)
        self._on_dropped(task)

    def kill_member(self, index: int) -> dict:
        """Declare fleet member ``index`` dead and fail its work over.

        The member is marked lost everywhere (fleet routing, kernel
        telemetry/defrag/prefetch, its resident-bitstream cache), and
        every task it was running is displaced and recovered through
        :meth:`_recover` in task-id order.  Returns a summary dict with
        the ``relocated`` / ``restarted`` / ``dropped`` task ids.
        Idempotent: killing a dead member is a no-op.
        """
        kernel = self.kernel
        members = getattr(self.manager, "members", None)
        if members is None:
            raise ValueError("member death requires a fleet manager")
        if not 0 <= index < len(members):
            raise ValueError(f"no fleet member {index}")
        summary = {"member": index, "relocated": [], "restarted": [],
                   "dropped": []}
        if index in kernel.lost_members:
            return summary
        now = self.events.now
        kernel.metrics.faults_injected += 1
        kernel.metrics.members_lost += 1
        kernel.lost_members.add(index)
        self.manager.mark_lost(index)
        kernel.forget_member(index)
        displaced = []
        for owner in self.manager.residents_of(index):
            if owner not in kernel.running:
                continue  # stuck-at blockers die with the fabric
            material = self._displace(owner)
            if material is not None:
                displaced.append(material)
        for task, on_finish, remaining in displaced:
            self._recover(task, on_finish, remaining, now, summary)
        kernel.note_space_changed()
        kernel.sample()
        kernel.drain()
        return summary

    def _next_fault_owner(self) -> int:
        self._fault_owner_seq += 1
        return FAULT_OWNER_BASE + self._fault_owner_seq

    def _block_region(self, device: int, rect: Rect) -> list[tuple]:
        """Claim every currently-free site of ``rect`` for fault
        blockers (one owner per maximal free run per row, so each
        blocker's footprint stays rectangular).  Returns the
        ``(owner, rect)`` blockers allocated."""
        fabric = self.kernel._managers[device].fabric
        blockers: list[tuple] = []
        if fabric.region_is_free(rect):
            runs = [rect]
        else:
            runs = []
            occupancy = fabric.occupancy
            for row in range(rect.row, rect.row_end):
                col = rect.col
                while col < rect.col_end:
                    if occupancy[row, col] == 0:
                        end = col
                        while end < rect.col_end \
                                and occupancy[row, end] == 0:
                            end += 1
                        runs.append(Rect(row, col, 1, end - col))
                        col = end
                    else:
                        col += 1
        for run in runs:
            owner = self._next_fault_owner()
            adopt = getattr(self.manager, "adopt", None)
            if adopt is not None:
                adopt(owner, device, run)
            else:
                fabric.allocate_region(run, owner)
            blockers.append((owner, run))
        return blockers

    def _release_fault_owner(self, device: int, owner: int) -> None:
        """Free one blocker through the path that allocated it."""
        if getattr(self.manager, "adopt", None) is not None:
            self.manager.release(owner)
        else:
            fabric = self.kernel._managers[device].fabric
            rect = fabric.footprint(owner)
            if rect is not None:
                fabric.free_region(rect, owner)

    def inject_region_fault(self, device: int, row: int, col: int,
                            height: int, width: int,
                            duration: float | None = None) -> dict:
        """Stuck-at outbreak: ``height`` x ``width`` sites at
        (``row``, ``col``) on member ``device`` go bad.

        Running tasks overlapping the region are displaced and
        recovered exactly like member-death victims (they may relocate
        onto the *same* member, just away from the bad silicon); the
        region's free sites are then claimed by blocker owners so no
        future placement lands there.  With a ``duration`` the region
        heals after it (transient outbreak); ``None`` is permanent.
        Returns the recovery summary dict (plus the ``fault`` id).
        """
        kernel = self.kernel
        if not 0 <= device < len(kernel._managers):
            raise ValueError(f"no device {device}")
        fabric = kernel._managers[device].fabric
        rect = Rect(row, col, height, width)
        if not fabric.in_bounds(rect):
            raise ValueError(f"region {rect} out of bounds on "
                             f"device {device}")
        now = self.events.now
        kernel.metrics.faults_injected += 1
        summary: dict = {"device": device, "relocated": [],
                         "restarted": [], "dropped": []}
        if device in kernel.lost_members:
            summary["fault"] = None
            return summary  # the whole fabric is already gone
        displaced = []
        for owner in sorted(kernel.running):
            task = self._running_tasks.get(owner)
            if task is None or task.rect is None:
                continue
            if self._device_of(owner) != device:
                continue
            if not task.rect.overlaps(rect):
                continue
            material = self._displace(owner)
            if material is not None:
                displaced.append(material)
        blockers = self._block_region(device, rect)
        self._fault_seq += 1
        fault_id = self._fault_seq
        record = {
            "device": device,
            "rect": (row, col, height, width),
            "owners": blockers,
            "heal_at": (now + duration) if duration is not None else None,
        }
        self._fault_regions[fault_id] = record
        if record["heal_at"] is not None:
            self.events.at(record["heal_at"],
                           lambda: self._heal_region(fault_id))
        for task, on_finish, remaining in displaced:
            self._recover(task, on_finish, remaining, now, summary)
        kernel.note_space_changed()
        kernel.sample()
        kernel.drain()
        summary["fault"] = fault_id
        return summary

    def _heal_region(self, fault_id: int) -> None:
        """A transient outbreak's duration elapsed: free its blockers
        and wake waiting work (the healed sites may fit it)."""
        record = self._fault_regions.pop(fault_id, None)
        if record is None:
            return
        for owner, _rect in record["owners"]:
            self._release_fault_owner(record["device"], owner)
        self.kernel.note_space_changed()
        self.kernel.sample()
        self.kernel.drain()

    def flake_port(self, device: int, retries: int = 3,
                   backoff: float = 0.2) -> float:
        """Transient configuration-port failure on member ``device``.

        Models a config-channel brown-out recovered by retrying: the
        port is occupied for ``retries`` x ``backoff`` seconds, so
        configuration traffic already queued (and any placement that
        follows) is pushed out by exactly that much.  Returns the
        seconds charged.
        """
        kernel = self.kernel
        if not 0 <= device < len(kernel.ports):
            raise ValueError(f"no device {device}")
        if retries < 0 or backoff < 0:
            raise ValueError("retries and backoff cannot be negative")
        kernel.metrics.faults_injected += 1
        if device in kernel.lost_members:
            return 0.0
        seconds = retries * backoff
        kernel.ports[device].acquire(move_seconds=seconds)
        kernel.metrics.port_retry_seconds += seconds
        return seconds

    def export_fault_state(self) -> dict | None:
        """Serializable fault state for service checkpoints: lost
        members, active stuck-at regions (with their blocker owners and
        heal instants) and the blocker-owner sequence.  ``None`` when
        no fault was ever injected, so fault-free snapshots keep their
        historical shape."""
        if not (self.kernel.lost_members or self._fault_regions
                or self._fault_owner_seq or self._fault_seq):
            return None
        return {
            "lost_members": sorted(self.kernel.lost_members),
            "owner_seq": self._fault_owner_seq,
            "fault_seq": self._fault_seq,
            "regions": [
                {
                    "id": fault_id,
                    "device": record["device"],
                    "rect": list(record["rect"]),
                    "owners": [
                        [owner, [r.row, r.col, r.height, r.width]]
                        for owner, r in record["owners"]
                    ],
                    "heal_at": record["heal_at"],
                }
                for fault_id, record in sorted(self._fault_regions.items())
            ],
        }

    def restore_fault_state(self, state: dict | None) -> None:
        """Re-apply exported fault state on a freshly built scheduler
        (checkpoint restore): lost members are re-marked, blocker
        regions re-allocated and pending heal events re-scheduled.
        No-op for ``None``."""
        if state is None:
            return
        kernel = self.kernel
        for index in state["lost_members"]:
            kernel.lost_members.add(int(index))
            mark_lost = getattr(self.manager, "mark_lost", None)
            if mark_lost is not None:
                mark_lost(int(index))
        self._fault_owner_seq = int(state["owner_seq"])
        self._fault_seq = int(state.get("fault_seq", 0))
        for row in state["regions"]:
            device = int(row["device"])
            blockers = []
            for owner, (r, c, h, w) in row["owners"]:
                rect = Rect(int(r), int(c), int(h), int(w))
                adopt = getattr(self.manager, "adopt", None)
                if adopt is not None:
                    adopt(int(owner), device, rect)
                else:
                    kernel._managers[device].fabric.allocate_region(
                        rect, int(owner)
                    )
                blockers.append((int(owner), rect))
            heal_at = (float(row["heal_at"])
                       if row["heal_at"] is not None else None)
            fault_id = int(row["id"])
            self._fault_regions[fault_id] = {
                "device": device,
                "rect": tuple(int(v) for v in row["rect"]),
                "owners": blockers,
                "heal_at": heal_at,
            }
            if heal_at is not None:
                self.events.at(heal_at,
                               lambda f=fault_id: self._heal_region(f))


class ApplicationFlowScheduler:
    """Fig. 1: applications sharing the device in space and time.

    ``manager`` is a :class:`LogicSpaceManager` or a
    :class:`~repro.fleet.manager.FleetManager` (function chains then
    spread over the fleet, each function configured on the member its
    device-selection policy picked).
    """

    def __init__(self, manager,
                 prefetch: bool = True,
                 queue: str | QueueDiscipline = "fifo",
                 ports: str | PortModel = "serial",
                 prefetch_mode: str = "never") -> None:
        self.manager = manager
        self.prefetch = prefetch
        self.kernel = SchedulingKernel(
            manager,
            ports=ports,
            prefetch=prefetch_mode,
            on_space_reclaimed=self._retry_stalled,
            sample_on_defrag=False,
        )
        self._owner_seq = 1000
        #: stalled (application, function-index) records, woken in the
        #: queue discipline's order whenever space is released.
        self._stalled: QueueDiscipline = make_queue(queue)

    @property
    def events(self):
        """The kernel's event queue (shared simulation timeline)."""
        return self.kernel.events

    @property
    def port(self):
        """The kernel's reconfiguration-port model."""
        return self.kernel.port

    @property
    def metrics(self) -> ScheduleMetrics:
        """Aggregated run metrics (uniform summary after :meth:`run`)."""
        return self.kernel.metrics

    def run(self, apps: list[ApplicationSpec]) -> list[ApplicationRun]:
        """Run every application to completion; returns their records.

        The uniform summary of the run is left in :attr:`metrics`
        (finished applications, per-app makespans as turnaround, stall
        and prefetch counts) for the campaign engine.
        """
        states = [_AppState(ApplicationRun(app)) for app in apps]
        for state in states:
            self.events.at(0.0, lambda s=state: self._start_function(s, 0))
        self.kernel.run()
        runs = [s.record for s in states]
        summary = summarize_application_runs(
            runs,
            makespan=self.events.now,
            port_busy_seconds=self.kernel.port_busy_seconds,
        )
        summary.rearrangements = self.metrics.rearrangements
        summary.moves = self.metrics.moves
        summary.halted_seconds = self.metrics.halted_seconds
        summary.proactive_defrags = self.metrics.proactive_defrags
        summary.defrag_moves = self.metrics.defrag_moves
        summary.defrag_port_seconds = self.metrics.defrag_port_seconds
        summary.config_stall_seconds = self.metrics.config_stall_seconds
        summary.prefetch_hits = self.metrics.prefetch_hits
        summary.prefetch_loads = self.metrics.prefetch_loads
        summary.cache_evictions = self.metrics.cache_evictions
        self.kernel.metrics = summary
        return runs

    # -- internals ----------------------------------------------------------

    def _next_owner(self) -> int:
        self._owner_seq += 1
        return self._owner_seq

    def _start_function(self, state: "_AppState", index: int) -> None:
        """Begin function ``index``: it must be placed and configured."""
        run = state.ensure_run(index)
        if run.rect is None and not self._place_function(state, index):
            # No space: stall until some function releases its region.
            spec = state.record.spec
            fn = spec.functions[index]
            # The demand is *now*; preloading the bitstream while the
            # application waits for space makes the eventual placement
            # a resident hit.
            self.kernel.offer_prefetch(
                _function_key(fn), fn.height, fn.width,
                next_use=self.events.now,
            )
            self.kernel.maybe_prefetch()
            self._stalled.push(
                _Stall(state, index),
                priority=spec.priority,
                area=fn.area,
                now=self.events.now,
            )
            return
        start = max(self.events.now, run.configured_at or 0.0)
        if start > self.events.now:
            self.events.at(start, lambda: self._begin_execution(state, index))
        else:
            self._begin_execution(state, index)

    def _begin_execution(self, state: "_AppState", index: int) -> None:
        run = state.record.runs[index]
        run.started_at = self.events.now
        spec = state.record.spec.functions[index]
        # Register as running *before* prefetching: the successor's
        # placement may trigger a rearrangement that moves this very
        # function, and under HALT that move must find it executing.
        self.kernel.start_running(
            state.owners[index],
            self.events.now + spec.exec_seconds,
            lambda: self._finish_function(state, index),
        )
        # Prefetch the successor during the reconfiguration interval rt.
        if self.prefetch and index + 1 < len(state.record.spec.functions):
            if not self._place_function(state, index + 1):
                # Space prefetch failed (parallelism took the region);
                # the *bitstream* can still be preloaded so the config
                # is off the critical path once space frees up.
                nxt = state.record.spec.functions[index + 1]
                self.kernel.offer_prefetch(
                    _function_key(nxt), nxt.height, nxt.width,
                    next_use=self.events.now + spec.exec_seconds,
                )
                self.kernel.maybe_prefetch()

    def _place_function(self, state: "_AppState", index: int) -> bool:
        """Try to place + configure function ``index`` right now."""
        run = state.ensure_run(index)
        if run.rect is not None:
            return True
        spec = state.record.spec.functions[index]
        owner = self._next_owner()
        outcome = self.manager.request(spec.height, spec.width, owner)
        if not outcome.success:
            return False
        config_done = self.kernel.charge_placement(
            outcome, key=_function_key(spec)
        )
        run.rect = outcome.rect
        run.configured_at = config_done
        # What the port was actually charged — zero on a resident-cache
        # hit, so a hit's "configuration" is never counted as exposed.
        run.config_seconds = self.kernel.last_config_seconds
        state.owners[index] = owner
        return True

    def _finish_function(self, state: "_AppState", index: int) -> None:
        run = state.record.runs[index]
        run.finished_at = self.events.now
        owner = state.owners.pop(index)
        self.kernel.finish_running(owner)
        self.manager.release(owner)
        self._retry_stalled()
        if index + 1 < len(state.record.spec.functions):
            self._start_function(state, index + 1)
        else:
            state.record.finished_at = self.events.now
        self.kernel.maybe_defrag()

    def _retry_stalled(self) -> None:
        """Space was released: wake stalled applications.

        Every stalled record is attempted in the queue discipline's
        order (FIFO by default); failures simply stay queued.  Because
        *every* record is always attempted — one application's failed
        placement never blocks the rest, the historical behaviour —
        disciplines contribute only the retry order here: ``backfill``
        has no blocked head to jump and therefore coincides with
        ``fifo`` for application workloads.  The kernel invokes this
        after a proactive defrag too — a background consolidation
        frees contiguous space exactly like a finish event does, and a
        stalled application must not stay stranded until the next
        finish to benefit from it.
        """
        for stall in self._stalled.ordered(self.events.now):
            state, index = stall.state, stall.index
            if self._place_function(state, index):
                self._stalled.take(stall)
                run = state.record.runs[index]
                start = max(self.events.now, run.configured_at or 0.0)
                self.events.at(
                    start,
                    lambda s=state, i=index: self._begin_execution(s, i),
                )


@dataclass
class _Stall:
    """One stalled (application, function-index) admission request."""

    state: "_AppState"
    index: int


@dataclass
class _AppState:
    """Book-keeping for one running application."""

    record: ApplicationRun
    owners: dict[int, int] = field(default_factory=dict)

    def ensure_run(self, index: int) -> FunctionRun:
        while len(self.record.runs) <= index:
            next_index = len(self.record.runs)
            self.record.runs.append(
                FunctionRun(
                    self.record.spec.name,
                    self.record.spec.functions[next_index],
                )
            )
        return self.record.runs[index]
