"""Arrival traces: an NDJSON file format + replayer + trace generators.

Synthetic generators (:mod:`repro.sched.workload`) answer "what does
policy X do under distribution Y"; a *trace* pins the exact arrival
sequence — recorded from a real system, exported from another
simulator, or synthesized once and committed — so experiments replay
identical offered load across policies, devices and code versions (and
the future floor-plan predictor trains on the same substrate it will
serve, per Al-Wattar et al.).

One line per arrival, JSON object, in arrival order::

    {"at": 0.41, "tenant": "video", "qos": "gold",
     "height": 4, "width": 6, "duration": 1.2, "max_wait": 1.5}

``at`` is the arrival instant (seconds), ``duration`` the execution
time, ``max_wait`` the queueing patience (``null`` = infinite), and
``qos`` one of ``gold`` / ``silver`` / ``best-effort``, mapped onto
the priority classes the ``priority`` queue discipline reads.  The
mapping mirrors :mod:`repro.service.qos` (kept numerically in sync by
``tests/test_trace.py`` without importing the service layer here).

The generators in this module produce *shaped* arrival processes the
memoryless synthetic streams cannot express: a diurnal rate curve, a
flash crowd, and a multi-tenant mix with per-tenant QoS — all
deterministic per seed via thinning of a homogeneous Poisson process.
"""

from __future__ import annotations

import json
import math
import random
from typing import Iterable

from .tasks import Task

#: QoS class -> priority (mirrors ``repro.service.qos.QOS_CLASSES``).
QOS_PRIORITY = {"best-effort": 0, "silver": 1, "gold": 2}


def qos_of_priority(priority: int) -> str:
    """QoS class name for a priority (inverse of :data:`QOS_PRIORITY`,
    saturating: any priority >= 2 is ``gold``, <= 0 ``best-effort``)."""
    if priority <= 0:
        return "best-effort"
    if priority == 1:
        return "silver"
    return "gold"


def format_trace(tasks: Iterable[Task]) -> str:
    """Serialize tasks to NDJSON trace text (arrival order preserved)."""
    lines = []
    for task in tasks:
        lines.append(json.dumps({
            "at": task.arrival,
            "tenant": task.tenant,
            "qos": qos_of_priority(task.priority),
            "height": task.height,
            "width": task.width,
            "duration": task.exec_seconds,
            "max_wait": task.max_wait,
        }, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def parse_trace(text: str) -> list[Task]:
    """Parse NDJSON trace text into tasks (ids assigned in file order).

    Unknown QoS names and malformed shapes raise ``ValueError`` with
    the offending line number, so a bad trace fails loudly before the
    simulation starts.
    """
    tasks: list[Task] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno}: invalid JSON "
                             f"({exc})") from None
        qos = row.get("qos", "best-effort")
        if qos not in QOS_PRIORITY:
            raise ValueError(
                f"trace line {lineno}: unknown qos {qos!r} "
                f"(choose from {', '.join(QOS_PRIORITY)})"
            )
        height, width = int(row["height"]), int(row["width"])
        if height < 1 or width < 1:
            raise ValueError(f"trace line {lineno}: non-positive shape")
        at = float(row["at"])
        duration = float(row["duration"])
        if at < 0 or duration < 0:
            raise ValueError(f"trace line {lineno}: negative time")
        max_wait = row.get("max_wait")
        tasks.append(Task(
            task_id=len(tasks) + 1,
            height=height,
            width=width,
            exec_seconds=duration,
            arrival=at,
            max_wait=float(max_wait) if max_wait is not None else None,
            priority=QOS_PRIORITY[qos],
            tenant=str(row.get("tenant", "")),
        ))
    return tasks


def write_trace(path, tasks: Iterable[Task]) -> None:
    """Write tasks to an NDJSON trace file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_trace(tasks))


def read_trace(path) -> list[Task]:
    """Load an NDJSON trace file into tasks."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_trace(handle.read())


def _thinned_arrivals(rng: random.Random, n: int, rate_max: float,
                      rate_at) -> list[float]:
    """``n`` arrival instants of a nonhomogeneous Poisson process.

    Classic thinning: candidate arrivals are drawn at the envelope
    rate ``rate_max`` and each kept with probability
    ``rate_at(t) / rate_max`` — exact for any bounded rate curve, and
    deterministic per ``rng``.
    """
    arrivals: list[float] = []
    now = 0.0
    while len(arrivals) < n:
        now += rng.expovariate(rate_max)
        if rng.random() * rate_max <= rate_at(now):
            arrivals.append(now)
    return arrivals


def diurnal_tasks(
    n: int,
    seed: int = 0,
    period: float = 8.0,
    base_rate: float = 4.0,
    peak_rate: float = 20.0,
    size_range: tuple[int, int] = (3, 10),
    exec_range: tuple[float, float] = (0.2, 1.2),
    max_wait: float | None = 1.5,
    priority_levels: int = 1,
) -> list[Task]:
    """A day/night arrival curve: rate swings ``base_rate`` ->
    ``peak_rate`` -> ``base_rate`` sinusoidally with ``period``.

    The defrag and admission policies see alternating quiet windows
    (consolidation is cheap) and rush hours (space is contended) in
    one run — neither the uniform nor the bursty generator produces
    that regime.  Deterministic per seed.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if base_rate <= 0 or peak_rate < base_rate:
        raise ValueError("need 0 < base_rate <= peak_rate")
    rng = random.Random(seed)

    def rate_at(t: float) -> float:
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / period))
        return base_rate + (peak_rate - base_rate) * swing

    lo, hi = size_range
    tasks = []
    for i, at in enumerate(_thinned_arrivals(rng, n, peak_rate, rate_at)):
        tasks.append(Task(
            task_id=i + 1,
            height=rng.randint(lo, hi),
            width=rng.randint(lo, hi),
            exec_seconds=rng.uniform(*exec_range),
            arrival=at,
            max_wait=max_wait,
            priority=(rng.randrange(priority_levels)
                      if priority_levels > 1 else 0),
        ))
    return tasks


def flash_crowd_tasks(
    n: int,
    seed: int = 0,
    base_rate: float = 4.0,
    flash_at: float = 2.0,
    flash_duration: float = 1.0,
    flash_factor: float = 8.0,
    size_range: tuple[int, int] = (3, 10),
    exec_range: tuple[float, float] = (0.2, 1.2),
    max_wait: float | None = 1.5,
    priority_levels: int = 1,
) -> list[Task]:
    """A steady stream with one flash crowd: for ``flash_duration``
    seconds starting at ``flash_at`` the arrival rate multiplies by
    ``flash_factor``.

    The sharpest admission stress short of simultaneous arrivals —
    and the natural backdrop for fault injection (kill a member *inside*
    the flash window and watch the failover absorb both).
    Deterministic per seed.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if base_rate <= 0 or flash_factor < 1 or flash_duration < 0:
        raise ValueError("invalid flash-crowd parameters")
    rng = random.Random(seed)

    def rate_at(t: float) -> float:
        if flash_at <= t < flash_at + flash_duration:
            return base_rate * flash_factor
        return base_rate

    lo, hi = size_range
    tasks = []
    for i, at in enumerate(_thinned_arrivals(
            rng, n, base_rate * flash_factor, rate_at)):
        tasks.append(Task(
            task_id=i + 1,
            height=rng.randint(lo, hi),
            width=rng.randint(lo, hi),
            exec_seconds=rng.uniform(*exec_range),
            arrival=at,
            max_wait=max_wait,
            priority=(rng.randrange(priority_levels)
                      if priority_levels > 1 else 0),
        ))
    return tasks


def multi_tenant_tasks(
    n: int,
    seed: int = 0,
    tenants: int = 3,
    mean_interarrival: float = 0.1,
    size_range: tuple[int, int] = (3, 10),
    exec_range: tuple[float, float] = (0.4, 1.4),
    max_wait: float | None = 1.5,
    priority_levels: int = 1,
) -> list[Task]:
    """A shared-fabric mix of ``tenants`` tenants with skewed demand.

    Tenant ``t-0`` submits the most (Zipf-like weights 1/1, 1/2, 1/3,
    ...) and holds the highest QoS class; later tenants submit less and
    queue at lower priority — so the per-tenant fairness index
    (:attr:`~repro.sched.kernel.ScheduleMetrics.tenant_fairness`)
    actually has something to measure, under faults and without.
    ``priority_levels`` is accepted for registry-adapter uniformity but
    unused: each tenant's QoS class is derived from its rank.
    Deterministic per seed.
    """
    del priority_levels
    if n < 0:
        raise ValueError("n must be non-negative")
    if tenants < 1:
        raise ValueError("tenants must be positive")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(tenants)]
    lo, hi = size_range
    tasks = []
    now = 0.0
    for i in range(n):
        now += rng.expovariate(1.0 / mean_interarrival)
        rank = rng.choices(range(tenants), weights=weights)[0]
        tasks.append(Task(
            task_id=i + 1,
            height=rng.randint(lo, hi),
            width=rng.randint(lo, hi),
            exec_seconds=rng.uniform(*exec_range),
            arrival=now,
            max_wait=max_wait,
            priority=max(0, 2 - rank),
            tenant=f"t-{rank}",
        ))
    return tasks
