"""The scheduling kernel: shared machinery under both schedulers.

Historically :class:`~repro.sched.scheduler.OnlineTaskScheduler` and
:class:`~repro.sched.scheduler.ApplicationFlowScheduler` each hand-rolled
the same ~150 lines: an event queue, a serial reconfiguration port,
HALT-extension arithmetic for moved-while-running functions, the
proactive-defrag hook and fragmentation/utilization sampling — and both
hardwired strict-FIFO admission over a single serial port.

:class:`SchedulingKernel` owns all of that once, behind two policy
axes supplied at construction:

* a :class:`~repro.sched.queues.QueueDiscipline` deciding *admission
  order* of waiting work (``fifo`` / ``priority`` / ``sjf`` /
  ``backfill``), and
* a :class:`~repro.sched.ports.PortModel` deciding how port seconds are
  served (``serial`` / ``multi-N`` / ``icap``).

The schedulers are thin strategy layers: they translate their workload
shape (independent tasks, application chains) into kernel calls and
keep only the bookkeeping unique to that shape.  With the default
``fifo`` + ``serial`` policies the kernel is event-for-event identical
to the historical schedulers — the golden campaign snapshots pin it.

The kernel also carries the *device axis*: handed a
:class:`~repro.fleet.manager.FleetManager` (recognised by its
``members`` attribute) instead of a single manager, it instantiates one
port model **per member device**, charges each placement to the port of
the device that accepted it (``PlacementOutcome.device``), and runs the
proactive-defrag trigger per fabric against that fabric's own port-idle
signal.  Admission itself is unchanged — the fleet manager consults its
device-selection policy inside ``request`` — so a 1-member fleet is
event-for-event identical to the plain single-manager kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.manager import (
    DefragOutcome,
    LogicSpaceManager,
    PlacementOutcome,
)
from repro.device.geometry import Rect
from repro.perf import PERF

from .events import EventHandle, EventQueue
from .ports import PortModel, make_port_model
from .prefetch import (
    PLAN_CANDIDATE_BOUND,
    WISHLIST_BOUND,
    BitstreamCache,
    PrefetchRequest,
    normalize_prefetch_mode,
)
from .queues import QueueDiscipline, make_queue


@dataclass
class ScheduleMetrics:
    """Aggregated outcome of one scheduling run."""

    finished: int = 0
    rejected: int = 0
    waiting_seconds: list[float] = field(default_factory=list)
    turnaround_seconds: list[float] = field(default_factory=list)
    halted_seconds: float = 0.0
    port_busy_seconds: float = 0.0
    makespan: float = 0.0
    rearrangements: int = 0
    moves: int = 0
    #: proactive-defrag counters: background consolidations executed,
    #: the moves they issued, and the port time they consumed (reactive
    #: rearrangements are counted separately above).
    proactive_defrags: int = 0
    defrag_moves: int = 0
    defrag_port_seconds: float = 0.0
    fragmentation_samples: list[float] = field(default_factory=list)
    utilization_samples: list[float] = field(default_factory=list)
    #: application-flow extras (zero for independent-task runs):
    #: reconfiguration-induced stall and prefetch success counts.
    stall_seconds: float = 0.0
    prefetched_functions: int = 0
    total_functions: int = 0
    #: configuration-prefetch extras (see :mod:`repro.sched.prefetch`):
    #: port seconds charged for *demand* configuration loads (the
    #: config time on the admission critical path — planned loads and
    #: cache hits never add here), cache hits, planned idle-window
    #: loads, and resident-set evictions.
    config_stall_seconds: float = 0.0
    prefetch_hits: int = 0
    prefetch_loads: int = 0
    cache_evictions: int = 0
    #: fault-injection extras (see :mod:`repro.faults`; all zero for
    #: fault-free runs so the sparse campaign columns never appear in
    #: the committed goldens): events injected, members declared dead,
    #: and the fate of the work those events displaced — relocated
    #: (kept its progress on a surviving fabric), restarted (lost its
    #: progress, re-queued from scratch) or dropped (no surviving
    #: member could ever host the footprint).
    faults_injected: int = 0
    members_lost: int = 0
    relocated_tasks: int = 0
    restarted_tasks: int = 0
    dropped_tasks: int = 0
    #: seconds of extra latency fault recovery put on displaced work:
    #: for each relocation, the interval from the fault instant to the
    #: re-configuration completing on the new member.
    recovery_seconds: float = 0.0
    #: port seconds burnt by transient configuration-channel brown-outs
    #: (the retry x backoff cost of ``port-flaky`` fault events).
    port_retry_seconds: float = 0.0
    #: per-tenant finished-task counts (multi-tenant traces only; empty
    #: otherwise).  :attr:`tenant_fairness` folds it into one number.
    tenant_finished: dict[str, int] = field(default_factory=dict)

    @property
    def mean_waiting(self) -> float:
        """Mean task waiting time (0 when nothing finished)."""
        return (
            sum(self.waiting_seconds) / len(self.waiting_seconds)
            if self.waiting_seconds
            else 0.0
        )

    @property
    def mean_fragmentation(self) -> float:
        """Mean sampled fragmentation index."""
        return (
            sum(self.fragmentation_samples) / len(self.fragmentation_samples)
            if self.fragmentation_samples
            else 0.0
        )

    @property
    def mean_turnaround(self) -> float:
        """Mean task turnaround time (0 when nothing finished)."""
        return (
            sum(self.turnaround_seconds) / len(self.turnaround_seconds)
            if self.turnaround_seconds
            else 0.0
        )

    @property
    def mean_utilization(self) -> float:
        """Mean sampled site occupancy."""
        return (
            sum(self.utilization_samples) / len(self.utilization_samples)
            if self.utilization_samples
            else 0.0
        )

    @property
    def tenant_fairness(self) -> float:
        """Jain's fairness index over per-tenant finished-task counts.

        1.0 when every tenant completed the same amount of work (and,
        degenerately, for runs with at most one tenant); approaches
        ``1/n`` when a single tenant of ``n`` starved the rest.  Fault
        scenarios read it to show recovery did not sacrifice one
        tenant's work for another's.
        """
        counts = list(self.tenant_finished.values())
        if len(counts) <= 1:
            return 1.0
        square_sum = sum(c * c for c in counts)
        if square_sum == 0:
            return 1.0
        total = sum(counts)
        return (total * total) / (len(counts) * square_sum)

    @property
    def prefetched_fraction(self) -> float:
        """Fraction of functions whose configuration was fully hidden
        (0.0 for runs with no function chains at all, i.e. the
        independent-task experiments, which never prefetch)."""
        if self.total_functions == 0:
            return 0.0
        return self.prefetched_functions / self.total_functions


class Admissible(Protocol):
    """Work item the kernel's admission loop can try to place: a
    ``height`` x ``width`` footprint requested on behalf of an owner."""

    height: int
    width: int
    task_id: int


class SchedulingKernel:
    """Event queue + port + HALT arithmetic + defrag hook + sampling.

    The strategy layer provides two callbacks:

    * ``on_admitted(item, outcome)`` — a waiting item was successfully
      placed by the admission loop (:meth:`drain`): charge its port
      time, register its execution, record its telemetry;
    * ``on_space_reclaimed()`` — a proactive consolidation just freed
      contiguous space: wake whatever workload shape is waiting for it
      (the task layer re-drains its queue, the application layer
      retries stalled apps).

    The optional ``halt_listener(owner, seconds)`` observes HALT-policy
    stops so the task layer can attribute them to task records.
    """

    def __init__(
        self,
        manager,
        queue: str | QueueDiscipline = "fifo",
        ports: str | PortModel = "serial",
        on_admitted: Callable[[Admissible, PlacementOutcome], None]
        | None = None,
        on_space_reclaimed: Callable[[], None] | None = None,
        halt_listener: Callable[[int, float], None] | None = None,
        sample_on_defrag: bool = True,
        prefetch: str = "never",
    ) -> None:
        self.manager = manager
        members = getattr(manager, "members", None)
        #: the fabrics the kernel drives: the fleet's members, or the
        #: single manager itself.  Index i's port is ``ports[i]``.
        self._managers: list[LogicSpaceManager] = (
            list(members) if members is not None else [manager]
        )
        self.events = EventQueue()
        self.queue = make_queue(queue)
        if not isinstance(ports, (str, int)) and len(self._managers) > 1:
            raise ValueError(
                "a pre-built port-model instance cannot be shared across "
                "a fleet; pass a model name so each device gets its own"
            )
        #: one reconfiguration-port model per device, so configuration
        #: bandwidth is a per-fabric resource.
        self.ports = [
            make_port_model(ports, self.events) for _ in self._managers
        ]
        #: configuration-prefetch mode (see :mod:`repro.sched.prefetch`).
        #: ``never`` builds neither cache nor planner, so every code
        #: path below stays bit-identical to the historical behaviour.
        self.prefetch_mode = normalize_prefetch_mode(prefetch)
        #: one resident-bitstream cache per fleet member (``None`` in
        #: ``never`` mode); configuration memory is a per-fabric
        #: resource exactly like the port serving it.
        self.caches: list[BitstreamCache] | None = (
            [BitstreamCache() for _ in self._managers]
            if self.prefetch_mode != "never" else None
        )
        #: outstanding application-successor offers, by bitstream key
        #: (``plan`` mode's explicit look-ahead; bounded FIFO).
        self._wishlist: dict[str, PrefetchRequest] = {}
        #: config seconds actually charged by the most recent
        #: :meth:`charge_placement` (0.0 on a cache hit; equal to the
        #: outcome's ``config_seconds`` otherwise) — the strategy
        #: layers read it for their per-function stall accounting.
        self.last_config_seconds = 0.0
        self.metrics = ScheduleMetrics()
        self.on_admitted = on_admitted
        self.on_space_reclaimed = on_space_reclaimed
        self.halt_listener = halt_listener
        #: whether a proactive consolidation records a telemetry sample
        #: (the task scheduler samples, the application scheduler never
        #: sampled — preserved for metric compatibility).
        self.sample_on_defrag = sample_on_defrag
        #: owner -> (finish action, finish handle) of executing work,
        #: so HALT-policy moves can push finish events out.
        self.running: dict[
            int, tuple[Callable[[], None], EventHandle]
        ] = {}
        #: occupancy version counter: a failed admission pass is only
        #: retried after the logic space actually changed.
        self._space_version = 0
        self._failed_at_version: int | None = None
        #: per-item failure memo: admission token -> space version at
        #: which the item's placement failed.  ``manager.request`` is a
        #: pure function of the occupancy, so re-asking before the space
        #: changed would re-run the (expensive) rearrangement planner to
        #: reach the same "no" — the multi-candidate disciplines
        #: (backfill above all) would otherwise replan the whole queue
        #: per arrival.  The memo is keyed on a monotonically-assigned
        #: token, never on ``id(item)``: a long-running service creates
        #: and destroys items continuously, and a recycled interpreter
        #: id would let a *new* item inherit a stale failure memo and be
        #: silently skipped for a pass.
        self._item_failed_at: dict[int, int] = {}
        #: shape-level failure memo: (height, width) -> space version at
        #: which that *shape* failed.  ``manager.request``'s verdict is
        #: a pure function of (occupancy, shape) — the owner id never
        #: affects success — so once one item's shape fails, every other
        #: queued item of the same shape is skipped until the space
        #: version bumps.  The per-item memo above cannot catch these:
        #: each item carries its own token.
        self._shape_failed_at: dict[tuple[int, int], int] = {}
        #: dominance memo: the shapes that failed *with a certificate*
        #: (``PlacementOutcome.dominant``) at ``_space_version``.  A
        #: certified failure of (h, w) proves every (h' >= h, w' >= w)
        #: also fails against this occupancy, so equal-or-larger queued
        #: footprints skip their probe (and their eviction screen)
        #: entirely.  Reset implicitly by the version tag — a memo can
        #: never outlive a space-version bump.
        self._dominant_shapes: tuple[int, list[tuple[int, int]]] = (-1, [])
        #: id(item) -> admission token, live only while the item is
        #: queued (the queue holds a strong reference, so the id cannot
        #: be recycled while an entry exists here).
        self._item_tokens: dict[int, int] = {}
        self._token_seq = 0
        #: external-clock pause flag: while paused, admission passes are
        #: deferred and the clock may not advance (checkpoint windows).
        self._paused = False
        #: per-member (fragmentation, utilization) readings of the most
        #: recent :meth:`sample` (one pair for a single-device kernel).
        self.member_samples: list[tuple[float, float]] = []
        #: fleet members declared dead by fault injection (see
        #: :mod:`repro.faults`): their fabrics are neither sampled nor
        #: defragmented, their ports are never charged again and the
        #: prefetch planner stops predicting onto them.  Empty — and
        #: every check below a constant-false — outside fault runs.
        self.lost_members: set[int] = set()

    # -- event plumbing -----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.events.now

    @property
    def port(self) -> PortModel:
        """The primary device's port model (the only one on a
        single-device kernel; fleet-wide accounting should read
        :attr:`port_busy_seconds` instead)."""
        return self.ports[0]

    @property
    def port_busy_seconds(self) -> float:
        """Total reconfiguration-port time consumed across all devices."""
        return sum(port.busy_seconds for port in self.ports)

    def run(self) -> None:
        """Drain the event queue, then stamp the run-wide metrics."""
        self.events.run()
        self.stamp()

    def stamp(self) -> None:
        """Refresh the run-wide metrics (makespan, port totals) to the
        current instant — :meth:`run` does it once at the end of a batch
        run; incremental drivers call it after each :meth:`advance`."""
        self.metrics.makespan = self.events.now
        self.metrics.port_busy_seconds = self.port_busy_seconds

    # -- external clock (always-on service mode) ----------------------------

    def advance(self, until: float) -> None:
        """Process events up to ``until`` and move the clock there.

        The external-clock hook for incremental drivers (the always-on
        service): instead of draining the whole event queue to
        completion, the caller advances simulated time in steps — to
        each arrival instant, or along a wall-clock ticker.  Metrics are
        re-stamped after every step so they are always current.
        """
        if self._paused:
            raise RuntimeError("kernel is paused; resume() before advancing")
        if until < self.events.now:
            raise ValueError(
                f"cannot advance backwards ({until} < {self.events.now})"
            )
        self.events.run(until=until)
        self.stamp()

    @property
    def paused(self) -> bool:
        """True while the kernel is paused (admission + clock frozen)."""
        return self._paused

    def pause(self) -> None:
        """Freeze admission and the clock (checkpoint window): while
        paused, :meth:`drain` defers and :meth:`advance` refuses, so a
        snapshot observes a quiescent kernel."""
        self._paused = True

    def resume(self) -> None:
        """Lift a :meth:`pause` and run the admission pass that was
        deferred while frozen."""
        if not self._paused:
            return
        self._paused = False
        self.drain()

    # -- admission ----------------------------------------------------------

    def _token(self, item: Admissible) -> int:
        """The admission token of a queued item (assigned lazily for
        items pushed around :meth:`enqueue`, e.g. by tests driving the
        queue directly).  Tokens are monotonic and never reused, so a
        failure memo can never outlive its item into a recycled id."""
        token = self._item_tokens.get(id(item))
        if token is None:
            token = self._token_seq
            self._token_seq += 1
            self._item_tokens[id(item)] = token
        return token

    def _forget(self, item: Admissible) -> None:
        """Drop an item's token and failure memo (it left the queue)."""
        token = self._item_tokens.pop(id(item), None)
        if token is not None:
            self._item_failed_at.pop(token, None)

    def enqueue(self, item: Admissible, *, priority: int = 0,
                area: int = 0) -> None:
        """Add a work item to the waiting queue and try to place it.

        Disciplines whose candidate set depends on arrivals (priority,
        sjf, backfill) reopen a blocked pass here: the newcomer may be
        a better — or the first feasible — candidate even though the
        occupancy did not change.  FIFO keeps the short-circuit: a push
        behind a blocked head can never alter the head.
        """
        self.queue.push(item, priority=priority, area=area,
                        now=self.events.now)
        # A fresh token per admission attempt: re-enqueueing an object
        # (or a new object on a recycled id) never inherits a memo.
        self._item_tokens[id(item)] = self._token_seq
        self._token_seq += 1
        if getattr(self.queue, "arrival_reopens_pass", True):
            self._failed_at_version = None
        self.drain()

    def cancel(self, item: Admissible) -> None:
        """Drop a waiting item (timeout/abandon): tombstoned in O(1).

        The admission order changed, so the next pass is given a fresh
        chance even if the space did not move.
        """
        self.queue.discard(item)
        self._forget(item)
        self._failed_at_version = None
        self.drain()

    def note_space_changed(self) -> None:
        """Record that occupancy changed (placements do this themselves;
        releases must call it so blocked passes are retried)."""
        self._space_version += 1

    def _shape_blocked(self, height: int, width: int,
                       count: bool = True) -> bool:
        """Whether the shape memos prove this footprint cannot place.

        True when the exact shape already failed at the current space
        version, or when some *certified* failure of an equal-or-smaller
        footprint dominates it.  Both memos key on the space version, so
        any occupancy change re-opens every shape.  ``count=False``
        keeps advisory checks (the prefetch scan) out of the skip
        counters, which tally skipped *probes* only.
        """
        if self._shape_failed_at.get((height, width)) \
                == self._space_version:
            if count:
                PERF.shape_memo_skips += 1
            return True
        version, shapes = self._dominant_shapes
        if version == self._space_version:
            for failed_height, failed_width in shapes:
                if failed_height <= height and failed_width <= width:
                    if count:
                        PERF.dominance_skips += 1
                    return True
        return False

    def _note_shape_failed(self, height: int, width: int,
                           dominant: bool) -> None:
        """Record a failed probe in the shape memos."""
        self._shape_failed_at[height, width] = self._space_version
        if not dominant:
            return
        version, shapes = self._dominant_shapes
        if version != self._space_version:
            self._dominant_shapes = (self._space_version, [(height, width)])
        else:
            shapes.append((height, width))

    def _prefetch(self) -> None:
        """Warm the manager's fit/plan caches for the coming pass.

        Purely an optimisation: the per-item ``manager.request`` calls
        in :meth:`drain` return bit-identical outcomes with or without
        it.  The shapes handed over are exactly this pass's candidate
        set — the discipline's ``scan`` order, which the loop below is
        about to probe one ``request`` at a time — so the manager can
        resolve the whole batch against one read of the free-space
        state instead of one probe per item (the multi-candidate
        disciplines, backfill above all, put many items through one
        pass).  ``scan`` only purges tombstones, so iterating it here
        and again below yields the same items.  Items already
        failure-memoed at this space version are skipped (their answers
        are cached).  A fleet manager forwards the batch to every
        member that exposes the hook (see
        :meth:`repro.fleet.manager.FleetManager.prefetch_admission`),
        so multi-device runs keep the batched-probe fast path.
        """
        prefetch = getattr(self.manager, "prefetch_admission", None)
        if prefetch is None:
            return
        shapes: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for item in self.queue.scan(self.events.now):
            if self._item_failed_at.get(
                    self._token(item)) == self._space_version:
                continue
            shape = (item.height, item.width)
            if shape not in seen:
                seen.add(shape)
                # Shapes the memos already doom are never probed below,
                # so warming their caches (and running their eviction
                # screens) would be pure waste.
                if not self._shape_blocked(*shape, count=False):
                    shapes.append(shape)
        if shapes:
            prefetch(shapes)

    def drain(self) -> None:
        """Place waiting items in discipline order until blocked.

        One *pass* asks the discipline for its candidate order and
        attempts each; a successful placement restarts the pass (the
        order may have changed), a fully failed pass marks the current
        space version as blocked so no request is re-planned until the
        occupancy actually changes.  While the kernel is paused
        (checkpoint window), the pass is deferred to :meth:`resume`.

        After the pass settles, the prefetch planner gets one look at
        the port-idle windows the pass left behind
        (:meth:`maybe_prefetch`; a no-op outside ``plan`` mode).
        """
        if self._paused:
            return
        self._admit_pass()
        self.maybe_prefetch()

    def _admit_pass(self) -> None:
        """The admission loop behind :meth:`drain` (see there)."""
        while len(self.queue):
            if self._failed_at_version == self._space_version:
                return  # nothing changed since the last blocked pass
            self._prefetch()
            placed = False
            for item in self.queue.scan(self.events.now):
                token = self._token(item)
                if self._item_failed_at.get(token) == self._space_version:
                    PERF.item_memo_skips += 1
                    continue  # same occupancy, same answer: skip replan
                if self._shape_blocked(item.height, item.width):
                    # The verdict is already known (same or dominated
                    # shape failed at this version): record it on the
                    # item without re-asking the manager.
                    self._item_failed_at[token] = self._space_version
                    continue
                PERF.admission_probes += 1
                outcome = self.manager.request(
                    item.height, item.width, item.task_id
                )
                if outcome.success:
                    self.queue.take(item)
                    self._forget(item)
                    self._space_version += 1
                    if self.on_admitted is not None:
                        self.on_admitted(item, outcome)
                    placed = True
                    break
                self._item_failed_at[token] = self._space_version
                self._note_shape_failed(
                    item.height, item.width, outcome.dominant
                )
            if not placed:
                self._failed_at_version = self._space_version
                return

    # -- port + HALT accounting ---------------------------------------------

    def charge_placement(self, outcome: PlacementOutcome,
                         key: str | None = None) -> float:
        """Count a placement's moves, apply HALT stops, charge the port.

        The port charged is the one of the device that accepted the
        request (``outcome.device``; always 0 outside a fleet).
        Returns the instant the item's own configuration completes (the
        end of its contiguous port job).

        ``key`` names the bitstream being configured (see
        :mod:`repro.sched.prefetch`); with caching enabled, a resident
        key skips the configuration charge entirely — a pure hit
        without rearrangement moves never even touches the port, so a
        zero-length job cannot queue behind busy channel time — and a
        miss leaves the bitstream resident for repeats.  The config
        seconds actually charged land in :attr:`last_config_seconds`
        and accumulate into ``metrics.config_stall_seconds`` (demand
        loads only: hits and planned loads are off the critical path).
        """
        if outcome.moves:
            self.metrics.rearrangements += 1
            self.metrics.moves += len(outcome.moves)
            self.apply_halts(outcome)
        config = outcome.config_seconds
        cache = (self.caches[outcome.device]
                 if self.caches is not None and key is not None else None)
        entry = None
        if cache is not None:
            self._wishlist.pop(key, None)
            entry = cache.hit(key, self.events.now)
            if entry is not None:
                self.metrics.prefetch_hits += 1
                config = 0.0
        if entry is not None and not outcome.moves:
            config_done = max(self.events.now, entry.ready_at)
        else:
            __, config_done = self.ports[outcome.device].acquire(
                config_seconds=config,
                move_seconds=outcome.rearrange_seconds,
            )
            if entry is not None:
                config_done = max(config_done, entry.ready_at)
        self.last_config_seconds = config
        self.metrics.config_stall_seconds += config
        if cache is not None and entry is None and outcome.rect is not None:
            if cache.insert(
                key, outcome.rect.height, outcome.rect.width,
                ready_at=config_done, now=self.events.now,
            ) is not None:
                self.metrics.cache_evictions += 1
        return config_done

    # -- configuration prefetch ---------------------------------------------

    def offer_prefetch(self, key: str, height: int, width: int, *,
                       next_use: float | None = None,
                       device: int | None = None) -> None:
        """Tell the planner a bitstream will be demanded soon.

        The application scheduler offers a chain's successor the moment
        its predecessor starts executing (``next_use`` = the predicted
        demand instant); queued tasks need no offer — the planner reads
        them straight off the queue discipline.  In ``cache`` mode the
        offer only annotates an already-resident entry's next use (so
        eviction protects it); in ``plan`` mode it also joins the
        wishlist :meth:`maybe_prefetch` serves.  No-op in ``never``
        mode.
        """
        if self.caches is None:
            return
        target = (device if device is not None
                  else self._predict_member(height, width))
        self.caches[target].note_next_use(key, next_use)
        if self.prefetch_mode != "plan":
            return
        if key in self._wishlist:
            request = self._wishlist[key]
            if next_use is not None and (
                request.next_use is None or next_use < request.next_use
            ):
                request.next_use = next_use
            return
        if len(self._wishlist) >= WISHLIST_BOUND:
            oldest = next(iter(self._wishlist))
            del self._wishlist[oldest]
        self._wishlist[key] = PrefetchRequest(
            key, height, width, next_use=next_use, device=device
        )

    def _predict_member(self, height: int, width: int) -> int:
        """The fleet member a future request would most likely land on
        (member 0 outside a fleet): the device-selection policy's first
        preference.  Only a prediction — a wrong guess costs a cache
        miss, never correctness."""
        if len(self._managers) == 1:
            return 0
        policy = getattr(self.manager, "policy", None)
        if policy is None:
            return 0
        for index in policy.order(self.manager, height, width):
            if index not in self.lost_members:
                return index
        return 0

    def maybe_prefetch(self) -> None:
        """Serve planned loads into the port-idle windows of *now*.

        ``plan`` mode only.  Candidates are the wishlist (explicit
        application-successor offers) followed by the queue
        discipline's live order (queued tasks want their bitstream "as
        soon as possible"), bounded by
        :data:`~repro.sched.prefetch.PLAN_CANDIDATE_BOUND`.  A load is
        issued only when the predicted member's port is idle at this
        very instant, so planned traffic can never delay demand
        traffic already queued — and issuing one load occupies that
        port, so at most one planned load per member starts per
        invocation.  Loads are charged through the normal
        ``PortModel.acquire`` machinery and priced with the member
        manager's own ``config_seconds``, which is exactly what the
        demand load would have cost.
        """
        if self.prefetch_mode != "plan" or self._paused:
            return
        assert self.caches is not None
        now = self.events.now
        candidates: list[PrefetchRequest] = list(self._wishlist.values())
        if len(candidates) < PLAN_CANDIDATE_BOUND:
            for item in self.queue.ordered(now):
                queue_key = getattr(item, "prefetch_key", None)
                if queue_key is None:
                    continue
                candidates.append(PrefetchRequest(
                    queue_key, item.height, item.width, next_use=now
                ))
                if len(candidates) >= PLAN_CANDIDATE_BOUND:
                    break
        for request in candidates[:PLAN_CANDIDATE_BOUND]:
            device = (request.device if request.device is not None
                      else self._predict_member(request.height,
                                                request.width))
            if device in self.lost_members:
                continue
            cache = self.caches[device]
            if request.key in cache:
                cache.note_next_use(request.key, request.next_use)
                continue
            port = self.ports[device]
            if port.free_at > now:
                continue
            if not cache.admits(request.next_use):
                continue
            seconds = self._managers[device].config_seconds(
                Rect(0, 0, request.height, request.width)
            )
            __, ready = port.acquire(config_seconds=seconds)
            if cache.insert(
                request.key, request.height, request.width,
                ready_at=ready, now=now, next_use=request.next_use,
            ) is not None:
                self.metrics.cache_evictions += 1
            self.metrics.prefetch_loads += 1

    def export_prefetch_state(self) -> dict | None:
        """Serializable prefetch state: per-member caches + wishlist
        (``None`` in ``never`` mode).  The service checkpoint carries
        it so a restored kernel neither re-loads resident bitstreams
        nor forgets pending successor offers — the stall/prefetch
        counters of a restored run must match the uninterrupted one
        bit for bit."""
        if self.caches is None:
            return None
        return {
            "mode": self.prefetch_mode,
            "caches": [cache.export_state() for cache in self.caches],
            "wishlist": [
                {"key": r.key, "height": r.height, "width": r.width,
                 "next_use": r.next_use, "device": r.device}
                for r in self._wishlist.values()
            ],
        }

    def restore_prefetch_state(self, state: dict | None) -> None:
        """Load a previously exported prefetch state (no-op for
        ``None``/``never``-mode kernels)."""
        if state is None or self.caches is None:
            return
        for cache, cache_state in zip(self.caches, state["caches"]):
            cache.restore_state(cache_state)
        self._wishlist = {
            row["key"]: PrefetchRequest(
                key=row["key"], height=int(row["height"]),
                width=int(row["width"]),
                next_use=(float(row["next_use"])
                          if row["next_use"] is not None else None),
                device=(int(row["device"])
                        if row["device"] is not None else None),
            )
            for row in state["wishlist"]
        }

    def forget_member(self, index: int) -> None:
        """Drop a dead member's configuration memory (fault path).

        A member's resident-bitstream cache lives in its configuration
        memory — when the device dies the residents die with it, so the
        cache is emptied and every wishlist offer pinned to that device
        is withdrawn.  Called by the failover machinery right after the
        member joins :attr:`lost_members`; a no-op in ``never`` mode.
        """
        if self.caches is not None:
            self.caches[index] = BitstreamCache()
        self._wishlist = {
            key: request for key, request in self._wishlist.items()
            if request.device != index
        }

    def start_running(self, owner: int, finish_time: float,
                      on_finish: Callable[[], None]) -> None:
        """Register ``owner`` as executing until ``finish_time``."""
        handle = self.events.at(finish_time, on_finish)
        self.running[owner] = (on_finish, handle)

    def finish_running(self, owner: int) -> None:
        """Drop ``owner`` from the running set (finish event fired)."""
        self.running.pop(owner, None)

    def apply_halts(self, outcome: PlacementOutcome | DefragOutcome) -> None:
        """Under the HALT policy, extend each moved running item's
        finish time by its stopped interval — the cost the paper's
        concurrent relocation eliminates."""
        for execution in outcome.moves:
            if not execution.halted:
                continue
            owner = execution.move.owner
            entry = self.running.get(owner)
            if entry is None:
                continue
            on_finish, handle = entry
            self.metrics.halted_seconds += execution.seconds
            if self.halt_listener is not None:
                self.halt_listener(owner, execution.seconds)
            new_handle = self.events.at(
                handle.time + execution.seconds, on_finish
            )
            handle.cancel()
            self.running[owner] = (on_finish, new_handle)

    # -- proactive defrag + telemetry ---------------------------------------

    def maybe_defrag(self) -> DefragOutcome | None:
        """Proactive-defrag hook, checked on finish events.

        The trigger fires **per fabric**: every device's manager is
        consulted against that device's own port-idle signal, and an
        executed consolidation is charged to that device's port
        (background compaction competes with arrivals for that fabric's
        configuration bandwidth, never a sibling's).  HALT-policy stops
        are applied to the moved items; if any device consolidated,
        ``on_space_reclaimed`` wakes waiting work once — the reclaimed
        space may now host something that failed before.  Returns the
        last executed outcome (the single device's outcome outside a
        fleet), or ``None`` when no trigger fired.
        """
        fired: DefragOutcome | None = None
        for index, (manager, port) in enumerate(
                zip(self._managers, self.ports)):
            if index in self.lost_members:
                continue
            outcome = manager.maybe_defrag(
                now=self.events.now,
                port_idle=port.free_at <= self.events.now,
            )
            if outcome is None:
                continue
            self.metrics.proactive_defrags += 1
            self.metrics.defrag_moves += len(outcome.moves)
            self.metrics.defrag_port_seconds += outcome.port_seconds
            self.apply_halts(outcome)
            port.acquire(move_seconds=outcome.port_seconds)
            self._space_version += 1
            fired = outcome
        if fired is None:
            return None
        # One telemetry sample per hook invocation, not per member:
        # the sample is fleet-wide, so several members consolidating at
        # the same instant must not weight it several times (a single
        # device fires at most one outcome here — unchanged).
        if self.sample_on_defrag:
            self.sample()
        if self.on_space_reclaimed is not None:
            self.on_space_reclaimed()
        self.drain()
        return fired

    def sample(self) -> None:
        """Record one fragmentation + utilization telemetry sample.

        Index-backed: the fragmentation sample reads the free-space
        engine's MER set instead of re-sweeping the grid per event.
        The kernel samples **per member** and aggregates site-weighted
        itself — never through a fleet facade's primary-member view —
        so heterogeneous fleets are reported by every fabric they own.
        A 1-member kernel appends its single manager's values verbatim
        (no float round-trip may perturb the bit-identical proxy); the
        per-member readings of the latest sample stay available in
        :attr:`member_samples` for telemetry consumers.
        """
        samples = [
            (m.fragmentation(), m.utilization())
            if i not in self.lost_members else (0.0, 0.0)
            for i, m in enumerate(self._managers)
        ]
        self.member_samples = samples
        live = [
            (self._managers[i], pair)
            for i, pair in enumerate(samples)
            if i not in self.lost_members
        ]
        if not live:
            frag = util = 0.0
        elif len(live) == 1:
            frag, util = live[0][1]
        else:
            weighted_frag = weighted_util = 0.0
            sites = 0
            for manager, (frag_i, util_i) in live:
                count = manager.fabric.device.clb_count
                weighted_frag += frag_i * count
                weighted_util += util_i * count
                sites += count
            frag = weighted_frag / sites
            util = weighted_util / sites
        self.metrics.fragmentation_samples.append(frag)
        self.metrics.utilization_samples.append(util)
