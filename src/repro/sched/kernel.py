"""The scheduling kernel: shared machinery under both schedulers.

Historically :class:`~repro.sched.scheduler.OnlineTaskScheduler` and
:class:`~repro.sched.scheduler.ApplicationFlowScheduler` each hand-rolled
the same ~150 lines: an event queue, a serial reconfiguration port,
HALT-extension arithmetic for moved-while-running functions, the
proactive-defrag hook and fragmentation/utilization sampling — and both
hardwired strict-FIFO admission over a single serial port.

:class:`SchedulingKernel` owns all of that once, behind two policy
axes supplied at construction:

* a :class:`~repro.sched.queues.QueueDiscipline` deciding *admission
  order* of waiting work (``fifo`` / ``priority`` / ``sjf`` /
  ``backfill``), and
* a :class:`~repro.sched.ports.PortModel` deciding how port seconds are
  served (``serial`` / ``multi-N`` / ``icap``).

The schedulers are thin strategy layers: they translate their workload
shape (independent tasks, application chains) into kernel calls and
keep only the bookkeeping unique to that shape.  With the default
``fifo`` + ``serial`` policies the kernel is event-for-event identical
to the historical schedulers — the golden campaign snapshots pin it.

The kernel also carries the *device axis*: handed a
:class:`~repro.fleet.manager.FleetManager` (recognised by its
``members`` attribute) instead of a single manager, it instantiates one
port model **per member device**, charges each placement to the port of
the device that accepted it (``PlacementOutcome.device``), and runs the
proactive-defrag trigger per fabric against that fabric's own port-idle
signal.  Admission itself is unchanged — the fleet manager consults its
device-selection policy inside ``request`` — so a 1-member fleet is
event-for-event identical to the plain single-manager kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.manager import (
    DefragOutcome,
    LogicSpaceManager,
    PlacementOutcome,
)

from .events import EventHandle, EventQueue
from .ports import PortModel, make_port_model
from .queues import QueueDiscipline, make_queue


@dataclass
class ScheduleMetrics:
    """Aggregated outcome of one scheduling run."""

    finished: int = 0
    rejected: int = 0
    waiting_seconds: list[float] = field(default_factory=list)
    turnaround_seconds: list[float] = field(default_factory=list)
    halted_seconds: float = 0.0
    port_busy_seconds: float = 0.0
    makespan: float = 0.0
    rearrangements: int = 0
    moves: int = 0
    #: proactive-defrag counters: background consolidations executed,
    #: the moves they issued, and the port time they consumed (reactive
    #: rearrangements are counted separately above).
    proactive_defrags: int = 0
    defrag_moves: int = 0
    defrag_port_seconds: float = 0.0
    fragmentation_samples: list[float] = field(default_factory=list)
    utilization_samples: list[float] = field(default_factory=list)
    #: application-flow extras (zero for independent-task runs):
    #: reconfiguration-induced stall and prefetch success counts.
    stall_seconds: float = 0.0
    prefetched_functions: int = 0
    total_functions: int = 0

    @property
    def mean_waiting(self) -> float:
        """Mean task waiting time (0 when nothing finished)."""
        return (
            sum(self.waiting_seconds) / len(self.waiting_seconds)
            if self.waiting_seconds
            else 0.0
        )

    @property
    def mean_fragmentation(self) -> float:
        """Mean sampled fragmentation index."""
        return (
            sum(self.fragmentation_samples) / len(self.fragmentation_samples)
            if self.fragmentation_samples
            else 0.0
        )

    @property
    def mean_turnaround(self) -> float:
        """Mean task turnaround time (0 when nothing finished)."""
        return (
            sum(self.turnaround_seconds) / len(self.turnaround_seconds)
            if self.turnaround_seconds
            else 0.0
        )

    @property
    def mean_utilization(self) -> float:
        """Mean sampled site occupancy."""
        return (
            sum(self.utilization_samples) / len(self.utilization_samples)
            if self.utilization_samples
            else 0.0
        )

    @property
    def prefetched_fraction(self) -> float:
        """Fraction of functions whose configuration was fully hidden
        (0.0 for runs with no function chains at all, i.e. the
        independent-task experiments, which never prefetch)."""
        if self.total_functions == 0:
            return 0.0
        return self.prefetched_functions / self.total_functions


class Admissible(Protocol):
    """Work item the kernel's admission loop can try to place: a
    ``height`` x ``width`` footprint requested on behalf of an owner."""

    height: int
    width: int
    task_id: int


class SchedulingKernel:
    """Event queue + port + HALT arithmetic + defrag hook + sampling.

    The strategy layer provides two callbacks:

    * ``on_admitted(item, outcome)`` — a waiting item was successfully
      placed by the admission loop (:meth:`drain`): charge its port
      time, register its execution, record its telemetry;
    * ``on_space_reclaimed()`` — a proactive consolidation just freed
      contiguous space: wake whatever workload shape is waiting for it
      (the task layer re-drains its queue, the application layer
      retries stalled apps).

    The optional ``halt_listener(owner, seconds)`` observes HALT-policy
    stops so the task layer can attribute them to task records.
    """

    def __init__(
        self,
        manager,
        queue: str | QueueDiscipline = "fifo",
        ports: str | PortModel = "serial",
        on_admitted: Callable[[Admissible, PlacementOutcome], None]
        | None = None,
        on_space_reclaimed: Callable[[], None] | None = None,
        halt_listener: Callable[[int, float], None] | None = None,
        sample_on_defrag: bool = True,
    ) -> None:
        self.manager = manager
        members = getattr(manager, "members", None)
        #: the fabrics the kernel drives: the fleet's members, or the
        #: single manager itself.  Index i's port is ``ports[i]``.
        self._managers: list[LogicSpaceManager] = (
            list(members) if members is not None else [manager]
        )
        self.events = EventQueue()
        self.queue = make_queue(queue)
        if not isinstance(ports, (str, int)) and len(self._managers) > 1:
            raise ValueError(
                "a pre-built port-model instance cannot be shared across "
                "a fleet; pass a model name so each device gets its own"
            )
        #: one reconfiguration-port model per device, so configuration
        #: bandwidth is a per-fabric resource.
        self.ports = [
            make_port_model(ports, self.events) for _ in self._managers
        ]
        self.metrics = ScheduleMetrics()
        self.on_admitted = on_admitted
        self.on_space_reclaimed = on_space_reclaimed
        self.halt_listener = halt_listener
        #: whether a proactive consolidation records a telemetry sample
        #: (the task scheduler samples, the application scheduler never
        #: sampled — preserved for metric compatibility).
        self.sample_on_defrag = sample_on_defrag
        #: owner -> (finish action, finish handle) of executing work,
        #: so HALT-policy moves can push finish events out.
        self.running: dict[
            int, tuple[Callable[[], None], EventHandle]
        ] = {}
        #: occupancy version counter: a failed admission pass is only
        #: retried after the logic space actually changed.
        self._space_version = 0
        self._failed_at_version: int | None = None
        #: per-item failure memo: admission token -> space version at
        #: which the item's placement failed.  ``manager.request`` is a
        #: pure function of the occupancy, so re-asking before the space
        #: changed would re-run the (expensive) rearrangement planner to
        #: reach the same "no" — the multi-candidate disciplines
        #: (backfill above all) would otherwise replan the whole queue
        #: per arrival.  The memo is keyed on a monotonically-assigned
        #: token, never on ``id(item)``: a long-running service creates
        #: and destroys items continuously, and a recycled interpreter
        #: id would let a *new* item inherit a stale failure memo and be
        #: silently skipped for a pass.
        self._item_failed_at: dict[int, int] = {}
        #: id(item) -> admission token, live only while the item is
        #: queued (the queue holds a strong reference, so the id cannot
        #: be recycled while an entry exists here).
        self._item_tokens: dict[int, int] = {}
        self._token_seq = 0
        #: external-clock pause flag: while paused, admission passes are
        #: deferred and the clock may not advance (checkpoint windows).
        self._paused = False
        #: per-member (fragmentation, utilization) readings of the most
        #: recent :meth:`sample` (one pair for a single-device kernel).
        self.member_samples: list[tuple[float, float]] = []

    # -- event plumbing -----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.events.now

    @property
    def port(self) -> PortModel:
        """The primary device's port model (the only one on a
        single-device kernel; fleet-wide accounting should read
        :attr:`port_busy_seconds` instead)."""
        return self.ports[0]

    @property
    def port_busy_seconds(self) -> float:
        """Total reconfiguration-port time consumed across all devices."""
        return sum(port.busy_seconds for port in self.ports)

    def run(self) -> None:
        """Drain the event queue, then stamp the run-wide metrics."""
        self.events.run()
        self.stamp()

    def stamp(self) -> None:
        """Refresh the run-wide metrics (makespan, port totals) to the
        current instant — :meth:`run` does it once at the end of a batch
        run; incremental drivers call it after each :meth:`advance`."""
        self.metrics.makespan = self.events.now
        self.metrics.port_busy_seconds = self.port_busy_seconds

    # -- external clock (always-on service mode) ----------------------------

    def advance(self, until: float) -> None:
        """Process events up to ``until`` and move the clock there.

        The external-clock hook for incremental drivers (the always-on
        service): instead of draining the whole event queue to
        completion, the caller advances simulated time in steps — to
        each arrival instant, or along a wall-clock ticker.  Metrics are
        re-stamped after every step so they are always current.
        """
        if self._paused:
            raise RuntimeError("kernel is paused; resume() before advancing")
        if until < self.events.now:
            raise ValueError(
                f"cannot advance backwards ({until} < {self.events.now})"
            )
        self.events.run(until=until)
        self.stamp()

    @property
    def paused(self) -> bool:
        """True while the kernel is paused (admission + clock frozen)."""
        return self._paused

    def pause(self) -> None:
        """Freeze admission and the clock (checkpoint window): while
        paused, :meth:`drain` defers and :meth:`advance` refuses, so a
        snapshot observes a quiescent kernel."""
        self._paused = True

    def resume(self) -> None:
        """Lift a :meth:`pause` and run the admission pass that was
        deferred while frozen."""
        if not self._paused:
            return
        self._paused = False
        self.drain()

    # -- admission ----------------------------------------------------------

    def _token(self, item: Admissible) -> int:
        """The admission token of a queued item (assigned lazily for
        items pushed around :meth:`enqueue`, e.g. by tests driving the
        queue directly).  Tokens are monotonic and never reused, so a
        failure memo can never outlive its item into a recycled id."""
        token = self._item_tokens.get(id(item))
        if token is None:
            token = self._token_seq
            self._token_seq += 1
            self._item_tokens[id(item)] = token
        return token

    def _forget(self, item: Admissible) -> None:
        """Drop an item's token and failure memo (it left the queue)."""
        token = self._item_tokens.pop(id(item), None)
        if token is not None:
            self._item_failed_at.pop(token, None)

    def enqueue(self, item: Admissible, *, priority: int = 0,
                area: int = 0) -> None:
        """Add a work item to the waiting queue and try to place it.

        Disciplines whose candidate set depends on arrivals (priority,
        sjf, backfill) reopen a blocked pass here: the newcomer may be
        a better — or the first feasible — candidate even though the
        occupancy did not change.  FIFO keeps the short-circuit: a push
        behind a blocked head can never alter the head.
        """
        self.queue.push(item, priority=priority, area=area,
                        now=self.events.now)
        # A fresh token per admission attempt: re-enqueueing an object
        # (or a new object on a recycled id) never inherits a memo.
        self._item_tokens[id(item)] = self._token_seq
        self._token_seq += 1
        if getattr(self.queue, "arrival_reopens_pass", True):
            self._failed_at_version = None
        self.drain()

    def cancel(self, item: Admissible) -> None:
        """Drop a waiting item (timeout/abandon): tombstoned in O(1).

        The admission order changed, so the next pass is given a fresh
        chance even if the space did not move.
        """
        self.queue.discard(item)
        self._forget(item)
        self._failed_at_version = None
        self.drain()

    def note_space_changed(self) -> None:
        """Record that occupancy changed (placements do this themselves;
        releases must call it so blocked passes are retried)."""
        self._space_version += 1

    def _prefetch(self) -> None:
        """Warm the manager's fit/plan caches for the coming pass.

        Purely an optimisation: the per-item ``manager.request`` calls
        in :meth:`drain` return bit-identical outcomes with or without
        it.  The shapes handed over are exactly this pass's candidate
        set — the discipline's ``scan`` order, which the loop below is
        about to probe one ``request`` at a time — so the manager can
        resolve the whole batch against one read of the free-space
        state instead of one probe per item (the multi-candidate
        disciplines, backfill above all, put many items through one
        pass).  ``scan`` only purges tombstones, so iterating it here
        and again below yields the same items.  Items already
        failure-memoed at this space version are skipped (their answers
        are cached).  A fleet manager forwards the batch to every
        member that exposes the hook (see
        :meth:`repro.fleet.manager.FleetManager.prefetch_admission`),
        so multi-device runs keep the batched-probe fast path.
        """
        prefetch = getattr(self.manager, "prefetch_admission", None)
        if prefetch is None:
            return
        shapes: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for item in self.queue.scan(self.events.now):
            if self._item_failed_at.get(
                    self._token(item)) == self._space_version:
                continue
            shape = (item.height, item.width)
            if shape not in seen:
                seen.add(shape)
                shapes.append(shape)
        if shapes:
            prefetch(shapes)

    def drain(self) -> None:
        """Place waiting items in discipline order until blocked.

        One *pass* asks the discipline for its candidate order and
        attempts each; a successful placement restarts the pass (the
        order may have changed), a fully failed pass marks the current
        space version as blocked so no request is re-planned until the
        occupancy actually changes.  While the kernel is paused
        (checkpoint window), the pass is deferred to :meth:`resume`.
        """
        if self._paused:
            return
        while len(self.queue):
            if self._failed_at_version == self._space_version:
                return  # nothing changed since the last blocked pass
            self._prefetch()
            placed = False
            for item in self.queue.scan(self.events.now):
                token = self._token(item)
                if self._item_failed_at.get(token) == self._space_version:
                    continue  # same occupancy, same answer: skip replan
                outcome = self.manager.request(
                    item.height, item.width, item.task_id
                )
                if outcome.success:
                    self.queue.take(item)
                    self._forget(item)
                    self._space_version += 1
                    if self.on_admitted is not None:
                        self.on_admitted(item, outcome)
                    placed = True
                    break
                self._item_failed_at[token] = self._space_version
            if not placed:
                self._failed_at_version = self._space_version
                return

    # -- port + HALT accounting ---------------------------------------------

    def charge_placement(self, outcome: PlacementOutcome) -> float:
        """Count a placement's moves, apply HALT stops, charge the port.

        The port charged is the one of the device that accepted the
        request (``outcome.device``; always 0 outside a fleet).
        Returns the instant the item's own configuration completes (the
        end of its contiguous port job).
        """
        if outcome.moves:
            self.metrics.rearrangements += 1
            self.metrics.moves += len(outcome.moves)
            self.apply_halts(outcome)
        __, config_done = self.ports[outcome.device].acquire(
            config_seconds=outcome.config_seconds,
            move_seconds=outcome.rearrange_seconds,
        )
        return config_done

    def start_running(self, owner: int, finish_time: float,
                      on_finish: Callable[[], None]) -> None:
        """Register ``owner`` as executing until ``finish_time``."""
        handle = self.events.at(finish_time, on_finish)
        self.running[owner] = (on_finish, handle)

    def finish_running(self, owner: int) -> None:
        """Drop ``owner`` from the running set (finish event fired)."""
        self.running.pop(owner, None)

    def apply_halts(self, outcome: PlacementOutcome | DefragOutcome) -> None:
        """Under the HALT policy, extend each moved running item's
        finish time by its stopped interval — the cost the paper's
        concurrent relocation eliminates."""
        for execution in outcome.moves:
            if not execution.halted:
                continue
            owner = execution.move.owner
            entry = self.running.get(owner)
            if entry is None:
                continue
            on_finish, handle = entry
            self.metrics.halted_seconds += execution.seconds
            if self.halt_listener is not None:
                self.halt_listener(owner, execution.seconds)
            new_handle = self.events.at(
                handle.time + execution.seconds, on_finish
            )
            handle.cancel()
            self.running[owner] = (on_finish, new_handle)

    # -- proactive defrag + telemetry ---------------------------------------

    def maybe_defrag(self) -> DefragOutcome | None:
        """Proactive-defrag hook, checked on finish events.

        The trigger fires **per fabric**: every device's manager is
        consulted against that device's own port-idle signal, and an
        executed consolidation is charged to that device's port
        (background compaction competes with arrivals for that fabric's
        configuration bandwidth, never a sibling's).  HALT-policy stops
        are applied to the moved items; if any device consolidated,
        ``on_space_reclaimed`` wakes waiting work once — the reclaimed
        space may now host something that failed before.  Returns the
        last executed outcome (the single device's outcome outside a
        fleet), or ``None`` when no trigger fired.
        """
        fired: DefragOutcome | None = None
        for manager, port in zip(self._managers, self.ports):
            outcome = manager.maybe_defrag(
                now=self.events.now,
                port_idle=port.free_at <= self.events.now,
            )
            if outcome is None:
                continue
            self.metrics.proactive_defrags += 1
            self.metrics.defrag_moves += len(outcome.moves)
            self.metrics.defrag_port_seconds += outcome.port_seconds
            self.apply_halts(outcome)
            port.acquire(move_seconds=outcome.port_seconds)
            self._space_version += 1
            fired = outcome
        if fired is None:
            return None
        # One telemetry sample per hook invocation, not per member:
        # the sample is fleet-wide, so several members consolidating at
        # the same instant must not weight it several times (a single
        # device fires at most one outcome here — unchanged).
        if self.sample_on_defrag:
            self.sample()
        if self.on_space_reclaimed is not None:
            self.on_space_reclaimed()
        self.drain()
        return fired

    def sample(self) -> None:
        """Record one fragmentation + utilization telemetry sample.

        Index-backed: the fragmentation sample reads the free-space
        engine's MER set instead of re-sweeping the grid per event.
        The kernel samples **per member** and aggregates site-weighted
        itself — never through a fleet facade's primary-member view —
        so heterogeneous fleets are reported by every fabric they own.
        A 1-member kernel appends its single manager's values verbatim
        (no float round-trip may perturb the bit-identical proxy); the
        per-member readings of the latest sample stay available in
        :attr:`member_samples` for telemetry consumers.
        """
        samples = [
            (m.fragmentation(), m.utilization()) for m in self._managers
        ]
        self.member_samples = samples
        if len(samples) == 1:
            frag, util = samples[0]
        else:
            weighted_frag = weighted_util = 0.0
            sites = 0
            for manager, (frag_i, util_i) in zip(self._managers, samples):
                count = manager.fabric.device.clb_count
                weighted_frag += frag_i * count
                weighted_util += util_i * count
                sites += count
            frag = weighted_frag / sites
            util = weighted_util / sites
        self.metrics.fragmentation_samples.append(frag)
        self.metrics.utilization_samples.append(util)
