"""On-line scheduling substrate: event kernel, tasks, workloads,
queue disciplines, port models, the scheduling kernel and the two
scheduler strategy layers (DESIGN.md, section 3)."""

from .events import EventHandle, EventQueue, SequentialResource
from .kernel import ScheduleMetrics, SchedulingKernel
from .ports import (
    PORT_MODEL_NAMES,
    IcapPortModel,
    MultiPortModel,
    PortModel,
    SerialPortModel,
    make_port_model,
    normalize_port_model,
)
from .queues import (
    QUEUE_DISCIPLINES,
    QUEUE_NAMES,
    BackfillDiscipline,
    FifoDiscipline,
    PriorityDiscipline,
    QueueDiscipline,
    SjfDiscipline,
    make_queue,
)
from .scheduler import (
    ApplicationFlowScheduler,
    OnlineTaskScheduler,
    summarize_application_runs,
)
from .tasks import (
    ApplicationRun,
    ApplicationSpec,
    FunctionRun,
    FunctionSpec,
    Task,
    TaskState,
)
from .workload import (
    WORKLOADS,
    WorkloadSpec,
    bursty_tasks,
    codec_swap_applications,
    fig1_applications,
    heavy_tail_tasks,
    make_workload,
    random_tasks,
    register_workload,
    get_workload,
    uniform_requests,
)

__all__ = [
    "ApplicationFlowScheduler",
    "BackfillDiscipline",
    "FifoDiscipline",
    "IcapPortModel",
    "MultiPortModel",
    "PORT_MODEL_NAMES",
    "PortModel",
    "PriorityDiscipline",
    "QUEUE_DISCIPLINES",
    "QUEUE_NAMES",
    "QueueDiscipline",
    "SchedulingKernel",
    "SerialPortModel",
    "SjfDiscipline",
    "WORKLOADS",
    "WorkloadSpec",
    "ApplicationRun",
    "ApplicationSpec",
    "EventHandle",
    "EventQueue",
    "FunctionRun",
    "FunctionSpec",
    "OnlineTaskScheduler",
    "ScheduleMetrics",
    "SequentialResource",
    "Task",
    "TaskState",
    "bursty_tasks",
    "codec_swap_applications",
    "fig1_applications",
    "heavy_tail_tasks",
    "make_port_model",
    "make_queue",
    "make_workload",
    "normalize_port_model",
    "random_tasks",
    "register_workload",
    "summarize_application_runs",
    "get_workload",
    "uniform_requests",
]
