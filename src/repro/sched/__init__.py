"""On-line scheduling substrate: event kernel, tasks, workloads,
schedulers (DESIGN.md, section 3)."""

from .events import EventHandle, EventQueue, SequentialResource
from .scheduler import (
    ApplicationFlowScheduler,
    OnlineTaskScheduler,
    ScheduleMetrics,
    summarize_application_runs,
)
from .tasks import (
    ApplicationRun,
    ApplicationSpec,
    FunctionRun,
    FunctionSpec,
    Task,
    TaskState,
)
from .workload import (
    WORKLOADS,
    WorkloadSpec,
    bursty_tasks,
    codec_swap_applications,
    fig1_applications,
    heavy_tail_tasks,
    make_workload,
    random_tasks,
    register_workload,
    get_workload,
    uniform_requests,
)

__all__ = [
    "ApplicationFlowScheduler",
    "WORKLOADS",
    "WorkloadSpec",
    "ApplicationRun",
    "ApplicationSpec",
    "EventHandle",
    "EventQueue",
    "FunctionRun",
    "FunctionSpec",
    "OnlineTaskScheduler",
    "ScheduleMetrics",
    "SequentialResource",
    "Task",
    "TaskState",
    "bursty_tasks",
    "codec_swap_applications",
    "fig1_applications",
    "heavy_tail_tasks",
    "make_workload",
    "random_tasks",
    "register_workload",
    "summarize_application_runs",
    "get_workload",
    "uniform_requests",
]
