"""On-line scheduling substrate: event kernel, tasks, workloads,
schedulers (DESIGN.md, section 3)."""

from .events import EventHandle, EventQueue, SequentialResource
from .scheduler import (
    ApplicationFlowScheduler,
    OnlineTaskScheduler,
    ScheduleMetrics,
)
from .tasks import (
    ApplicationRun,
    ApplicationSpec,
    FunctionRun,
    FunctionSpec,
    Task,
    TaskState,
)
from .workload import fig1_applications, random_tasks, uniform_requests

__all__ = [
    "ApplicationFlowScheduler",
    "ApplicationRun",
    "ApplicationSpec",
    "EventHandle",
    "EventQueue",
    "FunctionRun",
    "FunctionSpec",
    "OnlineTaskScheduler",
    "ScheduleMetrics",
    "SequentialResource",
    "Task",
    "TaskState",
    "fig1_applications",
    "random_tasks",
    "uniform_requests",
]
