"""Queue disciplines: pluggable admission order for waiting work.

The scheduling kernel (:mod:`repro.sched.kernel`) keeps *one* waiting
queue of unplaced work items and asks a :class:`QueueDiscipline` two
questions: in what order should placement be attempted on this pass
(:meth:`QueueDiscipline.scan`), and what is the full live ordering
(:meth:`QueueDiscipline.ordered`, used by the application scheduler's
stall retry).  Four disciplines ship:

* ``fifo`` — strict arrival order; the head blocks the queue until it
  places (bit-identical to the historical hand-rolled scheduler loop);
* ``priority`` — highest priority class first, FIFO within a class
  (Ullmann et al., *Hardware Support for QoS-based Function Allocation
  in Reconfigurable Systems*: urgent functions preempt the admission
  order, not the device);
* ``sjf`` — smallest configuration area first (shortest-job-first by
  the resource that actually contends: contiguous CLB sites);
* ``backfill`` — FIFO, but when the head does not fit, *smaller* tasks
  behind it may be attempted in its place — unless the head has already
  waited longer than ``max_age`` seconds, after which the queue blocks
  strictly to stop the head from starving.

Every discipline removes cancelled entries with a **lazy tombstone**:
:meth:`QueueDiscipline.discard` only flips a flag (O(1)); dead entries
are skipped at the head/top as walks pass over them, and a periodic
compaction rebuilds the container once tombstones outnumber live
entries, so the amortised cost per cancellation stays O(1) (O(log n)
for the heaps).  A timeout under a heavy-tail workload therefore never
pays the O(n) ``deque.remove`` the old scheduler did.

Note on the application scheduler: its stall retry *always* attempts
every stalled application (a placement failure never blocks the rest —
the historical behaviour), so disciplines contribute only the retry
*order* there; ``backfill``'s blocked-head semantics coincide with
``fifo`` for application workloads.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Protocol

#: Default starvation bound for the backfill discipline: once the head
#: of the queue has waited this long, nothing may jump it any more.
DEFAULT_BACKFILL_MAX_AGE = 5.0


@dataclass(slots=True)
class QueueEntry:
    """Internal book-keeping for one queued work item.

    ``item`` is whatever the caller queues (a task, an application
    stall record); the discipline orders entries only by the scalar
    metadata supplied at :meth:`QueueDiscipline.push` time.
    """

    item: object
    priority: int
    area: int
    enqueued_at: float
    seq: int
    alive: bool = True


class QueueDiscipline(Protocol):
    """Admission-order policy over a set of waiting work items."""

    name: str
    #: whether a *new arrival* can change the outcome of a blocked
    #: admission pass.  False for FIFO (the blocked head stays the sole
    #: candidate, so the kernel may keep its occupancy-version
    #: short-circuit); True for any discipline where an arrival can
    #: become a better candidate (priority/sjf) or a feasible backfill.
    arrival_reopens_pass: bool

    def push(self, item: object, *, priority: int = 0, area: int = 0,
             now: float = 0.0) -> None:
        """Enqueue ``item`` with its ordering metadata."""
        ...

    def discard(self, item: object) -> None:
        """Tombstone ``item`` (O(1); unknown items are ignored)."""
        ...

    def take(self, item: object) -> None:
        """Remove ``item`` after it was successfully placed."""
        ...

    def scan(self, now: float) -> Iterator[object]:
        """Yield items in the order placement should be attempted on
        one admission pass; the pass is *blocked* when every yielded
        item fails to place."""
        ...

    def ordered(self, now: float) -> list[object]:
        """Every live item, in full discipline order."""
        ...

    def __len__(self) -> int:
        """Number of live (non-tombstoned) items."""
        ...


class _DisciplineBase:
    """Shared entry/tombstone plumbing for the concrete disciplines."""

    name = "base"
    arrival_reopens_pass = True

    def __init__(self) -> None:
        self._entries: dict[int, QueueEntry] = {}
        self._seq = 0
        self._live = 0

    def _entry(self, item: object, priority: int, area: int,
               now: float) -> QueueEntry:
        """Wrap ``item`` into a live entry and register it."""
        entry = QueueEntry(item, priority, area, now, self._seq)
        self._seq += 1
        self._entries[id(item)] = entry
        self._live += 1
        return entry

    def discard(self, item: object) -> None:
        """Tombstone ``item`` in O(1); unknown items are a no-op."""
        entry = self._entries.pop(id(item), None)
        if entry is not None and entry.alive:
            entry.alive = False
            self._live -= 1

    def take(self, item: object) -> None:
        """Remove a successfully placed ``item`` (same lazy scheme)."""
        self.discard(item)

    def __len__(self) -> int:
        """Live item count (tombstones excluded)."""
        return self._live


class FifoDiscipline(_DisciplineBase):
    """Strict first-in-first-out: the head alone is ever attempted."""

    name = "fifo"
    #: a push behind a blocked head cannot change the head, so the
    #: kernel's blocked-pass short-circuit stays valid across arrivals.
    arrival_reopens_pass = False

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[QueueEntry] = deque()

    def push(self, item: object, *, priority: int = 0, area: int = 0,
             now: float = 0.0) -> None:
        """Append ``item`` to the tail of the queue."""
        self._queue.append(self._entry(item, priority, area, now))

    def _compact(self) -> None:
        """Physically drop tombstones once they outnumber live entries
        (keeps every walk over the queue O(live), amortised)."""
        if len(self._queue) > 2 * self._live + 8:
            self._queue = deque(e for e in self._queue if e.alive)

    def _purge_head(self) -> QueueEntry | None:
        """Drop dead entries off the head; return the live head."""
        self._compact()
        while self._queue and not self._queue[0].alive:
            self._queue.popleft()
        return self._queue[0] if self._queue else None

    def scan(self, now: float) -> Iterator[object]:
        """Yield only the head: FIFO blocks on its first failure."""
        head = self._purge_head()
        if head is not None:
            yield head.item

    def ordered(self, now: float) -> list[object]:
        """Live items in arrival order."""
        self._compact()
        return [e.item for e in self._queue if e.alive]


class BackfillDiscipline(FifoDiscipline):
    """FIFO with bounded backfilling past a blocked head.

    When the head fails to place, strictly *smaller* (by area) live
    tasks behind it are attempted in arrival order — but only while the
    head's waiting age is at most ``max_age`` seconds.  An over-age head
    reverts the queue to strict FIFO, so backfilled traffic can delay
    the head by at most ``max_age`` before the queue blocks for it.
    """

    name = "backfill"
    #: a newly arrived smaller task may be a feasible backfill even
    #: though the blocked head (and the space) did not change.
    arrival_reopens_pass = True

    def __init__(self, max_age: float = DEFAULT_BACKFILL_MAX_AGE) -> None:
        super().__init__()
        if max_age < 0:
            raise ValueError("max_age cannot be negative")
        self.max_age = max_age

    def scan(self, now: float) -> Iterator[object]:
        """Yield the head, then (age permitting) smaller followers."""
        head = self._purge_head()
        if head is None:
            return
        yield head.item
        if now - head.enqueued_at > self.max_age:
            return  # head is starving: strict FIFO until it places
        for entry in list(self._queue):
            if entry.alive and entry is not head and entry.area < head.area:
                yield entry.item


class _HeapDiscipline(_DisciplineBase):
    """Shared heap plumbing for the key-ordered disciplines."""

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[tuple, QueueEntry]] = []

    def _key(self, entry: QueueEntry) -> tuple:
        raise NotImplementedError

    def push(self, item: object, *, priority: int = 0, area: int = 0,
             now: float = 0.0) -> None:
        """Insert ``item`` at its key-ordered position."""
        entry = self._entry(item, priority, area, now)
        heapq.heappush(self._heap, (self._key(entry), entry))

    def _compact(self) -> None:
        """Rebuild the heap without tombstones once they dominate
        (entry keys embed the arrival sequence, so the rebuilt heap is
        deterministically ordered like the original)."""
        if len(self._heap) > 2 * self._live + 8:
            self._heap = [pair for pair in self._heap if pair[1].alive]
            heapq.heapify(self._heap)

    def _purge_top(self) -> QueueEntry | None:
        """Pop dead entries off the heap top; return the live best."""
        self._compact()
        while self._heap and not self._heap[0][1].alive:
            heapq.heappop(self._heap)
        return self._heap[0][1] if self._heap else None

    def scan(self, now: float) -> Iterator[object]:
        """Yield only the best-keyed item: the order is strict, so a
        blocked best candidate blocks the pass."""
        top = self._purge_top()
        if top is not None:
            yield top.item

    def ordered(self, now: float) -> list[object]:
        """Live items sorted by the discipline key."""
        self._compact()
        live = [entry for __, entry in self._heap if entry.alive]
        live.sort(key=self._key)
        return [entry.item for entry in live]


class PriorityDiscipline(_HeapDiscipline):
    """Highest priority class first; FIFO within a class."""

    name = "priority"

    def _key(self, entry: QueueEntry) -> tuple:
        """Sort key: descending priority, then arrival sequence."""
        return (-entry.priority, entry.seq)


class SjfDiscipline(_HeapDiscipline):
    """Smallest configuration area first (ties broken FIFO)."""

    name = "sjf"

    def _key(self, entry: QueueEntry) -> tuple:
        """Sort key: ascending area, then arrival sequence."""
        return (entry.area, entry.seq)


#: Queue discipline registry: name -> zero-argument factory.
QUEUE_DISCIPLINES = {
    "fifo": FifoDiscipline,
    "priority": PriorityDiscipline,
    "sjf": SjfDiscipline,
    "backfill": BackfillDiscipline,
}

#: Valid queue-discipline names, in registry order.
QUEUE_NAMES = tuple(QUEUE_DISCIPLINES)


def make_queue(discipline: str | QueueDiscipline) -> QueueDiscipline:
    """Resolve a discipline name (or pass an instance through)."""
    if not isinstance(discipline, str):
        return discipline
    try:
        return QUEUE_DISCIPLINES[discipline]()
    except KeyError:
        raise ValueError(
            f"unknown queue discipline {discipline!r}; "
            f"choose from {QUEUE_NAMES}"
        ) from None
