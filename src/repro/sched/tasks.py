"""Task and application models for the on-line scheduling experiments.

Two workload shapes appear in the paper:

* **Independent tasks** (the Diessel-style stream behind the
  defragmentation study): each task needs a ``height x width`` rectangle
  of CLBs for ``exec_seconds``, arrives on-line, and waits when no
  contiguous space exists.
* **Applications** (Fig. 1): "an application comprises a set of
  functions that are predominantly executed sequentially"; while one
  function runs, its successor can be configured in advance during the
  reconfiguration interval *rt*, hiding the reconfiguration time
  entirely — unless space or the configuration port is missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.device.geometry import Rect


class TaskState(Enum):
    """Life-cycle of a placed task."""

    PENDING = "pending"
    QUEUED = "queued"
    CONFIGURING = "configuring"
    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"
    REJECTED = "rejected"
    #: dropped by an explicit cancel request (the always-on service's
    #: API; batch runs never enter this state).
    CANCELLED = "cancelled"
    #: lost to a fault: the task was running when its host member died
    #: (or a stuck-at outbreak took its region) and no surviving fabric
    #: could ever host its footprint (see :mod:`repro.faults`).
    DROPPED = "dropped"


@dataclass(slots=True)
class Task:
    """One independent task instance."""

    task_id: int
    height: int
    width: int
    exec_seconds: float
    arrival: float
    #: maximum queueing time before the request is abandoned (None =
    #: wait forever).  Diessel et al. [5] measure the *allocation rate*
    #: under exactly this kind of impatience.
    max_wait: float | None = None
    #: QoS priority class (higher = more urgent); only the ``priority``
    #: queue discipline reads it — FIFO admission ignores classes.
    priority: int = 0
    #: owning tenant (multi-tenant traces; empty for the synthetic
    #: single-tenant generators).  Purely a label: admission never reads
    #: it, but per-tenant fairness accounting groups finish counts by it.
    tenant: str = ""
    state: TaskState = TaskState.PENDING
    rect: Rect | None = None
    configured_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    halted_seconds: float = 0.0

    @property
    def area(self) -> int:
        """Footprint in CLB sites."""
        return self.height * self.width

    @property
    def prefetch_key(self) -> str:
        """Bitstream identity for the resident-bitstream cache.

        Independent tasks are one-shot, so the key is per-task: a task
        never *hits* the cache, but the planner can still preload its
        bitstream while it waits in the queue (the kernel's
        ``maybe_prefetch`` walks the queue discipline's order and picks
        up any entry exposing this attribute).
        """
        return f"task:{self.task_id}"

    @property
    def waiting_seconds(self) -> float:
        """Time between arrival and execution start (inf if never ran)."""
        if self.started_at is None:
            return float("inf")
        return self.started_at - self.arrival

    @property
    def turnaround_seconds(self) -> float:
        """Arrival to completion (inf if unfinished)."""
        if self.finished_at is None:
            return float("inf")
        return self.finished_at - self.arrival

    def __str__(self) -> str:
        return (
            f"<task {self.task_id} {self.height}x{self.width} "
            f"{self.state.value}>"
        )


@dataclass(frozen=True, slots=True)
class FunctionSpec:
    """One function of an application (Fig. 1's A1, B2, C3 ...)."""

    name: str
    height: int
    width: int
    exec_seconds: float

    @property
    def area(self) -> int:
        """Footprint in CLB sites."""
        return self.height * self.width


@dataclass
class ApplicationSpec:
    """An application: an ordered chain of functions."""

    name: str
    functions: list[FunctionSpec]
    #: QoS priority class (higher = more urgent); read by the
    #: ``priority`` queue discipline when stalled applications compete
    #: for released space.
    priority: int = 0

    @property
    def total_area(self) -> int:
        """Sum of function footprints (can exceed the device: that is
        the virtual-hardware premise)."""
        return sum(f.area for f in self.functions)

    @property
    def total_exec_seconds(self) -> float:
        """Pure execution time of the chain (the zero-overhead bound)."""
        return sum(f.exec_seconds for f in self.functions)


@dataclass(slots=True)
class FunctionRun:
    """Execution record of one function instance."""

    app: str
    spec: FunctionSpec
    rect: Rect | None = None
    configured_at: float | None = None
    #: port seconds the function's own configuration cost (excluding
    #: rearrangement moves); the stall accounting uses it to tell
    #: un-hidden configuration apart from waiting for space.
    config_seconds: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def prefetched(self) -> bool:
        """True when the function was configured strictly before it
        started — the Fig. 1 ideal ("the reconfiguration time overhead
        may be virtually zero, if new functions are swapped in advance").
        A function whose start had to wait for its own configuration is
        not prefetched: its reconfiguration time was exposed."""
        return (
            self.configured_at is not None
            and self.started_at is not None
            and self.configured_at < self.started_at
        )


@dataclass
class ApplicationRun:
    """Execution record of a whole application."""

    spec: ApplicationSpec
    runs: list[FunctionRun] = field(default_factory=list)
    finished_at: float | None = None

    @property
    def makespan(self) -> float:
        """Total elapsed time (inf if unfinished)."""
        if self.finished_at is None or not self.runs:
            return float("inf")
        first = self.runs[0]
        start = first.started_at if first.started_at is not None else 0.0
        return self.finished_at - start

    @property
    def stall_seconds(self) -> float:
        """Reconfiguration-induced delay: elapsed minus pure execution."""
        if self.finished_at is None:
            return float("inf")
        return max(0.0, self.makespan - self.spec.total_exec_seconds)
