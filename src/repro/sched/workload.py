"""Workload generators for the scheduling experiments.

* :func:`random_tasks` — the Diessel-style on-line stream used by the
  defragmentation study: Poisson arrivals, uniform rectangle sizes,
  uniform service times (reference [5] evaluates on exactly this shape).
* :func:`bursty_tasks` — arrivals grouped into bursts separated by idle
  gaps, the worst case for fragmentation: several functions compete for
  contiguous space at once.
* :func:`heavy_tail_tasks` — Pareto-distributed service times: a few
  long-lived functions pin regions while many short ones churn around
  them, the regime where rearrangement pays off most.
* :func:`fig1_applications` — the three applications of Fig. 1 (A with
  two functions, B with two, C with four) sized so their combined area
  demand exceeds 100 % of the device — the virtual-hardware premise that
  "a set of applications, which in total require far more than 100% of
  the FPGA available resources" can share one part.
* :func:`fragmenting_tasks` — many small *long-lived* functions
  interleaved with large impatient arrivals: the anchors shatter the
  free space exactly when a big contiguous block is demanded, the
  stress case for the proactive defragmentation policies.
* :func:`codec_swap_applications` — randomized codec-swap-style function
  chains (the paper's communication/video/audio context-switch example),
  scaled to a device.
* :func:`fleet_surge_tasks` — a sustained arrival surge with bounded
  patience: the offered load saturates a single device's space *and*
  configuration port, but spreads comfortably over a fleet of a few —
  the workload the multi-fabric experiments (:mod:`repro.fleet`) use to
  separate device-selection policies and fleet sizes.

Every generator is deterministic per seed.  The :data:`WORKLOADS`
registry maps generator names to factories so the campaign engine
(:mod:`repro.campaign`) can reference workloads declaratively.  The
registry also carries the trace layer (:mod:`repro.sched.trace`): the
``trace`` replayer plus the ``diurnal`` / ``flash-crowd`` /
``multi-tenant`` shaped generators, and the search-tuned
``fragmenting-adversarial`` stress entry (see
``tools/find_adversarial_seed.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.device.devices import VirtexDevice

from .tasks import ApplicationSpec, FunctionSpec, Task
from .trace import (
    diurnal_tasks,
    flash_crowd_tasks,
    multi_tenant_tasks,
    read_trace,
)

#: worst-of-search seed for the ``fragmenting-adversarial`` workload:
#: ``tools/find_adversarial_seed.py`` sweeps seeds of the adversarial
#: generator on the fixed XC2S15/concurrent/fifo/serial cell and this
#: one maximized rejections (11 of 40 tasks, over a sweep of 128
#: seeds); ``tests/test_adversarial.py`` pins its behaviour so a
#: generator change that blunts the attack fails loudly.
ADVERSARIAL_SEED = 16


def _draw_priority(rng: random.Random, priority_levels: int) -> int:
    """Uniform priority class in ``[0, priority_levels)``.

    With one level (the default) *no* random draw happens at all, so
    priority-unaware workloads keep their historical random streams
    bit-identical — the golden campaign snapshots depend on it.
    """
    if priority_levels < 1:
        raise ValueError("priority_levels must be positive")
    if priority_levels == 1:
        return 0
    return rng.randrange(priority_levels)


def random_tasks(
    n: int,
    seed: int = 0,
    mean_interarrival: float = 0.05,
    size_range: tuple[int, int] = (3, 10),
    exec_range: tuple[float, float] = (0.2, 2.0),
    max_wait: float | None = None,
    priority_levels: int = 1,
) -> list[Task]:
    """An on-line stream of ``n`` independent tasks.

    Exponential interarrivals (rate 1/``mean_interarrival``), uniform
    integer heights/widths in ``size_range``, uniform service times in
    ``exec_range``; optional queueing impatience ``max_wait`` and a
    uniform priority mix over ``priority_levels`` QoS classes.
    Deterministic per seed.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    lo, hi = size_range
    if lo < 1 or hi < lo:
        raise ValueError("invalid size_range")
    rng = random.Random(seed)
    tasks: list[Task] = []
    now = 0.0
    for i in range(n):
        now += rng.expovariate(1.0 / mean_interarrival)
        tasks.append(
            Task(
                task_id=i + 1,
                height=rng.randint(lo, hi),
                width=rng.randint(lo, hi),
                exec_seconds=rng.uniform(*exec_range),
                arrival=now,
                max_wait=max_wait,
                priority=_draw_priority(rng, priority_levels),
            )
        )
    return tasks


def fig1_applications(device: VirtexDevice,
                      exec_seconds: float = 0.5) -> list[ApplicationSpec]:
    """The three-application scenario of Fig. 1, scaled to ``device``.

    Function footprints are chosen as fractions of the CLB array so that
    the *simultaneous* set fits while the *total* demand is well above
    100 %: A needs ~30 % per function, B ~25 %, C ~20 % — together ~75 %
    resident, with 8 functions totalling ~190 % of the device.
    """
    rows, cols = device.clb_rows, device.clb_cols

    def fn(name: str, frac_h: float, frac_w: float,
           scale: float = 1.0) -> FunctionSpec:
        return FunctionSpec(
            name,
            max(1, round(rows * frac_h)),
            max(1, round(cols * frac_w)),
            exec_seconds * scale,
        )

    app_a = ApplicationSpec(
        "A", [fn("A1", 0.55, 0.55), fn("A2", 0.55, 0.55, 1.4)]
    )
    app_b = ApplicationSpec(
        "B", [fn("B1", 0.5, 0.5), fn("B2", 0.5, 0.5, 1.2)]
    )
    app_c = ApplicationSpec(
        "C",
        [
            fn("C1", 0.45, 0.45, 0.6),
            fn("C2", 0.45, 0.45, 0.6),
            fn("C3", 0.45, 0.45, 0.6),
            fn("C4", 0.45, 0.45, 0.6),
        ],
    )
    return [app_a, app_b, app_c]


def bursty_tasks(
    n: int,
    seed: int = 0,
    burst_size: int = 4,
    mean_gap: float = 2.0,
    size_range: tuple[int, int] = (3, 10),
    exec_range: tuple[float, float] = (0.2, 2.0),
    max_wait: float | None = None,
    priority_levels: int = 1,
) -> list[Task]:
    """An on-line stream of ``n`` tasks arriving in bursts.

    Bursts of 1..``burst_size`` tasks (uniform) arrive together after an
    exponential idle gap of mean ``mean_gap`` seconds.  Simultaneous
    arrivals make contiguous space scarce exactly when several requests
    race for it — the fragmentation stress case; ``priority_levels``
    adds a uniform QoS mix.  Deterministic per seed.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if burst_size < 1:
        raise ValueError("burst_size must be positive")
    lo, hi = size_range
    if lo < 1 or hi < lo:
        raise ValueError("invalid size_range")
    rng = random.Random(seed)
    tasks: list[Task] = []
    now = 0.0
    while len(tasks) < n:
        now += rng.expovariate(1.0 / mean_gap)
        for _ in range(min(rng.randint(1, burst_size), n - len(tasks))):
            tasks.append(
                Task(
                    task_id=len(tasks) + 1,
                    height=rng.randint(lo, hi),
                    width=rng.randint(lo, hi),
                    exec_seconds=rng.uniform(*exec_range),
                    arrival=now,
                    max_wait=max_wait,
                    priority=_draw_priority(rng, priority_levels),
                )
            )
    return tasks


def heavy_tail_tasks(
    n: int,
    seed: int = 0,
    mean_interarrival: float = 0.05,
    size_range: tuple[int, int] = (3, 10),
    exec_min: float = 0.2,
    alpha: float = 1.5,
    exec_cap: float = 50.0,
    max_wait: float | None = None,
    priority_levels: int = 1,
) -> list[Task]:
    """An on-line stream with Pareto(``alpha``) service times.

    Execution times are ``exec_min * Pareto(alpha)``, capped at
    ``exec_cap``: most tasks are short, a few occupy their region for a
    long time and anchor the fragmentation the rearrangement policies
    must work around.  Arrivals, sizes and the optional
    ``priority_levels`` QoS mix follow :func:`random_tasks`.
    Deterministic per seed.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    lo, hi = size_range
    if lo < 1 or hi < lo:
        raise ValueError("invalid size_range")
    rng = random.Random(seed)
    tasks: list[Task] = []
    now = 0.0
    for i in range(n):
        now += rng.expovariate(1.0 / mean_interarrival)
        tasks.append(
            Task(
                task_id=i + 1,
                height=rng.randint(lo, hi),
                width=rng.randint(lo, hi),
                exec_seconds=min(exec_min * rng.paretovariate(alpha), exec_cap),
                arrival=now,
                max_wait=max_wait,
                priority=_draw_priority(rng, priority_levels),
            )
        )
    return tasks


def fragmenting_tasks(
    n: int,
    seed: int = 0,
    mean_interarrival: float = 0.5,
    small_range: tuple[int, int] = (1, 2),
    small_exec: tuple[float, float] = (8.0, 16.0),
    large_size: tuple[int, int] = (6, 9),
    large_every: int = 4,
    large_exec: tuple[float, float] = (0.3, 1.0),
    max_wait: float | None = 1.5,
    priority_levels: int = 1,
) -> list[Task]:
    """A fragmentation-hostile stream: small anchors, large arrivals.

    Most tasks are small (``small_range`` per side) and *long-lived*
    (``small_exec``), so their footprints scatter across the device and
    pin it in a shattered state; every ``large_every``-th task is a
    large ``large_size`` rectangle with a short service time that needs
    a big contiguous block *right now* (``max_wait`` bounds its
    patience, after which it is rejected).  Purely reactive
    rearrangement meets each large arrival with a maximally scattered
    resident set, and with this many tiny blockers a single
    bounded-disturbance plan often cannot free the window — the regime
    where repeated proactive consolidation between arrivals pays off.
    ``priority_levels`` adds a uniform QoS mix.  Deterministic per seed.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if large_every < 2:
        raise ValueError("large_every must be at least 2")
    lo, hi = small_range
    if lo < 1 or hi < lo:
        raise ValueError("invalid small_range")
    if large_size[0] < 1 or large_size[1] < 1:
        raise ValueError("invalid large_size")
    rng = random.Random(seed)
    tasks: list[Task] = []
    now = 0.0
    for i in range(n):
        now += rng.expovariate(1.0 / mean_interarrival)
        if (i + 1) % large_every == 0:
            height, width = large_size
            exec_seconds = rng.uniform(*large_exec)
        else:
            height = rng.randint(lo, hi)
            width = rng.randint(lo, hi)
            exec_seconds = rng.uniform(*small_exec)
        tasks.append(
            Task(
                task_id=i + 1,
                height=height,
                width=width,
                exec_seconds=exec_seconds,
                arrival=now,
                max_wait=max_wait,
                priority=_draw_priority(rng, priority_levels),
            )
        )
    return tasks


def fleet_surge_tasks(
    n: int,
    seed: int = 0,
    mean_interarrival: float = 0.1,
    size_range: tuple[int, int] = (3, 10),
    exec_range: tuple[float, float] = (0.6, 1.6),
    max_wait: float | None = 1.5,
    priority_levels: int = 1,
) -> list[Task]:
    """A sustained surge sized to overwhelm one device, not a fleet.

    Poisson arrivals come several times faster than service completes
    them on a single fabric (mean service ``exec_range`` ≫ mean
    interarrival), every task demands a mid-sized contiguous rectangle,
    and patience is short (``max_wait``): a lone device saturates both
    its logic space and its configuration port and rejects a large
    fraction of the stream, while a fleet of a few devices absorbs the
    same arrivals with almost no loss.  This is the workload the fleet
    campaign axis (``--fleet-size`` / ``--device-policy``) is separated
    on.  ``priority_levels`` adds a uniform QoS mix.  Deterministic per
    seed.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    lo, hi = size_range
    if lo < 1 or hi < lo:
        raise ValueError("invalid size_range")
    rng = random.Random(seed)
    tasks: list[Task] = []
    now = 0.0
    for i in range(n):
        now += rng.expovariate(1.0 / mean_interarrival)
        tasks.append(
            Task(
                task_id=i + 1,
                height=rng.randint(lo, hi),
                width=rng.randint(lo, hi),
                exec_seconds=rng.uniform(*exec_range),
                arrival=now,
                max_wait=max_wait,
                priority=_draw_priority(rng, priority_levels),
            )
        )
    return tasks


def codec_swap_applications(
    device: VirtexDevice,
    n_apps: int = 3,
    seed: int = 0,
    chain_range: tuple[int, int] = (2, 4),
    frac_range: tuple[float, float] = (0.35, 0.55),
    exec_range: tuple[float, float] = (0.3, 0.8),
    priority_levels: int = 1,
    repeats: int = 1,
) -> list[ApplicationSpec]:
    """Randomized codec-swap-style application chains, scaled to ``device``.

    Each of the ``n_apps`` applications is a sequential chain of
    2..``chain_range[1]`` functions whose footprints are uniform
    fractions (``frac_range``) of the CLB array per side — sized like the
    paper's coding/decoding context-switch example, so that total demand
    comfortably exceeds the device while the resident set fits.
    ``priority_levels`` assigns each application a uniform QoS class
    that the ``priority`` queue discipline reads when stalled
    applications compete for released space.  ``repeats`` replays each
    chain that many times in sequence — the paper's repeated
    coding/decoding context switches, where every pass re-demands the
    same bitstreams (the reuse a resident-bitstream cache exploits).
    The random stream is independent of ``repeats``, so ``repeats=1``
    reproduces the historical workloads bit for bit.  Deterministic per
    seed.
    """
    if n_apps < 1:
        raise ValueError("n_apps must be positive")
    if repeats < 1:
        raise ValueError("repeats must be positive")
    lo, hi = chain_range
    if lo < 1 or hi < lo:
        raise ValueError("invalid chain_range")
    rng = random.Random(seed)
    rows, cols = device.clb_rows, device.clb_cols
    apps: list[ApplicationSpec] = []
    for a in range(n_apps):
        name = chr(ord("A") + a % 26)
        functions = [
            FunctionSpec(
                f"{name}{i + 1}",
                max(1, round(rows * rng.uniform(*frac_range))),
                max(1, round(cols * rng.uniform(*frac_range))),
                rng.uniform(*exec_range),
            )
            for i in range(rng.randint(lo, hi))
        ]
        apps.append(
            ApplicationSpec(
                name, functions * repeats,
                priority=_draw_priority(rng, priority_levels),
            )
        )
    return apps


def uniform_requests(
    n: int, seed: int = 0, size_range: tuple[int, int] = (3, 10)
) -> list[tuple[int, int]]:
    """Request-shape sample used by the satisfiable-fraction metric."""
    rng = random.Random(seed)
    lo, hi = size_range
    return [(rng.randint(lo, hi), rng.randint(lo, hi)) for _ in range(n)]


# -- declarative workload registry (used by repro.campaign) -----------------


@dataclass(frozen=True)
class WorkloadSpec:
    """One named, schedulable workload family.

    ``kind`` selects the scheduler: ``"tasks"`` workloads produce
    ``list[Task]`` for :class:`~repro.sched.scheduler.OnlineTaskScheduler`,
    ``"apps"`` workloads produce ``list[ApplicationSpec]`` for
    :class:`~repro.sched.scheduler.ApplicationFlowScheduler`.  The
    factory is called as ``factory(device, seed, **params)``.
    ``size_param`` names the factory keyword that scales the workload
    (``"n"``, ``"n_apps"``, ...; empty for fixed scenarios) so generic
    tooling — the campaign CLI's ``--tasks``/``--apps`` flags — can size
    any registered family without knowing it by name.
    """

    name: str
    kind: str
    factory: Callable[..., list]
    description: str = ""
    size_param: str = ""
    #: whether the family labels tasks with tenants — the campaign
    #: layer emits the per-tenant fairness column only for these, so
    #: single-tenant result rows (and the committed goldens) keep their
    #: exact historical key set.
    tenanted: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("tasks", "apps"):
            raise ValueError("kind must be 'tasks' or 'apps'")


def _scaled_size_range(device: VirtexDevice,
                       size_range: tuple[int, int]) -> tuple[int, int]:
    """Clamp a task size range so rectangles fit small devices."""
    cap = max(1, min(device.clb_rows, device.clb_cols) - 1)
    lo, hi = size_range
    return (min(lo, cap), min(hi, cap))


def _task_factory(generator: Callable[..., list[Task]]):
    """Registry adapter for a task-stream generator: default ``n``,
    clamp rectangle sizes to the device, thread the seed through."""

    def factory(device: VirtexDevice, seed: int, **params) -> list[Task]:
        params.setdefault("n", 40)
        params["size_range"] = _scaled_size_range(
            device, params.get("size_range", (3, 10)))
        return generator(seed=seed, **params)

    factory.__doc__ = f"Registry adapter for {generator.__name__}."
    return factory


def _fig1_factory(device: VirtexDevice, seed: int,
                  **params) -> list[ApplicationSpec]:
    """Registry adapter for :func:`fig1_applications` (seed is unused:
    the Fig. 1 scenario is fixed by construction)."""
    del seed
    return fig1_applications(device, **params)


def _codec_swap_factory(device: VirtexDevice, seed: int,
                        **params) -> list[ApplicationSpec]:
    """Registry adapter for :func:`codec_swap_applications`."""
    return codec_swap_applications(device, seed=seed, **params)


def _fragmenting_factory(device: VirtexDevice, seed: int,
                         **params) -> list[Task]:
    """Registry adapter for :func:`fragmenting_tasks`: default ``n``,
    clamp the small anchors to the device and size the large arrivals
    at ~75 % of each device side unless overridden."""
    params.setdefault("n", 40)
    params["small_range"] = _scaled_size_range(
        device, params.get("small_range", (1, 2)))
    if "large_size" not in params:
        params["large_size"] = (
            max(2, round(device.clb_rows * 0.75)),
            max(2, round(device.clb_cols * 0.75)),
        )
    return fragmenting_tasks(seed=seed, **params)


def _adversarial_factory(device: VirtexDevice, seed: int,
                         **params) -> list[Task]:
    """Registry adapter for the search-tuned adversarial stream.

    The same small-anchors-vs-large-arrivals mechanism as
    :func:`fragmenting_tasks`, with every knob turned against the
    allocator: anchors live 2-3x longer, every third arrival is large,
    the large rectangles span ~85 % of each device side and patience is
    under a second.  The parameter point was chosen by
    ``tools/find_adversarial_seed.py`` (hypothesis-driven search over
    seeds and knobs, maximizing rejections); the committed
    :data:`ADVERSARIAL_SEED` marks the worst seed the search found.
    """
    params.setdefault("n", 40)
    params.setdefault("mean_interarrival", 0.35)
    params.setdefault("small_exec", (20.0, 40.0))
    params.setdefault("large_every", 3)
    params.setdefault("max_wait", 0.8)
    params["small_range"] = _scaled_size_range(
        device, params.get("small_range", (1, 2)))
    if "large_size" not in params:
        params["large_size"] = (
            max(2, round(device.clb_rows * 0.85)),
            max(2, round(device.clb_cols * 0.85)),
        )
    return fragmenting_tasks(seed=seed, **params)


def _trace_factory(device: VirtexDevice, seed: int, **params) -> list[Task]:
    """Registry adapter for the NDJSON trace replayer.

    ``path`` (required) names the trace file; the seed is unused — a
    trace *is* the arrival sequence, which is the whole point.  Shapes
    are replayed exactly as recorded, never clamped to the device: a
    trace that does not fit simply shows up as rejections.
    """
    del device, seed
    path = params.pop("path", None)
    if path is None:
        raise ValueError(
            "the trace workload needs a 'path' parameter "
            "(campaign CLI: --trace FILE)"
        )
    if params:
        raise ValueError(
            f"unknown trace parameters: {', '.join(sorted(params))}"
        )
    return read_trace(path)


#: Named workload families available to campaign grids.
WORKLOADS: dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Add a workload family to :data:`WORKLOADS` (name must be free)."""
    if spec.name in WORKLOADS:
        raise ValueError(f"workload {spec.name!r} already registered")
    WORKLOADS[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    """Look up a registered workload family by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(
            f"unknown workload {name!r}; known workloads: {known}"
        ) from None


def make_workload(name: str, device: VirtexDevice, seed: int,
                  **params) -> list:
    """Instantiate workload ``name`` for ``device`` with ``seed``."""
    return get_workload(name).factory(device, seed, **params)


for _spec in (
    WorkloadSpec("random", "tasks", _task_factory(random_tasks),
                 "Poisson arrivals, uniform sizes and service times",
                 size_param="n"),
    WorkloadSpec("bursty", "tasks", _task_factory(bursty_tasks),
                 "burst arrivals separated by idle gaps",
                 size_param="n"),
    WorkloadSpec("heavy-tail", "tasks", _task_factory(heavy_tail_tasks),
                 "Pareto service times: few long-lived anchor tasks",
                 size_param="n"),
    WorkloadSpec("fragmenting", "tasks", _fragmenting_factory,
                 "small long-lived anchors vs. large impatient arrivals",
                 size_param="n"),
    WorkloadSpec("fleet-surge", "tasks", _task_factory(fleet_surge_tasks),
                 "arrival surge that saturates one device but not a fleet",
                 size_param="n"),
    WorkloadSpec("fragmenting-adversarial", "tasks", _adversarial_factory,
                 "search-tuned worst-case fragmentation stream",
                 size_param="n"),
    WorkloadSpec("diurnal", "tasks", _task_factory(diurnal_tasks),
                 "sinusoidal day/night arrival-rate curve",
                 size_param="n"),
    WorkloadSpec("flash-crowd", "tasks", _task_factory(flash_crowd_tasks),
                 "steady stream with one multiplied-rate flash window",
                 size_param="n"),
    WorkloadSpec("multi-tenant", "tasks", _task_factory(multi_tenant_tasks),
                 "skewed multi-tenant mix with per-tenant QoS",
                 size_param="n", tenanted=True),
    WorkloadSpec("trace", "tasks", _trace_factory,
                 "replay an NDJSON arrival trace file (--trace PATH)",
                 tenanted=True),
    WorkloadSpec("fig1", "apps", _fig1_factory,
                 "the fixed three-application Fig. 1 scenario"),
    WorkloadSpec("codec-swap", "apps", _codec_swap_factory,
                 "randomized codec-swap function chains",
                 size_param="n_apps"),
):
    register_workload(_spec)
del _spec
