"""Workload generators for the scheduling experiments.

* :func:`random_tasks` — the Diessel-style on-line stream used by the
  defragmentation study: Poisson arrivals, uniform rectangle sizes,
  uniform service times (reference [5] evaluates on exactly this shape).
* :func:`fig1_applications` — the three applications of Fig. 1 (A with
  two functions, B with two, C with four) sized so their combined area
  demand exceeds 100 % of the device — the virtual-hardware premise that
  "a set of applications, which in total require far more than 100% of
  the FPGA available resources" can share one part.
"""

from __future__ import annotations

import random

from repro.device.devices import VirtexDevice

from .tasks import ApplicationSpec, FunctionSpec, Task


def random_tasks(
    n: int,
    seed: int = 0,
    mean_interarrival: float = 0.05,
    size_range: tuple[int, int] = (3, 10),
    exec_range: tuple[float, float] = (0.2, 2.0),
    max_wait: float | None = None,
) -> list[Task]:
    """An on-line stream of ``n`` independent tasks.

    Exponential interarrivals (rate 1/``mean_interarrival``), uniform
    integer heights/widths in ``size_range``, uniform service times in
    ``exec_range``; optional queueing impatience ``max_wait``.
    Deterministic per seed.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    lo, hi = size_range
    if lo < 1 or hi < lo:
        raise ValueError("invalid size_range")
    rng = random.Random(seed)
    tasks: list[Task] = []
    now = 0.0
    for i in range(n):
        now += rng.expovariate(1.0 / mean_interarrival)
        tasks.append(
            Task(
                task_id=i + 1,
                height=rng.randint(lo, hi),
                width=rng.randint(lo, hi),
                exec_seconds=rng.uniform(*exec_range),
                arrival=now,
                max_wait=max_wait,
            )
        )
    return tasks


def fig1_applications(device: VirtexDevice,
                      exec_seconds: float = 0.5) -> list[ApplicationSpec]:
    """The three-application scenario of Fig. 1, scaled to ``device``.

    Function footprints are chosen as fractions of the CLB array so that
    the *simultaneous* set fits while the *total* demand is well above
    100 %: A needs ~30 % per function, B ~25 %, C ~20 % — together ~75 %
    resident, with 8 functions totalling ~190 % of the device.
    """
    rows, cols = device.clb_rows, device.clb_cols

    def fn(name: str, frac_h: float, frac_w: float,
           scale: float = 1.0) -> FunctionSpec:
        return FunctionSpec(
            name,
            max(1, round(rows * frac_h)),
            max(1, round(cols * frac_w)),
            exec_seconds * scale,
        )

    app_a = ApplicationSpec(
        "A", [fn("A1", 0.55, 0.55), fn("A2", 0.55, 0.55, 1.4)]
    )
    app_b = ApplicationSpec(
        "B", [fn("B1", 0.5, 0.5), fn("B2", 0.5, 0.5, 1.2)]
    )
    app_c = ApplicationSpec(
        "C",
        [
            fn("C1", 0.45, 0.45, 0.6),
            fn("C2", 0.45, 0.45, 0.6),
            fn("C3", 0.45, 0.45, 0.6),
            fn("C4", 0.45, 0.45, 0.6),
        ],
    )
    return [app_a, app_b, app_c]


def uniform_requests(
    n: int, seed: int = 0, size_range: tuple[int, int] = (3, 10)
) -> list[tuple[int, int]]:
    """Request-shape sample used by the satisfiable-fraction metric."""
    rng = random.Random(seed)
    lo, hi = size_range
    return [(rng.randint(lo, hi), rng.randint(lo, hi)) for _ in range(n)]
