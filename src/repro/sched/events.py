"""A minimal discrete-event simulation kernel.

Drives the on-line scheduling experiments (Fig. 1 and the
defragmentation study): task arrivals, completions and reconfiguration
port activity are events on a single timeline measured in seconds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True, slots=True)
class _Entry:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)


class EventHandle:
    """Handle allowing a scheduled event to be cancelled."""

    __slots__ = ("_entry", "_queue")

    def __init__(self, entry: _Entry, queue: "EventQueue") -> None:
        self._entry = entry
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        entry = self._entry
        if entry.cancelled or entry.fired:
            return
        entry.cancelled = True
        self._queue._note_cancel()

    @property
    def time(self) -> float:
        """The scheduled firing time."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        """True when the event will not fire."""
        return self._entry.cancelled


class EventQueue:
    """Priority queue of timed callbacks with a monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[_Entry] = []
        self._seq = 0
        self.processed = 0
        #: Cancelled entries still buried in the heap.  ``pending`` is
        #: then O(1) (heap length minus tombstones), and the heap is
        #: compacted lazily once tombstones outnumber live entries —
        #: timeout-heavy runs cancel most of what they schedule, and
        #: without compaction those placeholders pile up until drain.
        self._tombstones = 0

    def _note_cancel(self) -> None:
        self._tombstones += 1
        if self._tombstones * 2 > len(self._heap) >= 16:
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._tombstones = 0

    def at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        entry = _Entry(time, self._seq, action)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return EventHandle(entry, self)

    def after(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("delay cannot be negative")
        return self.at(self.now + delay, action)

    def run(self, until: float | None = None,
            max_events: int = 1_000_000) -> None:
        """Process events in order until the queue drains (or ``until``).

        ``max_events`` guards against runaway feedback loops.
        """
        count = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self.now = until
                return
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                self._tombstones -= 1
                continue
            entry.fired = True
            self.now = entry.time
            entry.action()
            self.processed += 1
            count += 1
            if count >= max_events:
                raise RuntimeError(
                    f"event budget exhausted ({max_events} events)"
                )
        if until is not None:
            self.now = max(self.now, until)

    @property
    def pending(self) -> int:
        """Events still queued and not cancelled (O(1): tracked as heap
        length minus buried tombstones, not recounted)."""
        return len(self._heap) - self._tombstones


class SequentialResource:
    """A serially shared resource — the reconfiguration port.

    The paper's whole cost structure hangs on the configuration port
    being one serial channel: moves and incoming-function configurations
    queue behind each other.  :meth:`acquire` returns the interval
    [start, end) granted to the request.
    """

    def __init__(self, queue: EventQueue) -> None:
        self._queue = queue
        self.free_at = 0.0
        self.busy_seconds = 0.0

    def acquire(self, duration: float) -> tuple[float, float]:
        """Reserve the resource for ``duration`` seconds at the earliest
        opportunity; returns (start, end)."""
        if duration < 0:
            raise ValueError("duration cannot be negative")
        start = max(self._queue.now, self.free_at)
        end = start + duration
        self.free_at = end
        self.busy_seconds += duration
        return start, end
