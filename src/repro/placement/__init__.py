"""2-D placement substrate: free space, fit heuristics, rearrangement
planners and fragmentation metrics (DESIGN.md, section 3)."""

from .compaction import (
    Move,
    apply_moves,
    footprints,
    local_repacking,
    moves_feasible,
    ordered_compaction,
)
from .compaction import sequence_moves
from .fit import (
    FIT_ALGORITHMS,
    best_fit,
    bottom_left,
    first_fit,
    fitter,
    free_anchor_mask,
)
from .free_space import (
    FREE_SPACE_NAMES,
    FreeSpaceIndex,
    FreeSpaceManager,
    free_mask,
    largest_empty_rectangle,
    make_free_space,
    maximal_empty_rectangles,
    rectangles_fitting,
)
from .incremental import IncrementalFreeSpace
from .one_dim import OneDimAllocator, Strip
from .metrics import (
    average_free_rectangle,
    fragmentation_index,
    free_region_count,
    satisfiable_fraction,
    utilization,
)

__all__ = [
    "FIT_ALGORITHMS",
    "FREE_SPACE_NAMES",
    "FreeSpaceIndex",
    "FreeSpaceManager",
    "IncrementalFreeSpace",
    "Move",
    "OneDimAllocator",
    "Strip",
    "apply_moves",
    "average_free_rectangle",
    "best_fit",
    "bottom_left",
    "first_fit",
    "fitter",
    "footprints",
    "free_anchor_mask",
    "sequence_moves",
    "fragmentation_index",
    "free_mask",
    "free_region_count",
    "largest_empty_rectangle",
    "local_repacking",
    "make_free_space",
    "maximal_empty_rectangles",
    "moves_feasible",
    "ordered_compaction",
    "rectangles_fitting",
    "satisfiable_fraction",
    "utilization",
]
