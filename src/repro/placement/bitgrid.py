"""Packed-row bitmask primitives for placement hot paths.

The planner and the free-space engines all answer the same inner-loop
question — "is this ``height`` x ``width`` window entirely free?" — many
thousands of times per scheduling run.  Numpy views answer it in ~30µs;
a per-row Python integer whose bit ``c`` mirrors "column ``c`` is free"
answers it in well under a microsecond, because an entire row of the
device collapses to one machine word (or a few, via arbitrary-precision
ints) and a window test collapses to shift-and-AND arithmetic.

:class:`~repro.placement.incremental.IncrementalFreeSpace` already keeps
such masks for its release sweep; this module extracts the bit tricks so
the rearrangement planners (`repro.core.defrag`,
`repro.placement.compaction`) can run their candidate searches on the
same representation instead of slicing numpy scratch grids.

Conventions: bit ``c`` of ``row_bits[r]`` is set iff site ``(r, c)`` is
free.  All helpers are pure; callers own the (cheap) list copies.
"""

from __future__ import annotations

import numpy as np

from repro.perf import PERF

#: Grid size (rows x columns) below which :func:`first_fit_bits` keeps
#: its scalar Python-int path.  Small grids collapse to one machine word
#: per row, where shift-and-AND on native ints beats numpy's per-call
#: dispatch overhead by a wide margin; the word-packed vector path only
#: pays off once rows x columns outgrows this.
SMALL_SET = 4096

#: Reusable (band, shift) scratch pairs for the vector path, keyed by
#: ``(rows, words)``.  ``pop``/reinsert keeps concurrent callers safe:
#: two threads can never check out the same buffers, the loser just
#: allocates a fresh pair.
_SCRATCH: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}

_WORD = 64
_WORD_MASK = (1 << _WORD) - 1


def pack_free_rows(occupancy: np.ndarray) -> list[int]:
    """Per-row free-column bitmasks of a grid (bit c set = column c free)."""
    packed = np.packbits(occupancy == 0, axis=1, bitorder="little")
    return [
        int.from_bytes(packed[r].tobytes(), "little")
        for r in range(occupancy.shape[0])
    ]


def span_mask(col: int, width: int) -> int:
    """Bitmask covering columns ``col .. col + width - 1``."""
    return ((1 << width) - 1) << col


def run_anchor_mask(bits: int, width: int) -> int:
    """Anchors of ``width``-long runs: bit ``c`` set iff bits
    ``c .. c + width - 1`` are all set in ``bits``.

    Doubling shift-AND: after each step the mask witnesses runs of
    ``shift`` columns, and two overlapping witnesses ``step`` apart
    witness a run of ``shift + step``.
    """
    mask = bits
    shift = 1
    while shift < width and mask:
        step = min(shift, width - shift)
        mask &= mask >> step
        shift += step
    return mask


def first_fit_bits(row_bits: list[int], height: int,
                   width: int) -> tuple[int, int] | None:
    """Row-major-first anchor of a free ``height`` x ``width`` window.

    Matches :func:`repro.placement.fit.first_fit`'s grid path exactly:
    the topmost row holding any feasible anchor wins, leftmost column
    within it.  Returns ``(row, col)`` or ``None``.

    Grids under :data:`SMALL_SET` bits run the scalar per-row loop;
    larger grids are packed into uint64 word rows and answered by
    vectorised sliding-window AND-reductions (:func:`_first_fit_words`),
    which the differential tests pin to the scalar answer.
    """
    rows = len(row_bits)
    if rows < height:
        return None
    cols = 0
    for bits in row_bits:
        length = bits.bit_length()
        if length > cols:
            cols = length
    if cols < width:
        return None
    if rows * cols >= SMALL_SET:
        PERF.first_fit_vector += 1
        return _first_fit_words(row_bits, height, width, cols)
    PERF.first_fit_scalar += 1
    for r in range(rows - height + 1):
        band = row_bits[r]
        for rr in range(r + 1, r + height):
            band &= row_bits[rr]
            if not band:
                break
        # A band with fewer than ``width`` set bits cannot hold a run;
        # ``bit_count`` is C-speed and skips the doubling walk for the
        # (common, on saturated grids) hopeless bands.
        if band.bit_count() < width:
            continue
        anchors = run_anchor_mask(band, width)
        if anchors:
            return r, (anchors & -anchors).bit_length() - 1
    return None


def _shift_right_words(arr: np.ndarray, shift: int,
                       out: np.ndarray) -> np.ndarray:
    """Per-row right shift of word-packed bitmasks by ``shift`` bits.

    ``arr`` and ``out`` are ``(n, words)`` uint64 arrays (little-endian
    word order: word 0 holds columns 0–63).  Bits shifted out of word
    ``i + 1`` carry into the top of word ``i``.
    """
    words = arr.shape[1]
    word_off, bit_off = divmod(shift, _WORD)
    out[:] = 0
    if word_off >= words:
        return out
    keep = words - word_off
    if bit_off == 0:
        out[:, :keep] = arr[:, word_off:]
    else:
        np.right_shift(arr[:, word_off:], np.uint64(bit_off),
                       out=out[:, :keep])
        if word_off + 1 < words:
            out[:, :keep - 1] |= arr[:, word_off + 1:] \
                << np.uint64(_WORD - bit_off)
    return out


def _first_fit_words(row_bits: list[int], height: int, width: int,
                     cols: int) -> tuple[int, int] | None:
    """Vectorised :func:`first_fit_bits` over uint64 word rows.

    Two doubling shift-AND reductions, each across the whole grid at
    once: down the row axis to produce every anchor row's ``height``-row
    band in one pass, then along the column axis (with cross-word
    carries) to reduce each band to its run-anchor mask.  Scratch
    arrays are pooled per grid shape in :data:`_SCRATCH`.
    """
    rows = len(row_bits)
    words = (cols + _WORD - 1) // _WORD
    key = (rows, words)
    bufs = _SCRATCH.pop(key, None)
    if bufs is None:
        band = np.empty((rows, words), dtype=np.uint64)
        temp = np.empty((rows, words), dtype=np.uint64)
    else:
        band, temp = bufs
    nbytes = words * 8
    band.reshape(-1)[:] = np.frombuffer(
        b"".join(bits.to_bytes(nbytes, "little") for bits in row_bits),
        dtype="<u8",
    )
    try:
        # Band reduction down the rows: after each step, row i of the
        # live prefix ANDs rows i .. i + span - 1 of the grid.
        n = rows
        span = 1
        while span < height:
            step = min(span, height - span)
            np.bitwise_and(band[:n - step], band[step:n],
                           out=temp[:n - step])
            band, temp = temp, band
            n -= step
            span += step
        # Run-anchor reduction along the columns of every band at once.
        mask = band[:n]
        shift = 1
        while shift < width:
            if not mask.any():
                return None
            step = min(shift, width - shift)
            _shift_right_words(mask, step, temp[:n])
            mask &= temp[:n]
            shift += step
        hit = mask.any(axis=1)
        r = int(np.argmax(hit))
        if not hit[r]:
            return None
        for w in range(words):
            value = int(mask[r, w])
            if value:
                return r, w * _WORD + ((value & -value).bit_length() - 1)
        return None
    finally:
        _SCRATCH[key] = (band, temp)


def clear_rect(row_bits: list[int], row: int, row_end: int,
               mask: int) -> None:
    """Mark the masked columns of rows ``row .. row_end - 1`` occupied."""
    inv = ~mask
    for r in range(row, row_end):
        row_bits[r] &= inv


def set_rect(row_bits: list[int], row: int, row_end: int,
             mask: int) -> None:
    """Mark the masked columns of rows ``row .. row_end - 1`` free."""
    for r in range(row, row_end):
        row_bits[r] |= mask


def band_mask(row_bits: list[int], row: int, row_end: int) -> int:
    """Columns free across *all* of rows ``row .. row_end - 1``."""
    band = row_bits[row]
    for r in range(row + 1, row_end):
        band &= row_bits[r]
        if not band:
            break
    return band
