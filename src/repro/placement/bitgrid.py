"""Packed-row bitmask primitives for placement hot paths.

The planner and the free-space engines all answer the same inner-loop
question — "is this ``height`` x ``width`` window entirely free?" — many
thousands of times per scheduling run.  Numpy views answer it in ~30µs;
a per-row Python integer whose bit ``c`` mirrors "column ``c`` is free"
answers it in well under a microsecond, because an entire row of the
device collapses to one machine word (or a few, via arbitrary-precision
ints) and a window test collapses to shift-and-AND arithmetic.

:class:`~repro.placement.incremental.IncrementalFreeSpace` already keeps
such masks for its release sweep; this module extracts the bit tricks so
the rearrangement planners (`repro.core.defrag`,
`repro.placement.compaction`) can run their candidate searches on the
same representation instead of slicing numpy scratch grids.

Conventions: bit ``c`` of ``row_bits[r]`` is set iff site ``(r, c)`` is
free.  All helpers are pure; callers own the (cheap) list copies.
"""

from __future__ import annotations

import numpy as np


def pack_free_rows(occupancy: np.ndarray) -> list[int]:
    """Per-row free-column bitmasks of a grid (bit c set = column c free)."""
    packed = np.packbits(occupancy == 0, axis=1, bitorder="little")
    return [
        int.from_bytes(packed[r].tobytes(), "little")
        for r in range(occupancy.shape[0])
    ]


def span_mask(col: int, width: int) -> int:
    """Bitmask covering columns ``col .. col + width - 1``."""
    return ((1 << width) - 1) << col


def run_anchor_mask(bits: int, width: int) -> int:
    """Anchors of ``width``-long runs: bit ``c`` set iff bits
    ``c .. c + width - 1`` are all set in ``bits``.

    Doubling shift-AND: after each step the mask witnesses runs of
    ``shift`` columns, and two overlapping witnesses ``step`` apart
    witness a run of ``shift + step``.
    """
    mask = bits
    shift = 1
    while shift < width and mask:
        step = min(shift, width - shift)
        mask &= mask >> step
        shift += step
    return mask


def first_fit_bits(row_bits: list[int], height: int,
                   width: int) -> tuple[int, int] | None:
    """Row-major-first anchor of a free ``height`` x ``width`` window.

    Matches :func:`repro.placement.fit.first_fit`'s grid path exactly:
    the topmost row holding any feasible anchor wins, leftmost column
    within it.  Returns ``(row, col)`` or ``None``.
    """
    rows = len(row_bits)
    for r in range(rows - height + 1):
        band = row_bits[r]
        for rr in range(r + 1, r + height):
            band &= row_bits[rr]
            if not band:
                break
        if not band:
            continue
        anchors = run_anchor_mask(band, width)
        if anchors:
            return r, (anchors & -anchors).bit_length() - 1
    return None


def clear_rect(row_bits: list[int], row: int, row_end: int,
               mask: int) -> None:
    """Mark the masked columns of rows ``row .. row_end - 1`` occupied."""
    inv = ~mask
    for r in range(row, row_end):
        row_bits[r] &= inv


def set_rect(row_bits: list[int], row: int, row_end: int,
             mask: int) -> None:
    """Mark the masked columns of rows ``row .. row_end - 1`` free."""
    for r in range(row, row_end):
        row_bits[r] |= mask


def band_mask(row_bits: list[int], row: int, row_end: int) -> int:
    """Columns free across *all* of rows ``row .. row_end - 1``."""
    band = row_bits[row]
    for r in range(row + 1, row_end):
        band &= row_bits[r]
        if not band:
            break
    return band
