"""Incremental maintenance of the maximal-empty-rectangle set.

The run-time manager asks "does this function fit, and where?" after
every allocation, relocation and release; recomputing the whole KAMER
set from the grid each time (the ``"recompute"`` engine) makes that hot
path scale with the device, not with the change.  This engine updates
the set locally, the strip-packing insight of the on-line placement
literature (Angermeier et al.; Handa & Vinnakota's staircase methods):

* **allocate(rect)** — only maximal empty rectangles overlapping the
  newly occupied rectangle can change.  Each such MER shatters into at
  most four maximal sub-rectangles (above, below, left, right of the
  allocation); every free rectangle avoiding the allocation lies wholly
  in one of the four, so keeping the non-contained pieces preserves
  exactly the maximal set.  MERs not touching the allocation stay
  maximal: occupying sites never creates room to extend.

* **release(rect)** — every *new* maximal rectangle must contain a
  freed site, so its row span intersects the freed rows and some freed
  column is free across its full height.  The engine sweeps candidate
  row intervals outward from the freed rectangle (bounded by the first
  blocked row above and below — the sweep never leaves the reachable
  neighbourhood), reads the maximal column runs off a column prefix
  sum, and keeps the runs that cannot grow vertically.  Old MERs now
  contained in a bigger rectangle are dropped; the rest are untouched.

The differential suite (``tests/test_free_space_differential.py``)
holds this engine observationally identical to the reference
full-recomputation sweep over randomized alloc/release histories.
"""

from __future__ import annotations

import numpy as np

from repro.device.geometry import Rect

from .free_space import free_mask, maximal_empty_rectangles


class IncrementalFreeSpace:
    """The ``"incremental"`` free-space engine (see module docstring)."""

    name = "incremental"

    #: MER-set size below which the scalar paths beat the vectorised
    #: ones: a handful of attribute compares with early exit is cheaper
    #: than a few numpy dispatches plus the coordinate-matrix build.
    #: Small devices (the XC2S15's 8x12 grid rarely exceeds ~15 MERs)
    #: stay on the scalar code; the acceptance-grid scheduler workloads
    #: (XCV200, routinely 40-90 MERs) take the vectorised one.  Both
    #: paths compute identical sets — the differential suite churns
    #: grids whose MER count crosses this threshold in both directions.
    SMALL_SET = 20

    def __init__(self, occupancy: np.ndarray) -> None:
        self._occupancy = occupancy
        self._mers: set[Rect] = set(maximal_empty_rectangles(occupancy))
        self._free = int(free_mask(occupancy).sum())
        self._row_bits = self._pack_rows()
        self._generation = 0
        #: lazy query cache over the MER set: (rect list, (N, 4) int64
        #: matrix of row/col/height/width).  Invalidated by every
        #: effective mutation.
        self._query: tuple[list[Rect], np.ndarray] | None = None

    def _pack_rows(self) -> list[int]:
        """Per-row free-column bitmasks (bit c set = column c free)."""
        rows = self._occupancy.shape[0]
        packed = np.packbits(
            free_mask(self._occupancy), axis=1, bitorder="little"
        )
        return [int.from_bytes(packed[r].tobytes(), "little")
                for r in range(rows)]

    # -- protocol: queries ---------------------------------------------------

    @property
    def occupancy(self) -> np.ndarray:
        """The bound occupancy grid."""
        return self._occupancy

    @property
    def generation(self) -> int:
        """Counter bumped by every effective occupancy mutation.

        Two queries at the same generation see byte-identical occupancy,
        so fit decisions and rearrangement plans may be memoised against
        this value (see :class:`repro.placement.fit.CachedFitter`).
        No-op mutations — releasing an already-free region — do not
        bump it: the logic space is provably unchanged.
        """
        return self._generation

    @property
    def mers(self) -> list[Rect]:
        """Current maximal empty rectangles (order unspecified)."""
        return list(self._mers)

    @staticmethod
    def _coords_of(rects: list[Rect]) -> np.ndarray:
        """(N, 4) int64 matrix of (row, col, height, width)."""
        count = len(rects)
        if not count:
            return np.zeros((0, 4), dtype=np.int64)
        return np.fromiter(
            ((r.row, r.col, r.height, r.width) for r in rects),
            dtype=np.dtype((np.int64, 4)), count=count,
        )

    def _query_arrays(self) -> tuple[list[Rect], np.ndarray]:
        """MER list plus its coordinate matrix, built lazily once per
        generation so every fits/fitting query — and the mutation
        filters themselves — is a vectorised compare instead of a Python
        attribute walk over the whole set."""
        if self._query is None:
            rects = list(self._mers)
            self._query = (rects, self._coords_of(rects))
        return self._query

    def fits(self, height: int, width: int) -> bool:
        """True when some free rectangle can host the request."""
        if len(self._mers) <= self.SMALL_SET:
            return any(
                r.height >= height and r.width >= width
                for r in self._mers
            )
        _, coords = self._query_arrays()
        return bool(
            ((coords[:, 2] >= height) & (coords[:, 3] >= width)).any()
        )

    def rectangles_fitting(self, height: int, width: int) -> list[Rect]:
        """MERs that can host a ``height`` x ``width`` request."""
        if len(self._mers) <= self.SMALL_SET:
            return [
                r for r in self._mers
                if r.height >= height and r.width >= width
            ]
        rects, coords = self._query_arrays()
        hits = np.flatnonzero(
            (coords[:, 2] >= height) & (coords[:, 3] >= width)
        )
        return [rects[i] for i in hits]

    def free_area(self) -> int:
        """Total free sites (tracked, not recounted)."""
        return self._free

    def largest_free_area(self) -> int:
        """Area of the largest free rectangle (0 when the grid is full)."""
        if len(self._mers) <= self.SMALL_SET:
            return max((r.area for r in self._mers), default=0)
        rects, coords = self._query_arrays()
        if not rects:
            return 0
        return int((coords[:, 2] * coords[:, 3]).max())

    def rebuild(self) -> None:
        """Resynchronise with the grid after an external mutation."""
        self._mers = set(maximal_empty_rectangles(self._occupancy))
        self._free = int(free_mask(self._occupancy).sum())
        self._row_bits = self._pack_rows()
        self._generation += 1
        self._query = None

    # -- protocol: mutations -------------------------------------------------

    def _check_bounds(self, rect: Rect) -> None:
        rows, cols = self._occupancy.shape
        if rect.row < 0 or rect.col < 0 or rect.row_end > rows \
                or rect.col_end > cols:
            raise ValueError(f"rectangle {rect} outside the {rows}x{cols} grid")

    @staticmethod
    def _absorbed(inner: np.ndarray, outer: np.ndarray) -> np.ndarray:
        """For each inner rect: is it contained in some *differently
        valued* outer rect?  ``inner``/``outer`` are (N, 4) coordinate
        matrices; a coordinate-identical outer never counts, mirroring
        the ``o != p and o.contains_rect(p)`` guard of the set
        formulation."""
        ir = inner[:, :2][None, :, :]          # (1, I, 2) origins
        ie = ir + inner[:, 2:][None, :, :]     # (1, I, 2) ends
        orow = outer[:, :2][:, None, :]        # (O, 1, 2) origins
        oe = orow + outer[:, 2:][:, None, :]   # (O, 1, 2) ends
        contains = ((orow <= ir) & (oe >= ie)).all(axis=2)
        equal = ((orow == ir) & (oe == ie)).all(axis=2)
        return (contains & ~equal).any(axis=0)

    def allocate(self, rect: Rect, owner: int = 1) -> None:
        """Claim ``rect`` for ``owner``; the region must be free."""
        if owner == 0:
            raise ValueError("owner 0 is the free marker")
        self._check_bounds(rect)
        view = self._occupancy[rect.row : rect.row_end,
                               rect.col : rect.col_end]
        if bool((view != 0).any()):
            raise ValueError(f"region {rect} is not entirely free")
        view[...] = owner
        self._free -= rect.area
        small = len(self._mers) <= self.SMALL_SET
        if small:
            unaffected = None
            overlapping = [m for m in self._mers if m.overlaps(rect)]
        else:
            # Read the pre-mutation MER arrays before dropping the
            # cache (the grid write above does not touch the MER set).
            rects, coords = self._query_arrays()
            ov = (
                (coords[:, 0] < rect.row_end)
                & (coords[:, 0] + coords[:, 2] > rect.row)
                & (coords[:, 1] < rect.col_end)
                & (coords[:, 1] + coords[:, 3] > rect.col)
            )
            unaffected = coords[~ov]
            overlapping = [rects[i] for i in np.flatnonzero(ov)]
        self._generation += 1
        self._query = None
        span = ((1 << rect.width) - 1) << rect.col
        for r in range(rect.row, rect.row_end):
            self._row_bits[r] &= ~span

        if not overlapping:
            return
        survivors = self._mers.difference(overlapping)
        pieces: set[Rect] = set()
        for m in overlapping:
            if rect.row > m.row:  # above the allocation
                pieces.add(Rect(m.row, m.col, rect.row - m.row, m.width))
            if rect.row_end < m.row_end:  # below
                pieces.add(
                    Rect(rect.row_end, m.col,
                         m.row_end - rect.row_end, m.width)
                )
            if rect.col > m.col:  # left
                pieces.add(Rect(m.row, m.col, m.height, rect.col - m.col))
            if rect.col_end < m.col_end:  # right
                pieces.add(
                    Rect(m.row, rect.col_end,
                         m.height, m.col_end - rect.col_end)
                )
        if not pieces:
            self._mers = survivors
            return
        if unaffected is None:
            # Scalar absorption over precomputed coordinate tuples: the
            # ``o != p and o.contains_rect(p)`` formulation spends most
            # of its time in dataclass ``__eq__`` and property calls,
            # and this check runs on every allocation.
            cand = [
                (o.row, o.col, o.row + o.height, o.col + o.width)
                for o in survivors
            ]
            cand += [
                (o.row, o.col, o.row + o.height, o.col + o.width)
                for o in pieces
            ]
            kept = set()
            for p in pieces:
                pr = p.row
                pc = p.col
                pre = pr + p.height
                pce = pc + p.width
                for cr, cc, cre, cce in cand:
                    if (cr <= pr and cc <= pc and cre >= pre
                            and cce >= pce
                            and not (cr == pr and cc == pc
                                     and cre == pre and cce == pce)):
                        break
                else:
                    kept.add(p)
            self._mers = survivors | kept
            return
        piece_list = list(pieces)
        piece_coords = self._coords_of(piece_list)
        candidates = np.concatenate([unaffected, piece_coords])
        keep = np.flatnonzero(~self._absorbed(piece_coords, candidates))
        self._mers = survivors | {piece_list[i] for i in keep}

    def release(self, rect: Rect) -> None:
        """Return ``rect`` to the free pool."""
        self._check_bounds(rect)
        view = self._occupancy[rect.row : rect.row_end,
                               rect.col : rect.col_end]
        freed = int((view != 0).sum())
        if freed == 0:
            return  # the region was already free: nothing can change
        view[...] = 0
        self._free += freed
        small = len(self._mers) <= self.SMALL_SET
        if not small:
            rects, coords = self._query_arrays()
        self._generation += 1
        self._query = None
        span = ((1 << rect.width) - 1) << rect.col
        for r in range(rect.row, rect.row_end):
            self._row_bits[r] |= span

        fresh = self._maximal_through(rect)
        if not fresh:
            return
        # An old MER is demoted exactly when the freed space lets a
        # strictly larger rectangle absorb it — and that rectangle, being
        # maximal and intersecting the freed rect, is in ``fresh``.
        if small:
            # Coordinate-tuple absorption scan (see ``allocate``).
            fr = [
                (n.row, n.col, n.row + n.height, n.col + n.width)
                for n in fresh
            ]
            survivors = set()
            for m in self._mers:
                mr = m.row
                mc = m.col
                mre = mr + m.height
                mce = mc + m.width
                for nr, nc, nre, nce in fr:
                    if (nr <= mr and nc <= mc and nre >= mre
                            and nce >= mce
                            and not (nr == mr and nc == mc
                                     and nre == mre and nce == mce)):
                        break
                else:
                    survivors.add(m)
        else:
            demoted = self._absorbed(coords, self._coords_of(fresh))
            survivors = {rects[i] for i in np.flatnonzero(~demoted)}
        self._mers = survivors | set(fresh)

    # -- the release sweep ---------------------------------------------------

    def _maximal_through(self, rect: Rect) -> list[Rect]:
        """All maximal empty rectangles intersecting ``rect``.

        A maximal rectangle through the freed region spans rows
        ``r0..r1`` with ``r0 <=`` the rectangle's bottom row and
        ``r1 >=`` its top row, and some freed column free across all of
        them.  The per-row free-column bitmasks are engine state (kept
        current by every mutation), so the free columns of a row
        interval are a running AND, maximal column runs are carry
        chains, and the sweep stops the moment the freed columns all
        block — the work is bounded by the free neighbourhood of the
        release, not the grid.
        """
        rows = self._occupancy.shape[0]
        row_bits = self._row_bits
        top, bottom = rect.row, rect.row_end - 1
        seed = ((1 << rect.width) - 1) << rect.col
        out: list[Rect] = []
        # Top edges inside the freed rows: the interval starts at r0.
        for r0 in range(top, bottom + 1):
            self._sweep_down(row_bits, r0, r0, seed, rows, out)
        # Top edges above: AND in rows r0..top; once the freed columns
        # all block on that stretch, no higher top edge can reach.
        acc = row_bits[top] if top < rows else 0
        for r0 in range(top - 1, -1, -1):
            acc &= row_bits[r0]
            if not acc & seed:
                break
            self._sweep_down(row_bits, r0, top, seed, rows, out, acc)
        return out

    @staticmethod
    def _sweep_down(row_bits: list[int], r0: int, r1_start: int,
                    seed: int, rows: int, out: list[Rect],
                    band: int | None = None) -> None:
        """Emit the maximal rectangles with top edge ``r0`` whose free
        columns (``band``, AND of rows ``r0..r1``) still touch the
        ``seed`` columns, walking the bottom edge ``r1`` downward."""
        if band is None:
            band = row_bits[r0]
        not_above = ~(row_bits[r0 - 1] if r0 > 0 else 0)
        r1 = r1_start
        while band & seed:
            if not band & not_above:
                # Every run is free across row r0 - 1 too, so each is
                # emitted by the sweep starting there — and bands only
                # shrink walking down, so that stays true: done.
                return
            not_below = ~(row_bits[r1 + 1] if r1 < rows - 1 else 0)
            if band & not_below:
                x = band
                while x:
                    low = x & -x
                    grown = x + low
                    run = x & ~grown  # the lowest run of set bits
                    x &= grown
                    if not run & seed:
                        continue  # misses the freed columns
                    if not run & not_above:
                        continue  # grows upward: emitted at a smaller r0
                    if not run & not_below:
                        continue  # grows downward: emitted at larger r1
                    c0 = (run & -run).bit_length() - 1
                    c1 = run.bit_length() - 1
                    out.append(Rect(r0, c0, r1 - r0 + 1, c1 - c0 + 1))
            # else: the band persists through row r1 + 1, so every run
            # grows downward and the level emits nothing — skip the
            # run enumeration outright.
            r1 += 1
            if r1 >= rows:
                break
            band &= row_bits[r1]
