"""Incremental maintenance of the maximal-empty-rectangle set.

The run-time manager asks "does this function fit, and where?" after
every allocation, relocation and release; recomputing the whole KAMER
set from the grid each time (the ``"recompute"`` engine) makes that hot
path scale with the device, not with the change.  This engine updates
the set locally, the strip-packing insight of the on-line placement
literature (Angermeier et al.; Handa & Vinnakota's staircase methods):

* **allocate(rect)** — only maximal empty rectangles overlapping the
  newly occupied rectangle can change.  Each such MER shatters into at
  most four maximal sub-rectangles (above, below, left, right of the
  allocation); every free rectangle avoiding the allocation lies wholly
  in one of the four, so keeping the non-contained pieces preserves
  exactly the maximal set.  MERs not touching the allocation stay
  maximal: occupying sites never creates room to extend.

* **release(rect)** — every *new* maximal rectangle must contain a
  freed site, so its row span intersects the freed rows and some freed
  column is free across its full height.  The engine sweeps candidate
  row intervals outward from the freed rectangle (bounded by the first
  blocked row above and below — the sweep never leaves the reachable
  neighbourhood), reads the maximal column runs off a column prefix
  sum, and keeps the runs that cannot grow vertically.  Old MERs now
  contained in a bigger rectangle are dropped; the rest are untouched.

The differential suite (``tests/test_free_space_differential.py``)
holds this engine observationally identical to the reference
full-recomputation sweep over randomized alloc/release histories.
"""

from __future__ import annotations

import numpy as np

from repro.device.geometry import Rect

from .free_space import free_mask, maximal_empty_rectangles


class IncrementalFreeSpace:
    """The ``"incremental"`` free-space engine (see module docstring)."""

    name = "incremental"

    def __init__(self, occupancy: np.ndarray) -> None:
        self._occupancy = occupancy
        self._mers: set[Rect] = set(maximal_empty_rectangles(occupancy))
        self._free = int(free_mask(occupancy).sum())
        self._row_bits = self._pack_rows()

    def _pack_rows(self) -> list[int]:
        """Per-row free-column bitmasks (bit c set = column c free)."""
        rows = self._occupancy.shape[0]
        packed = np.packbits(
            free_mask(self._occupancy), axis=1, bitorder="little"
        )
        return [int.from_bytes(packed[r].tobytes(), "little")
                for r in range(rows)]

    # -- protocol: queries ---------------------------------------------------

    @property
    def occupancy(self) -> np.ndarray:
        """The bound occupancy grid."""
        return self._occupancy

    @property
    def mers(self) -> list[Rect]:
        """Current maximal empty rectangles (order unspecified)."""
        return list(self._mers)

    def fits(self, height: int, width: int) -> bool:
        """True when some free rectangle can host the request."""
        return any(
            r.height >= height and r.width >= width for r in self._mers
        )

    def rectangles_fitting(self, height: int, width: int) -> list[Rect]:
        """MERs that can host a ``height`` x ``width`` request."""
        return [
            r for r in self._mers
            if r.height >= height and r.width >= width
        ]

    def free_area(self) -> int:
        """Total free sites (tracked, not recounted)."""
        return self._free

    def rebuild(self) -> None:
        """Resynchronise with the grid after an external mutation."""
        self._mers = set(maximal_empty_rectangles(self._occupancy))
        self._free = int(free_mask(self._occupancy).sum())
        self._row_bits = self._pack_rows()

    # -- protocol: mutations -------------------------------------------------

    def _check_bounds(self, rect: Rect) -> None:
        rows, cols = self._occupancy.shape
        if rect.row < 0 or rect.col < 0 or rect.row_end > rows \
                or rect.col_end > cols:
            raise ValueError(f"rectangle {rect} outside the {rows}x{cols} grid")

    def allocate(self, rect: Rect, owner: int = 1) -> None:
        """Claim ``rect`` for ``owner``; the region must be free."""
        if owner == 0:
            raise ValueError("owner 0 is the free marker")
        self._check_bounds(rect)
        view = self._occupancy[rect.row : rect.row_end,
                               rect.col : rect.col_end]
        if bool((view != 0).any()):
            raise ValueError(f"region {rect} is not entirely free")
        view[...] = owner
        self._free -= rect.area
        span = ((1 << rect.width) - 1) << rect.col
        for r in range(rect.row, rect.row_end):
            self._row_bits[r] &= ~span

        overlapping = [m for m in self._mers if m.overlaps(rect)]
        if not overlapping:
            return
        survivors = self._mers.difference(overlapping)
        pieces: set[Rect] = set()
        for m in overlapping:
            if rect.row > m.row:  # above the allocation
                pieces.add(Rect(m.row, m.col, rect.row - m.row, m.width))
            if rect.row_end < m.row_end:  # below
                pieces.add(
                    Rect(rect.row_end, m.col,
                         m.row_end - rect.row_end, m.width)
                )
            if rect.col > m.col:  # left
                pieces.add(Rect(m.row, m.col, m.height, rect.col - m.col))
            if rect.col_end < m.col_end:  # right
                pieces.add(
                    Rect(m.row, rect.col_end,
                         m.height, m.col_end - rect.col_end)
                )
        candidates = list(survivors) + list(pieces)
        kept = {
            p for p in pieces
            if not any(o != p and o.contains_rect(p) for o in candidates)
        }
        self._mers = survivors | kept

    def release(self, rect: Rect) -> None:
        """Return ``rect`` to the free pool."""
        self._check_bounds(rect)
        view = self._occupancy[rect.row : rect.row_end,
                               rect.col : rect.col_end]
        freed = int((view != 0).sum())
        if freed == 0:
            return  # the region was already free: nothing can change
        view[...] = 0
        self._free += freed
        span = ((1 << rect.width) - 1) << rect.col
        for r in range(rect.row, rect.row_end):
            self._row_bits[r] |= span

        fresh = self._maximal_through(rect)
        # An old MER is demoted exactly when the freed space lets a
        # strictly larger rectangle absorb it — and that rectangle, being
        # maximal and intersecting the freed rect, is in ``fresh``.
        survivors = {
            m for m in self._mers
            if not any(n != m and n.contains_rect(m) for n in fresh)
        }
        self._mers = survivors | set(fresh)

    # -- the release sweep ---------------------------------------------------

    def _maximal_through(self, rect: Rect) -> list[Rect]:
        """All maximal empty rectangles intersecting ``rect``.

        A maximal rectangle through the freed region spans rows
        ``r0..r1`` with ``r0 <=`` the rectangle's bottom row and
        ``r1 >=`` its top row, and some freed column free across all of
        them.  The per-row free-column bitmasks are engine state (kept
        current by every mutation), so the free columns of a row
        interval are a running AND, maximal column runs are carry
        chains, and the sweep stops the moment the freed columns all
        block — the work is bounded by the free neighbourhood of the
        release, not the grid.
        """
        rows = self._occupancy.shape[0]
        row_bits = self._row_bits
        top, bottom = rect.row, rect.row_end - 1
        seed = ((1 << rect.width) - 1) << rect.col
        out: list[Rect] = []
        # Top edges inside the freed rows: the interval starts at r0.
        for r0 in range(top, bottom + 1):
            self._sweep_down(row_bits, r0, r0, seed, rows, out)
        # Top edges above: AND in rows r0..top; once the freed columns
        # all block on that stretch, no higher top edge can reach.
        acc = row_bits[top] if top < rows else 0
        for r0 in range(top - 1, -1, -1):
            acc &= row_bits[r0]
            if not acc & seed:
                break
            self._sweep_down(row_bits, r0, top, seed, rows, out, acc)
        return out

    @staticmethod
    def _sweep_down(row_bits: list[int], r0: int, r1_start: int,
                    seed: int, rows: int, out: list[Rect],
                    band: int | None = None) -> None:
        """Emit the maximal rectangles with top edge ``r0`` whose free
        columns (``band``, AND of rows ``r0..r1``) still touch the
        ``seed`` columns, walking the bottom edge ``r1`` downward."""
        if band is None:
            band = row_bits[r0]
        above = row_bits[r0 - 1] if r0 > 0 else 0
        r1 = r1_start
        while band & seed:
            below = row_bits[r1 + 1] if r1 < rows - 1 else 0
            x = band
            while x:
                low = x & -x
                grown = x + low
                run = x & ~grown  # the lowest run of set bits
                x &= grown
                if not run & seed:
                    continue  # misses the freed columns
                if not run & ~above:
                    continue  # grows upward: emitted at a smaller r0
                if not run & ~below:
                    continue  # grows downward: emitted at a larger r1
                c0 = (run & -run).bit_length() - 1
                c1 = run.bit_length() - 1
                out.append(Rect(r0, c0, r1 - r0 + 1, c1 - c0 + 1))
            r1 += 1
            if r1 >= rows:
                break
            band &= row_bits[r1]
