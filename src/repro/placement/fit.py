"""On-line placement heuristics for incoming functions.

When a new function arrives, the manager must pick a free rectangle for
it ("placement decisions have to be made on-line", section 1).  These are
the standard choices evaluated by the on-line placement literature the
paper builds on (Diessel et al. [5]):

* :func:`first_fit` — row-major scan, first position whose rectangle is
  free;
* :func:`best_fit` — the maximal empty rectangle with the least leftover
  area, anchored at its corner;
* :func:`bottom_left` — the feasible position closest to the top-left
  corner (classic on-line bin-packing heuristic).

All return a :class:`~repro.device.geometry.Rect` or ``None`` without
modifying the grid; the caller allocates.  Each heuristic has two equal
query paths:

* **grid path** (``index=None``) — feasibility testing over an integral
  image of the occupancy grid, O(rows x cols) vectorised numpy; used on
  the planner's scratch grids, which have no index attached;
* **index path** — read the answer off a
  :class:`~repro.placement.free_space.FreeSpaceIndex`'s maximal empty
  rectangles in O(K): every feasible anchor lies in some fitting MER
  whose top-left corner precedes it in the heuristic's order, so the
  best corner *is* the answer.

The two paths return identical rectangles (the differential suite pins
this), so schedulers can switch engines without changing the science.
"""

from __future__ import annotations

import numpy as np

from repro.device.geometry import Rect

from .free_space import FreeSpaceIndex, rectangles_fitting


def free_anchor_mask(occupancy: np.ndarray, height: int,
                     width: int) -> np.ndarray:
    """Boolean mask of anchors where a ``height`` x ``width`` rectangle
    is entirely free.  Shape: (rows-height+1, cols-width+1); empty when
    the request exceeds the grid."""
    rows, cols = occupancy.shape
    if height > rows or width > cols or height < 1 or width < 1:
        return np.zeros((0, 0), dtype=bool)
    occupied = (occupancy != 0).astype(np.int32)
    integral = np.zeros((rows + 1, cols + 1), dtype=np.int64)
    integral[1:, 1:] = occupied.cumsum(0).cumsum(1)
    window = (
        integral[height:, width:]
        - integral[:-height, width:]
        - integral[height:, :-width]
        + integral[:-height, :-width]
    )
    return window == 0


def _fitting(occupancy: np.ndarray, height: int, width: int,
             index: FreeSpaceIndex | None) -> list[Rect]:
    """MERs hosting the request, from the index when one is attached."""
    if index is not None:
        return index.rectangles_fitting(height, width)
    return rectangles_fitting(occupancy, height, width)


def first_fit(occupancy: np.ndarray, height: int, width: int,
              index: FreeSpaceIndex | None = None) -> Rect | None:
    """First free position in row-major order.

    Index path: any feasible anchor (r, c) lies inside a fitting MER
    whose corner (M.row, M.col) precedes (r, c) row-major and is itself
    feasible — so the row-major-first corner over fitting MERs is the
    row-major-first anchor.
    """
    if index is not None:
        fitting = index.rectangles_fitting(height, width)
        if not fitting:
            return None
        host = min(fitting, key=lambda r: (r.row, r.col))
        return Rect(host.row, host.col, height, width)
    mask = free_anchor_mask(occupancy, height, width)
    if mask.size == 0 or not mask.any():
        return None
    flat = int(np.flatnonzero(mask)[0])
    r, c = divmod(flat, mask.shape[1])
    return Rect(r, c, height, width)


def best_fit(occupancy: np.ndarray, height: int, width: int,
             index: FreeSpaceIndex | None = None) -> Rect | None:
    """Anchor in the maximal empty rectangle with least leftover area.

    Leftover ties break toward the smaller rectangle perimeter and then
    toward the top-left, keeping the packing deterministic.
    """
    fitting = _fitting(occupancy, height, width, index)
    if not fitting:
        return None

    def key(r: Rect) -> tuple[int, int, int, int]:
        leftover = r.area - height * width
        return (leftover, 2 * (r.height + r.width), r.row, r.col)

    host = min(fitting, key=key)
    return Rect(host.row, host.col, height, width)


def bottom_left(occupancy: np.ndarray, height: int, width: int,
                index: FreeSpaceIndex | None = None) -> Rect | None:
    """The feasible position minimising (row + col), then row.

    Packs functions toward one corner, which empirically preserves large
    free rectangles on the opposite side.  Index path: within one MER's
    anchor range both coordinates are minimised at its corner, so the
    best corner over fitting MERs minimises the key globally.
    """
    if index is not None:
        fitting = index.rectangles_fitting(height, width)
        if not fitting:
            return None
        host = min(fitting, key=lambda r: (r.row + r.col, r.row))
        return Rect(host.row, host.col, height, width)
    mask = free_anchor_mask(occupancy, height, width)
    if mask.size == 0 or not mask.any():
        return None
    rs, cs = np.nonzero(mask)
    keys = rs + cs
    best = int(np.lexsort((rs, keys))[0])
    return Rect(int(rs[best]), int(cs[best]), height, width)


#: Registry used by the manager/scheduler configuration surface.
FIT_ALGORITHMS = {
    "first": first_fit,
    "best": best_fit,
    "bottom-left": bottom_left,
}


def fitter(name: str):
    """Look up a placement heuristic by name."""
    try:
        return FIT_ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(FIT_ALGORITHMS))
        raise KeyError(f"unknown fit algorithm {name!r}; known: {known}") from None


class CachedFitter:
    """A placement heuristic memoised per free-space generation.

    The admission hot path re-asks the same fit question many times
    between occupancy changes (every admission pass probes every waiting
    shape).  A heuristic's answer is a pure function of (occupancy,
    height, width), and the engines' ``generation`` counter names the
    occupancy: it bumps on every effective mutation, so equal
    generations guarantee a byte-identical grid.  The cache therefore
    keys on ``(generation, height, width)`` and is dropped wholesale the
    moment the generation moves — over-retention is impossible by
    construction (``tests/test_fit_cache.py`` pins this with an
    adversarially mutated engine).

    Grid-path calls (no index) and indexes without a generation counter
    bypass the cache entirely: there is no token naming the grid state.
    """

    def __init__(self, fn) -> None:
        self.fn = fn
        self._index_id: int | None = None
        self._generation: int | None = None
        self._answers: dict[tuple[int, int], Rect | None] = {}
        #: cache telemetry (hits/misses), for the property tests and
        #: the perf harness.
        self.hits = 0
        self.misses = 0

    def _sync(self, index: FreeSpaceIndex) -> bool:
        """Point the cache at ``index``'s current generation; False when
        the index exposes no generation counter (cache unusable)."""
        generation = getattr(index, "generation", None)
        if generation is None:
            return False
        if self._index_id != id(index) or self._generation != generation:
            self._index_id = id(index)
            self._generation = generation
            self._answers.clear()
        return True

    def __call__(self, occupancy: np.ndarray, height: int, width: int,
                 index: FreeSpaceIndex | None = None) -> Rect | None:
        """Answer like the wrapped heuristic, consulting the cache."""
        if index is None or not self._sync(index):
            return self.fn(occupancy, height, width, index=index)
        key = (height, width)
        try:
            answer = self._answers[key]
        except KeyError:
            self.misses += 1
            answer = self.fn(occupancy, height, width, index=index)
            self._answers[key] = answer
            return answer
        self.hits += 1
        return answer

    def prefetch(self, occupancy: np.ndarray,
                 shapes: list[tuple[int, int]],
                 index: FreeSpaceIndex) -> None:
        """Warm the cache for many shapes against one MER snapshot.

        The admission loop calls this once per pass with every
        queue-eligible shape, so the per-item probes that follow are
        dictionary lookups.  The batch answers are computed against a
        single read of the index's MER set; for the row-major
        ``first_fit`` the winning corner is found with one vectorised
        masked-argmin per shape, which is exactly ``min(fitting, key=
        (row, col))`` — any key tie yields the same (row, col) and the
        returned rectangle only uses those coordinates.  Other
        heuristics fall back to one cached call each.
        """
        if not shapes or not self._sync(index):
            return
        missing = [s for s in shapes if s not in self._answers]
        if not missing:
            return
        if self.fn is not first_fit:
            for height, width in missing:
                self.misses += 1
                self._answers[(height, width)] = self.fn(
                    occupancy, height, width, index=index
                )
            return
        mers = index.mers
        count = len(mers)
        heights = np.fromiter(
            (r.height for r in mers), dtype=np.int64, count=count
        )
        widths = np.fromiter(
            (r.width for r in mers), dtype=np.int64, count=count
        )
        rows = np.fromiter(
            (r.row for r in mers), dtype=np.int64, count=count
        )
        cols = np.fromiter(
            (r.col for r in mers), dtype=np.int64, count=count
        )
        _, grid_cols = occupancy.shape
        corner = rows * (grid_cols + 1) + cols  # row-major corner rank
        for height, width in missing:
            self.misses += 1
            mask = (heights >= height) & (widths >= width)
            if count == 0 or not mask.any():
                self._answers[(height, width)] = None
                continue
            best = int(np.where(mask, corner, np.iinfo(np.int64).max)
                       .argmin())
            self._answers[(height, width)] = Rect(
                int(rows[best]), int(cols[best]), height, width
            )
