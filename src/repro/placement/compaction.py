"""Partial rearrangement planners: the Diessel et al. baselines.

The paper's section 1 leans on reference [5] (Diessel, El Gindy,
Middendorf, Schmeck, Schmidt — "Dynamic scheduling of tasks on partially
reconfigurable FPGAs"): methods to find *partial rearrangements* that
release enough contiguous space for a waiting function, "while minimising
disruptions to running functions that are to be relocated".  Two of those
methods are implemented here as planners over an occupancy grid:

* :func:`ordered_compaction` — slide every resident function as far as
  possible toward one edge, in edge-distance order (1-D compaction);
* :func:`local_repacking` — remove the functions intersecting a window
  and re-pack them (largest first, best-fit) within it.

Planners *propose* moves on a scratch copy; they never touch the real
fabric.  The paper's contribution enters afterwards: reference [5] had
"no physical execution of these rearrangements ... other than halting
those functions", whereas dynamic relocation executes the same move list
concurrently with execution (see ``repro.core.manager``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.geometry import Rect

from .fit import best_fit


@dataclass(frozen=True)
class Move:
    """Relocate one resident function's footprint."""

    owner: int
    src: Rect
    dst: Rect

    @property
    def distance(self) -> int:
        """Manhattan distance of the move (CLB units)."""
        return abs(self.src.row - self.dst.row) + abs(self.src.col - self.dst.col)

    @property
    def columns_touched(self) -> int:
        """Configuration columns involved in moving this footprint."""
        lo = min(self.src.col, self.dst.col)
        hi = max(self.src.col_end, self.dst.col_end)
        return hi - lo

    def __str__(self) -> str:
        return f"move #{self.owner} {self.src} -> {self.dst}"


def footprints(occupancy: np.ndarray) -> dict[int, Rect]:
    """Owner id -> rectangular footprint, from an occupancy grid."""
    result: dict[int, Rect] = {}
    for owner in np.unique(occupancy):
        if owner == 0:
            continue
        rows, cols = np.nonzero(occupancy == owner)
        result[int(owner)] = Rect(
            int(rows.min()),
            int(cols.min()),
            int(rows.max() - rows.min() + 1),
            int(cols.max() - cols.min() + 1),
        )
    return result


def apply_moves(occupancy: np.ndarray, moves: list[Move]) -> np.ndarray:
    """Return a copy of ``occupancy`` with the moves applied in order."""
    grid = occupancy.copy()
    for m in moves:
        grid[m.src.row : m.src.row_end, m.src.col : m.src.col_end] = 0
        view = grid[m.dst.row : m.dst.row_end, m.dst.col : m.dst.col_end]
        if (view != 0).any():
            raise ValueError(f"{m} lands on occupied sites")
        view[...] = m.owner
    return grid


def ordered_compaction(occupancy: np.ndarray,
                       toward: str = "left") -> list[Move]:
    """Slide every function as far as possible toward one edge.

    Functions are processed in order of distance to the target edge, so
    each slides into space vacated by its predecessors; rows are
    preserved (1-D moves only), which keeps every move executable by a
    sequence of single-column relocation steps.
    """
    if toward not in ("left", "top"):
        raise ValueError("toward must be 'left' or 'top'")
    grid = occupancy.copy()
    prints = footprints(grid)
    moves: list[Move] = []
    if toward == "left":
        order = sorted(prints, key=lambda o: prints[o].col)
    else:
        order = sorted(prints, key=lambda o: prints[o].row)
    for owner in order:
        rect = prints[owner]
        grid[rect.row : rect.row_end, rect.col : rect.col_end] = 0
        best = rect
        if toward == "left":
            for col in range(rect.col):
                cand = Rect(rect.row, col, rect.height, rect.width)
                view = grid[cand.row : cand.row_end, cand.col : cand.col_end]
                if (view == 0).all():
                    best = cand
                    break
        else:
            for row in range(rect.row):
                cand = Rect(row, rect.col, rect.height, rect.width)
                view = grid[cand.row : cand.row_end, cand.col : cand.col_end]
                if (view == 0).all():
                    best = cand
                    break
        grid[best.row : best.row_end, best.col : best.col_end] = owner
        if best != rect:
            moves.append(Move(owner, rect, best))
    return moves


def local_repacking(occupancy: np.ndarray, window: Rect) -> list[Move] | None:
    """Re-pack the functions wholly inside ``window`` with best-fit.

    Functions are removed and re-placed largest-first inside the window.
    Returns ``None`` when the repacking fails (some function no longer
    fits) — in that case nothing should be executed.  Functions that
    merely straddle the window's border are left untouched.
    """
    grid = occupancy.copy()
    prints = footprints(grid)
    inside = {
        owner: rect
        for owner, rect in prints.items()
        if window.contains_rect(rect)
    }
    for rect in inside.values():
        grid[rect.row : rect.row_end, rect.col : rect.col_end] = 0
    moves: list[Move] = []
    sub = grid[window.row : window.row_end, window.col : window.col_end]
    for owner, rect in sorted(
        inside.items(), key=lambda kv: kv[1].area, reverse=True
    ):
        spot = best_fit(sub, rect.height, rect.width)
        if spot is None:
            return None
        dst = Rect(
            window.row + spot.row, window.col + spot.col, rect.height, rect.width
        )
        sub[spot.row : spot.row_end, spot.col : spot.col_end] = owner
        if dst != rect:
            moves.append(Move(owner, rect, dst))
    return moves


def moves_feasible(occupancy: np.ndarray, moves: list[Move]) -> bool:
    """True when the move list applies cleanly in order."""
    try:
        apply_moves(occupancy, moves)
    except ValueError:
        return False
    return True


def sequence_moves(occupancy: np.ndarray,
                   moves: list[Move]) -> list[Move] | None:
    """Order ``moves`` so each lands on space free at execution time.

    Planners choose destinations on a grid where all movers are already
    vacated; physically the moves run one at a time, so a destination may
    still be covered by a *pending* mover's source.  Greedy scheduling:
    repeatedly execute any move whose destination is currently free
    (ignoring its own source overlap).  Returns ``None`` for circular
    dependencies — the plan is then not executable as-is.
    """
    grid = occupancy.copy()
    pending = list(moves)
    ordered: list[Move] = []
    while pending:
        progressed = False
        for move in list(pending):
            view = grid[
                move.dst.row : move.dst.row_end, move.dst.col : move.dst.col_end
            ]
            blockers = set(int(v) for v in np.unique(view)) - {0, move.owner}
            if blockers:
                continue
            grid[
                move.src.row : move.src.row_end, move.src.col : move.src.col_end
            ] = 0
            grid[
                move.dst.row : move.dst.row_end, move.dst.col : move.dst.col_end
            ] = move.owner
            ordered.append(move)
            pending.remove(move)
            progressed = True
        if not progressed:
            return None
    return ordered
