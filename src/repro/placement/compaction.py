"""Partial rearrangement planners: the Diessel et al. baselines.

The paper's section 1 leans on reference [5] (Diessel, El Gindy,
Middendorf, Schmeck, Schmidt — "Dynamic scheduling of tasks on partially
reconfigurable FPGAs"): methods to find *partial rearrangements* that
release enough contiguous space for a waiting function, "while minimising
disruptions to running functions that are to be relocated".  Two of those
methods are implemented here as planners over an occupancy grid:

* :func:`ordered_compaction` — slide every resident function as far as
  possible toward one edge, in edge-distance order (1-D compaction);
* :func:`local_repacking` — remove the functions intersecting a window
  and re-pack them (largest first, best-fit) within it.

Planners *propose* moves on a scratch copy; they never touch the real
fabric.  The paper's contribution enters afterwards: reference [5] had
"no physical execution of these rearrangements ... other than halting
those functions", whereas dynamic relocation executes the same move list
concurrently with execution (see ``repro.core.manager``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.geometry import Rect

from .bitgrid import (
    band_mask,
    clear_rect,
    pack_free_rows,
    run_anchor_mask,
    set_rect,
    span_mask,
)
from .fit import best_fit


@dataclass(frozen=True, slots=True)
class Move:
    """Relocate one resident function's footprint."""

    owner: int
    src: Rect
    dst: Rect

    @property
    def distance(self) -> int:
        """Manhattan distance of the move (CLB units)."""
        return abs(self.src.row - self.dst.row) + abs(self.src.col - self.dst.col)

    @property
    def columns_touched(self) -> int:
        """Configuration columns involved in moving this footprint."""
        lo = min(self.src.col, self.dst.col)
        hi = max(self.src.col_end, self.dst.col_end)
        return hi - lo

    def __str__(self) -> str:
        return f"move #{self.owner} {self.src} -> {self.dst}"


def footprints(occupancy: np.ndarray) -> dict[int, Rect]:
    """Owner id -> rectangular footprint, from an occupancy grid.

    Owners appear in ascending id order (the ``np.unique`` order the
    planners' tie-breaking has always relied on), one bounding box per
    owner, computed in a single grouped pass instead of one grid scan
    per resident.
    """
    flat = occupancy.ravel()
    occupied = np.flatnonzero(flat)
    if occupied.size == 0:
        return {}
    order = np.argsort(flat[occupied], kind="stable")
    owners = flat[occupied][order]
    srows = occupied[order] // occupancy.shape[1]
    scols = occupied[order] % occupancy.shape[1]
    starts = np.flatnonzero(np.r_[True, owners[1:] != owners[:-1]])
    min_r = np.minimum.reduceat(srows, starts)
    max_r = np.maximum.reduceat(srows, starts)
    min_c = np.minimum.reduceat(scols, starts)
    max_c = np.maximum.reduceat(scols, starts)
    return {
        int(owner): Rect(
            int(r0), int(c0), int(r1 - r0 + 1), int(c1 - c0 + 1)
        )
        for owner, r0, c0, r1, c1 in zip(
            owners[starts], min_r, min_c, max_r, max_c
        )
    }


def apply_moves(occupancy: np.ndarray, moves: list[Move]) -> np.ndarray:
    """Return a copy of ``occupancy`` with the moves applied in order."""
    grid = occupancy.copy()
    for m in moves:
        grid[m.src.row : m.src.row_end, m.src.col : m.src.col_end] = 0
        view = grid[m.dst.row : m.dst.row_end, m.dst.col : m.dst.col_end]
        if (view != 0).any():
            raise ValueError(f"{m} lands on occupied sites")
        view[...] = m.owner
    return grid


def ordered_compaction(occupancy: np.ndarray,
                       toward: str = "left") -> list[Move]:
    """Slide every function as far as possible toward one edge.

    Functions are processed in order of distance to the target edge, so
    each slides into space vacated by its predecessors; rows are
    preserved (1-D moves only), which keeps every move executable by a
    sequence of single-column relocation steps.
    """
    if toward not in ("left", "top"):
        raise ValueError("toward must be 'left' or 'top'")
    moves, _ = compaction_moves(
        footprints(occupancy), pack_free_rows(occupancy), toward
    )
    return moves


def compaction_moves(
    prints: dict[int, Rect], row_bits: list[int], toward: str
) -> tuple[list[Move], list[int]]:
    """:func:`ordered_compaction` over precomputed footprints and
    free-column bitmasks.

    Callers that try several compaction directions (and then probe the
    compacted grid) share one footprint scan and one row packing; the
    returned bitmask list is the *compacted* grid's free columns, so the
    probe needs no scratch-grid replay.  ``row_bits`` is not modified.
    """
    bits = list(row_bits)
    moves: list[Move] = []
    if toward == "left":
        order = sorted(prints, key=lambda o: prints[o].col)
    else:
        order = sorted(prints, key=lambda o: prints[o].row)
    for owner in order:
        rect = prints[owner]
        src_mask = span_mask(rect.col, rect.width)
        set_rect(bits, rect.row, rect.row_end, src_mask)
        best = rect
        if toward == "left":
            # Leftmost column whose whole window is free across the
            # function's rows; anchors right of the original column are
            # masked off (sliding right is not compaction).
            band = band_mask(bits, rect.row, rect.row_end)
            anchors = run_anchor_mask(band, rect.width) & ((1 << rect.col) - 1)
            if anchors:
                col = (anchors & -anchors).bit_length() - 1
                best = Rect(rect.row, col, rect.height, rect.width)
        else:
            # Vertical mirror of the left path: bit r of the column mask
            # is set when the function's columns are free across row r;
            # the topmost height-run anchored above the original row (if
            # any) is where the function slides to.
            col_free = 0
            for r in range(min(len(bits), rect.row + rect.height - 1)):
                if (bits[r] & src_mask) == src_mask:
                    col_free |= 1 << r
            anchors = run_anchor_mask(col_free, rect.height) \
                & ((1 << rect.row) - 1)
            if anchors:
                row = (anchors & -anchors).bit_length() - 1
                best = Rect(row, rect.col, rect.height, rect.width)
        clear_rect(bits, best.row, best.row_end,
                   span_mask(best.col, best.width))
        if best != rect:
            moves.append(Move(owner, rect, best))
    return moves, bits


def local_repacking(occupancy: np.ndarray, window: Rect) -> list[Move] | None:
    """Re-pack the functions wholly inside ``window`` with best-fit.

    Functions are removed and re-placed largest-first inside the window.
    Returns ``None`` when the repacking fails (some function no longer
    fits) — in that case nothing should be executed.  Functions that
    merely straddle the window's border are left untouched.
    """
    grid = occupancy.copy()
    prints = footprints(grid)
    inside = {
        owner: rect
        for owner, rect in prints.items()
        if window.contains_rect(rect)
    }
    for rect in inside.values():
        grid[rect.row : rect.row_end, rect.col : rect.col_end] = 0
    moves: list[Move] = []
    sub = grid[window.row : window.row_end, window.col : window.col_end]
    for owner, rect in sorted(
        inside.items(), key=lambda kv: kv[1].area, reverse=True
    ):
        spot = best_fit(sub, rect.height, rect.width)
        if spot is None:
            return None
        dst = Rect(
            window.row + spot.row, window.col + spot.col, rect.height, rect.width
        )
        sub[spot.row : spot.row_end, spot.col : spot.col_end] = owner
        if dst != rect:
            moves.append(Move(owner, rect, dst))
    return moves


def moves_feasible(occupancy: np.ndarray, moves: list[Move]) -> bool:
    """True when the move list applies cleanly in order."""
    try:
        apply_moves(occupancy, moves)
    except ValueError:
        return False
    return True


def sequence_moves(occupancy: np.ndarray,
                   moves: list[Move]) -> list[Move] | None:
    """Order ``moves`` so each lands on space free at execution time.

    Planners choose destinations on a grid where all movers are already
    vacated; physically the moves run one at a time, so a destination may
    still be covered by a *pending* mover's source.  Greedy scheduling:
    repeatedly execute any move whose destination is currently free
    (ignoring its own source overlap).  Returns ``None`` for circular
    dependencies — the plan is then not executable as-is.
    """
    grid = occupancy.copy()
    pending = list(moves)
    ordered: list[Move] = []
    while pending:
        progressed = False
        for move in list(pending):
            view = grid[
                move.dst.row : move.dst.row_end, move.dst.col : move.dst.col_end
            ]
            blockers = set(int(v) for v in np.unique(view)) - {0, move.owner}
            if blockers:
                continue
            grid[
                move.src.row : move.src.row_end, move.src.col : move.src.col_end
            ] = 0
            grid[
                move.dst.row : move.dst.row_end, move.dst.col : move.dst.col_end
            ] = move.owner
            ordered.append(move)
            pending.remove(move)
            progressed = True
        if not progressed:
            return None
    return ordered
