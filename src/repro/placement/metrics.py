"""Fragmentation metrics for the FPGA logic space.

Quantifies the paper's core observation: free areas "tend to become so
small that they fail to satisfy any request and for that reason remain
unused" (section 1).  Metrics:

* :func:`fragmentation_index` — 1 minus the largest-free-rectangle share
  of the total free area: 0 when all free space is one rectangle, tending
  to 1 as the space shatters;
* :func:`satisfiable_fraction` — the share of a request distribution that
  the current free space can host; the operational meaning of
  fragmentation for an on-line scheduler;
* :func:`free_region_count` — number of 4-connected free regions;
* :func:`average_free_rectangle` — mean area of the maximal empty
  rectangles;
* :func:`reclaimable_sites` — free sites outside the largest free
  rectangle: the upper bound on what a perfect consolidation could fold
  back into one contiguous block, the quantity the proactive defrag
  policies chase.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .free_space import FreeSpaceIndex, free_mask, maximal_empty_rectangles


def _mers_of(occupancy: np.ndarray,
             index: FreeSpaceIndex | None) -> list:
    """The MER list — read off the index when one is attached, else
    recomputed from the grid."""
    if index is not None:
        return index.mers
    return maximal_empty_rectangles(occupancy)


def _largest_of(occupancy: np.ndarray,
                index: FreeSpaceIndex | None) -> int:
    """Largest free rectangle area — answered by the index in O(1)
    amortised when one is attached (both engines precompute it per
    generation), else recomputed from the grid."""
    if index is not None:
        return index.largest_free_area()
    return max(
        (r.area for r in maximal_empty_rectangles(occupancy)), default=0
    )


def fragmentation_index(occupancy: np.ndarray,
                        index: FreeSpaceIndex | None = None) -> float:
    """1 - (largest free rectangle area / free area); 0.0 when empty of
    fragmentation (or when there is no free space at all)."""
    free = (index.free_area() if index is not None
            else int(free_mask(occupancy).sum()))
    if free == 0:
        return 0.0
    largest = _largest_of(occupancy, index)
    return 1.0 - largest / free


def satisfiable_fraction(
    occupancy: np.ndarray, requests: list[tuple[int, int]],
    index: FreeSpaceIndex | None = None,
) -> float:
    """Fraction of (height, width) requests the free space can host."""
    if not requests:
        return 1.0
    mers = _mers_of(occupancy, index)
    satisfied = 0
    for height, width in requests:
        if any(r.height >= height and r.width >= width for r in mers):
            satisfied += 1
    return satisfied / len(requests)


def free_region_count(occupancy: np.ndarray) -> int:
    """Number of 4-connected free regions ("small pools of resources")."""
    free = free_mask(occupancy)
    seen = np.zeros_like(free, dtype=bool)
    rows, cols = free.shape
    regions = 0
    for r in range(rows):
        for c in range(cols):
            if not free[r, c] or seen[r, c]:
                continue
            regions += 1
            queue = deque([(r, c)])
            seen[r, c] = True
            while queue:
                y, x = queue.popleft()
                for dy, dx in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    ny, nx = y + dy, x + dx
                    if (
                        0 <= ny < rows
                        and 0 <= nx < cols
                        and free[ny, nx]
                        and not seen[ny, nx]
                    ):
                        seen[ny, nx] = True
                        queue.append((ny, nx))
    return regions


def average_free_rectangle(occupancy: np.ndarray,
                           index: FreeSpaceIndex | None = None) -> float:
    """Mean area of the maximal empty rectangles (0.0 when full)."""
    mers = _mers_of(occupancy, index)
    if not mers:
        return 0.0
    return sum(r.area for r in mers) / len(mers)


def reclaimable_sites(occupancy: np.ndarray,
                      index: FreeSpaceIndex | None = None) -> int:
    """Free sites a perfect consolidation could add to the largest
    free rectangle (free area minus the current largest's area; 0 when
    the free space is already one rectangle, or the grid is full)."""
    free = (index.free_area() if index is not None
            else int(free_mask(occupancy).sum()))
    if free == 0:
        return 0
    largest = _largest_of(occupancy, index)
    return free - largest


def utilization(occupancy: np.ndarray,
                index: FreeSpaceIndex | None = None) -> float:
    """Fraction of sites occupied.

    With an index attached the occupied count is derived from its
    tracked free-area tally instead of re-scanning the grid; the two
    integer counts are equal by the engine's invariant, so the quotient
    is bit-identical.
    """
    total = occupancy.size
    if not total:
        return 0.0
    if index is not None:
        return float(total - index.free_area()) / total
    return float((occupancy != 0).sum()) / total
