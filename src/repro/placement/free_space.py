"""Free-space management: maximal empty rectangles over the CLB grid.

The fragmentation problem the paper sets out to solve (section 1):

    "Since each of the multiple independent functions sharing the logic
    space occupies a different amount of resources, many small pools of
    resources are created as they are released.  These unallocated areas
    tend to become so small that they fail to satisfy any request and for
    that reason remain unused, leading to a fragmentation of the FPGA
    logic space."

The manager keeps all maximal empty rectangles (the KAMER approach of the
on-line placement literature): a rectangle of free sites is *maximal*
when no strictly larger free rectangle contains it.  Allocation decisions
and the fragmentation metrics both derive from this set.
"""

from __future__ import annotations

import numpy as np

from repro.device.geometry import Rect


def free_mask(occupancy: np.ndarray) -> np.ndarray:
    """Boolean mask of free sites from an occupancy grid (0 = free)."""
    return occupancy == 0


def maximal_empty_rectangles(occupancy: np.ndarray) -> list[Rect]:
    """All maximal empty rectangles of the occupancy grid.

    Histogram sweep: for every row, the stack-based largest-rectangle
    algorithm emits each rectangle that cannot be widened at its height;
    a containment pass then removes rectangles nested in larger ones.
    Complexity O(R*C + K^2) with K maximal rectangles — ample for
    device-scale grids (the XCV200 is 28x42).
    """
    rows, cols = occupancy.shape
    free = free_mask(occupancy)
    heights = np.zeros(cols, dtype=np.int64)
    candidates: set[tuple[int, int, int, int]] = set()
    for r in range(rows):
        heights = np.where(free[r], heights + 1, 0)
        # Stack sweep over the histogram of this row.
        stack: list[tuple[int, int]] = []  # (start_col, height)
        for c in range(cols + 1):
            h = int(heights[c]) if c < cols else 0
            start = c
            while stack and stack[-1][1] >= h:
                s, sh = stack.pop()
                # Rectangle of height sh spanning columns s..c-1,
                # rows r-sh+1..r; maximal downwards at this row only if
                # the row below is blocked or we are at the bottom.
                bottom_blocked = r == rows - 1 or not bool(
                    free[r + 1, s : c].all()
                )
                if sh > 0 and bottom_blocked:
                    candidates.add((r - sh + 1, s, sh, c - s))
                start = s
            if h > 0 and (not stack or stack[-1][1] < h):
                stack.append((start, h))
    rects = [Rect(*c) for c in candidates]
    # Drop rectangles contained in another candidate.
    rects.sort(key=lambda x: x.area, reverse=True)
    maximal: list[Rect] = []
    for rect in rects:
        if not any(other.contains_rect(rect) for other in maximal):
            maximal.append(rect)
    return maximal


def largest_empty_rectangle(occupancy: np.ndarray) -> Rect | None:
    """The largest free rectangle (None when the grid is full)."""
    mers = maximal_empty_rectangles(occupancy)
    if not mers:
        return None
    return max(mers, key=lambda r: r.area)


def rectangles_fitting(occupancy: np.ndarray, height: int,
                       width: int) -> list[Rect]:
    """Maximal empty rectangles that can host a ``height`` x ``width``
    request (no rotation: functions are placed as designed)."""
    return [
        r
        for r in maximal_empty_rectangles(occupancy)
        if r.height >= height and r.width >= width
    ]


class FreeSpaceManager:
    """Incremental wrapper caching the MER list between mutations."""

    def __init__(self, occupancy: np.ndarray) -> None:
        self._occupancy = occupancy
        self._cache: list[Rect] | None = None

    def invalidate(self) -> None:
        """Call after any occupancy change."""
        self._cache = None

    @property
    def mers(self) -> list[Rect]:
        """Current maximal empty rectangles."""
        if self._cache is None:
            self._cache = maximal_empty_rectangles(self._occupancy)
        return self._cache

    def fits(self, height: int, width: int) -> bool:
        """True when some free rectangle can host the request."""
        return any(
            r.height >= height and r.width >= width for r in self.mers
        )

    def free_area(self) -> int:
        """Total free sites."""
        return int(free_mask(self._occupancy).sum())
