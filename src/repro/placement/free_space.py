"""Free-space management: maximal empty rectangles over the CLB grid.

The fragmentation problem the paper sets out to solve (section 1):

    "Since each of the multiple independent functions sharing the logic
    space occupies a different amount of resources, many small pools of
    resources are created as they are released.  These unallocated areas
    tend to become so small that they fail to satisfy any request and for
    that reason remain unused, leading to a fragmentation of the FPGA
    logic space."

The manager keeps all maximal empty rectangles (the KAMER approach of the
on-line placement literature): a rectangle of free sites is *maximal*
when no strictly larger free rectangle contains it.  Allocation decisions
and the fragmentation metrics both derive from this set.

Two engines maintain that set behind the common :class:`FreeSpaceIndex`
protocol:

* :class:`FreeSpaceManager` (``"recompute"``) — the reference engine:
  every mutation drops the cached MER list; the next query recomputes it
  from the whole grid with :func:`maximal_empty_rectangles`;
* :class:`~repro.placement.incremental.IncrementalFreeSpace`
  (``"incremental"``) — maintains the MER set by local splitting on
  ``allocate`` and a bounded merge sweep on ``release``, never touching
  parts of the grid the mutation cannot reach.

Both engines *own* their occupancy mutations: callers use
:meth:`FreeSpaceIndex.allocate` / :meth:`FreeSpaceIndex.release` instead
of writing the array and remembering to invalidate — the stale-cache
footgun of the original wrapper is thereby unreachable from the manager
stack (the fabric delegates every occupancy write here).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.device.geometry import Rect

#: Names accepted by :func:`make_free_space` (and the campaign's
#: ``free_space`` axis).
FREE_SPACE_NAMES = ("recompute", "incremental")


def free_mask(occupancy: np.ndarray) -> np.ndarray:
    """Boolean mask of free sites from an occupancy grid (0 = free)."""
    return occupancy == 0


def maximal_empty_rectangles(occupancy: np.ndarray) -> list[Rect]:
    """All maximal empty rectangles of the occupancy grid.

    Histogram sweep: for every row, the stack-based largest-rectangle
    algorithm emits each rectangle that cannot be widened at its height;
    a containment pass then removes rectangles nested in larger ones.
    Complexity O(R*C + K^2) with K maximal rectangles — ample for
    device-scale grids (the XCV200 is 28x42).
    """
    rows, cols = occupancy.shape
    free = free_mask(occupancy)
    heights = np.zeros(cols, dtype=np.int64)
    candidates: set[tuple[int, int, int, int]] = set()
    for r in range(rows):
        heights = np.where(free[r], heights + 1, 0)
        # Stack sweep over the histogram of this row.
        stack: list[tuple[int, int]] = []  # (start_col, height)
        for c in range(cols + 1):
            h = int(heights[c]) if c < cols else 0
            start = c
            while stack and stack[-1][1] >= h:
                s, sh = stack.pop()
                # Rectangle of height sh spanning columns s..c-1,
                # rows r-sh+1..r; maximal downwards at this row only if
                # the row below is blocked or we are at the bottom.
                bottom_blocked = r == rows - 1 or not bool(
                    free[r + 1, s : c].all()
                )
                if sh > 0 and bottom_blocked:
                    candidates.add((r - sh + 1, s, sh, c - s))
                start = s
            if h > 0 and (not stack or stack[-1][1] < h):
                stack.append((start, h))
    rects = [Rect(*c) for c in candidates]
    # Drop rectangles contained in another candidate.
    rects.sort(key=lambda x: x.area, reverse=True)
    maximal: list[Rect] = []
    for rect in rects:
        if not any(other.contains_rect(rect) for other in maximal):
            maximal.append(rect)
    return maximal


def largest_empty_rectangle(occupancy: np.ndarray) -> Rect | None:
    """The largest free rectangle (None when the grid is full)."""
    mers = maximal_empty_rectangles(occupancy)
    if not mers:
        return None
    return max(mers, key=lambda r: r.area)


def rectangles_fitting(occupancy: np.ndarray, height: int,
                       width: int) -> list[Rect]:
    """Maximal empty rectangles that can host a ``height`` x ``width``
    request (no rotation: functions are placed as designed)."""
    return [
        r
        for r in maximal_empty_rectangles(occupancy)
        if r.height >= height and r.width >= width
    ]


@runtime_checkable
class FreeSpaceIndex(Protocol):
    """What every free-space engine offers the manager stack.

    An index is bound to one occupancy grid.  It owns the grid's
    mutations: :meth:`allocate` and :meth:`release` write the array *and*
    keep the maximal-empty-rectangle set consistent, so a query can never
    observe a stale view.  External code that mutates the array directly
    must call :meth:`rebuild` afterwards (the fabric never does).
    """

    @property
    def occupancy(self) -> np.ndarray:
        """The bound occupancy grid (0 = free, owner ids otherwise)."""

    @property
    def generation(self) -> int:
        """Counter bumped by every effective occupancy mutation; equal
        generations guarantee byte-identical occupancy, so callers may
        memoise fit and plan decisions against it."""

    @property
    def mers(self) -> list[Rect]:
        """Current maximal empty rectangles (order unspecified)."""

    def allocate(self, rect: Rect, owner: int = 1) -> None:
        """Mark ``rect`` occupied by ``owner`` and update the MER set."""

    def release(self, rect: Rect) -> None:
        """Mark ``rect`` free and update the MER set."""

    def fits(self, height: int, width: int) -> bool:
        """True when some free rectangle can host the request."""

    def rectangles_fitting(self, height: int, width: int) -> list[Rect]:
        """MERs that can host a ``height`` x ``width`` request."""

    def free_area(self) -> int:
        """Total free sites."""

    def largest_free_area(self) -> int:
        """Area of the largest free rectangle (0 when the grid is full)."""

    def rebuild(self) -> None:
        """Resynchronise with the grid after an external mutation."""


class FreeSpaceManager:
    """The ``"recompute"`` engine: cache-and-invalidate over the full
    sweep.

    This is the reference implementation the differential suite holds
    the incremental engine against: correctness is trivial (every query
    after a mutation recomputes from the grid), speed is not (each
    recomputation is O(R*C + K^2) regardless of how small the change
    was).
    """

    name = "recompute"

    def __init__(self, occupancy: np.ndarray) -> None:
        self._occupancy = occupancy
        self._cache: list[Rect] | None = None
        self._generation = 0

    @property
    def occupancy(self) -> np.ndarray:
        """The bound occupancy grid."""
        return self._occupancy

    @property
    def generation(self) -> int:
        """Counter bumped by every effective occupancy mutation.

        Matches the incremental engine's counter step for step over any
        shared mutation history (the differential suite pins this):
        allocations and effective releases bump it, releasing an
        already-free region does not, and :meth:`rebuild` /
        :meth:`invalidate` count as one external mutation.
        """
        return self._generation

    def _check_bounds(self, rect: Rect) -> None:
        rows, cols = self._occupancy.shape
        if rect.row < 0 or rect.col < 0 or rect.row_end > rows \
                or rect.col_end > cols:
            raise ValueError(f"rectangle {rect} outside the {rows}x{cols} grid")

    def allocate(self, rect: Rect, owner: int = 1) -> None:
        """Claim ``rect`` for ``owner``; the region must be free."""
        if owner == 0:
            raise ValueError("owner 0 is the free marker")
        self._check_bounds(rect)
        view = self._occupancy[rect.row : rect.row_end, rect.col : rect.col_end]
        if bool((view != 0).any()):
            raise ValueError(f"region {rect} is not entirely free")
        view[...] = owner
        self._cache = None
        self._generation += 1

    def release(self, rect: Rect) -> None:
        """Return ``rect`` to the free pool."""
        self._check_bounds(rect)
        view = self._occupancy[rect.row : rect.row_end,
                               rect.col : rect.col_end]
        if not bool((view != 0).any()):
            return  # the region was already free: nothing can change
        view[...] = 0
        self._cache = None
        self._generation += 1

    def invalidate(self) -> None:
        """Drop the cached MER list.

        Only needed after an *external* mutation of the occupancy array;
        :meth:`allocate` / :meth:`release` invalidate on their own.
        Kept as the historical name of :meth:`rebuild`.
        """
        self._cache = None
        self._generation += 1

    def rebuild(self) -> None:
        """Resynchronise with the grid (same as :meth:`invalidate`)."""
        self.invalidate()

    @property
    def mers(self) -> list[Rect]:
        """Current maximal empty rectangles."""
        if self._cache is None:
            self._cache = maximal_empty_rectangles(self._occupancy)
        return self._cache

    def fits(self, height: int, width: int) -> bool:
        """True when some free rectangle can host the request."""
        return any(
            r.height >= height and r.width >= width for r in self.mers
        )

    def rectangles_fitting(self, height: int, width: int) -> list[Rect]:
        """MERs that can host a ``height`` x ``width`` request."""
        return [
            r for r in self.mers
            if r.height >= height and r.width >= width
        ]

    def free_area(self) -> int:
        """Total free sites."""
        return int(free_mask(self._occupancy).sum())

    def largest_free_area(self) -> int:
        """Area of the largest free rectangle (0 when the grid is full)."""
        return max((r.area for r in self.mers), default=0)


def make_free_space(name: str, occupancy: np.ndarray) -> FreeSpaceIndex:
    """Construct a free-space engine by registry name.

    ``"recompute"`` builds the reference :class:`FreeSpaceManager`,
    ``"incremental"`` the split/merge engine of
    :mod:`repro.placement.incremental`.
    """
    # Imported here: incremental.py builds on this module's sweep.
    from .incremental import IncrementalFreeSpace

    engines = {
        "recompute": FreeSpaceManager,
        "incremental": IncrementalFreeSpace,
    }
    try:
        engine = engines[name]
    except KeyError:
        known = ", ".join(FREE_SPACE_NAMES)
        raise KeyError(
            f"unknown free-space engine {name!r}; known: {known}"
        ) from None
    return engine(occupancy)
