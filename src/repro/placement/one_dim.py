"""One-dimensional (column-aligned) allocation — the Virtex-native model.

The Virtex configuration architecture reconfigures *whole columns*
(frames span the full device height), so early run-time systems often
constrained functions to full-height column strips: allocation becomes a
1-D interval problem.  The paper's 2-D CLB-level management is strictly
more general; this module provides the 1-D baseline so the benchmarks
can quantify what the generality buys (an ablation DESIGN.md calls out).

A function of area ``a`` CLBs needs ``ceil(a / rows)`` full columns in
the 1-D model; fragmentation happens in one dimension only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.device.geometry import Rect


@dataclass(frozen=True)
class Strip:
    """A contiguous run of full-height columns."""

    col: int
    width: int

    @property
    def col_end(self) -> int:
        """One past the last column."""
        return self.col + self.width

    def to_rect(self, rows: int) -> Rect:
        """The strip as a full-height rectangle."""
        return Rect(0, self.col, rows, self.width)


class OneDimAllocator:
    """Interval allocation of full-height column strips."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("device must have positive dimensions")
        self.rows = rows
        self.cols = cols
        #: owner id per column, 0 = free.
        self.columns = np.zeros(cols, dtype=np.int64)

    def columns_needed(self, height: int, width: int) -> int:
        """Columns a (height x width) request consumes in 1-D."""
        return math.ceil(height * width / self.rows)

    def free_runs(self) -> list[Strip]:
        """Maximal runs of free columns."""
        runs: list[Strip] = []
        start = None
        for c in range(self.cols):
            if self.columns[c] == 0:
                if start is None:
                    start = c
            elif start is not None:
                runs.append(Strip(start, c - start))
                start = None
        if start is not None:
            runs.append(Strip(start, self.cols - start))
        return runs

    def first_fit(self, width: int) -> Strip | None:
        """Leftmost free run able to host ``width`` columns."""
        for run in self.free_runs():
            if run.width >= width:
                return Strip(run.col, width)
        return None

    def allocate(self, height: int, width: int, owner: int) -> Strip | None:
        """Place a request; returns its strip or None."""
        if owner <= 0:
            raise ValueError("owner id must be positive")
        needed = self.columns_needed(height, width)
        strip = self.first_fit(needed)
        if strip is None:
            return None
        self.columns[strip.col : strip.col_end] = owner
        return strip

    def release(self, owner: int) -> None:
        """Free every column owned by ``owner``."""
        if not (self.columns == owner).any():
            raise KeyError(f"owner {owner} holds no columns")
        self.columns[self.columns == owner] = 0

    def utilization(self) -> float:
        """Fraction of columns in use."""
        return float((self.columns != 0).sum()) / self.cols

    def fragmentation_index(self) -> float:
        """1 - largest free run / total free columns (0 when none free)."""
        free = int((self.columns == 0).sum())
        if free == 0:
            return 0.0
        largest = max((r.width for r in self.free_runs()), default=0)
        return 1.0 - largest / free

    def compact(self) -> int:
        """Slide every allocation leftward (1-D ordered compaction);
        returns the number of owners that moved."""
        owners: list[tuple[int, int]] = []  # (first col, owner)
        seen: set[int] = set()
        for c in range(self.cols):
            owner = int(self.columns[c])
            if owner and owner not in seen:
                owners.append((c, owner))
                seen.add(owner)
        moved = 0
        cursor = 0
        new = np.zeros_like(self.columns)
        for first, owner in owners:
            width = int((self.columns == owner).sum())
            new[cursor : cursor + width] = owner
            if cursor != first:
                moved += 1
            cursor += width
        self.columns = new
        return moved
