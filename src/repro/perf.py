"""Process-wide hot-path instrumentation: counters and timers.

The admission hot path is a stack of caches — the kernel's shape-level
failure memos, the planner's per-generation screen cache, the fitter's
per-generation answer cache, the fleet's per-member probe memo.  Each
one is provably transparent (it may only skip work whose outcome is
unchanged), which also makes each one invisible: a broken invalidation
shows up as *wrong results* (pinned by the differential suites), but a
broken *hit rate* shows up as nothing at all — the code silently does
the full work again and only the wall clock knows.

This module makes hit rates observable.  It keeps one process-global
:class:`PerfCounters` instance (:data:`PERF`) that the hot paths bump
with plain attribute increments — no locks, no dict lookups, no
formatting — and that the performance harnesses sample per benchmark
cell (``benchmarks/perf/bench_sched.py`` commits the numbers to
``BENCH_sched.json``) and the always-on service exports under
``/stats``.  The next optimisation round then starts from committed
counter evidence instead of ad-hoc profiling runs.

Counter semantics (all monotonically increasing since the last
:meth:`~PerfCounters.reset`):

``admission_probes``
    ``manager.request`` calls issued by the kernel's admission loop —
    the work everything below exists to avoid.
``item_memo_skips`` / ``shape_memo_skips`` / ``dominance_skips``
    admission probes skipped by the per-item failure memo, the exact
    shape-level memo and the dominance (equal-or-larger footprint)
    memo respectively.
``fleet_member_skips``
    per-member probes the fleet manager skipped because the shape
    already failed on that member at its current free-space generation.
``screen_calls`` / ``screen_windows``
    vectorised eviction screens actually run, and the total candidate
    windows they examined.
``screen_cache_hits`` / ``screen_cache_misses``
    per-(generation, shape) eviction-screen keep-set cache outcomes.
``evict_moves_calls``
    sequential relocation searches (the work the screens gate).
``first_fit_scalar`` / ``first_fit_vector``
    packed first-fit probes answered by the scalar Python-int path
    and by the vectorised word-packed path.

Timers are for the harnesses only (they cost a ``perf_counter`` call
per edge): ``with PERF.timer("screen"): ...`` accumulates wall seconds
into :attr:`PerfCounters.times`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

#: Counter attribute names, in reporting order.  Kept explicit (rather
#: than introspected) so the snapshot layout is stable for the
#: committed benchmark JSON.
COUNTER_NAMES = (
    "admission_probes",
    "item_memo_skips",
    "shape_memo_skips",
    "dominance_skips",
    "fleet_member_skips",
    "screen_calls",
    "screen_windows",
    "screen_cache_hits",
    "screen_cache_misses",
    "evict_moves_calls",
    "first_fit_scalar",
    "first_fit_vector",
)


class PerfCounters:
    """A bundle of hot-path counters with snapshot/reset semantics."""

    __slots__ = COUNTER_NAMES + ("times",)

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter and drop accumulated timer seconds."""
        for name in COUNTER_NAMES:
            setattr(self, name, 0)
        self.times: dict[str, float] = {}

    def snapshot(self) -> dict:
        """Current counter values (and timers, when any ran) as a dict.

        Every counter is reported — including zeros — so committed
        benchmark payloads keep a stable column set across runs.
        """
        out: dict = {name: getattr(self, name) for name in COUNTER_NAMES}
        if self.times:
            out["times"] = dict(sorted(self.times.items()))
        return out

    def collect(self) -> dict:
        """Snapshot, then reset — one benchmark cell's worth of counts."""
        out = self.snapshot()
        self.reset()
        return out

    @contextmanager
    def timer(self, name: str):
        """Accumulate the wall time of the ``with`` body under ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.times[name] = (
                self.times.get(name, 0.0) + time.perf_counter() - started
            )


#: The process-global counter bundle the hot paths increment.
PERF = PerfCounters()
