"""Declarative experiment specifications and grid expansion.

A campaign is a cartesian grid over the experiment axes the paper's
evaluation (and the related policy-matrix studies: floor-plan
prediction, strip packing with delays) sweep:

    device x rearrange policy x fit x port x free-space engine
           x defrag policy x queue x port model x fleet size
           x device-selection policy x workload x seed

:class:`ScenarioSpec` pins one point of that grid; :class:`CampaignSpec`
holds the axes and expands them into a deterministic run list.  Specs
are plain picklable data so the runner can ship them to worker
processes unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.defrag_policy import DEFRAG_POLICY_NAMES
from repro.core.manager import RearrangePolicy
from repro.device.devices import device as device_by_name
from repro.faults import FAULT_PLAN_NAMES
from repro.fleet.policies import DEFAULT_DEVICE_POLICY, DEVICE_POLICY_NAMES
from repro.placement.fit import fitter
from repro.placement.free_space import FREE_SPACE_NAMES
from repro.sched.ports import normalize_port_model
from repro.sched.prefetch import normalize_prefetch_mode
from repro.sched.queues import QUEUE_NAMES
from repro.sched.workload import get_workload as workload_by_name

#: Valid rearrangement policy names (the RearrangePolicy values).
POLICY_NAMES = tuple(p.value for p in RearrangePolicy)
#: Valid configuration-port kinds (see repro.core.cost.CostModel).
PORT_KINDS = ("boundary-scan", "selectmap")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully pinned experiment scenario.

    All fields are primitive (strings, ints, a params tuple) so the spec
    pickles cheaply, hashes, and round-trips through JSON.  Workload
    parameters are stored as a sorted tuple of ``(key, value)`` pairs;
    use :meth:`params` for the dict form.
    """

    device: str
    policy: str
    workload: str
    seed: int
    fit: str = "first"
    port_kind: str = "boundary-scan"
    free_space: str = "incremental"
    defrag: str = "on-failure"
    queue: str = "fifo"
    ports: str = "serial"
    #: fleet axes: how many fabrics share the workload (1 = the paper's
    #: single-device model), which device-selection policy routes
    #: requests, and — for heterogeneous fleets — the *additional*
    #: member devices joining the primary ``device`` (when given, they
    #: pin ``fleet_size`` to ``1 + len(fleet_devices)``; the primary
    #: stays member 0 and sizes the workload).
    fleet_size: int = 1
    device_policy: str = DEFAULT_DEVICE_POLICY
    fleet_devices: tuple[str, ...] = ()
    #: configuration-prefetch mode (``never`` / ``cache`` / ``plan``);
    #: ``never`` reproduces the historical behaviour bit for bit.
    prefetch: str = "never"
    #: named fault plan injected into the run (see
    #: :data:`repro.faults.FAULT_PLAN_NAMES`); ``none`` injects nothing
    #: and reproduces the fault-free behaviour bit for bit.
    faults: str = "none"
    workload_params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        device_by_name(self.device)  # raises KeyError when unknown
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown policy {self.policy!r}; choose from {POLICY_NAMES}"
            )
        if self.port_kind not in PORT_KINDS:
            raise ValueError(
                f"unknown port {self.port_kind!r}; choose from {PORT_KINDS}"
            )
        if self.free_space not in FREE_SPACE_NAMES:
            raise ValueError(
                f"unknown free-space engine {self.free_space!r}; "
                f"choose from {FREE_SPACE_NAMES}"
            )
        if self.defrag not in DEFRAG_POLICY_NAMES:
            raise ValueError(
                f"unknown defrag policy {self.defrag!r}; "
                f"choose from {DEFRAG_POLICY_NAMES}"
            )
        if self.queue not in QUEUE_NAMES:
            raise ValueError(
                f"unknown queue discipline {self.queue!r}; "
                f"choose from {QUEUE_NAMES}"
            )
        # Canonicalise the port model ("2" -> "multi-2"); frozen
        # dataclass, so write through object.__setattr__.
        object.__setattr__(self, "ports", normalize_port_model(self.ports))
        if self.device_policy not in DEVICE_POLICY_NAMES:
            raise ValueError(
                f"unknown device policy {self.device_policy!r}; "
                f"choose from {DEVICE_POLICY_NAMES}"
            )
        # An explicit heterogeneous member list pins the fleet size.
        object.__setattr__(
            self, "fleet_devices", tuple(self.fleet_devices)
        )
        for name in self.fleet_devices:
            device_by_name(name)  # raises KeyError when unknown
        if self.fleet_devices:
            if self.fleet_size != 1:
                raise ValueError(
                    "fleet_devices pins the fleet composition; "
                    "leave fleet_size at its default"
                )
            object.__setattr__(
                self, "fleet_size", 1 + len(self.fleet_devices)
            )
        if self.fleet_size < 1:
            raise ValueError("fleet_size must be at least 1")
        object.__setattr__(
            self, "prefetch", normalize_prefetch_mode(self.prefetch)
        )
        fitter(self.fit)  # raises on unknown strategy
        workload = workload_by_name(self.workload)  # raises on unknown
        if self.faults not in FAULT_PLAN_NAMES:
            raise ValueError(
                f"unknown fault plan {self.faults!r}; "
                f"choose from {FAULT_PLAN_NAMES}"
            )
        if self.faults != "none" and workload.kind != "tasks":
            raise ValueError(
                "fault plans apply to independent-task workloads only"
            )
        if self.faults == "kill-member" and self.fleet_size < 2:
            raise ValueError(
                "the kill-member fault plan needs a fleet "
                "(fleet_size >= 2)"
            )

    @property
    def scheduler_kind(self) -> str:
        """``"tasks"`` or ``"apps"`` — derived from the workload family."""
        return workload_by_name(self.workload).kind

    @property
    def rearrange_policy(self) -> RearrangePolicy:
        """The enum value behind :attr:`policy`."""
        return RearrangePolicy(self.policy)

    def params(self) -> dict:
        """Workload parameters as a dict."""
        return dict(self.workload_params)

    def fleet_label(self) -> str:
        """The scalar row/cell form of :attr:`fleet_devices`: member
        names ``"+"``-joined, empty for homogeneous fleets.  The single
        definition behind both :meth:`to_dict` and the aggregation
        back-fill, so exports and group keys can never drift apart."""
        return "+".join(self.fleet_devices)

    def fleet_device_names(self) -> tuple[str, ...]:
        """Member device names of the fleet, primary first.

        ``fleet_devices`` members join the primary ``device``;
        otherwise the fleet is ``fleet_size`` copies of it.  A 1-tuple
        means the single-device paper model (the runner then skips the
        fleet layer entirely).
        """
        if self.fleet_devices:
            return (self.device, *self.fleet_devices)
        return (self.device,) * self.fleet_size

    def to_dict(self) -> dict:
        """JSON-friendly representation.

        The scheduling-policy axes (``queue``, ``ports``) and the fleet
        axes (``fleet_size``, ``device_policy``, ``fleet_devices`` —
        the latter flattened to a ``"+"``-joined string so rows stay
        scalar) are emitted only when they differ from their defaults.
        This keeps the exported row shape — and the committed golden
        snapshots — bit-identical for campaigns that never touch them.
        Aggregation reads the attributes directly, and
        :meth:`CampaignResult.rows
        <repro.campaign.aggregate.CampaignResult.rows>` back-fills the
        columns for mixed sweeps.
        """
        out = {
            "device": self.device,
            "policy": self.policy,
            "workload": self.workload,
            "seed": self.seed,
            "fit": self.fit,
            "port_kind": self.port_kind,
            "free_space": self.free_space,
            "defrag": self.defrag,
        }
        if self.queue != "fifo":
            out["queue"] = self.queue
        if self.ports != "serial":
            out["ports"] = self.ports
        if self.fleet_size != 1:
            out["fleet_size"] = self.fleet_size
        if self.device_policy != DEFAULT_DEVICE_POLICY:
            out["device_policy"] = self.device_policy
        if self.fleet_devices:
            out["fleet_devices"] = self.fleet_label()
        if self.prefetch != "never":
            out["prefetch"] = self.prefetch
        if self.faults != "none":
            out["faults"] = self.faults
        out["workload_params"] = self.params()
        return out


def normalize_params(params: dict | None) -> tuple[tuple[str, object], ...]:
    """Canonical (sorted, hashable) form of a workload-parameter dict."""
    if not params:
        return ()
    return tuple(sorted(params.items()))


@dataclass
class CampaignSpec:
    """The axes of a sweep; :meth:`expand` yields the run grid.

    Axis order in the expansion is fixed (device, policy, fit, port,
    free-space engine, defrag policy, queue discipline, port model,
    fleet size, device-selection policy, prefetch mode, fault plan,
    workload, seed) so a campaign's run list — and therefore its result
    ordering — is deterministic for a given spec.
    """

    devices: list[str] = field(default_factory=lambda: ["XCV200"])
    policies: list[str] = field(default_factory=lambda: list(POLICY_NAMES))
    workloads: list[str] = field(default_factory=lambda: ["random"])
    seeds: list[int] = field(default_factory=lambda: [0])
    fits: list[str] = field(default_factory=lambda: ["first"])
    port_kinds: list[str] = field(default_factory=lambda: ["boundary-scan"])
    free_spaces: list[str] = field(default_factory=lambda: ["incremental"])
    defrags: list[str] = field(default_factory=lambda: ["on-failure"])
    queues: list[str] = field(default_factory=lambda: ["fifo"])
    ports: list[str] = field(default_factory=lambda: ["serial"])
    fleet_sizes: list[int] = field(default_factory=lambda: [1])
    device_policies: list[str] = field(
        default_factory=lambda: [DEFAULT_DEVICE_POLICY]
    )
    prefetches: list[str] = field(default_factory=lambda: ["never"])
    faults: list[str] = field(default_factory=lambda: ["none"])
    #: additional member devices joining each run's primary device
    #: (one heterogeneous composition for the whole campaign; when
    #: non-empty it overrides ``fleet_sizes``, which must stay at its
    #: default — the composition *is* the fleet-size axis then).
    fleet_devices: list[str] = field(default_factory=list)
    #: per-workload generator parameters, keyed by workload name,
    #: e.g. ``{"random": {"n": 30}, "codec-swap": {"n_apps": 4}}``.
    workload_params: dict[str, dict] = field(default_factory=dict)

    def _fleet_size_axis(self) -> list[int]:
        """The fleet-size axis, collapsed by an explicit composition."""
        if self.fleet_devices:
            if self.fleet_sizes != [1]:
                raise ValueError(
                    "fleet_devices pins the fleet composition; "
                    "leave fleet_sizes at its default"
                )
            return [1 + len(self.fleet_devices)]
        return self.fleet_sizes

    def expand(self) -> list[ScenarioSpec]:
        """The cartesian product of the axes, in deterministic order."""
        fleet_devices = tuple(self.fleet_devices)
        return [
            ScenarioSpec(
                device=dev,
                policy=pol,
                workload=wl,
                seed=seed,
                fit=fit,
                port_kind=port,
                free_space=space,
                defrag=defrag,
                queue=queue,
                ports=ports,
                fleet_size=fleet if not fleet_devices else 1,
                device_policy=device_policy,
                fleet_devices=fleet_devices,
                prefetch=prefetch,
                faults=faults,
                workload_params=normalize_params(
                    self.workload_params.get(wl)
                ),
            )
            for dev, pol, fit, port, space, defrag, queue, ports,
            fleet, device_policy, prefetch, faults, wl, seed
            in itertools.product(
                self.devices,
                self.policies,
                self.fits,
                self.port_kinds,
                self.free_spaces,
                self.defrags,
                self.queues,
                self.ports,
                self._fleet_size_axis(),
                self.device_policies,
                self.prefetches,
                self.faults,
                self.workloads,
                self.seeds,
            )
        ]

    @property
    def size(self) -> int:
        """Number of runs the grid expands to."""
        return (
            len(self.devices)
            * len(self.policies)
            * len(self.fits)
            * len(self.port_kinds)
            * len(self.free_spaces)
            * len(self.defrags)
            * len(self.queues)
            * len(self.ports)
            * len(self._fleet_size_axis())
            * len(self.device_policies)
            * len(self.prefetches)
            * len(self.faults)
            * len(self.workloads)
            * len(self.seeds)
        )
