"""Replay seeded campaign workloads as always-on service traffic.

The campaign layer owns a registry of deterministic workload
generators (:mod:`repro.sched.workload`); the always-on service
(:mod:`repro.service`) accepts submissions one at a time through an
admission door.  This module is the bridge — the *replay-to-service*
driver: it turns any registered ``tasks``-kind workload into a
**service trace** (a list of submission dicts with arrival stamps,
tenants and QoS classes) and feeds such traces through a live
:class:`~repro.service.app.ReproService`, advancing the simulated
clock to each arrival instant.

That makes every seeded batch scenario double as service traffic: the
flash-crowd smoke tests and ``benchmarks/perf/bench_service.py`` both
replay the campaign's ``fleet-surge`` workload through the door
instead of inventing a second traffic model.

Task priorities map onto QoS classes via
:func:`repro.service.qos.qos_for_priority` (0 best-effort, 1 silver,
2+ gold), and tenants are assigned round-robin over a caller-supplied
list — deterministic, like everything else in a trace.
"""

from __future__ import annotations

from repro.device.devices import device as device_by_name
from repro.sched.workload import get_workload
from repro.service.qos import qos_for_priority

__all__ = ["replay_trace", "replay_workload", "service_trace"]


def service_trace(workload: str, device: str = "XC2S15", seed: int = 0,
                  tenants: tuple[str, ...] = ("default",),
                  **params) -> list[dict]:
    """Render a registered task workload as a service submission trace.

    Each entry is a keyword dict for
    :meth:`repro.service.app.ReproService.submit` — including the
    ``at`` arrival stamp, the tenant (round-robin over ``tenants``)
    and the QoS class derived from the generated priority.  Extra
    ``params`` go to the workload factory (``n=...`` scales most
    families).  Application-chain workloads are refused: the service
    admits independent tasks.
    """
    spec = get_workload(workload)
    if spec.kind != "tasks":
        raise ValueError(
            f"workload {workload!r} generates application chains; "
            "the service replays independent-task workloads"
        )
    dev = device_by_name(device)
    trace = []
    for index, task in enumerate(spec.factory(dev, seed, **params)):
        trace.append({
            "at": task.arrival,
            "height": task.height,
            "width": task.width,
            "exec_seconds": task.exec_seconds,
            "max_wait": task.max_wait,
            "tenant": tenants[index % len(tenants)],
            "qos": qos_for_priority(task.priority),
        })
    return trace


def replay_trace(service, trace: list[dict], settle: bool = True) -> dict:
    """Feed a :func:`service_trace` through a live service.

    Submissions are replayed in order, advancing the simulated clock to
    each ``at`` stamp (the door's token buckets refill along the way,
    so throttling behaves exactly as it would under live traffic).
    With ``settle`` the service then drains every pending event, so the
    summary reflects a completed run.  Returns the replay summary:
    submission/throttle counts plus the service's own ``stats()``.
    """
    admitted = throttled = 0
    for submission in trace:
        view = service.submit(**submission)
        if view["admitted"]:
            admitted += 1
        else:
            throttled += 1
    if settle:
        service.settle()
    return {
        "submitted": len(trace),
        "admitted": admitted,
        "throttled": throttled,
        "stats": service.stats(),
    }


def replay_workload(service, workload: str, seed: int = 0,
                    tenants: tuple[str, ...] = ("default",),
                    settle: bool = True, **params) -> dict:
    """Convenience: :func:`service_trace` + :func:`replay_trace`.

    The trace is rendered against the service's own primary device so
    generated footprints fit its fabric.
    """
    trace = service_trace(workload, device=service.config.device,
                          seed=seed, tenants=tenants, **params)
    return replay_trace(service, trace, settle=settle)
