"""Experiment-campaign engine: declarative parameter sweeps, run in
parallel, aggregated into policy comparisons.

The paper's evaluation — and the policy-matrix studies around it —
compare rearrangement policies across devices, workloads and seeds.
This package makes that a first-class, repeatable operation:

* :mod:`repro.campaign.spec` — :class:`ScenarioSpec` (one pinned run)
  and :class:`CampaignSpec` (a grid of axes expanded deterministically);
* :mod:`repro.campaign.runner` — ``run_scenario(spec) -> ScenarioResult``,
  the uniform entry point over both schedulers, and ``run_campaign``
  which fans a grid out over a ``multiprocessing`` pool;
* :mod:`repro.campaign.aggregate` — :class:`CampaignResult` with summary
  tables, policy-vs-policy comparisons and CSV/JSON export;
* :mod:`repro.campaign.cli` — the ``python -m repro.campaign`` command.

Scenario execution is a pure function of the spec (per-run seeded RNG),
so identical grids give identical results in serial and parallel modes.
"""

from .aggregate import CampaignResult, SUMMARY_METRICS
from .runner import (
    ScenarioResult,
    build_manager,
    default_jobs,
    run_campaign,
    run_scenario,
)
from .spec import (
    POLICY_NAMES,
    PORT_KINDS,
    CampaignSpec,
    ScenarioSpec,
    normalize_params,
)

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "POLICY_NAMES",
    "PORT_KINDS",
    "SUMMARY_METRICS",
    "ScenarioResult",
    "ScenarioSpec",
    "build_manager",
    "default_jobs",
    "normalize_params",
    "run_campaign",
    "run_scenario",
]
