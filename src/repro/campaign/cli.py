"""``python -m repro.campaign`` — run a parameter-sweep campaign.

The default grid is the acceptance scenario of the campaign engine:
2 devices x 3 rearrangement policies x 2 workloads x 2 seeds = 24 runs,
executed in parallel, summarized per cell and compared policy against
policy.  Every axis is overridable::

    python -m repro.campaign                          # default 24-run grid
    python -m repro.campaign --devices XCV200 --seeds 0 1 2 3
    python -m repro.campaign --workloads random heavy-tail --jobs 2
    python -m repro.campaign --csv out.csv --json out.json
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.defrag_policy import DEFRAG_POLICY_NAMES
from repro.faults import FAULT_PLAN_NAMES
from repro.fleet.policies import DEFAULT_DEVICE_POLICY, DEVICE_POLICY_NAMES
from repro.placement.free_space import FREE_SPACE_NAMES
from repro.sched.ports import PORT_MODEL_NAMES, normalize_port_model
from repro.sched.prefetch import PREFETCH_MODES
from repro.sched.queues import QUEUE_NAMES
from repro.sched.workload import WORKLOADS

from .aggregate import CampaignResult
from .runner import ScenarioResult, default_jobs, run_campaign
from .spec import POLICY_NAMES, PORT_KINDS, CampaignSpec

#: Small parts keep the default grid fast while still exercising
#: rearrangement (both are real Spartan-II entries of the device table).
DEFAULT_DEVICES = ("XC2S15", "XC2S30")
DEFAULT_WORKLOADS = ("random", "bursty")
DEFAULT_SEEDS = (0, 1)


def build_parser() -> argparse.ArgumentParser:
    """The campaign CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Parallel parameter-sweep campaigns over the "
                    "run-time logic-space manager.",
    )
    grid = parser.add_argument_group("grid axes")
    grid.add_argument("--devices", nargs="+", default=list(DEFAULT_DEVICES),
                      metavar="NAME", help="device names (see repro.device)")
    grid.add_argument("--policies", nargs="+", default=list(POLICY_NAMES),
                      choices=POLICY_NAMES, metavar="POLICY",
                      help=f"rearrangement policies {POLICY_NAMES}")
    grid.add_argument("--workloads", nargs="+",
                      default=list(DEFAULT_WORKLOADS),
                      choices=sorted(WORKLOADS), metavar="NAME",
                      help=f"workload families {sorted(WORKLOADS)}")
    grid.add_argument("--seeds", nargs="+", type=int,
                      default=list(DEFAULT_SEEDS), metavar="N",
                      help="RNG seeds (one run per seed per cell)")
    grid.add_argument("--fits", nargs="+", default=["first"],
                      choices=("first", "best", "bottom-left"),
                      metavar="FIT", help="placement fit strategies")
    grid.add_argument("--port-kinds", nargs="+", default=["boundary-scan"],
                      choices=PORT_KINDS, metavar="KIND",
                      dest="port_kinds",
                      help=f"configuration-port kinds {PORT_KINDS}: the "
                           "cost model pricing port seconds (how those "
                           "seconds are *served* is --ports)")
    grid.add_argument("--free-space", nargs="+", default=["incremental"],
                      choices=FREE_SPACE_NAMES, metavar="ENGINE",
                      dest="free_spaces",
                      help=f"free-space engines {FREE_SPACE_NAMES}")
    grid.add_argument("--defrag", nargs="+", default=["on-failure"],
                      choices=DEFRAG_POLICY_NAMES, metavar="POLICY",
                      dest="defrags",
                      help=f"defrag trigger policies {DEFRAG_POLICY_NAMES}")
    grid.add_argument("--queue", nargs="+", default=["fifo"],
                      choices=QUEUE_NAMES, metavar="DISCIPLINE",
                      dest="queues",
                      help=f"queue disciplines {QUEUE_NAMES}")
    grid.add_argument("--ports", nargs="+", default=["serial"],
                      type=normalize_port_model, metavar="MODEL",
                      dest="ports",
                      help="reconfiguration-port service models "
                           f"{PORT_MODEL_NAMES} (multi-N or a bare "
                           "port count, e.g. '--ports 2'; the pricing "
                           "side is --port-kinds)")
    grid.add_argument("--fleet-size", nargs="+", type=int, default=[1],
                      metavar="N", dest="fleet_sizes",
                      help="fleet sizes: identical fabrics sharing the "
                           "workload (1 = the single-device paper model)")
    grid.add_argument("--device-policy", nargs="+",
                      default=[DEFAULT_DEVICE_POLICY],
                      choices=DEVICE_POLICY_NAMES, metavar="POLICY",
                      dest="device_policies",
                      help="fleet device-selection policies "
                           f"{DEVICE_POLICY_NAMES}")
    grid.add_argument("--fleet-devices", nargs="+", default=[],
                      metavar="NAME", dest="fleet_devices",
                      help="extra member devices joining each --devices "
                           "value in a heterogeneous fleet (pins the "
                           "fleet size; leave --fleet-size unset)")
    grid.add_argument("--prefetch", nargs="+", default=["never"],
                      choices=PREFETCH_MODES, metavar="MODE",
                      dest="prefetches",
                      help=f"configuration-prefetch modes {PREFETCH_MODES}: "
                           "resident-bitstream cache (cache) plus "
                           "idle-window planned loads (plan)")
    grid.add_argument("--faults", nargs="+", default=["none"],
                      choices=FAULT_PLAN_NAMES, metavar="PLAN",
                      dest="faults",
                      help=f"seeded fault plans {FAULT_PLAN_NAMES}: "
                           "member death mid-surge, stuck-at region "
                           "outbreaks, flaky configuration ports "
                           "(kill-member needs --fleet-size >= 2)")
    grid.add_argument("--trace", metavar="FILE", default=None,
                      help="replay an NDJSON arrival trace: adds the "
                           "'trace' workload reading FILE (one JSON "
                           "object per line: at/tenant/qos/height/"
                           "width/duration/max_wait)")
    size = parser.add_argument_group("workload sizing")
    size.add_argument("--tasks", type=int, default=30, metavar="N",
                      help="tasks per run for task-stream workloads")
    size.add_argument("--apps", type=int, default=3, metavar="N",
                      help="applications per run for chain workloads")
    size.add_argument("--priority-levels", type=int, default=1,
                      metavar="N", dest="priority_levels",
                      help="QoS priority classes drawn per task/app "
                           "(1 = priority-unaware, keeps historical "
                           "random streams)")
    execution = parser.add_argument_group("execution")
    execution.add_argument("--jobs", type=int, default=None, metavar="N",
                           help="worker processes (default: min(8, cores); "
                                "1 = serial)")
    execution.add_argument("--metric", default="mean_waiting",
                           choices=(ScenarioResult.METRIC_FIELDS
                                    + ScenarioResult.PREFETCH_METRIC_FIELDS
                                    + ScenarioResult.FAULT_METRIC_FIELDS
                                    + ScenarioResult.TRACE_METRIC_FIELDS),
                           help="metric for the policy-comparison table")
    execution.add_argument("--csv", metavar="PATH",
                           help="write per-run results as CSV")
    execution.add_argument("--json", metavar="PATH",
                           help="write per-run results as JSON")
    execution.add_argument("--quiet", action="store_true",
                           help="suppress tables (exports still written)")
    return parser


def campaign_from_args(args: argparse.Namespace) -> CampaignSpec:
    """Translate parsed CLI arguments into a :class:`CampaignSpec`.

    ``--trace FILE`` appends the ``trace`` replay workload (reading
    FILE) to whatever ``--workloads`` named, so a recorded arrival
    sequence can ride next to synthetic families in one grid.
    """
    workloads = list(args.workloads)
    if args.trace is not None and "trace" not in workloads:
        workloads.append("trace")
    params: dict[str, dict] = {}
    if args.trace is not None:
        params["trace"] = {"path": args.trace}
    for name in args.workloads:
        family = WORKLOADS[name]
        if family.size_param:
            size = args.tasks if family.kind == "tasks" else args.apps
            params[name] = {family.size_param: size}
            if args.priority_levels > 1:
                params[name]["priority_levels"] = args.priority_levels
        # families without a size_param (fig1) are fixed scenarios.
    return CampaignSpec(
        devices=args.devices,
        policies=args.policies,
        workloads=workloads,
        seeds=args.seeds,
        fits=args.fits,
        port_kinds=args.port_kinds,
        free_spaces=args.free_spaces,
        defrags=args.defrags,
        queues=args.queues,
        ports=args.ports,
        fleet_sizes=args.fleet_sizes,
        device_policies=args.device_policies,
        fleet_devices=args.fleet_devices,
        prefetches=args.prefetches,
        faults=args.faults,
        workload_params=params,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    campaign = campaign_from_args(args)
    try:
        specs = campaign.expand()
    except (KeyError, ValueError) as exc:
        # Unknown device/axis values surface here; argparse choices
        # catch the rest.
        print(f"error: {exc.args[0] if exc.args else exc}",
              file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if not args.quiet:
        print(
            f"campaign: {len(specs)} runs "
            f"({len(args.devices)} devices x {len(args.policies)} policies "
            f"x {len(args.workloads)} workloads x {len(args.seeds)} seeds"
            + (f" x {len(args.fits)} fits" if len(args.fits) > 1 else "")
            + (f" x {len(args.port_kinds)} port kinds"
               if len(args.port_kinds) > 1 else "")
            + (f" x {len(args.free_spaces)} engines"
               if len(args.free_spaces) > 1 else "")
            + (f" x {len(args.defrags)} defrag policies"
               if len(args.defrags) > 1 else "")
            + (f" x {len(args.queues)} queue disciplines"
               if len(args.queues) > 1 else "")
            + (f" x {len(args.ports)} port models"
               if len(args.ports) > 1 else "")
            + (f" x {len(args.fleet_sizes)} fleet sizes"
               if len(args.fleet_sizes) > 1 else "")
            + (f" x {len(args.device_policies)} device policies"
               if len(args.device_policies) > 1 else "")
            + (f" x {len(args.prefetches)} prefetch modes"
               if len(args.prefetches) > 1 else "")
            + (f" x {len(args.faults)} fault plans"
               if len(args.faults) > 1 else "")
            + f"), {jobs} worker(s)"
        )
    started = time.perf_counter()
    results = CampaignResult(run_campaign(specs, jobs=jobs))
    elapsed = time.perf_counter() - started
    if not args.quiet:
        results.summary_table().show()
        results.policy_table(args.metric).show()
        if len(args.defrags) > 1:
            results.defrag_table(args.metric).show()
        if len(args.queues) > 1:
            results.queue_table(args.metric).show()
        if len(args.ports) > 1:
            results.ports_table(args.metric).show()
        if len(args.fleet_sizes) > 1:
            results.fleet_table(args.metric).show()
        if len(args.device_policies) > 1:
            results.device_policy_table(args.metric).show()
        if len(args.prefetches) > 1:
            results.prefetch_table(args.metric).show()
        if len(args.faults) > 1:
            results.faults_table(args.metric).show()
        sim_seconds = sum(r.wall_seconds for r in results.results)
        print(
            f"\n{len(results)} runs in {elapsed:.2f} s wall "
            f"({sim_seconds:.2f} s of scenario compute"
            + (f", {sim_seconds / elapsed:.1f}x parallel speedup"
               if elapsed > 0 else "")
            + ")"
        )
    try:
        if args.csv:
            print(f"wrote {results.to_csv(args.csv)}")
        if args.json:
            print(f"wrote {results.to_json(args.json)}")
    except OSError as exc:
        print(f"error: cannot write results: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
