"""Aggregation of campaign results: tables, exports, policy duels.

The campaign runner returns one :class:`~repro.campaign.runner.ScenarioResult`
per grid point; this module folds them for consumption through
:mod:`repro.analysis`:

* :meth:`CampaignResult.summary_table` — mean metrics grouped over
  seeds, one row per (device, workload, policy) cell, rendered with the
  shared ASCII :class:`~repro.analysis.reporting.Table`;
* :meth:`CampaignResult.policy_table` — policy-vs-policy comparison of
  one metric across the grid (the defrag-study shape: NONE vs HALT vs
  CONCURRENT side by side);
* :meth:`CampaignResult.to_csv` / :meth:`CampaignResult.to_json` — flat
  per-run exports for external tooling.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.reporting import Table
from repro.analysis.stats import mean
from repro.sched.workload import get_workload

from .runner import ScenarioResult

#: Metrics shown per group in the summary table.
SUMMARY_METRICS = (
    "finished", "rejected", "mean_waiting", "mean_turnaround",
    "halted_seconds", "rearrangements", "mean_fragmentation",
)


#: Non-seed axes of an aggregation cell, in the column order of the
#: tables (policy last so policy duels read across a row).
GROUP_AXES = ("device", "workload", "fit", "port_kind", "free_space",
              "defrag", "queue", "ports", "fleet_size", "fleet_devices",
              "device_policy", "prefetch", "faults", "policy")
#: Table headers matching GROUP_AXES (``port_kind`` is shown as "port").
GROUP_HEADERS = ("device", "workload", "fit", "port", "free_space",
                 "defrag", "queue", "ports", "fleet", "members",
                 "dev_policy", "prefetch", "faults", "policy")

#: Axis columns :meth:`ScenarioSpec.to_dict` omits at their default
#: value (keeps golden row shapes stable); exports back-fill them.
SPARSE_AXES = ("queue", "ports", "fleet_size", "device_policy",
               "fleet_devices", "prefetch", "faults")

#: Spec columns always present in a row, in export order.
BASE_AXES = ("device", "policy", "workload", "seed", "fit", "port_kind",
             "free_space", "defrag")


def _sparse_value(spec, name: str):
    """Row value of a sparse axis, read off the spec.

    ``fleet_devices`` is flattened through the spec's own
    :meth:`~repro.campaign.spec.ScenarioSpec.fleet_label` — the string
    :meth:`~repro.campaign.spec.ScenarioSpec.to_dict` emits — so
    back-filled rows stay scalar-valued, CSV-safe, and identical to
    the sparse-emitted form.
    """
    if name == "fleet_devices":
        return spec.fleet_label()
    return getattr(spec, name)


def _group_key(result: ScenarioResult) -> tuple[str, ...]:
    """Aggregation cell of one result: every axis except the seed, so
    only seeds are ever averaged together — ``fleet_devices`` included,
    so a heterogeneous fleet never pools with a homogeneous one of the
    same size.  Values are str()-ed (via the same sparse formatting the
    row exports use) so the integer ``fleet_size`` and the composition
    tuple render like every other axis."""
    spec = result.spec
    return tuple(str(_sparse_value(spec, axis)) for axis in GROUP_AXES)


@dataclass
class CampaignResult:
    """All results of one campaign, with aggregation helpers."""

    results: list[ScenarioResult]

    def __len__(self) -> int:
        return len(self.results)

    def rows(self) -> list[dict]:
        """Flat per-run dicts (spec axes + metric columns).

        Campaigns sweeping a sparse axis (``queue``/``ports``) mix rows
        with and without those columns — here every row is rebuilt to
        the explicit column order ``BASE_AXES`` + swept sparse axes +
        ``METRIC_FIELDS``, with sparse values read off the spec (whose
        attribute always exists), so exports stay rectangular.
        Campaigns that never touch the sparse axes keep the historical
        column set bit-identically.
        """
        rows = [r.to_row() for r in self.results]
        swept = [
            name for name in SPARSE_AXES
            if any(name in row for row in rows)
        ]
        swept_metrics = [
            name for name in (ScenarioResult.PREFETCH_METRIC_FIELDS
                              + ScenarioResult.FAULT_METRIC_FIELDS
                              + ScenarioResult.TRACE_METRIC_FIELDS)
            if any(name in row for row in rows)
        ]
        if not swept and not swept_metrics:
            return rows
        out = []
        for result, row in zip(self.results, rows):
            filled = {axis: row[axis] for axis in BASE_AXES}
            for name in swept:
                filled[name] = _sparse_value(result.spec, name)
            for metric in ScenarioResult.METRIC_FIELDS:
                filled[metric] = row[metric]
            for metric in swept_metrics:
                filled[metric] = getattr(result, metric)
            out.append(filled)
        return out

    def groups(self) -> dict[tuple[str, ...], list[ScenarioResult]]:
        """Results bucketed by (device, workload, fit, port, free-space
        engine, defrag, queue discipline, port model, fleet size, fleet
        composition, device-selection policy, policy), seeds pooled.

        Group order follows first appearance in the run list, which the
        deterministic grid expansion fixes.
        """
        out: dict[tuple[str, ...], list[ScenarioResult]] = {}
        for result in self.results:
            out.setdefault(_group_key(result), []).append(result)
        return out

    def group_means(
        self, metric: str
    ) -> dict[tuple[str, ...], float]:
        """Per-group mean of one metric column (prefetch, fault and
        fairness metrics included — they sit at their defaults for
        cells that never touch those axes)."""
        known = (ScenarioResult.METRIC_FIELDS
                 + ScenarioResult.PREFETCH_METRIC_FIELDS
                 + ScenarioResult.FAULT_METRIC_FIELDS
                 + ScenarioResult.TRACE_METRIC_FIELDS)
        if metric not in known:
            raise KeyError(
                f"unknown metric {metric!r}; choose from {known}"
            )
        return {
            key: mean([getattr(r, metric) for r in results])
            for key, results in self.groups().items()
        }

    def summary_table(self) -> Table:
        """Mean metrics per non-seed grid cell (see GROUP_AXES)."""
        table = Table(
            f"campaign summary ({len(self.results)} runs)",
            list(GROUP_HEADERS) + ["seeds"] + [m for m in SUMMARY_METRICS],
        )
        groups = self.groups()
        for key, results in groups.items():
            cells: list[object] = [*key, len(results)]
            for metric in SUMMARY_METRICS:
                cells.append(mean([getattr(r, metric) for r in results]))
            table.add(*cells)
        return table

    def pivot_table(self, axis: str, metric: str = "mean_waiting") -> Table:
        """One grid axis side by side: one column per value of ``axis``,
        one row per cell of the remaining axes, cells are seed-averaged
        ``metric``.

        ``axis`` is any :data:`GROUP_AXES` entry; :meth:`policy_table`
        and :meth:`defrag_table` are the two standard pivots.
        """
        if axis not in GROUP_AXES:
            raise KeyError(
                f"unknown axis {axis!r}; choose from {GROUP_AXES}"
            )
        pivot = GROUP_AXES.index(axis)
        means = self.group_means(metric)
        values: list[str] = []
        cells: dict[tuple[str, ...], dict[str, float]] = {}
        for key, value in means.items():
            pivot_value = key[pivot]
            rest = key[:pivot] + key[pivot + 1:]
            if pivot_value not in values:
                values.append(pivot_value)
            cells.setdefault(rest, {})[pivot_value] = value
        headers = [h for i, h in enumerate(GROUP_HEADERS) if i != pivot]
        table = Table(
            f"{GROUP_HEADERS[pivot]} comparison — {metric}",
            headers + values,
        )
        for rest, by_value in cells.items():
            table.add(
                *rest,
                *[by_value.get(v, float("nan")) for v in values],
            )
        return table

    def policy_table(self, metric: str = "mean_waiting") -> Table:
        """Rearrangement policies side by side: one column per policy,
        one row per non-policy cell, cells are seed-averaged ``metric``.

        This is the paper's defrag-study comparison generalized to the
        whole grid: read across a row to see what each rearrangement
        policy buys on that device/workload combination.
        """
        return self.pivot_table("policy", metric)

    def defrag_table(self, metric: str = "mean_waiting") -> Table:
        """Defrag trigger policies side by side (never / on-failure /
        threshold / idle): what does proactive consolidation buy on each
        device/workload cell?"""
        return self.pivot_table("defrag", metric)

    def queue_table(self, metric: str = "mean_waiting") -> Table:
        """Queue disciplines side by side (fifo / priority / sjf /
        backfill): what does admission order buy on each cell?"""
        return self.pivot_table("queue", metric)

    def ports_table(self, metric: str = "mean_waiting") -> Table:
        """Reconfiguration-port models side by side (serial / multi-N /
        icap): what does configuration bandwidth buy on each cell?"""
        return self.pivot_table("ports", metric)

    def fleet_table(self, metric: str = "mean_waiting") -> Table:
        """Fleet sizes side by side: one column per fleet size, one row
        per remaining cell — with the device-selection policy among the
        row axes, this reads rejections/waiting/utilisation against
        fleet size *and* policy at once (the scaling question the
        multi-fabric experiments ask)."""
        return self.pivot_table("fleet_size", metric)

    def device_policy_table(self, metric: str = "mean_waiting") -> Table:
        """Device-selection policies side by side (first-fit /
        round-robin / least-loaded / best-fit): what does smarter
        device routing buy at each fleet size?"""
        return self.pivot_table("device_policy", metric)

    def prefetch_table(self, metric: str = "mean_waiting") -> Table:
        """Prefetch modes side by side (never / cache / plan): what do
        the resident-bitstream cache and the idle-window planner buy on
        each cell?"""
        return self.pivot_table("prefetch", metric)

    def faults_table(self, metric: str = "relocated") -> Table:
        """Fault plans side by side (none / kill-member / outbreak /
        flaky-port): one column per plan, one row per remaining cell —
        the failover study's headline view (relocated / dropped /
        recovery_seconds across fault axes)."""
        return self.pivot_table("faults", metric)

    def to_csv(self, path: str | Path) -> Path:
        """Write one CSV row per run; returns the path written."""
        path = Path(path)
        rows = self.rows()
        if not rows:
            raise ValueError("no results to export")
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        return path

    def to_json(self, path: str | Path) -> Path:
        """Write the full result list (spec + metrics) as JSON.

        Prefetch, fault and fairness metrics are emitted sparsely, like
        their spec axes: only for runs that touch them, so campaigns
        that never do serialize bit-identically to the committed
        snapshots.
        """
        path = Path(path)
        payload = []
        for r in self.results:
            metrics = {m: getattr(r, m)
                       for m in ScenarioResult.METRIC_FIELDS}
            if r.spec.prefetch != "never":
                for m in ScenarioResult.PREFETCH_METRIC_FIELDS:
                    metrics[m] = getattr(r, m)
            if r.spec.faults != "none":
                for m in ScenarioResult.FAULT_METRIC_FIELDS:
                    metrics[m] = getattr(r, m)
            if get_workload(r.spec.workload).tenanted:
                for m in ScenarioResult.TRACE_METRIC_FIELDS:
                    metrics[m] = getattr(r, m)
            payload.append({"spec": r.spec.to_dict(), "metrics": metrics})
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path
