"""Scenario execution: one uniform entry point, serial or parallel.

:func:`run_scenario` is the single API behind which both schedulers
(:class:`~repro.sched.scheduler.OnlineTaskScheduler` and
:class:`~repro.sched.scheduler.ApplicationFlowScheduler`) sit: it builds
the device, fabric, cost model and manager from a
:class:`~repro.campaign.spec.ScenarioSpec`, generates the seeded
workload, runs the simulation and folds the outcome into a flat,
picklable :class:`ScenarioResult`.

:func:`run_campaign` maps that function over a grid — in-process when
``jobs <= 1``, over a ``multiprocessing`` pool otherwise.  Scenario
execution is a pure function of the spec (all randomness flows from the
per-run seed), so the parallel result list is identical, entry by entry,
to the serial one.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field

from repro.core.cost import CostModel
from repro.core.manager import LogicSpaceManager
from repro.device.devices import device as device_by_name
from repro.device.fabric import Fabric
from repro.fleet.manager import FleetManager
from repro.fleet.policies import DEFAULT_DEVICE_POLICY
from repro.sched.scheduler import (
    ApplicationFlowScheduler,
    OnlineTaskScheduler,
    ScheduleMetrics,
)
from repro.faults import make_fault_plan
from repro.sched.workload import get_workload, make_workload

from .spec import ScenarioSpec


@dataclass
class ScenarioResult:
    """Flat, typed record of one scenario run.

    Everything :mod:`repro.analysis` and the aggregator consume is a
    scalar here; ``wall_seconds`` is measurement noise and is excluded
    from equality so determinism checks compare science, not clocks.
    """

    spec: ScenarioSpec
    finished: int = 0
    rejected: int = 0
    mean_waiting: float = 0.0
    mean_turnaround: float = 0.0
    halted_seconds: float = 0.0
    port_busy_seconds: float = 0.0
    makespan: float = 0.0
    rearrangements: int = 0
    moves: int = 0
    proactive_defrags: int = 0
    defrag_moves: int = 0
    defrag_port_seconds: float = 0.0
    mean_fragmentation: float = 0.0
    mean_utilization: float = 0.0
    stall_seconds: float = 0.0
    prefetched_fraction: float = 0.0
    config_stall_seconds: float = 0.0
    prefetch_hits: int = 0
    prefetch_loads: int = 0
    cache_evictions: int = 0
    faults_injected: int = 0
    members_lost: int = 0
    relocated: int = 0
    restarted: int = 0
    dropped: int = 0
    recovery_seconds: float = 0.0
    port_retry_seconds: float = 0.0
    tenant_fairness: float = 1.0
    wall_seconds: float = field(default=0.0, compare=False)

    #: result columns exported to CSV/JSON (order fixed for stability).
    METRIC_FIELDS = (
        "finished", "rejected", "mean_waiting", "mean_turnaround",
        "halted_seconds", "port_busy_seconds", "makespan",
        "rearrangements", "moves", "proactive_defrags", "defrag_moves",
        "defrag_port_seconds", "mean_fragmentation",
        "mean_utilization", "stall_seconds", "prefetched_fraction",
        "wall_seconds",
    )

    #: extra columns exported only when the scenario sweeps the
    #: prefetch axis (``spec.prefetch != "never"``); keeping them out
    #: of never-mode rows keeps the committed golden snapshots
    #: bit-identical.
    PREFETCH_METRIC_FIELDS = (
        "config_stall_seconds", "prefetch_hits", "prefetch_loads",
        "cache_evictions",
    )

    #: extra columns exported only when the scenario injects faults
    #: (``spec.faults != "none"``); same sparse-emission contract as
    #: the prefetch columns, for the same golden-stability reason.
    FAULT_METRIC_FIELDS = (
        "faults_injected", "members_lost", "relocated", "restarted",
        "dropped", "recovery_seconds", "port_retry_seconds",
    )

    #: extra columns exported only for tenant-labelled workload
    #: families (``WorkloadSpec.tenanted``): per-tenant fairness.
    TRACE_METRIC_FIELDS = ("tenant_fairness",)

    def to_row(self) -> dict:
        """One flat dict: spec axes first, then every metric column.

        Prefetch metrics ride along only for non-``never`` scenarios
        (see :attr:`PREFETCH_METRIC_FIELDS`); fault metrics only for
        fault-injecting scenarios, fairness only for tenant-labelled
        workloads.
        """
        row = self.spec.to_dict()
        row.pop("workload_params")
        for name in self.METRIC_FIELDS:
            row[name] = getattr(self, name)
        if self.spec.prefetch != "never":
            for name in self.PREFETCH_METRIC_FIELDS:
                row[name] = getattr(self, name)
        if self.spec.faults != "none":
            for name in self.FAULT_METRIC_FIELDS:
                row[name] = getattr(self, name)
        if get_workload(self.spec.workload).tenanted:
            for name in self.TRACE_METRIC_FIELDS:
                row[name] = getattr(self, name)
        return row


def _from_metrics(spec: ScenarioSpec, metrics: ScheduleMetrics,
                  wall_seconds: float) -> ScenarioResult:
    """Fold a scheduler's ScheduleMetrics into a ScenarioResult."""
    return ScenarioResult(
        spec=spec,
        finished=metrics.finished,
        rejected=metrics.rejected,
        mean_waiting=metrics.mean_waiting,
        mean_turnaround=metrics.mean_turnaround,
        halted_seconds=metrics.halted_seconds,
        port_busy_seconds=metrics.port_busy_seconds,
        makespan=metrics.makespan,
        rearrangements=metrics.rearrangements,
        moves=metrics.moves,
        proactive_defrags=metrics.proactive_defrags,
        defrag_moves=metrics.defrag_moves,
        defrag_port_seconds=metrics.defrag_port_seconds,
        mean_fragmentation=metrics.mean_fragmentation,
        mean_utilization=metrics.mean_utilization,
        stall_seconds=metrics.stall_seconds,
        prefetched_fraction=metrics.prefetched_fraction,
        config_stall_seconds=metrics.config_stall_seconds,
        prefetch_hits=metrics.prefetch_hits,
        prefetch_loads=metrics.prefetch_loads,
        cache_evictions=metrics.cache_evictions,
        faults_injected=metrics.faults_injected,
        members_lost=metrics.members_lost,
        relocated=metrics.relocated_tasks,
        restarted=metrics.restarted_tasks,
        dropped=metrics.dropped_tasks,
        recovery_seconds=metrics.recovery_seconds,
        port_retry_seconds=metrics.port_retry_seconds,
        tenant_fairness=metrics.tenant_fairness,
        wall_seconds=wall_seconds,
    )


def _member_manager(name: str, spec: ScenarioSpec) -> LogicSpaceManager:
    """One single-device manager for member device ``name``."""
    dev = device_by_name(name)
    return LogicSpaceManager(
        Fabric(dev, free_space=spec.free_space),
        cost_model=CostModel(dev, port_kind=spec.port_kind),
        policy=spec.rearrange_policy,
        fit=spec.fit,
        defrag_policy=spec.defrag,
    )


def build_manager(
    spec: ScenarioSpec, force_fleet: bool = False
) -> LogicSpaceManager | FleetManager:
    """Construct the (fleet of) logic-space manager(s) a spec describes.

    A degenerate fleet — one member, default device-selection policy —
    returns the plain single-device manager, exactly as every pre-fleet
    campaign built it.  ``force_fleet`` routes even that case through a
    1-member :class:`FleetManager`; the fleet test suite uses it to
    prove the fleet layer is a perfect proxy (bit-identical golden
    rows).
    """
    names = spec.fleet_device_names()
    if (len(names) == 1 and not force_fleet
            and spec.device_policy == DEFAULT_DEVICE_POLICY):
        return _member_manager(names[0], spec)
    return FleetManager(
        [_member_manager(name, spec) for name in names],
        policy=spec.device_policy,
    )


def run_scenario(spec: ScenarioSpec,
                 force_fleet: bool = False) -> ScenarioResult:
    """Execute one scenario end to end; pure in the spec.

    Dispatches on the workload family's kind: independent-task streams
    run under :class:`OnlineTaskScheduler`, application chains under
    the prefetching :class:`ApplicationFlowScheduler`; both receive the
    spec's queue discipline and reconfiguration-port model (one port
    per fleet member).  ``force_fleet`` is the test hook described on
    :func:`build_manager`.
    """
    started = time.perf_counter()
    manager = build_manager(spec, force_fleet=force_fleet)
    dev = manager.fabric.device
    payload = make_workload(spec.workload, dev, spec.seed, **spec.params())
    if spec.scheduler_kind == "tasks":
        scheduler = OnlineTaskScheduler(
            manager, queue=spec.queue, ports=spec.ports,
            prefetch_mode=spec.prefetch,
        )
        if spec.faults != "none":
            make_fault_plan(
                spec.faults, dev, spec.fleet_size, spec.seed
            ).install(scheduler)
        metrics = scheduler.run(payload)
    else:
        scheduler = ApplicationFlowScheduler(
            manager, queue=spec.queue, ports=spec.ports,
            prefetch_mode=spec.prefetch,
        )
        scheduler.run(payload)
        metrics = scheduler.metrics
    return _from_metrics(spec, metrics, time.perf_counter() - started)


def default_jobs() -> int:
    """Worker count used when the caller does not pin one."""
    return max(1, min(8, os.cpu_count() or 1))


def run_campaign(
    specs: list[ScenarioSpec],
    jobs: int | None = None,
) -> list[ScenarioResult]:
    """Run every scenario; results align index-for-index with ``specs``.

    ``jobs`` <= 1 runs in-process; otherwise a ``multiprocessing`` pool
    of that many workers executes scenarios concurrently.  Because
    :func:`run_scenario` is deterministic per spec, the two modes return
    equal results (up to the compare-excluded wall clock).
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(specs) <= 1:
        return [run_scenario(spec) for spec in specs]
    with multiprocessing.Pool(processes=min(jobs, len(specs))) as pool:
        return pool.map(run_scenario, specs)
