"""Deterministic fault injection for the scheduling experiments.

The paper's premise is that run-time relocation keeps applications
alive while the logic space changes under them; its reference [8]
lineage (active replication, reproduced in
:mod:`repro.core.active_replication`) extends that to fabrics that are
being *tested and repaired* concurrently with operation.  This package
supplies the missing stressor: seeded, reproducible fault scenarios —
fleet-member death, stuck-at region outbreaks, transient
configuration-port failures — driven through the schedulers' own event
timeline, so the recovery path exercised is exactly the paper's
relocation mechanism.

:class:`~repro.faults.plan.FaultPlan` is the unit of injection: an
immutable, seeded list of timed :class:`~repro.faults.plan.FaultEvent`
records, installed onto an
:class:`~repro.sched.scheduler.OnlineTaskScheduler` before (or during)
a run.  Named plan factories live in
:data:`~repro.faults.plan.FAULT_PLANS`; the campaign layer sweeps them
via the ``--faults`` axis and the always-on service injects ad-hoc
events over HTTP (``POST /faults``).
"""

from .plan import (
    FAULT_PLAN_NAMES,
    FAULT_PLANS,
    FaultEvent,
    FaultPlan,
    make_fault_plan,
)

__all__ = [
    "FAULT_PLAN_NAMES",
    "FAULT_PLANS",
    "FaultEvent",
    "FaultPlan",
    "make_fault_plan",
]
